"""Tests for repro.common.rng."""

from repro.common.rng import derive_seed, np_rng, py_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "fig4", 3) == derive_seed(42, "fig4", 3)

    def test_label_path_matters(self):
        assert derive_seed(42, "fig4") != derive_seed(42, "fig5")
        assert derive_seed(42, "a", 1) != derive_seed(42, "a", 2)

    def test_master_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_int_and_str_labels_mix(self):
        assert derive_seed(0, 1, "a") != derive_seed(0, "a", 1)

    def test_fits_64_bits(self):
        assert 0 <= derive_seed(2**70, "big") < 2**64


class TestRngFactories:
    def test_py_rng_reproducible(self):
        a = py_rng(7, "stream")
        b = py_rng(7, "stream")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_py_rng_streams_independent(self):
        a = py_rng(7, "one")
        b = py_rng(7, "two")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_np_rng_reproducible(self):
        a = np_rng(7, "stream")
        b = np_rng(7, "stream")
        assert (a.random(5) == b.random(5)).all()
