"""Tests for repro.common.counters."""

import random

import numpy as np
import pytest

from repro.common.counters import COUNTER_KINDS, CounterArray, probabilistic_round
from repro.common.errors import ParameterError


class TestProbabilisticRound:
    def test_integer_passes_through(self):
        rng = random.Random(1)
        assert probabilistic_round(5.0, rng) == 5
        assert probabilistic_round(-3.0, rng) == -3

    def test_result_brackets_value(self):
        rng = random.Random(2)
        for _ in range(200):
            value = rng.uniform(-10, 10)
            rounded = probabilistic_round(value, rng)
            assert rounded in (int(np.floor(value)), int(np.floor(value)) + 1)

    def test_unbiased_mean(self):
        rng = random.Random(3)
        value = 2.3
        samples = [probabilistic_round(value, rng) for _ in range(20_000)]
        assert abs(np.mean(samples) - value) < 0.02

    def test_unbiased_mean_negative(self):
        rng = random.Random(4)
        value = -1.25
        samples = [probabilistic_round(value, rng) for _ in range(20_000)]
        assert abs(np.mean(samples) - value) < 0.02


class TestCounterArray:
    def test_starts_at_zero(self):
        counters = CounterArray(2, 3)
        assert counters.get(0, 0) == 0.0
        assert counters.get(1, 2) == 0.0

    def test_integer_add(self):
        counters = CounterArray(1, 1, kind="int32")
        counters.add(0, 0, 5)
        counters.add(0, 0, -2)
        assert counters.get(0, 0) == 3

    def test_fractional_add_expectation(self):
        counters = CounterArray(1, 1, kind="int32", seed=5)
        for _ in range(10_000):
            counters.add(0, 0, 0.25)
        assert abs(counters.get(0, 0) - 2_500) < 150

    def test_float_kind_exact(self):
        counters = CounterArray(1, 1, kind="float")
        counters.add(0, 0, 0.25)
        counters.add(0, 0, 0.25)
        assert counters.get(0, 0) == pytest.approx(0.5)

    def test_saturation_high(self):
        counters = CounterArray(1, 1, kind="int8")
        for _ in range(300):
            counters.add(0, 0, 1)
        assert counters.get(0, 0) == 127  # pinned, never wrapped

    def test_saturation_low(self):
        counters = CounterArray(1, 1, kind="int8")
        for _ in range(300):
            counters.add(0, 0, -1)
        assert counters.get(0, 0) == -128

    def test_no_rollover_from_max(self):
        counters = CounterArray(1, 1, kind="int16")
        counters.set(0, 0, 32767)
        counters.add(0, 0, 1)
        assert counters.get(0, 0) == 32767

    def test_set_clamps(self):
        counters = CounterArray(1, 1, kind="int8")
        counters.set(0, 0, 1_000)
        assert counters.get(0, 0) == 127
        counters.set(0, 0, -1_000)
        assert counters.get(0, 0) == -128

    def test_clear(self):
        counters = CounterArray(2, 2, kind="int32")
        counters.add(1, 1, 7)
        counters.clear()
        assert counters.get(1, 1) == 0

    def test_nbytes_by_kind(self):
        assert CounterArray(2, 8, kind="int8").nbytes == 16
        assert CounterArray(2, 8, kind="int16").nbytes == 32
        assert CounterArray(2, 8, kind="int32").nbytes == 64
        assert CounterArray(2, 8, kind="float").nbytes == 128

    def test_saturation_fraction(self):
        counters = CounterArray(1, 4, kind="int8")
        counters.set(0, 0, 127)
        counters.set(0, 1, -128)
        assert counters.saturation_fraction() == pytest.approx(0.5)
        assert CounterArray(1, 4, kind="float").saturation_fraction() == 0.0

    def test_add_batch_accumulates_duplicates(self):
        counters = CounterArray(2, 4, kind="int32")
        rows = np.array([0, 0, 1, 0])
        cols = np.array([1, 1, 2, 3])
        deltas = np.array([2.0, 3.0, -1.0, 4.0])
        counters.add_batch(rows, cols, deltas)
        assert counters.get(0, 1) == 5
        assert counters.get(1, 2) == -1
        assert counters.get(0, 3) == 4

    def test_add_batch_clamps(self):
        counters = CounterArray(1, 1, kind="int8")
        counters.add_batch(np.zeros(3, int), np.zeros(3, int), np.full(3, 100.0))
        assert counters.get(0, 0) == 127

    def test_unknown_kind_raises(self):
        with pytest.raises(ParameterError):
            CounterArray(1, 1, kind="int128")

    def test_bad_shape_raises(self):
        with pytest.raises(ParameterError):
            CounterArray(0, 5)

    def test_all_kinds_constructible(self):
        for kind in COUNTER_KINDS:
            counters = CounterArray(1, 2, kind=kind)
            counters.add(0, 0, 1)
            assert counters.get(0, 0) == 1
