"""Tests for repro.common.memory."""

import pytest

from repro.common.errors import ParameterError
from repro.common.memory import (
    MemoryModel,
    bits_to_bytes,
    sizeof_counter,
    split_budget,
)


class TestSizeofCounter:
    def test_known_kinds(self):
        assert sizeof_counter("int8") == 1
        assert sizeof_counter("int16") == 2
        assert sizeof_counter("int32") == 4
        assert sizeof_counter("int64") == 8
        assert sizeof_counter("float") == 8

    def test_unknown_kind_raises(self):
        with pytest.raises(ParameterError):
            sizeof_counter("decimal")


class TestBitsToBytes:
    def test_exact_bytes(self):
        assert bits_to_bytes(16) == 2
        assert bits_to_bytes(8) == 1

    def test_rounds_up(self):
        assert bits_to_bytes(9) == 2
        assert bits_to_bytes(1) == 1

    def test_zero(self):
        assert bits_to_bytes(0) == 0

    def test_negative_raises(self):
        with pytest.raises(ParameterError):
            bits_to_bytes(-1)


class TestMemoryModel:
    def test_total_is_sum(self):
        model = MemoryModel()
        model.add("candidate", 100)
        model.add("vague", 25)
        assert model.total_bytes == 125

    def test_add_accumulates_same_name(self):
        model = MemoryModel()
        model.add("part", 10)
        model.add("part", 5)
        assert model.breakdown() == {"part": 15}

    def test_negative_size_raises(self):
        model = MemoryModel()
        with pytest.raises(ParameterError):
            model.add("bad", -1)

    def test_empty_total(self):
        assert MemoryModel().total_bytes == 0


class TestSplitBudget:
    def test_default_paper_split(self):
        candidate, vague = split_budget(1000, 0.8)
        assert candidate == 800
        assert vague == 200

    def test_parts_cover_budget(self):
        candidate, vague = split_budget(12345, 0.8)
        assert candidate + vague == 12345

    def test_tiny_budget_keeps_both_parts_alive(self):
        candidate, vague = split_budget(2, 0.8)
        assert candidate >= 1 and vague >= 1

    def test_extreme_fractions(self):
        candidate, vague = split_budget(100, 0.99)
        assert vague >= 1
        candidate, vague = split_budget(100, 0.01)
        assert candidate >= 1

    def test_invalid_fraction_raises(self):
        with pytest.raises(ParameterError):
            split_budget(100, 0.0)
        with pytest.raises(ParameterError):
            split_budget(100, 1.0)

    def test_too_small_budget_raises(self):
        with pytest.raises(ParameterError):
            split_budget(1, 0.5)
