"""Tests for repro.common.validation."""

import pytest

from repro.common.errors import ParameterError, ReproError
from repro.common.validation import (
    require_in_open_unit_interval,
    require_non_negative,
    require_positive_int,
    require_probability,
)


class TestRequirePositiveInt:
    def test_accepts_positive(self):
        assert require_positive_int("n", 3) == 3

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ParameterError):
            require_positive_int("n", 0)
        with pytest.raises(ParameterError):
            require_positive_int("n", -1)

    def test_rejects_bool(self):
        with pytest.raises(ParameterError):
            require_positive_int("n", True)

    def test_rejects_float(self):
        with pytest.raises(ParameterError):
            require_positive_int("n", 3.0)

    def test_error_names_parameter(self):
        with pytest.raises(ParameterError, match="width"):
            require_positive_int("width", -1)


class TestRequireNonNegative:
    def test_accepts_zero_and_positive(self):
        assert require_non_negative("x", 0) == 0.0
        assert require_non_negative("x", 2.5) == 2.5

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            require_non_negative("x", -0.1)

    def test_rejects_non_numeric(self):
        with pytest.raises(ParameterError):
            require_non_negative("x", "many")


class TestOpenUnitInterval:
    def test_accepts_interior(self):
        assert require_in_open_unit_interval("delta", 0.95) == 0.95

    def test_rejects_bounds(self):
        with pytest.raises(ParameterError):
            require_in_open_unit_interval("delta", 0.0)
        with pytest.raises(ParameterError):
            require_in_open_unit_interval("delta", 1.0)


class TestRequireProbability:
    def test_accepts_bounds(self):
        assert require_probability("p", 0.0) == 0.0
        assert require_probability("p", 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ParameterError):
            require_probability("p", 1.1)
        with pytest.raises(ParameterError):
            require_probability("p", -0.1)


class TestErrorHierarchy:
    def test_parameter_error_is_repro_and_value_error(self):
        assert issubclass(ParameterError, ReproError)
        assert issubclass(ParameterError, ValueError)

    def test_catchable_as_family(self):
        try:
            require_positive_int("n", 0)
        except ReproError:
            pass
        else:  # pragma: no cover
            pytest.fail("ParameterError should be caught as ReproError")
