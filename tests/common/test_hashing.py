"""Tests for repro.common.hashing."""

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.common.hashing import (
    FingerprintHasher,
    HashFamily,
    SignHashFamily,
    canonical_key,
    canonical_keys,
    mix64,
    _mix64_array,
)


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_different_inputs_differ(self):
        assert mix64(1) != mix64(2)

    def test_output_fits_64_bits(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= mix64(x) < 2**64

    def test_avalanche_single_bit_flip(self):
        # Flipping one input bit should flip roughly half the output bits.
        base = mix64(0xDEADBEEF)
        flipped = mix64(0xDEADBEEF ^ 1)
        differing = bin(base ^ flipped).count("1")
        assert 16 <= differing <= 48

    def test_vector_matches_scalar(self):
        xs = np.array([0, 1, 7, 2**40, 2**64 - 1], dtype=np.uint64)
        vector = _mix64_array(xs)
        for x, v in zip(xs.tolist(), vector.tolist()):
            assert mix64(int(x)) == int(v)


class TestCanonicalKey:
    def test_int_and_numpy_int_agree(self):
        assert canonical_key(42) == canonical_key(np.int64(42))

    def test_str_stable(self):
        assert canonical_key("flow-1") == canonical_key("flow-1")

    def test_str_and_bytes_utf8_agree(self):
        assert canonical_key("abc") == canonical_key(b"abc")

    def test_tuple_supported(self):
        five_tuple = (10, 20, 80, 443, 6)
        assert canonical_key(five_tuple) == canonical_key(five_tuple)

    def test_tuple_order_matters(self):
        assert canonical_key((1, 2)) != canonical_key((2, 1))

    def test_distinct_keys_rarely_collide(self):
        seen = {canonical_key(i) for i in range(10_000)}
        assert len(seen) == 10_000

    def test_unsupported_type_raises(self):
        with pytest.raises(ParameterError):
            canonical_key(3.14)

    def test_batch_int_array_matches_scalar(self):
        keys = np.arange(100, dtype=np.int64)
        batch = canonical_keys(keys)
        for key, canon in zip(keys.tolist(), batch.tolist()):
            assert canonical_key(key) == int(canon)

    def test_batch_generic_iterable(self):
        batch = canonical_keys(["a", "b"])
        assert int(batch[0]) == canonical_key("a")
        assert int(batch[1]) == canonical_key("b")


class TestHashFamily:
    def test_indices_within_width(self):
        family = HashFamily(depth=4, width=97, seed=1)
        for key in range(1000):
            for index in family.indices(canonical_key(key)):
                assert 0 <= index < 97

    def test_rows_are_different_functions(self):
        family = HashFamily(depth=2, width=1 << 20, seed=1)
        same = sum(
            1
            for key in range(500)
            if family.index(0, canonical_key(key)) == family.index(1, canonical_key(key))
        )
        assert same < 5  # rows collide only by chance

    def test_seed_changes_mapping(self):
        a = HashFamily(depth=1, width=1 << 16, seed=1)
        b = HashFamily(depth=1, width=1 << 16, seed=2)
        differing = sum(
            1
            for key in range(200)
            if a.index(0, canonical_key(key)) != b.index(0, canonical_key(key))
        )
        assert differing > 190

    def test_batch_matches_scalar(self):
        family = HashFamily(depth=3, width=101, seed=7)
        keys = canonical_keys(np.arange(50, dtype=np.int64))
        batch = family.indices_batch(keys)
        assert batch.shape == (3, 50)
        for col, key in enumerate(keys.tolist()):
            assert family.indices(int(key)) == batch[:, col].tolist()

    def test_distribution_roughly_uniform(self):
        family = HashFamily(depth=1, width=16, seed=3)
        counts = [0] * 16
        for key in range(16_000):
            counts[family.index(0, canonical_key(key))] += 1
        assert min(counts) > 700 and max(counts) < 1300

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            HashFamily(depth=0, width=10)
        with pytest.raises(ParameterError):
            HashFamily(depth=1, width=0)


class TestSignHashFamily:
    def test_signs_are_plus_minus_one(self):
        family = SignHashFamily(depth=3, seed=1)
        for key in range(100):
            assert set(family.signs(canonical_key(key))) <= {-1, 1}

    def test_roughly_balanced(self):
        family = SignHashFamily(depth=1, seed=5)
        positives = sum(
            1 for key in range(10_000) if family.sign(0, canonical_key(key)) == 1
        )
        assert 4_500 < positives < 5_500

    def test_batch_matches_scalar(self):
        family = SignHashFamily(depth=4, seed=9)
        keys = canonical_keys(np.arange(64, dtype=np.int64))
        batch = family.signs_batch(keys)
        for col, key in enumerate(keys.tolist()):
            assert family.signs(int(key)) == batch[:, col].tolist()

    def test_invalid_depth(self):
        with pytest.raises(ParameterError):
            SignHashFamily(depth=0)


class TestFingerprintHasher:
    def test_never_zero(self):
        hasher = FingerprintHasher(bits=8, seed=1)
        assert all(hasher.fingerprint(canonical_key(k)) != 0 for k in range(5_000))

    def test_fits_bit_width(self):
        hasher = FingerprintHasher(bits=16, seed=2)
        assert all(
            1 <= hasher.fingerprint(canonical_key(k)) < (1 << 16)
            for k in range(1_000)
        )

    def test_collision_rate_matches_width(self):
        hasher = FingerprintHasher(bits=16, seed=3)
        fps = [hasher.fingerprint(canonical_key(k)) for k in range(2_000)]
        # Birthday bound: ~2000^2 / (2*65536) ~ 30 colliding pairs max.
        assert len(set(fps)) > 1_950

    def test_batch_matches_scalar(self):
        hasher = FingerprintHasher(bits=16, seed=4)
        keys = canonical_keys(np.arange(128, dtype=np.int64))
        batch = hasher.fingerprints_batch(keys)
        for key, fp in zip(keys.tolist(), batch.tolist()):
            assert hasher.fingerprint(int(key)) == int(fp)

    def test_invalid_bits(self):
        with pytest.raises(ParameterError):
            FingerprintHasher(bits=0)
        with pytest.raises(ParameterError):
            FingerprintHasher(bits=65)
