"""Documentation link integrity.

Every relative markdown link in the repo's documentation must resolve
to a real file (and a real heading, when it carries an anchor), and
every ``path``-shaped inline-code reference to a repo file must point
at something that exists.  CI runs this as part of tier-1, so a rename
that orphans a docs cross-reference fails the build instead of rotting
in place.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The documentation set under audit: the stable top-level pages plus
#: everything in docs/.  Working files whose content a maintenance
#: process rewrites (ISSUE.md, CHANGES.md, ROADMAP.md) and retrieved
#: reference material (PAPER.md, PAPERS.md, SNIPPETS.md) may
#: legitimately mention files that do not exist yet, so they stay out.
DOC_FILES = sorted(
    [
        *(REPO_ROOT / name for name in
          ("README.md", "DESIGN.md", "EXPERIMENTS.md")
          if (REPO_ROOT / name).exists()),
        *(REPO_ROOT / "docs").glob("*.md"),
    ]
)

MARKDOWN_LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")

#: Inline-code references that look like repo paths, e.g.
#: ``docs/operations.md``, ``examples/quickstart.py``,
#: ``benchmarks/matrix/smoke.json`` — with an optional ``::name``
#: pytest-style suffix.  Single-segment names (``REPORT.md``) are
#: skipped: too many false positives from generated-artifact mentions.
CODE_PATH = re.compile(
    r"`((?:docs|examples|benchmarks|tests|src|\.github)"
    r"/[\w./\-]+\.\w{1,4})(?:::[\w.\-\[\]:]+)?`"
)


def _heading_anchors(path: Path):
    anchors = set()
    for line in path.read_text().splitlines():
        if line.startswith("#"):
            title = line.lstrip("#").strip().lower()
            slug = re.sub(r"[^\w\- ]", "", title).replace(" ", "-")
            anchors.add(slug)
    return anchors


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[str(p.relative_to(REPO_ROOT)) for p in DOC_FILES]
)
def test_relative_markdown_links_resolve(doc):
    broken = []
    for target in MARKDOWN_LINK.findall(doc.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, anchor = target.partition("#")
        if not target:  # same-page anchor
            resolved = doc
        else:
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                broken.append(target)
                continue
        if anchor and resolved.suffix == ".md":
            if anchor.lower() not in _heading_anchors(resolved):
                broken.append(f"{target}#{anchor}")
    assert not broken, (
        f"{doc.relative_to(REPO_ROOT)} has broken relative links: {broken}"
    )


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[str(p.relative_to(REPO_ROOT)) for p in DOC_FILES]
)
def test_inline_code_path_references_exist(doc):
    broken = [
        ref for ref in CODE_PATH.findall(doc.read_text())
        if not (REPO_ROOT / ref).exists()
    ]
    assert not broken, (
        f"{doc.relative_to(REPO_ROOT)} references missing repo files: "
        f"{broken}"
    )


def test_the_audit_actually_covers_the_docs():
    names = {p.name for p in DOC_FILES}
    assert "README.md" in names
    # The nine docs pages enumerated in README's Documentation index.
    for page in (
        "algorithm.md", "api.md", "adaptive-thresholds.md",
        "baselines.md", "experiments-guide.md", "observability.md",
        "operations.md", "performance.md", "workloads.md",
    ):
        assert page in names, page
