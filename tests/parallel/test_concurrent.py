"""Unit tests for the thread-parallel shared-sketch engine.

Bit-exact equivalence against the batch engine is pinned by
``tests/properties/test_property_concurrent_equivalence.py`` and the
contention behaviour by ``test_concurrent_stress.py``; this file covers
the API surface — queries, snapshots, retargeting, ingest buffers,
validation — and ``ParallelPipeline(engine="threads")`` end to end.
"""

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.vectorized import BatchQuantileFilter
from repro.parallel.concurrent import (
    ConcurrentQuantileFilter,
    ThreadIngest,
)
from repro.parallel.pipeline import ParallelPipeline
from repro.parallel.sharded import batch_filter_to_scalar

CRIT = Criteria(delta=0.9, threshold=100.0, epsilon=5.0)
GEOMETRY = dict(num_buckets=128, vague_width=512, bucket_size=4, seed=3)


def _trace(n=20_000, seed=5):
    # Mostly sub-threshold noise over many keys, plus 20 hot keys whose
    # items sit far above T — those reliably accumulate Qweight.
    rng = np.random.default_rng(seed)
    keys = rng.integers(100, 2_000, size=n).astype(np.int64)
    values = rng.uniform(0, CRIT.threshold, n)
    hot = rng.random(n) < 0.05
    keys[hot] = rng.integers(0, 20, size=int(hot.sum()))
    values[hot] = 800.0
    return keys, values


def _fed(n=20_000, **overrides):
    params = {**GEOMETRY, **overrides}
    cqf = ConcurrentQuantileFilter(CRIT, **params)
    keys, values = _trace(n)
    cqf.process(keys, values)
    return cqf, keys, values


class TestReadPath:
    def test_query_matches_batch_twin(self):
        cqf, keys, values = _fed()
        twin = batch_filter_to_scalar(cqf.as_batch())
        for key in [int(keys[0]), 0, 123, 1_999]:
            assert cqf.query(key) == pytest.approx(twin.query(key))

    def test_reports_alias_and_dedup(self):
        cqf, _, _ = _fed()
        assert cqf.reports() == cqf.reported_keys
        assert len(cqf.reported_keys) > 0
        per_stripe = [set(s.reported_keys) for s in cqf._sinks]
        assert sum(len(s) for s in per_stripe) == len(cqf.reported_keys)

    def test_accounting_proxies(self):
        cqf, keys, _ = _fed()
        assert cqf.items_processed == keys.shape[0]
        assert cqf.report_count >= len(cqf.reported_keys)
        assert cqf.thread_flushes > 0
        assert 0.0 <= cqf.occupancy() <= 1.0
        assert cqf.entry_count() > 0
        assert cqf.nbytes > 0
        assert cqf.candidate_hit_rate() >= 0.0


class TestSnapshots:
    def test_as_batch_is_independent(self):
        cqf, _, _ = _fed(n=5_000)
        twin = cqf.as_batch()
        before = twin.items_processed
        cqf.process(*_trace(n=1_000, seed=9))
        assert twin.items_processed == before  # frozen copy

    def test_as_batch_converts_to_scalar(self):
        cqf, _, _ = _fed(n=5_000)
        scalar = batch_filter_to_scalar(cqf.as_batch())
        assert scalar.reported_keys == cqf.reported_keys

    def test_snapshot_alias(self):
        cqf, _, _ = _fed(n=2_000)
        assert cqf.snapshot().reported_keys == cqf.reported_keys


class TestRetarget:
    def test_moves_threshold_and_counts(self):
        cqf, _, _ = _fed(n=2_000)
        new = cqf.retarget(250.0)
        assert new.threshold == 250.0
        assert cqf.criteria.threshold == 250.0
        assert cqf.retargets == 1
        cqf.process(*_trace(n=2_000, seed=10))  # still ingests fine


class TestThreadIngest:
    def test_buffers_until_flush_items(self):
        cqf = ConcurrentQuantileFilter(CRIT, **GEOMETRY)
        ingest = cqf.ingest(flush_items=10)
        for i in range(9):
            ingest.insert(i, 1.0)
        assert ingest.pending == 9
        assert cqf.items_processed == 0
        ingest.insert(9, 1.0)  # tenth item: auto-flush
        assert ingest.pending == 0
        assert cqf.items_processed == 10

    def test_context_manager_flushes_tail(self):
        cqf = ConcurrentQuantileFilter(CRIT, **GEOMETRY)
        with cqf.ingest(flush_items=100) as ingest:
            ingest.insert(1, 1.0)
        assert cqf.items_processed == 1

    def test_insert_many_streams_arrays(self):
        cqf = ConcurrentQuantileFilter(CRIT, **GEOMETRY, flush_items=64)
        keys, values = _trace(n=1_000)
        ingest = cqf.ingest()
        ingest.insert(7, 2.0)  # scalar buffer flushed first, in order
        ingest.insert_many(keys, values)
        assert cqf.items_processed == 1_001

    def test_matches_process(self):
        keys, values = _trace(n=8_000)
        via_process = ConcurrentQuantileFilter(CRIT, **GEOMETRY)
        via_process.process(keys, values)
        via_ingest = ConcurrentQuantileFilter(CRIT, **GEOMETRY)
        with via_ingest.ingest() as ingest:
            for key, value in zip(keys.tolist(), values.tolist()):
                ingest.insert(key, value)
        assert via_ingest.reported_keys == via_process.reported_keys


class TestValidation:
    def test_bad_num_stripes(self):
        with pytest.raises(ParameterError):
            ConcurrentQuantileFilter(CRIT, **GEOMETRY, num_stripes=0)

    def test_bad_flush_items(self):
        with pytest.raises(ParameterError):
            ConcurrentQuantileFilter(CRIT, **GEOMETRY, flush_items=0)

    def test_bad_ingest_flush_items(self):
        cqf = ConcurrentQuantileFilter(CRIT, **GEOMETRY)
        with pytest.raises(ParameterError):
            ThreadIngest(cqf, flush_items=0)

    def test_stripes_clamped_to_buckets(self):
        cqf = ConcurrentQuantileFilter(
            CRIT, num_buckets=4, vague_width=64, num_stripes=64
        )
        assert cqf.num_stripes == 4


class TestPipelineThreadsMode:
    def test_run_delivers_exactly_the_filters_reports(self):
        # Racing commits make the fringe of the report set
        # order-sensitive (the property suite pins the exact
        # linearization semantics); what the pipeline must guarantee is
        # transport integrity — every report the shared filter emitted
        # is delivered once — and that guaranteed detections fire.
        keys, values = _trace(n=60_000)
        pipe = ParallelPipeline(
            CRIT, 4, engine="threads", chunk_items=2_048, **GEOMETRY
        )
        result = pipe.run(keys, values)
        assert result.reported_keys == pipe.filter.reported_keys
        assert set(range(20)) <= result.reported_keys  # the hot keys
        assert result.items == keys.shape[0]

        single = BatchQuantileFilter(CRIT, **GEOMETRY)
        single.process(keys, values)
        assert set(range(20)) <= single.reported_keys

    def test_merged_view_and_stats(self):
        keys, values = _trace(n=30_000)
        pipe = ParallelPipeline(
            CRIT, 2, engine="threads", chunk_items=2_048,
            collect_stats=True, **GEOMETRY,
        )
        with pipe:
            pipe.feed(keys, values)
            stats = pipe.collect_stats_view()
            result = pipe.finish()
        assert stats["qf_items_total"] >= 0
        assert result.stats["qf_items_total"] == keys.shape[0]
        assert result.stats["qf_thread_flushes_total"] > 0
        merged = batch_filter_to_scalar(pipe.filter.as_batch())
        assert merged.reported_keys == result.reported_keys

    def test_retarget_rendezvous(self):
        keys, values = _trace(n=20_000)
        pipe = ParallelPipeline(
            CRIT, 2, engine="threads", chunk_items=1_024, **GEOMETRY
        )
        with pipe:
            pipe.feed(keys[:10_000], values[:10_000])
            new = pipe.retarget(500.0)
            assert new.threshold == 500.0
            pipe.feed(keys[10_000:], values[10_000:])
            result = pipe.finish()
        assert pipe.filter.criteria.threshold == 500.0
        assert result.items == keys.shape[0]

    def test_unsupported_feature_rejections(self):
        for kwargs in (
            dict(mode="ordered"),
            dict(transport="shm"),
            dict(collect_trace=True),
            dict(collect_provenance=True),
            dict(record=True, incident_dir="/tmp"),
        ):
            with pytest.raises(ParameterError):
                ParallelPipeline(
                    CRIT, 2, engine="threads", **GEOMETRY, **kwargs
                )

    def test_num_stripes_rejected_for_process_engines(self):
        with pytest.raises(ParameterError):
            ParallelPipeline(CRIT, 2, engine="batch", num_stripes=8,
                             **GEOMETRY)
