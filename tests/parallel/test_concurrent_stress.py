"""Barrier-driven stress test for the thread-parallel engine.

Eight updater threads (override with ``QF_STRESS_THREADS``) race 200k
items into one shared filter, released simultaneously by a barrier so
the stripe locks, the vague lock and the seqlock read path all see real
contention.  The witness log then proves no report was lost or
duplicated: replaying the commit-ticket linearization through a fresh
single-thread batch filter must reproduce the racing filter's report
set and planes bit-exactly.
"""

import os
import threading

import numpy as np

from repro.core.criteria import Criteria
from repro.core.persistence import state_fingerprint
from repro.parallel.concurrent import ConcurrentQuantileFilter, replay_witness

NUM_THREADS = int(os.environ.get("QF_STRESS_THREADS", "8"))
TOTAL_ITEMS = 200_000
CRIT = Criteria(delta=0.95, threshold=100.0, epsilon=5.0)


def test_racing_threads_lose_and_duplicate_no_reports():
    cqf = ConcurrentQuantileFilter(
        CRIT, num_buckets=256, vague_width=2_048, bucket_size=4,
        depth=3, seed=7, num_stripes=4 * NUM_THREADS, flush_items=1_024,
        record_witness=True,
    )
    per_thread = TOTAL_ITEMS // NUM_THREADS
    rng = np.random.default_rng(7)
    # Hot keys each ship >= 40 items far above T — their detection does
    # not depend on commit interleaving, so they must always report.
    hot = np.arange(50, dtype=np.int64)
    streams = []
    for t in range(NUM_THREADS):
        keys = rng.integers(100, 5_000, size=per_thread).astype(np.int64)
        values = rng.uniform(0, CRIT.threshold, per_thread)
        spots = rng.choice(per_thread, size=50 * 40 // NUM_THREADS,
                           replace=False)
        keys[spots] = rng.choice(hot, size=spots.size)
        values[spots] = CRIT.threshold * 10.0
        streams.append((keys, values))

    barrier = threading.Barrier(NUM_THREADS)
    errors = []

    def run(t):
        keys, values = streams[t]
        try:
            barrier.wait()
            ingest = cqf.ingest()
            ingest.insert_many(keys, values)
            ingest.flush()
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(t,), name=f"stress-{t}")
        for t in range(NUM_THREADS)
    ]
    for t in threads:
        t.start()
    scrapes = 0
    while any(t.is_alive() for t in threads):
        # Exercise the seqlock read path against live commits.
        cqf.query(int(hot[scrapes % hot.size]))
        _ = cqf.reported_keys
        scrapes += 1
    for t in threads:
        t.join()
    assert errors == []
    assert cqf.items_processed == per_thread * NUM_THREADS

    # No report duplicated: a key's bucket owns it, so it must appear in
    # exactly one stripe's sink.
    per_stripe = [set(sink.reported_keys) for sink in cqf._sinks]
    assert sum(len(s) for s in per_stripe) == len(cqf.reported_keys)

    # No report lost (and none invented): the executed linearization,
    # replayed single-threaded, yields the same report set, the same
    # report-event count, and bit-identical planes.
    replayed = replay_witness(cqf.witness, cqf)
    assert cqf.reported_keys == replayed.reported_keys
    assert cqf.report_count == replayed.report_count
    assert state_fingerprint(cqf.as_batch()) == state_fingerprint(replayed)

    # The guaranteed detections all fired.
    assert set(hot.tolist()) <= cqf.reported_keys
