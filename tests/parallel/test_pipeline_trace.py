"""Integration: tracing, provenance and latency histograms through the
multiprocess pipeline.

These tests run real worker processes, mirroring how ``repro trace``
exercises the pipeline, and pin the acceptance criteria: the trace is
Chrome/Perfetto-shaped with every documented span name present, and
every report record carries provenance consistent with a scalar-engine
run.
"""

import json

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.observability.histogram import percentiles_from_snapshot
from repro.observability.tracing import PIPELINE_SPANS, Tracer
from repro.parallel.pipeline import ParallelPipeline

CRIT = Criteria(delta=0.9, threshold=100.0, epsilon=5.0)


def make_stream(n=6_000, universe=100, seed=7):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, universe, size=n).astype(np.int64)
    values = np.where(rng.random(n) < 0.2, 500.0, rng.uniform(0, 100.0, n))
    return keys, values


@pytest.fixture(scope="module")
def traced_result():
    keys, values = make_stream()
    pipeline = ParallelPipeline(
        CRIT, 2, engine="scalar", memory_bytes=16_384, chunk_items=1_000,
        collect_trace=True, collect_provenance=True, collect_stats=True,
        collect_merged=True, trace_sample_every=1, seed=3,
    )
    result = pipeline.run(keys, values)
    return pipeline, result


class TestTraceCollection:
    def test_all_documented_spans_present(self, traced_result):
        _, result = traced_result
        names = {e["name"] for e in result.trace_events}
        assert set(PIPELINE_SPANS) <= names

    def test_events_are_chrome_shaped_and_serialisable(self, traced_result):
        _, result = traced_result
        text = json.dumps({"traceEvents": result.trace_events})
        for event in json.loads(text)["traceEvents"]:
            assert event["ph"] in ("X", "i")
            assert event["ts"] >= 0.0
            assert "pid" in event and "tid" in event

    def test_worker_spans_carry_worker_pids(self, traced_result):
        _, result = traced_result
        pids = {
            e["pid"] for e in result.trace_events
            if e["name"] == "shard_insert"
        }
        master_pids = {
            e["pid"] for e in result.trace_events
            if e["name"] == "pipeline_feed"
        }
        # fork start method: workers are distinct processes.
        assert pids and master_pids and not (pids & master_pids)

    def test_external_tracer_receives_events(self):
        keys, values = make_stream(n=2_000)
        tracer = Tracer()
        pipeline = ParallelPipeline(
            CRIT, 2, engine="scalar", memory_bytes=16_384,
            chunk_items=1_000, tracer=tracer, seed=3,
        )
        pipeline.run(keys, values)
        assert {e["name"] for e in tracer.chrome_events()} >= {
            "pipeline_feed", "pipeline_collect"
        }

    def test_tracing_off_collects_nothing(self):
        keys, values = make_stream(n=2_000)
        pipeline = ParallelPipeline(
            CRIT, 2, engine="scalar", memory_bytes=16_384,
            chunk_items=1_000, seed=3,
        )
        result = pipeline.run(keys, values)
        assert pipeline.tracer is None
        assert result.trace_events is None


class TestProvenanceCollection:
    def test_every_report_record_has_provenance(self, traced_result):
        _, result = traced_result
        records = result.report_records
        assert records
        for record in records:
            prov = record["provenance"]
            assert prov is not None
            assert prov["part"] == record["source"]
            assert prov["qweight"] == record["qweight"]
            assert prov["threshold"] == CRIT.report_threshold
            assert prov["items_since_reset"] >= 1
        json.dumps(records)

    def test_records_match_released_reports(self, traced_result):
        _, result = traced_result
        assert len(result.report_records) == sum(result.per_shard_reports)
        record_keys = {r["key"] for r in result.report_records}
        released = {
            int(key) for batch in result.batches for key in batch.keys
        }
        assert record_keys == released

    def test_provenance_requires_scalar_engine(self):
        with pytest.raises(ParameterError):
            ParallelPipeline(
                CRIT, 2, engine="batch", memory_bytes=16_384,
                collect_provenance=True,
            )

    def test_provenance_off_means_no_records(self):
        keys, values = make_stream(n=2_000)
        pipeline = ParallelPipeline(
            CRIT, 2, engine="scalar", memory_bytes=16_384,
            chunk_items=1_000, seed=3,
        )
        result = pipeline.run(keys, values)
        assert result.report_records is None


class TestLatencyHistograms:
    def test_insert_and_queue_delay_histograms_in_stats(self, traced_result):
        _, result = traced_result
        stats = result.stats
        assert stats["worker_insert_seconds_count"] > 0
        assert stats["pipeline_report_queue_delay_seconds_count"] > 0
        assert stats["worker_insert_seconds_sum"] > 0.0

    def test_percentiles_recoverable_from_aggregate(self, traced_result):
        _, result = traced_result
        summary = percentiles_from_snapshot(
            result.stats, "worker_insert_seconds"
        )
        assert 0.0 < summary["p50"] <= summary["p99"] <= summary["p999"]

    def test_shard_histograms_sum_to_aggregate(self, traced_result):
        _, result = traced_result
        per_shard = [
            s.get("worker_insert_seconds_count", 0.0)
            for s in result.per_shard_stats
        ]
        assert sum(per_shard) == result.stats["worker_insert_seconds_count"]


class TestDetectionUnchanged:
    def test_traced_run_reports_same_keys_as_plain_run(self):
        keys, values = make_stream(n=4_000)
        kwargs = dict(
            engine="scalar", memory_bytes=16_384, chunk_items=1_000, seed=3
        )
        plain = ParallelPipeline(CRIT, 2, **kwargs).run(keys, values)
        traced = ParallelPipeline(
            CRIT, 2, collect_trace=True, collect_provenance=True,
            trace_sample_every=1, **kwargs,
        ).run(keys, values)
        assert traced.reported_keys == plain.reported_keys
        assert traced.per_shard_reports == plain.per_shard_reports
