"""Property: sharded filter == single filter while no bucket overflows.

The sharding rule is bucket-affine (``shard = bucket % num_shards``
with every shard sharing the single filter's geometry and seed), so as
long as the reference single filter never touches its vague part every
report decision is a function of the key's own ``(bucket, fingerprint)``
state — state the owning shard reproduces exactly.  Hypothesis drives
random geometries, criteria and streams; the test keeps only runs in
that no-overflow regime (``vague_inserts == 0``) and demands the exact
same report set from every shard count, on both engines.

Under contention the exact guarantee intentionally degrades to "same
per-shard semantics, less collision noise"; the fixed-seed tests at the
bottom pin the contention behaviour where it *is* exact (one shard, and
batch-vs-scalar sharding agreement).
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.parallel.sharded import ShardRouter, ShardedQuantileFilter

SHARD_COUNTS = (1, 2, 4, 7)


@st.composite
def scenarios(draw):
    # Generous geometry relative to the key universe so that the
    # no-overflow regime (the assume() below) is the common case, not a
    # needle hypothesis has to hunt for.
    num_buckets = draw(st.integers(min_value=32, max_value=128))
    bucket_size = draw(st.integers(min_value=3, max_value=8))
    vague_width = draw(st.sampled_from([64, 256]))
    depth = draw(st.sampled_from([1, 3]))
    seed = draw(st.integers(min_value=0, max_value=1_000))
    criteria = Criteria(
        delta=draw(st.sampled_from([0.5, 0.8, 0.9, 0.95])),
        threshold=draw(st.sampled_from([50.0, 200.0])),
        epsilon=draw(st.sampled_from([0.0, 2.0, 10.0])),
    )
    n = draw(st.integers(min_value=1, max_value=500))
    key_universe = draw(st.integers(min_value=1, max_value=48))
    stream_seed = draw(st.integers(min_value=0, max_value=1_000))
    return (num_buckets, bucket_size, vague_width, depth, seed, criteria,
            n, key_universe, stream_seed)


def _make_stream(n, key_universe, threshold, stream_seed):
    rng = np.random.default_rng(stream_seed)
    keys = rng.integers(0, key_universe, size=n).astype(np.int64)
    values = np.where(
        rng.random(n) < 0.2, 500.0, rng.uniform(0, threshold, n)
    )
    return keys, values


@given(scenario=scenarios())
@settings(max_examples=60, deadline=None)
def test_sharded_equals_single_without_overflow(scenario):
    (num_buckets, bucket_size, vague_width, depth, seed, criteria,
     n, key_universe, stream_seed) = scenario
    keys, values = _make_stream(n, key_universe, criteria.threshold,
                                stream_seed)

    single = QuantileFilter(
        criteria, num_buckets=num_buckets, bucket_size=bucket_size,
        vague_width=vague_width, depth=depth, counter_kind="float",
        seed=seed,
    )
    for key, value in zip(keys.tolist(), values.tolist()):
        single.insert(key, value)
    assume(single.vague_inserts == 0)

    geometry = dict(
        num_buckets=num_buckets, bucket_size=bucket_size,
        vague_width=vague_width, depth=depth, seed=seed,
    )
    for shards in SHARD_COUNTS:
        scalar_sharded = ShardedQuantileFilter(
            criteria, shards, engine="scalar", counter_kind="float",
            **geometry,
        )
        for key, value in zip(keys.tolist(), values.tolist()):
            scalar_sharded.insert(key, value)
        assert scalar_sharded.reported_keys == single.reported_keys, shards
        assert scalar_sharded.report_count == single.report_count, shards

        batch_sharded = ShardedQuantileFilter(
            criteria, shards, engine="batch", **geometry,
        )
        batch_sharded.process(keys, values)
        assert batch_sharded.reported_keys == single.reported_keys, shards
        assert batch_sharded.report_count == single.report_count, shards


@given(scenario=scenarios())
@settings(max_examples=30, deadline=None)
def test_merged_view_matches_single_without_overflow(scenario):
    (num_buckets, bucket_size, vague_width, depth, seed, criteria,
     n, key_universe, stream_seed) = scenario
    keys, values = _make_stream(n, key_universe, criteria.threshold,
                                stream_seed)

    single = QuantileFilter(
        criteria, num_buckets=num_buckets, bucket_size=bucket_size,
        vague_width=vague_width, depth=depth, counter_kind="float",
        seed=seed,
    )
    for key, value in zip(keys.tolist(), values.tolist()):
        single.insert(key, value)
    assume(single.vague_inserts == 0)

    sharded = ShardedQuantileFilter(
        criteria, 4, engine="batch", num_buckets=num_buckets,
        bucket_size=bucket_size, vague_width=vague_width, depth=depth,
        seed=seed,
    )
    sharded.process(keys, values)
    merged = sharded.merged()
    assert merged.items_processed == single.items_processed
    assert merged.reported_keys == single.reported_keys
    # The merged view answers point queries like the single filter.
    for key in sorted(set(keys.tolist()))[:10]:
        assert merged.query(key) == single.query(key)


def test_one_shard_is_exactly_the_single_filter_under_contention():
    """shards=1 routes everything to one full filter — always exact."""
    criteria = Criteria(delta=0.9, threshold=100.0, epsilon=5.0)
    # Tiny geometry + many keys: heavy bucket overflow by construction.
    keys, values = _make_stream(5_000, 400, criteria.threshold, 7)
    single = QuantileFilter(
        criteria, num_buckets=8, bucket_size=2, vague_width=32, depth=3,
        counter_kind="float", seed=11,
    )
    for key, value in zip(keys.tolist(), values.tolist()):
        single.insert(key, value)
    assert single.vague_inserts > 0  # the regime this test is about

    sharded = ShardedQuantileFilter(
        criteria, 1, engine="scalar", counter_kind="float",
        num_buckets=8, bucket_size=2, vague_width=32, depth=3, seed=11,
    )
    for key, value in zip(keys.tolist(), values.tolist()):
        sharded.insert(key, value)
    assert sharded.reported_keys == single.reported_keys
    assert sharded.report_count == single.report_count


def test_batch_and_scalar_sharding_agree_under_contention():
    """The two engines stay interchangeable even when shards overflow."""
    criteria = Criteria(delta=0.9, threshold=100.0, epsilon=5.0)
    keys, values = _make_stream(5_000, 400, criteria.threshold, 13)
    geometry = dict(num_buckets=8, bucket_size=2, vague_width=32,
                    depth=3, seed=5)
    for shards in SHARD_COUNTS:
        scalar = ShardedQuantileFilter(
            criteria, shards, engine="scalar", counter_kind="float",
            **geometry,
        )
        for key, value in zip(keys.tolist(), values.tolist()):
            scalar.insert(key, value)
        batch = ShardedQuantileFilter(
            criteria, shards, engine="batch", **geometry,
        )
        batch.process(keys, values)
        assert batch.reported_keys == scalar.reported_keys, shards
        assert batch.report_count == scalar.report_count, shards


def test_router_is_bucket_affine():
    """Every key in a bucket maps to the same shard, for any count."""
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 1 << 40, size=2_000).astype(np.int64)
    for shards in SHARD_COUNTS:
        router = ShardRouter(shards, num_buckets=64, seed=3)
        bucket_to_shard = {}
        for key in keys.tolist():
            bucket = router.bucket_of(key)
            shard = router.shard_of(key)
            assert shard == bucket % shards
            assert bucket_to_shard.setdefault(bucket, shard) == shard
        # Vectorised routing matches the scalar path element-wise.
        expected = [router.shard_of(key) for key in keys.tolist()]
        assert router.shard_ids_batch(keys).tolist() == expected
