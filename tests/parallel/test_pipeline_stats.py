"""Pipeline telemetry: aggregate == fold of per-shard registries.

The contract under test is the one ``docs/observability.md`` documents:
with ``collect_stats=True`` every shard worker carries its own
:class:`~repro.observability.StatsRegistry`, the master aggregates the
per-shard snapshots (counters sum, ratio gauges average), and the
result of a run exposes both views.  The 50k-item run here is the
acceptance scenario from the issue: aggregate counters must equal the
arithmetic sum of the per-shard registries, exactly.
"""

import numpy as np
import pytest

from repro.core.criteria import Criteria
from repro.observability.instrument import _MEAN_GAUGES, FILTER_METRIC_HELP
from repro.observability.registry import base_name
from repro.parallel.pipeline import ParallelPipeline, PipelineError

CRIT = Criteria(delta=0.9, threshold=120.0, epsilon=5.0)
N_ITEMS = 50_000
NUM_SHARDS = 4


def _trace(n, seed=11):
    rng = np.random.default_rng(seed)
    keys = rng.zipf(1.3, size=n).astype(np.int64) % 5_000
    values = rng.exponential(60.0, size=n)
    return keys, values


@pytest.fixture(scope="module")
def stats_run():
    keys, values = _trace(N_ITEMS)
    pipe = ParallelPipeline(
        CRIT,
        NUM_SHARDS,
        num_buckets=512,
        vague_width=256,
        chunk_items=8_192,
        collect_stats=True,
    )
    with pipe:
        pipe.feed(keys, values)
        result = pipe.finish()
    return result


class TestAggregateEqualsShardSum:
    def test_shard_count_and_presence(self, stats_run):
        assert stats_run.stats is not None
        assert stats_run.per_shard_stats is not None
        assert len(stats_run.per_shard_stats) == NUM_SHARDS

    def test_counters_sum_exactly(self, stats_run):
        agg, shards = stats_run.stats, stats_run.per_shard_stats
        summed = set()
        for sample in shards[0]:
            family = base_name(sample)
            if not family.endswith("_total"):
                continue
            expected = sum(s[sample] for s in shards)
            assert agg[sample] == expected, sample
            summed.add(sample)
        assert "qf_items_total" in summed
        assert 'qf_reports_total{source="candidate"}' in summed

    def test_items_conserved(self, stats_run):
        assert stats_run.stats["qf_items_total"] == float(N_ITEMS)
        assert stats_run.stats["qf_items_total"] == float(stats_run.items)

    def test_mean_gauges_average(self, stats_run):
        agg, shards = stats_run.stats, stats_run.per_shard_stats
        for family in _MEAN_GAUGES & set(map(base_name, shards[0])):
            expected = sum(s[family] for s in shards) / len(shards)
            assert agg[family] == pytest.approx(expected), family

    def test_reports_flow_under_this_criteria(self, stats_run):
        # Guard against the vacuous-pass failure mode: the scenario is
        # tuned so reports actually happen.
        agg = stats_run.stats
        total_reports = (agg['qf_reports_total{source="candidate"}']
                         + agg['qf_reports_total{source="vague"}'])
        assert total_reports >= 1.0
        assert agg["qf_reported_keys"] >= 1.0

    def test_master_metrics_overlay(self, stats_run):
        agg = stats_run.stats
        assert agg["pipeline_items_fed_total"] == float(N_ITEMS)
        assert agg["pipeline_chunks_fed_total"] >= 1.0
        assert agg["pipeline_workers_alive"] == 0.0  # post-finish
        assert agg["pipeline_reported_keys"] >= 1.0

    def test_every_documented_filter_family_appears(self, stats_run):
        families = set(map(base_name, stats_run.stats))
        # Window and thread-engine families only exist for those
        # filter kinds; a process pipeline legitimately lacks them.
        expected = {
            name for name in FILTER_METRIC_HELP
            if not name.startswith(("qf_window", "qf_thread"))
        }
        assert expected <= families


class TestLiveView:
    def test_mid_run_view_is_consistent_cut(self):
        keys, values = _trace(20_000, seed=3)
        pipe = ParallelPipeline(
            CRIT, 2, num_buckets=512, vague_width=256,
            chunk_items=4_096, collect_stats=True,
        )
        with pipe:
            pipe.feed(keys[:10_000], values[:10_000])
            view = pipe.collect_stats_view()
            assert view["qf_items_total"] == 10_000.0
            assert view["pipeline_stats_views_total"] == 1.0
            assert view["pipeline_workers_alive"] == 2.0
            assert pipe.last_stats is view
            pipe.feed(keys[10_000:], values[10_000:])
            result = pipe.finish()
        assert result.stats["qf_items_total"] == 20_000.0
        assert result.stats["pipeline_stats_views_total"] == 1.0

    def test_view_requires_collect_stats(self):
        pipe = ParallelPipeline(CRIT, 2, num_buckets=64, vague_width=64)
        with pytest.raises(PipelineError):
            pipe.collect_stats_view()

    def test_view_requires_started_pipeline(self):
        pipe = ParallelPipeline(CRIT, 2, num_buckets=64, vague_width=64,
                                collect_stats=True)
        with pytest.raises(PipelineError):
            pipe.collect_stats_view()


class TestStatsOff:
    def test_default_run_carries_no_stats(self):
        keys, values = _trace(5_000, seed=5)
        pipe = ParallelPipeline(CRIT, 2, num_buckets=256, vague_width=128,
                                chunk_items=2_048)
        with pipe:
            pipe.feed(keys, values)
            result = pipe.finish()
        assert result.stats is None
        assert result.per_shard_stats is None
