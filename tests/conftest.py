"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random

import numpy as np
import pytest
from hypothesis import settings

from repro.core.criteria import Criteria

# Pinned profile for CI: derandomized (the same example sequence on
# every run and every Python version) with a trimmed example budget.
# Locally the default profile keeps hypothesis exploring fresh seeds.
settings.register_profile(
    "ci", derandomize=True, deadline=None, max_examples=30,
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def default_criteria() -> Criteria:
    """The paper's default evaluation criteria with a round threshold."""
    return Criteria(delta=0.95, threshold=200.0, epsilon=30.0)


@pytest.fixture
def loose_criteria() -> Criteria:
    """Low-epsilon criteria that trigger quickly (handy in unit tests)."""
    return Criteria(delta=0.9, threshold=100.0, epsilon=2.0)


@pytest.fixture
def py_random() -> random.Random:
    """A seeded stdlib RNG."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def np_random() -> np.random.Generator:
    """A seeded numpy RNG."""
    return np.random.default_rng(0xC0FFEE)


def make_two_class_stream(
    rng: random.Random,
    n_items: int = 20_000,
    n_keys: int = 200,
    n_hot: int = 10,
    hot_value: float = 500.0,
    cold_max: float = 150.0,
):
    """A stream where keys < ``n_hot`` always exceed any mid threshold.

    The canonical unit-test workload: keys 0..n_hot-1 are unambiguously
    outstanding, the rest unambiguously not.
    """
    items = []
    for _ in range(n_items):
        key = rng.randrange(n_keys)
        value = hot_value if key < n_hot else rng.uniform(0.0, cold_max)
        items.append((key, value))
    return items
