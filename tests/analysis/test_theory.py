"""Tests for repro.analysis.theory — Section IV checked numerically."""

import numpy as np
import pytest

from repro.analysis.theory import (
    chebyshev_failure_probability,
    csketch_depth_for,
    csketch_width_for,
    l2_norm,
    residual_l2_after_topk,
    theorem1_error_bound,
    theorem2_reduction_factor,
)
from repro.common.errors import ParameterError
from repro.common.hashing import canonical_key
from repro.sketches.count_sketch import CountSketch


class TestSizingFormulas:
    def test_width_formula(self):
        assert csketch_width_for(0.1) == 400
        assert csketch_width_for(1.0) == 4

    def test_depth_formula(self):
        assert csketch_depth_for(0.01) == 37  # ceil(8 ln 100)

    def test_invalid(self):
        with pytest.raises(ParameterError):
            csketch_width_for(0.0)
        with pytest.raises(ParameterError):
            csketch_depth_for(1.5)


class TestL2:
    def test_l2_norm(self):
        assert l2_norm([3.0, 4.0]) == pytest.approx(5.0)
        assert l2_norm([]) == 0.0

    def test_residual_after_topk(self):
        qweights = [10.0, -8.0, 3.0, 1.0]
        assert residual_l2_after_topk(qweights, 2) == pytest.approx(
            l2_norm([3.0, 1.0])
        )
        assert residual_l2_after_topk(qweights, 0) == pytest.approx(
            l2_norm(qweights)
        )

    def test_theorem1_bound_scaling(self):
        assert theorem1_error_bound(100.0, 100) == pytest.approx(10.0)

    def test_chebyshev(self):
        assert chebyshev_failure_probability(0.5, 100) == pytest.approx(0.04)
        assert chebyshev_failure_probability(0.01, 1) == 1.0


class TestTheorem1Empirical:
    def test_error_within_bound(self):
        """Observed estimate errors stay inside the eps*L2 envelope at
        well above the promised probability."""
        qweights = {key: (50.0 if key < 5 else 1.0) for key in range(200)}
        l2 = l2_norm(qweights.values())
        width = 256
        eps = 2.0 / np.sqrt(width)  # per Chebyshev: failure prob <= 1/4
        failures = 0
        trials = 0
        for seed in range(20):
            sketch = CountSketch(depth=1, width=width, seed=seed)
            for key, qw in qweights.items():
                sketch.update(canonical_key(key), qw)
            for key, qw in qweights.items():
                trials += 1
                if abs(sketch.estimate(canonical_key(key)) - qw) >= eps * l2:
                    failures += 1
        assert failures / trials <= 0.30

    def test_unbiased_across_seeds(self):
        target_qw = 25.0
        estimates = []
        for seed in range(80):
            sketch = CountSketch(depth=1, width=8, seed=seed)
            for key in range(40):
                sketch.update(canonical_key(key), 3.0)
            sketch.update(canonical_key(777), target_qw)
            estimates.append(sketch.estimate(canonical_key(777)))
        assert abs(np.mean(estimates) - target_qw) < 2.0


class TestTheorem2:
    def test_reduction_factor_formula(self):
        assert theorem2_reduction_factor(1.5, 100) == pytest.approx(0.01)
        assert theorem2_reduction_factor(1.0, 16) == pytest.approx(0.25)

    def test_reduction_bounds_empirical_zipf(self):
        """Theorem 2's k^-(alpha-0.5) upper-bounds the actual residual
        L2 ratio for Zipf-distributed Qweights."""
        alpha = 1.2
        n = 5_000
        qweights = [(1.0 / (rank ** alpha)) for rank in range(1, n + 1)]
        total = l2_norm(qweights)
        for k in (10, 100, 1_000):
            residual = residual_l2_after_topk(qweights, k)
            assert residual / total <= theorem2_reduction_factor(alpha, k) * 1.05

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            theorem2_reduction_factor(0.4, 10)
        with pytest.raises(ParameterError):
            theorem2_reduction_factor(1.0, 0)


class TestTheorem3Empirical:
    def test_candidate_part_shrinks_vague_error(self):
        """With the candidate part absorbing the heavy Qweights, the
        vague part's residual mass — and thus its estimate error for a
        probe key — drops (Theorem 3's operational content)."""
        from repro.core.criteria import Criteria
        from repro.core.quantile_filter import QuantileFilter

        crit = Criteria(delta=0.95, threshold=100.0, epsilon=1e9)
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 100, size=20_000)
        values = np.where(keys < 10, 500.0, 1.0)

        # Small candidate (starved) vs healthy candidate, same vague width.
        starved = QuantileFilter(crit, num_buckets=1, bucket_size=1,
                                 vague_width=64, seed=1)
        healthy = QuantileFilter(crit, num_buckets=32, bucket_size=6,
                                 vague_width=64, seed=1)
        for key, value in zip(keys.tolist(), values.tolist()):
            starved.insert(key, value)
            healthy.insert(key, value)

        # Probe error on cold keys (true Qweight = -frequency).
        freq = np.bincount(keys, minlength=100)

        def mean_error(qf):
            errors = []
            for key in range(10, 100):
                true_qw = -float(freq[key])
                errors.append(abs(qf.query(key) - true_qw))
            return float(np.mean(errors))

        assert mean_error(healthy) <= mean_error(starved)
