"""Tests for repro.analysis.sizing."""

import random

import pytest

from repro.analysis.sizing import SizingRecommendation, recommend
from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.detection.ground_truth import compute_ground_truth

CRIT = Criteria(delta=0.95, threshold=200.0, epsilon=10.0)


class TestRecommend:
    def test_candidate_fits_outstanding_population(self):
        rec = recommend(expected_keys=10_000, expected_outstanding=50,
                        criteria=CRIT)
        assert rec.num_buckets * rec.bucket_size >= 4 * 50

    def test_depth_practical(self):
        rec = recommend(expected_keys=10_000, expected_outstanding=50,
                        criteria=CRIT)
        assert rec.depth >= 3
        assert rec.depth % 2 == 1

    def test_width_grows_with_keys(self):
        small = recommend(expected_keys=1_000, expected_outstanding=10,
                          criteria=CRIT)
        big = recommend(expected_keys=1_000_000, expected_outstanding=10,
                        criteria=CRIT)
        assert big.vague_width > small.vague_width

    def test_width_shrinks_with_looser_epsilon(self):
        tight = recommend(expected_keys=100_000, expected_outstanding=10,
                          criteria=Criteria(delta=0.95, threshold=200.0,
                                            epsilon=1.0))
        loose = recommend(expected_keys=100_000, expected_outstanding=10,
                          criteria=Criteria(delta=0.95, threshold=200.0,
                                            epsilon=100.0))
        assert loose.vague_width <= tight.vague_width

    def test_total_bytes_consistent(self):
        rec = recommend(expected_keys=10_000, expected_outstanding=50,
                        criteria=CRIT)
        assert rec.total_bytes == rec.candidate_bytes + rec.vague_bytes
        assert rec.total_bytes > 0

    def test_kwargs_construct_filter(self):
        rec = recommend(expected_keys=5_000, expected_outstanding=20,
                        criteria=CRIT)
        qf = QuantileFilter(CRIT, **rec.filter_kwargs())
        assert qf.candidate.num_buckets == rec.num_buckets
        assert qf.vague.width == rec.vague_width

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            recommend(0, 10, CRIT)
        with pytest.raises(ParameterError):
            recommend(100, 0, CRIT)
        with pytest.raises(ParameterError):
            recommend(100, 10, CRIT, failure_probability=1.5)
        with pytest.raises(ParameterError):
            recommend(100, 10, CRIT, headroom=0.5)

    def test_recommendation_is_frozen(self):
        rec = recommend(expected_keys=100, expected_outstanding=5,
                        criteria=CRIT)
        assert isinstance(rec, SizingRecommendation)
        with pytest.raises(AttributeError):
            rec.depth = 99


class TestRecommendationQuality:
    def test_recommended_config_detects_accurately(self):
        """End-to-end: size for a workload, run it, demand F1 ~ 1."""
        rng = random.Random(4)
        n_keys, n_hot = 2_000, 25
        items = []
        for _ in range(40_000):
            key = rng.randrange(n_keys)
            value = 500.0 if key < n_hot else rng.uniform(0, 150)
            items.append((key, value))
        rec = recommend(expected_keys=n_keys, expected_outstanding=n_hot,
                        criteria=CRIT)
        qf = QuantileFilter(CRIT, seed=1, **rec.filter_kwargs())
        for key, value in items:
            qf.insert(key, value)
        truth = compute_ground_truth(items, CRIT)
        assert truth  # the workload produces outstanding keys
        missed = truth - qf.reported_keys
        spurious = qf.reported_keys - truth
        assert len(missed) <= max(1, len(truth) // 20)
        assert len(spurious) <= max(1, len(truth) // 20)

    def test_budget_far_below_exact_tracking(self):
        # The Chebyshev-based sizing is conservative (the paper's
        # empirical widths are far smaller), but even so it must come in
        # well under exact per-key tracking.
        rec = recommend(expected_keys=1_000_000, expected_outstanding=100,
                        criteria=CRIT)
        exact_cost = 16 * 1_000_000  # oracle: 16 B per distinct key
        assert rec.total_bytes < exact_cost / 10
