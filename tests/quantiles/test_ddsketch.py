"""Tests for repro.quantiles.ddsketch."""

import random

import pytest

from repro.common.errors import ParameterError
from repro.quantiles.base import NEG_INF
from repro.quantiles.ddsketch import DDSketch


class TestDDSketch:
    def test_empty(self):
        dd = DDSketch(alpha=0.01)
        assert dd.quantile(0.5) == NEG_INF

    def test_relative_error_guarantee(self):
        """Every reported quantile within (1 +/- alpha) of the truth."""
        rng = random.Random(1)
        alpha = 0.02
        dd = DDSketch(alpha=alpha)
        values = [rng.lognormvariate(3, 1.5) for _ in range(20_000)]
        for value in values:
            dd.insert(value)
        ordered = sorted(values)
        for delta in (0.1, 0.5, 0.9, 0.95, 0.99):
            true = ordered[int(delta * len(ordered))]
            estimate = dd.quantile(delta)
            assert abs(estimate - true) <= alpha * true * 1.5  # slack for ties

    def test_zero_values(self):
        dd = DDSketch(alpha=0.01)
        for _ in range(10):
            dd.insert(0.0)
        assert dd.quantile(0.5) == 0.0

    def test_negative_values(self):
        dd = DDSketch(alpha=0.01)
        for value in (-10.0, -5.0, -1.0, 1.0, 5.0):
            dd.insert(value)
        median = dd.quantile(0.5)
        assert median == pytest.approx(-1.0, rel=0.05)

    def test_mixed_sign_ordering(self):
        dd = DDSketch(alpha=0.01)
        for value in (-100.0, -10.0, 0.0, 10.0, 100.0):
            dd.insert(value)
        q_low = dd.quantile(0.1)
        q_high = dd.quantile(0.9)
        assert q_low < 0 < q_high

    def test_bucket_collapse_bounds_memory(self):
        rng = random.Random(2)
        dd = DDSketch(alpha=0.01, max_buckets=64)
        for _ in range(50_000):
            dd.insert(rng.lognormvariate(0, 4))
        assert dd.bucket_count <= 66

    def test_collapse_preserves_upper_quantiles(self):
        """Collapsing eats the lowest buckets; the tail stays accurate."""
        rng = random.Random(3)
        alpha = 0.02
        dd = DDSketch(alpha=alpha, max_buckets=128)
        values = [rng.lognormvariate(2, 2) for _ in range(30_000)]
        for value in values:
            dd.insert(value)
        ordered = sorted(values)
        true_p99 = ordered[int(0.99 * len(ordered))]
        assert dd.quantile(0.99) == pytest.approx(true_p99, rel=3 * alpha)

    def test_epsilon_argument(self):
        dd = DDSketch(alpha=0.01)
        for i in range(1, 101):
            dd.insert(float(i))
        assert dd.quantile(0.9, epsilon=20) <= dd.quantile(0.9)

    def test_clear(self):
        dd = DDSketch()
        dd.insert(5.0)
        dd.clear()
        assert dd.count == 0
        assert dd.quantile(0.5) == NEG_INF

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            DDSketch(alpha=0.0)
        with pytest.raises(ParameterError):
            DDSketch(alpha=1.0)
        with pytest.raises(ParameterError):
            DDSketch(max_buckets=1)
