"""Tests for repro.quantiles.gk."""

import random

import pytest

from repro.common.errors import ParameterError
from repro.quantiles.base import NEG_INF
from repro.quantiles.gk import GKSummary


class TestGKSummary:
    def test_empty(self):
        gk = GKSummary(eps=0.01)
        assert gk.quantile(0.5) == NEG_INF
        assert gk.count == 0

    def test_single_value(self):
        gk = GKSummary(eps=0.01)
        gk.insert(42.0)
        assert gk.quantile(0.5) == 42.0

    def test_rank_error_within_bound_uniform(self):
        rng = random.Random(1)
        eps = 0.02
        gk = GKSummary(eps=eps)
        values = [rng.uniform(0, 1000) for _ in range(5_000)]
        for value in values:
            gk.insert(value)
        ordered = sorted(values)
        for delta in (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99):
            estimate = gk.quantile(delta)
            # Convert the value estimate back to a rank and check the
            # deviation against the eps*n guarantee (with slack for the
            # discrete rank conversion).
            import bisect

            est_rank = bisect.bisect_right(ordered, estimate)
            target_rank = int(delta * len(ordered)) + 1
            assert abs(est_rank - target_rank) <= 2 * eps * len(ordered) + 2

    def test_rank_error_sorted_input(self):
        eps = 0.02
        gk = GKSummary(eps=eps)
        n = 3_000
        for i in range(n):
            gk.insert(float(i))
        for delta in (0.2, 0.5, 0.9):
            estimate = gk.quantile(delta)
            assert abs(estimate - delta * n) <= 2 * eps * n + 2

    def test_rank_error_reversed_input(self):
        eps = 0.02
        gk = GKSummary(eps=eps)
        n = 3_000
        for i in reversed(range(n)):
            gk.insert(float(i))
        for delta in (0.2, 0.5, 0.9):
            estimate = gk.quantile(delta)
            assert abs(estimate - delta * n) <= 2 * eps * n + 2

    def test_summary_sublinear(self):
        gk = GKSummary(eps=0.05)
        rng = random.Random(2)
        for _ in range(20_000):
            gk.insert(rng.uniform(0, 1))
        # 1/(2*0.05) = 10 tuples per band; allow generous headroom but
        # require far fewer tuples than inputs.
        assert gk.tuples < 2_000

    def test_epsilon_parameter_in_quantile(self):
        gk = GKSummary(eps=0.001)
        for i in range(100):
            gk.insert(float(i))
        base = gk.quantile(0.9)
        shifted = gk.quantile(0.9, epsilon=10)
        assert shifted <= base

    def test_too_few_values_for_epsilon(self):
        gk = GKSummary()
        gk.insert(5.0)
        assert gk.quantile(0.95, epsilon=30) == NEG_INF

    def test_duplicates(self):
        gk = GKSummary(eps=0.01)
        for _ in range(1_000):
            gk.insert(7.0)
        assert gk.quantile(0.5) == 7.0

    def test_clear(self):
        gk = GKSummary()
        gk.insert(1.0)
        gk.clear()
        assert gk.count == 0
        assert gk.quantile(0.5) == NEG_INF

    def test_nbytes_tracks_tuples(self):
        gk = GKSummary(eps=0.1)
        for i in range(100):
            gk.insert(float(i))
        assert gk.nbytes == 16 * gk.tuples

    def test_invalid_eps(self):
        with pytest.raises(ParameterError):
            GKSummary(eps=0.0)
        with pytest.raises(ParameterError):
            GKSummary(eps=1.0)
