"""Tests for repro.quantiles.tdigest."""

import random

import pytest

from repro.common.errors import ParameterError
from repro.quantiles.base import NEG_INF
from repro.quantiles.tdigest import TDigest


class TestTDigest:
    def test_empty(self):
        digest = TDigest()
        assert digest.quantile(0.5) == NEG_INF
        assert digest.count == 0

    def test_single_value(self):
        digest = TDigest()
        digest.insert(13.0)
        assert digest.quantile(0.5) == pytest.approx(13.0)

    def test_uniform_median(self):
        rng = random.Random(1)
        digest = TDigest(compression=100)
        for _ in range(20_000):
            digest.insert(rng.uniform(0, 100))
        assert digest.quantile(0.5) == pytest.approx(50.0, abs=3.0)

    def test_tail_quantiles_tight(self):
        """The k1 scale function keeps tail clusters tiny, so tail
        quantiles are relatively accurate — t-digest's selling point."""
        rng = random.Random(2)
        digest = TDigest(compression=200)
        values = [rng.uniform(0, 1000) for _ in range(30_000)]
        for value in values:
            digest.insert(value)
        ordered = sorted(values)
        for delta in (0.99, 0.999):
            true = ordered[int(delta * len(ordered))]
            assert digest.quantile(delta) == pytest.approx(true, rel=0.02)

    def test_centroid_count_bounded(self):
        rng = random.Random(3)
        digest = TDigest(compression=100)
        for _ in range(50_000):
            digest.insert(rng.gauss(0, 1))
        assert digest.centroid_count < 300

    def test_monotone_quantiles(self):
        rng = random.Random(4)
        digest = TDigest(compression=100)
        for _ in range(5_000):
            digest.insert(rng.uniform(0, 10))
        quantiles = [digest.quantile(d) for d in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert quantiles == sorted(quantiles)

    def test_skewed_distribution(self):
        rng = random.Random(5)
        digest = TDigest(compression=200)
        values = [rng.lognormvariate(0, 2) for _ in range(20_000)]
        for value in values:
            digest.insert(value)
        ordered = sorted(values)
        true_median = ordered[10_000]
        assert digest.quantile(0.5) == pytest.approx(true_median, rel=0.1)

    def test_clear(self):
        digest = TDigest()
        digest.insert(1.0)
        digest.clear()
        assert digest.count == 0
        assert digest.quantile(0.5) == NEG_INF

    def test_nbytes_bounded(self):
        digest = TDigest(compression=100, buffer_size=100)
        for i in range(10_000):
            digest.insert(float(i))
        assert digest.nbytes < 16 * 300 + 8 * 100

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            TDigest(compression=5)
        with pytest.raises(ParameterError):
            TDigest(buffer_size=0)
