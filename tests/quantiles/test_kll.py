"""Tests for repro.quantiles.kll."""

import random

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.quantiles.base import NEG_INF
from repro.quantiles.kll import KLLSketch


class TestKLLSketch:
    def test_empty(self):
        kll = KLLSketch(k=50)
        assert kll.quantile(0.5) == NEG_INF
        assert kll.count == 0

    def test_small_input_exact(self):
        kll = KLLSketch(k=200)
        values = [5.0, 1.0, 9.0]
        for value in values:
            kll.insert(value)
        # Below the first compaction everything is stored verbatim.
        assert kll.quantile(0.5) == 5.0

    def test_rank_error_uniform(self):
        rng = random.Random(1)
        kll = KLLSketch(k=200, seed=1)
        n = 20_000
        values = [rng.uniform(0, 1) for _ in range(n)]
        for value in values:
            kll.insert(value)
        ordered = sorted(values)
        import bisect

        for delta in (0.1, 0.5, 0.9, 0.99):
            estimate = kll.quantile(delta)
            est_rank = bisect.bisect_right(ordered, estimate)
            # O(n/k) error with constant ~ a few; allow 5 * n / k.
            assert abs(est_rank - delta * n) < 5 * n / 200

    def test_space_sublinear(self):
        kll = KLLSketch(k=100, seed=2)
        for i in range(50_000):
            kll.insert(float(i))
        assert kll.stored_items < 1_500
        assert kll.count == 50_000

    def test_rank_estimate_unbiased_across_seeds(self):
        n = 4_000
        target_value = 2_000.0
        ranks = []
        for seed in range(25):
            kll = KLLSketch(k=32, seed=seed)
            for i in range(n):
                kll.insert(float(i))
            ranks.append(kll.rank(target_value))
        assert abs(np.mean(ranks) - 2_001) < n * 0.05

    def test_levels_grow_logarithmically(self):
        kll = KLLSketch(k=64, seed=3)
        for i in range(10_000):
            kll.insert(float(i))
        assert kll.levels <= 16

    def test_adversarial_sorted_input(self):
        kll = KLLSketch(k=200, seed=4)
        n = 10_000
        for i in range(n):
            kll.insert(float(i))
        estimate = kll.quantile(0.5)
        assert abs(estimate - n / 2) < 5 * n / 200

    def test_epsilon_argument(self):
        kll = KLLSketch(k=200, seed=5)
        for i in range(1_000):
            kll.insert(float(i))
        assert kll.quantile(0.9, epsilon=100) <= kll.quantile(0.9)

    def test_clear(self):
        kll = KLLSketch(k=50)
        kll.insert(1.0)
        kll.clear()
        assert kll.count == 0
        assert kll.stored_items == 0

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            KLLSketch(k=1)
