"""Tests for merging the single-key quantile estimators."""

import random

import pytest

from repro.common.errors import ParameterError
from repro.quantiles.ddsketch import DDSketch
from repro.quantiles.exact import ExactQuantile
from repro.quantiles.kll import KLLSketch
from repro.quantiles.tdigest import TDigest


def split_streams(seed: int, n: int = 6_000):
    """Two value streams and their union's exact oracle."""
    rng = random.Random(seed)
    a = [rng.lognormvariate(2, 1) for _ in range(n)]
    b = [rng.lognormvariate(3, 0.5) for _ in range(n // 2)]
    exact = ExactQuantile()
    for value in a + b:
        exact.insert(value)
    return a, b, exact


class TestKLLMerge:
    def test_merged_matches_union(self):
        a, b, exact = split_streams(seed=1)
        left = KLLSketch(k=256, seed=1)
        right = KLLSketch(k=256, seed=2)
        for value in a:
            left.insert(value)
        for value in b:
            right.insert(value)
        left.merge(right)
        assert left.count == len(a) + len(b)
        import bisect

        ordered = exact.values()
        for delta in (0.25, 0.5, 0.9, 0.95):
            estimate = left.quantile(delta)
            rank = bisect.bisect_right(ordered, estimate)
            assert abs(rank - delta * len(ordered)) < 0.05 * len(ordered)

    def test_merge_into_empty(self):
        left = KLLSketch(k=64, seed=1)
        right = KLLSketch(k=64, seed=2)
        for i in range(500):
            right.insert(float(i))
        left.merge(right)
        assert left.count == 500
        assert abs(left.quantile(0.5) - 250) < 40

    def test_space_still_bounded_after_merges(self):
        total = KLLSketch(k=64, seed=1)
        rng = random.Random(3)
        for shard in range(10):
            part = KLLSketch(k=64, seed=shard + 10)
            for _ in range(2_000):
                part.insert(rng.random())
            total.merge(part)
        assert total.count == 20_000
        assert total.stored_items < 1_500


class TestDDSketchMerge:
    def test_merged_matches_union(self):
        a, b, exact = split_streams(seed=4)
        left = DDSketch(alpha=0.02)
        right = DDSketch(alpha=0.02)
        for value in a:
            left.insert(value)
        for value in b:
            right.insert(value)
        left.merge(right)
        assert left.count == len(a) + len(b)
        for delta in (0.5, 0.95):
            true = exact.quantile(delta)
            assert left.quantile(delta) == pytest.approx(true, rel=0.05)

    def test_alpha_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            DDSketch(alpha=0.01).merge(DDSketch(alpha=0.02))

    def test_collapse_floor_respected(self):
        left = DDSketch(alpha=0.05, max_buckets=8)
        right = DDSketch(alpha=0.05, max_buckets=8)
        rng = random.Random(5)
        for _ in range(5_000):
            left.insert(rng.lognormvariate(0, 4))
            right.insert(rng.lognormvariate(0, 4))
        left.merge(right)
        assert len(left._pos) <= 8
        assert left.count == 10_000

    def test_zero_and_negative_counts_merge(self):
        left = DDSketch()
        right = DDSketch()
        left.insert(0.0)
        right.insert(0.0)
        right.insert(-5.0)
        left.merge(right)
        assert left.count == 3
        assert left.quantile(0.0) == pytest.approx(-5.0, rel=0.05)


class TestTDigestMerge:
    def test_merged_matches_union(self):
        a, b, exact = split_streams(seed=6)
        left = TDigest(compression=200)
        right = TDigest(compression=200)
        for value in a:
            left.insert(value)
        for value in b:
            right.insert(value)
        left.merge(right)
        assert left.count == len(a) + len(b)
        for delta in (0.5, 0.95):
            true = exact.quantile(delta)
            assert left.quantile(delta) == pytest.approx(true, rel=0.1)

    def test_centroid_count_bounded_after_merges(self):
        total = TDigest(compression=100)
        rng = random.Random(7)
        for shard in range(8):
            part = TDigest(compression=100)
            for _ in range(3_000):
                part.insert(rng.gauss(0, 1))
            total.merge(part)
        assert total.count == 24_000
        assert total.centroid_count < 300

    def test_compression_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            TDigest(compression=100).merge(TDigest(compression=200))

    def test_merge_with_empty(self):
        left = TDigest(compression=100)
        right = TDigest(compression=100)
        for i in range(100):
            left.insert(float(i))
        left.merge(right)
        assert left.count == 100
        assert left.quantile(0.5) == pytest.approx(50.0, abs=5.0)
