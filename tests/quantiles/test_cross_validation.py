"""Cross-validation: every approximate estimator vs the exact oracle.

One parametrised suite that feeds identical streams to each estimator
and to :class:`~repro.quantiles.exact.ExactQuantile`, asserting the
approximations stay within their documented error envelopes across
distributions and quantiles.
"""

import random

import pytest

from repro.quantiles.ddsketch import DDSketch
from repro.quantiles.exact import ExactQuantile
from repro.quantiles.gk import GKSummary
from repro.quantiles.kll import KLLSketch
from repro.quantiles.tdigest import TDigest

N = 8_000

#: (factory, rank-error budget as a fraction of n) for the estimators
#: with rank-type guarantees.  DDSketch guarantees *value*-relative
#: error instead (a 1 % value error can span many ranks in a dense
#: cluster), so it gets its own value-relative check below.
ESTIMATORS = [
    (lambda: GKSummary(eps=0.01), 0.03),
    (lambda: KLLSketch(k=256, seed=7), 0.03),
    (lambda: TDigest(compression=200), 0.03),
]

DISTRIBUTIONS = {
    "uniform": lambda rng: rng.uniform(1, 1000),
    "lognormal": lambda rng: rng.lognormvariate(2, 1),
    "exponential": lambda rng: rng.expovariate(0.01) + 0.001,
    "bimodal": lambda rng: rng.gauss(100, 5) if rng.random() < 0.5 else rng.gauss(500, 20),
}


@pytest.mark.parametrize("dist_name", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize(
    "factory,budget", ESTIMATORS, ids=["gk", "kll", "tdigest"]
)
def test_estimator_tracks_exact(dist_name, factory, budget):
    rng = random.Random(hash(dist_name) & 0xFFFF)
    draw = DISTRIBUTIONS[dist_name]
    estimator = factory()
    exact = ExactQuantile()
    for _ in range(N):
        value = abs(draw(rng)) + 1e-6  # keep strictly positive for DDSketch
        estimator.insert(value)
        exact.insert(value)

    ordered = exact.values()
    import bisect

    for delta in (0.25, 0.5, 0.9, 0.95):
        estimate = estimator.quantile(delta)
        est_rank = bisect.bisect_right(ordered, estimate)
        target_rank = int(delta * N)
        assert abs(est_rank - target_rank) <= budget * N, (
            f"{dist_name}/{type(estimator).__name__} at delta={delta}: "
            f"rank {est_rank} vs target {target_rank}"
        )


@pytest.mark.parametrize("dist_name", sorted(DISTRIBUTIONS))
def test_ddsketch_tracks_exact_by_value(dist_name):
    alpha = 0.01
    rng = random.Random(hash(dist_name) & 0xFFFF)
    draw = DISTRIBUTIONS[dist_name]
    dd = DDSketch(alpha=alpha)
    exact = ExactQuantile()
    for _ in range(N):
        value = abs(draw(rng)) + 1e-6
        dd.insert(value)
        exact.insert(value)
    for delta in (0.25, 0.5, 0.9, 0.95):
        true = exact.quantile(delta)
        estimate = dd.quantile(delta)
        # Relative value error within alpha (slack x2 for tie runs that
        # straddle a bucket edge).
        assert abs(estimate - true) <= 2 * alpha * true + 1e-9, (
            f"{dist_name} at delta={delta}: {estimate} vs {true}"
        )


ALL_FACTORIES = [e[0] for e in ESTIMATORS] + [lambda: DDSketch(alpha=0.01)]


@pytest.mark.parametrize(
    "factory", ALL_FACTORIES, ids=["gk", "kll", "tdigest", "ddsketch"]
)
def test_estimators_use_sublinear_space(factory):
    rng = random.Random(99)
    estimator = factory()
    for _ in range(N):
        estimator.insert(rng.uniform(1, 100))
    exact_bytes = 8 * N
    assert estimator.nbytes < exact_bytes / 4


@pytest.mark.parametrize(
    "factory", ALL_FACTORIES, ids=["gk", "kll", "tdigest", "ddsketch"]
)
def test_estimators_count_matches(factory):
    estimator = factory()
    for i in range(123):
        estimator.insert(float(i + 1))
    assert estimator.count == 123
