"""Tests for repro.quantiles.base (the paper's rank conventions)."""

import pytest

from repro.quantiles.base import NEG_INF, paper_quantile_index


class TestPaperQuantileIndex:
    def test_empty_set(self):
        assert paper_quantile_index(0, 0.95) is None

    def test_definition2_floor(self):
        # n=3, delta=0.5 -> index floor(1.5) = 1 (the paper's Figure 1:
        # second-highest of {1, 5, 9} when counting medians).
        assert paper_quantile_index(3, 0.5) == 1

    def test_epsilon_shifts_down(self):
        # Paper's noise example: n=8, delta=0.8 -> index 6 (0-based);
        # epsilon=1 moves it to index 5 (the 6th lowest value).
        assert paper_quantile_index(8, 0.8) == 6
        assert paper_quantile_index(8, 0.8, epsilon=1) == 5

    def test_negative_index_is_none(self):
        # Definition 3: index < 0 means the quantile is -inf.
        assert paper_quantile_index(5, 0.5, epsilon=10) is None

    def test_single_item_epsilon_zero(self):
        assert paper_quantile_index(1, 0.95) == 0

    def test_single_item_epsilon_one(self):
        assert paper_quantile_index(1, 0.95, epsilon=1) is None

    def test_index_clamped_below_n(self):
        assert paper_quantile_index(4, 0.999999) <= 3

    def test_neg_inf_constant(self):
        assert NEG_INF == float("-inf")
