"""Tests for repro.quantiles.exact."""

import random

from repro.quantiles.base import NEG_INF
from repro.quantiles.exact import ExactQuantile


class TestExactQuantile:
    def test_empty(self):
        exact = ExactQuantile()
        assert exact.quantile(0.5) == NEG_INF
        assert exact.count == 0
        assert exact.is_empty()

    def test_paper_figure1_example(self):
        """Figure 1: values {1, 5, 9}, delta=0.5 -> quantile 5."""
        exact = ExactQuantile()
        for value in (1, 5, 9):
            exact.insert(value)
        assert exact.quantile(0.5) == 5

    def test_paper_noise_example_neighborhood_a(self):
        """Sec. II-A worked example: A's (1, 0.8)-quantile is 72 dB."""
        exact = ExactQuantile()
        for value in (65, 67, 72, 69, 74, 66, 68, 75):
            exact.insert(value)
        assert exact.quantile(0.8) == 74
        assert exact.quantile(0.8, epsilon=1) == 72

    def test_paper_noise_example_neighborhood_b(self):
        exact = ExactQuantile()
        for value in (60, 62, 64, 61, 63, 75, 80, 62):
            exact.insert(value)
        assert exact.quantile(0.8, epsilon=1) == 64

    def test_paper_noise_example_neighborhood_c(self):
        # The paper's prose says the 6th-lowest is 57, but the sorted
        # multiset is [55, 55, 56, 57, 57, 58, 59, 76] whose 6th-lowest
        # (their 1-based convention) is 58 — a slip in the paper's
        # example.  Both values are below T = 70, so the example's
        # conclusion (C is not reported) is unaffected.
        exact = ExactQuantile()
        for value in (55, 57, 59, 58, 76, 57, 56, 55):
            exact.insert(value)
        assert exact.quantile(0.8, epsilon=1) == 58

    def test_matches_sorted_indexing(self):
        rng = random.Random(1)
        values = [rng.uniform(0, 100) for _ in range(500)]
        exact = ExactQuantile()
        for value in values:
            exact.insert(value)
        ordered = sorted(values)
        for delta in (0.1, 0.5, 0.9, 0.95, 0.99):
            assert exact.quantile(delta) == ordered[int(delta * 500)]

    def test_rank(self):
        exact = ExactQuantile()
        for value in (1.0, 2.0, 2.0, 3.0):
            exact.insert(value)
        assert exact.rank(0.5) == 0
        assert exact.rank(2.0) == 3
        assert exact.rank(5.0) == 4

    def test_clear(self):
        exact = ExactQuantile()
        exact.insert(1.0)
        exact.clear()
        assert exact.count == 0
        assert exact.quantile(0.5) == NEG_INF

    def test_nbytes_linear(self):
        exact = ExactQuantile()
        for i in range(10):
            exact.insert(float(i))
        assert exact.nbytes == 80

    def test_values_copy(self):
        exact = ExactQuantile()
        exact.insert(3.0)
        snapshot = exact.values()
        snapshot.append(99.0)
        assert exact.count == 1
