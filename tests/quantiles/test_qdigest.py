"""Tests for repro.quantiles.qdigest."""

import random

import pytest

from repro.common.errors import ParameterError
from repro.quantiles.base import NEG_INF
from repro.quantiles.exact import ExactQuantile
from repro.quantiles.qdigest import QDigest


class TestQDigest:
    def test_empty(self):
        qd = QDigest(k=32)
        assert qd.quantile(0.5) == NEG_INF
        assert qd.count == 0

    def test_single_value(self):
        qd = QDigest(k=32, log_universe=10)
        qd.insert(137.0)
        assert qd.quantile(0.5) == pytest.approx(137.0, abs=1.0)

    def test_rank_error_within_guarantee(self):
        rng = random.Random(1)
        k, log_u = 128, 12
        qd = QDigest(k=k, log_universe=log_u)
        exact = ExactQuantile()
        n = 20_000
        for _ in range(n):
            value = float(rng.randrange(0, 1 << log_u))
            qd.insert(value)
            exact.insert(value)
        qd.compress()
        ordered = exact.values()
        import bisect

        bound = n * log_u / k
        for delta in (0.25, 0.5, 0.9, 0.99):
            estimate = qd.quantile(delta)
            est_rank = bisect.bisect_right(ordered, estimate)
            assert abs(est_rank - delta * n) <= bound + n * 0.01, delta

    def test_space_bounded(self):
        rng = random.Random(2)
        qd = QDigest(k=64, log_universe=16)
        for _ in range(50_000):
            qd.insert(float(rng.randrange(0, 1 << 16)))
        qd.compress()
        # O(k * logU) nodes: 64 * 16 = 1024, allow constant slack.
        assert qd.node_count <= 3 * 64 * 16

    def test_values_clamped_into_universe(self):
        qd = QDigest(k=16, log_universe=8)
        qd.insert(-5.0)
        qd.insert(1e9)
        assert qd.count == 2
        assert 0 <= qd.quantile(0.0) <= 255
        assert 0 <= qd.quantile(0.99) <= 255

    def test_skewed_distribution(self):
        rng = random.Random(3)
        qd = QDigest(k=256, log_universe=14)
        exact = ExactQuantile()
        for _ in range(10_000):
            value = min(float(int(rng.expovariate(0.01))), (1 << 14) - 1)
            qd.insert(value)
            exact.insert(value)
        true = exact.quantile(0.95)
        assert qd.quantile(0.95) == pytest.approx(true, rel=0.25, abs=10)

    def test_compress_idempotent_on_counts(self):
        rng = random.Random(4)
        qd = QDigest(k=32, log_universe=10)
        for _ in range(1_000):
            qd.insert(float(rng.randrange(0, 1024)))
        total_before = sum(qd._counts.values())
        qd.compress()
        qd.compress()
        assert sum(qd._counts.values()) == total_before == 1_000

    def test_rank_error_bound_formula(self):
        qd = QDigest(k=100, log_universe=10)
        for i in range(1_000):
            qd.insert(float(i % 1024))
        assert qd.rank_error_bound() == pytest.approx(1_000 * 10 / 100)

    def test_epsilon_argument(self):
        qd = QDigest(k=128, log_universe=10)
        for i in range(200):
            qd.insert(float(i % 1024))
        assert qd.quantile(0.9, epsilon=50) <= qd.quantile(0.9)

    def test_clear(self):
        qd = QDigest(k=16)
        qd.insert(5.0)
        qd.clear()
        assert qd.count == 0 and qd.node_count == 0

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            QDigest(k=0)
        with pytest.raises(ParameterError):
            QDigest(log_universe=0)
        with pytest.raises(ParameterError):
            QDigest(log_universe=31)
