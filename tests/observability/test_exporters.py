"""Exporter formats: Prometheus text exposition and JSON lines."""

import io
import json

from repro.observability.exporters import (
    JsonLinesEmitter,
    registry_to_prometheus,
    render_prometheus,
    render_snapshot_text,
)
from repro.observability.registry import MetricSpec, StatsRegistry


SPECS = {
    "demo_items_total": MetricSpec(
        "demo_items_total", "counter", help="items processed"),
    "demo_occupancy": MetricSpec(
        "demo_occupancy", "gauge", help="slot fill", agg="mean"),
}


class TestPrometheus:
    def test_help_and_type_once_per_family(self):
        snap = {
            'demo_items_total{shard="0"}': 1.0,
            'demo_items_total{shard="1"}': 2.0,
            "demo_occupancy": 0.5,
        }
        text = render_prometheus(snap, specs=SPECS)
        lines = text.splitlines()
        assert lines.count("# HELP demo_items_total items processed") == 1
        assert lines.count("# TYPE demo_items_total counter") == 1
        assert "# TYPE demo_occupancy gauge" in lines
        # Samples of one family sit together, sorted.
        assert 'demo_items_total{shard="0"} 1' in lines
        assert 'demo_items_total{shard="1"} 2' in lines
        assert lines.index('demo_items_total{shard="0"} 1') + 1 == (
            lines.index('demo_items_total{shard="1"} 2'))

    def test_integral_values_render_without_decimal_point(self):
        text = render_prometheus({"demo_items_total": 12.0}, specs=SPECS)
        assert text.splitlines()[-1] == "demo_items_total 12"

    def test_fractional_values_keep_precision(self):
        text = render_prometheus({"demo_occupancy": 0.53125}, specs=SPECS)
        assert text.splitlines()[-1] == "demo_occupancy 0.53125"

    def test_unknown_family_renders_as_untyped_gauge(self):
        text = render_prometheus({"zz_mystery": 1.0}, specs={})
        lines = text.splitlines()
        assert lines[0] == "# HELP zz_mystery"
        assert lines[1] == "# TYPE zz_mystery gauge"

    def test_registry_convenience_uses_registry_specs(self):
        reg = StatsRegistry()
        reg.counter("exp2_items_total", help="seen").inc(3)
        text = registry_to_prometheus(reg)
        assert "# HELP exp2_items_total seen" in text
        assert "# TYPE exp2_items_total counter" in text
        assert text.splitlines()[-1] == "exp2_items_total 3"

    def test_empty_snapshot_is_empty_string(self):
        assert render_prometheus({}, specs=SPECS) == ""


class TestJsonLines:
    def test_one_valid_json_object_per_emit(self):
        out = io.StringIO()
        emitter = JsonLinesEmitter(out)
        emitter.emit({"a_total": 1.0})
        emitter.emit({"a_total": 2.0}, phase="final")
        lines = out.getvalue().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"a_total": 1.0}
        assert json.loads(lines[1]) == {"phase": "final", "a_total": 2.0}

    def test_extra_keys_precede_samples(self):
        out = io.StringIO()
        line = JsonLinesEmitter(out).emit({"a_total": 1.0}, run="r1")
        assert list(json.loads(line)) == ["run", "a_total"]

    def test_snapshot_values_survive_round_trip(self):
        out = io.StringIO()
        snap = {"occ": 0.123456789, "n_total": 5.0}
        JsonLinesEmitter(out).emit(snap)
        assert json.loads(out.getvalue()) == snap


class TestSnapshotText:
    def test_aligned_and_sorted(self):
        text = render_snapshot_text({"bb_long_name": 2.0, "a": 1.5})
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert lines[1].startswith("bb_long_name")
        # Both value columns start at the same offset.
        assert lines[0].index("1.5") == lines[1].index("2")

    def test_empty_snapshot_placeholder(self):
        assert render_snapshot_text({}) == "(no samples)"
