"""Exporter formats: Prometheus text exposition and JSON lines."""

import io
import json

from repro.observability.exporters import (
    JsonLinesEmitter,
    escape_help,
    registry_to_prometheus,
    render_histogram_summaries,
    render_prometheus,
    render_snapshot_text,
)
from repro.observability.registry import (
    MetricSpec,
    StatsRegistry,
    escape_label_value,
    sample_name,
)


SPECS = {
    "demo_items_total": MetricSpec(
        "demo_items_total", "counter", help="items processed"),
    "demo_occupancy": MetricSpec(
        "demo_occupancy", "gauge", help="slot fill", agg="mean"),
}


class TestPrometheus:
    def test_help_and_type_once_per_family(self):
        snap = {
            'demo_items_total{shard="0"}': 1.0,
            'demo_items_total{shard="1"}': 2.0,
            "demo_occupancy": 0.5,
        }
        text = render_prometheus(snap, specs=SPECS)
        lines = text.splitlines()
        assert lines.count("# HELP demo_items_total items processed") == 1
        assert lines.count("# TYPE demo_items_total counter") == 1
        assert "# TYPE demo_occupancy gauge" in lines
        # Samples of one family sit together, sorted.
        assert 'demo_items_total{shard="0"} 1' in lines
        assert 'demo_items_total{shard="1"} 2' in lines
        assert lines.index('demo_items_total{shard="0"} 1') + 1 == (
            lines.index('demo_items_total{shard="1"} 2'))

    def test_integral_values_render_without_decimal_point(self):
        text = render_prometheus({"demo_items_total": 12.0}, specs=SPECS)
        assert text.splitlines()[-1] == "demo_items_total 12"

    def test_fractional_values_keep_precision(self):
        text = render_prometheus({"demo_occupancy": 0.53125}, specs=SPECS)
        assert text.splitlines()[-1] == "demo_occupancy 0.53125"

    def test_unknown_family_renders_as_untyped_gauge(self):
        text = render_prometheus({"zz_mystery": 1.0}, specs={})
        lines = text.splitlines()
        assert lines[0] == "# HELP zz_mystery"
        assert lines[1] == "# TYPE zz_mystery gauge"

    def test_registry_convenience_uses_registry_specs(self):
        reg = StatsRegistry()
        reg.counter("exp2_items_total", help="seen").inc(3)
        text = registry_to_prometheus(reg)
        assert "# HELP exp2_items_total seen" in text
        assert "# TYPE exp2_items_total counter" in text
        assert text.splitlines()[-1] == "exp2_items_total 3"

    def test_empty_snapshot_is_empty_string(self):
        assert render_prometheus({}, specs=SPECS) == ""

    def test_nan_renders_exposition_spelling(self):
        text = render_prometheus({"demo_occupancy": float("nan")}, specs=SPECS)
        assert text.splitlines()[-1] == "demo_occupancy NaN"

    def test_positive_infinity_renders_plus_inf(self):
        text = render_prometheus({"demo_occupancy": float("inf")}, specs=SPECS)
        assert text.splitlines()[-1] == "demo_occupancy +Inf"

    def test_negative_infinity_renders_minus_inf(self):
        text = render_prometheus(
            {"demo_occupancy": float("-inf")}, specs=SPECS
        )
        assert text.splitlines()[-1] == "demo_occupancy -Inf"

    def test_non_finite_never_renders_python_repr(self):
        snap = {
            "demo_occupancy": float("nan"),
            "demo_items_total": float("inf"),
        }
        text = render_prometheus(snap, specs=SPECS)
        for sample_line in text.splitlines():
            if sample_line.startswith("#"):
                continue
            value = sample_line.split()[-1]
            assert value not in ("nan", "inf", "-inf")


class TestLabelEscaping:
    """The exposition format escapes ``\\``, ``"`` and newline in label
    values (and ``\\`` + newline in HELP text) — regression-pinned here
    because a raw quote silently corrupts the whole scrape."""

    def test_backslash_escaped(self):
        assert escape_label_value("C:\\tmp") == "C:\\\\tmp"

    def test_double_quote_escaped(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'

    def test_newline_escaped(self):
        assert escape_label_value("a\nb") == "a\\nb"

    def test_combined_and_ordering(self):
        # Backslash first, or the later escapes get double-escaped.
        assert escape_label_value('\\"\n') == '\\\\\\"\\n'

    def test_plain_values_untouched(self):
        assert escape_label_value("shard-0_a.b") == "shard-0_a.b"

    def test_non_string_coerced(self):
        assert escape_label_value(3) == "3"

    def test_sample_name_applies_escaping(self):
        name = sample_name("m_total", {"path": 'a\\b"c'})
        assert name == 'm_total{path="a\\\\b\\"c"}'

    def test_registry_round_trip_renders_escaped(self):
        reg = StatsRegistry()
        reg.counter(
            "esc_total", help="with\nnewline and \\slash",
            labels={"key": 'tricky "value"\\'},
        ).inc()
        text = registry_to_prometheus(reg)
        assert '# HELP esc_total with\\nnewline and \\\\slash' in text
        assert 'esc_total{key="tricky \\"value\\"\\\\"} 1' in text
        # The rendered exposition stays one-line-per-sample.
        assert len(text.splitlines()) == 3

    def test_escape_help_leaves_quotes_alone(self):
        # HELP text escapes backslash and newline but NOT quotes.
        assert escape_help('a "quoted" b') == 'a "quoted" b'
        assert escape_help("a\nb\\c") == "a\\nb\\\\c"


class TestHistogramRendering:
    def test_histogram_family_grouped_and_typed(self):
        reg = StatsRegistry()
        h = reg.histogram("hx_seconds", help="demo latency")
        h.record(0.001)
        text = registry_to_prometheus(reg)
        lines = text.splitlines()
        assert "# TYPE hx_seconds histogram" in lines
        assert "# HELP hx_seconds demo latency" in lines
        # Exactly one header pair despite many sub-samples.
        assert sum(line.startswith("# TYPE") for line in lines) == 1
        # Buckets ascend by le; count and sum come after them.
        bucket_lines = [l for l in lines if "_bucket{" in l]
        assert len(bucket_lines) > 10
        assert lines.index(bucket_lines[-1]) < lines.index(
            next(l for l in lines if l.startswith("hx_seconds_count"))
        )
        assert '{le="+Inf"}' in bucket_lines[-1]

    def test_render_histogram_summaries(self):
        reg = StatsRegistry()
        h = reg.histogram("hy_seconds")
        for _ in range(100):
            h.record(0.004)
        text = render_histogram_summaries(reg.snapshot())
        assert text.startswith("hy_seconds count=100 ")
        assert "p50=" in text and "p99=" in text and "p999=" in text

    def test_render_histogram_summaries_empty(self):
        assert render_histogram_summaries({"a_total": 1.0}) == ""


class TestJsonLines:
    def test_one_valid_json_object_per_emit(self):
        out = io.StringIO()
        emitter = JsonLinesEmitter(out)
        emitter.emit({"a_total": 1.0})
        emitter.emit({"a_total": 2.0}, phase="final")
        lines = out.getvalue().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"a_total": 1.0}
        assert json.loads(lines[1]) == {"phase": "final", "a_total": 2.0}

    def test_extra_keys_precede_samples(self):
        out = io.StringIO()
        line = JsonLinesEmitter(out).emit({"a_total": 1.0}, run="r1")
        assert list(json.loads(line)) == ["run", "a_total"]

    def test_snapshot_values_survive_round_trip(self):
        out = io.StringIO()
        snap = {"occ": 0.123456789, "n_total": 5.0}
        JsonLinesEmitter(out).emit(snap)
        assert json.loads(out.getvalue()) == snap


class TestSnapshotText:
    def test_aligned_and_sorted(self):
        text = render_snapshot_text({"bb_long_name": 2.0, "a": 1.5})
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert lines[1].startswith("bb_long_name")
        # Both value columns start at the same offset.
        assert lines[0].index("1.5") == lines[1].index("2")

    def test_empty_snapshot_placeholder(self):
        assert render_snapshot_text({}) == "(no samples)"
