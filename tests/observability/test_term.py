"""Terminal helpers and dashboard frames: flicker-free ANSI, degrade."""

import io

import pytest

from repro.observability.dashboard import Dashboard, rate_series
from repro.observability.term import (
    CLEAR_SCREEN,
    HIDE_CURSOR,
    SHOW_CURSOR,
    LiveScreen,
    ansi_capable,
    format_duration,
    format_quantity,
    sparkline,
)
from repro.observability.timeseries import MetricStore


class FakeTty(io.StringIO):
    def isatty(self):
        return True


class TestAnsiCapable:
    def test_non_tty_is_not_capable(self):
        assert not ansi_capable(io.StringIO())

    def test_tty_with_normal_term(self, monkeypatch):
        monkeypatch.setenv("TERM", "xterm-256color")
        assert ansi_capable(FakeTty())

    @pytest.mark.parametrize("term", ["dumb", ""])
    def test_dumb_or_empty_term_degrades(self, monkeypatch, term):
        monkeypatch.setenv("TERM", term)
        assert not ansi_capable(FakeTty())


class TestLiveScreen:
    def frames(self, *texts):
        stream = FakeTty()
        screen = LiveScreen(stream)
        for text in texts:
            screen.render(text)
        screen.close()
        return stream.getvalue()

    def test_first_frame_clears_once(self):
        out = self.frames("one\ntwo")
        assert out.count(CLEAR_SCREEN) == 1
        assert out.startswith(HIDE_CURSOR)
        assert out.endswith(SHOW_CURSOR)

    def test_later_frames_never_clear_screen_again(self):
        """The flicker fix: repaint via cursor-home + per-line erase,
        never a second full-screen clear."""
        out = self.frames("frame one", "frame two", "frame three")
        assert out.count(CLEAR_SCREEN) == 1
        # Every line is erased to the right so shorter lines leave no
        # residue from longer predecessors.
        assert out.count("\x1b[K") >= 3
        # Leftover lines below a shorter frame are erased too.
        assert "\x1b[J" in out

    def test_context_manager_restores_cursor(self):
        stream = FakeTty()
        with LiveScreen(stream) as screen:
            screen.render("hello")
        assert stream.getvalue().endswith(SHOW_CURSOR)


class TestSparkline:
    def test_width_and_normalisation(self):
        out = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert len(out) == 4
        assert out[0] == "▁" and out[-1] == "█"

    def test_ascii_mode_has_no_unicode(self):
        out = sparkline([0.0, 5.0, 10.0], width=3, ascii_only=True)
        assert out.isascii()

    def test_empty_and_flat_inputs(self):
        assert sparkline([]) == ""
        flat = sparkline([2.0, 2.0, 2.0], width=3)
        assert flat == flat[0] * 3

    def test_takes_trailing_values(self):
        out = sparkline([9.0, 9.0, 0.0, 1.0], width=2)
        assert out[0] < out[-1]


class TestFormatters:
    def test_format_quantity(self):
        assert format_quantity(1_500_000_000) == "1.5G"
        assert format_quantity(2_500_000) == "2.5M"
        assert format_quantity(1_500) == "1.5k"
        assert format_quantity(42.0) == "42"

    def test_format_duration(self):
        assert format_duration(0.25) == "250ms"
        assert format_duration(42.0) == "42s"
        assert format_duration(125.0) == "2m5s"
        assert format_duration(3_700.0) == "1h1m"


class TestDashboard:
    def make_store(self):
        store = MetricStore(clock=lambda: 9.0)
        for tick in range(10):
            store.collect(
                {
                    "qf_items_total": tick * 1000.0,
                    "qf_reports_total": tick * 2.0,
                    "qf_threshold": 300.0,
                    "qf_drift_z": 0.5,
                },
                now=float(tick),
            )
        return store

    def test_frame_contains_the_operator_essentials(self):
        dash = Dashboard(self.make_store(), title="t", ascii_only=True)
        frame = dash.render(now=9.0)
        assert "T=300" in frame
        assert "throughput" in frame and "items/s" in frame
        assert "reports" in frame
        assert "drift z 0.5" in frame
        # ascii_only governs the sparklines (the header separator is
        # cosmetic): no block-drawing characters in the frame.
        assert not any(ch in frame for ch in "▁▂▃▄▅▆▇█")

    def test_frame_shows_alert_states(self):
        from repro.observability.alerts import AlertEngine, AlertRule

        store = self.make_store()
        engine = AlertEngine(store, [AlertRule(
            name="hot", expr="value(qf_items_total) > 100",
            severity="critical", resolve=50.0,
        )])
        engine.evaluate(now=9.0)
        dash = Dashboard(store, engine=engine, ascii_only=True)
        frame = dash.render(now=9.0)
        assert "1 firing" in frame
        assert "hot" in frame and "critical" in frame

    def test_rate_series_clamps_resets(self):
        store = MetricStore(clock=lambda: 3.0)
        for tick, value in enumerate([0.0, 100.0, 0.0, 50.0]):
            store.collect({"c_total": value}, now=float(tick))
        rates = rate_series(store, "c_total", 100.0, now=3.0)
        assert rates == [100.0, 0.0, 50.0]

    def test_reason_lines_capped(self):
        from repro.observability.health import HealthReport, HealthSignal

        signals = tuple(
            HealthSignal(name=f"s{i}", verdict="degraded", value=1.0,
                         reason=f"reason {i}")
            for i in range(9)
        )
        report = HealthReport(verdict="degraded", signals=signals)
        dash = Dashboard(self.make_store(), ascii_only=True)
        frame = dash.render(report=report, now=9.0)
        assert "... and 3 more" in frame
