"""HTTP health server: routes, verdict flips, pipeline serving, CLI."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.observability.health import HealthMonitor
from repro.observability.server import (
    FilterServeSource,
    HealthServer,
    PipelineServeSource,
    serve_filter,
)
from repro.streams.drift import DriftConfig, generate_drift_trace

CRIT = Criteria(delta=0.9, threshold=100.0, epsilon=5.0)


def get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.read().decode(), dict(resp.headers)


def get_json(url):
    status, body, _ = get(url)
    return status, json.loads(body)


def fed_filter(num_items=4_000, seed=0, **geometry):
    geometry.setdefault("num_buckets", 64)
    geometry.setdefault("bucket_size", 4)
    geometry.setdefault("vague_width", 512)
    filt = QuantileFilter(CRIT, seed=seed, **geometry)
    rng = np.random.default_rng(seed)
    for _ in range(num_items):
        filt.insert(int(rng.integers(0, 80)),
                    float(rng.lognormal(4.0, 0.6)))
    return filt


class TestRoutes:
    @pytest.fixture()
    def server(self):
        server = serve_filter(fed_filter())
        yield server
        server.stop()

    def test_metrics_is_parseable_prometheus(self, server):
        status, body, headers = get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        families = set()
        for line in body.strip().splitlines():
            if line.startswith("# HELP "):
                families.add(line.split()[2])
            elif line.startswith("# TYPE "):
                assert line.split()[3] in ("counter", "gauge", "histogram")
            else:
                name, value = line.rsplit(" ", 1)
                float(value)  # every sample value parses
                assert name.split("{")[0] in families
        assert "qf_items_total" in families
        assert "qf_health_status" in families

    def test_healthz_returns_verdict_json(self, server):
        status, payload = get_json(server.url + "/healthz")
        assert status == 200
        assert payload["verdict"] in ("ok", "degraded")
        assert isinstance(payload["reasons"], list)
        names = {s["name"] for s in payload["signals"]}
        assert "candidate_occupancy" in names

    def test_health_shards_single_entry_for_filter(self, server):
        status, payload = get_json(server.url + "/health/shards")
        assert status == 200
        assert len(payload["shards"]) == 1

    def test_unknown_route_404s_with_route_list(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url + "/nope")
        assert err.value.code == 404
        assert "/healthz" in json.load(err.value)["routes"]


class TestLifecycle:
    def test_ephemeral_port_bound_and_no_orphan_threads(self):
        baseline = threading.active_count()
        server = serve_filter(fed_filter(num_items=500))
        assert server.port != 0
        get(server.url + "/healthz")
        server.stop()
        assert not server.running
        assert threading.active_count() == baseline

    def test_context_manager_stops_on_exit(self):
        source = FilterServeSource(fed_filter(num_items=500))
        with HealthServer(source) as server:
            status, _ = get_json(server.url + "/healthz")
            assert status == 200
        assert not server.running

    def test_stop_is_idempotent(self):
        server = serve_filter(fed_filter(num_items=500))
        server.stop()
        server.stop()

    def test_concurrent_scrapes(self):
        server = serve_filter(fed_filter())
        errors = []

        def scrape():
            try:
                for _ in range(5):
                    get(server.url + "/metrics")
                    get_json(server.url + "/healthz")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=scrape) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.stop()
        assert errors == []

    def test_concurrent_scrapes_while_threaded_filter_mid_flush(self):
        """Scrapes against a live thread-parallel engine never error.

        The seqlock read path means /metrics and /healthz observe the
        shared planes while updater threads are committing striped
        flushes — every scrape must return parseable output and the
        thread-engine families must be present.
        """
        from repro.parallel.concurrent import (
            ConcurrentQuantileFilter,
            ThreadIngest,
        )

        cqf = ConcurrentQuantileFilter(
            CRIT, num_buckets=64, vague_width=512, bucket_size=4,
            flush_items=256, seed=0,
        )
        server = serve_filter(cqf)
        stop = threading.Event()
        errors = []

        def update(seed):
            rng = np.random.default_rng(seed)
            try:
                ingest = ThreadIngest(cqf, flush_items=256)
                while not stop.is_set():
                    keys = rng.integers(0, 500, size=256)
                    values = rng.lognormal(4.0, 0.6, size=256)
                    ingest.insert_many(keys, values)
                ingest.flush()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def scrape():
            try:
                for _ in range(8):
                    status, body, _ = get(server.url + "/metrics")
                    assert status == 200
                    assert "qf_thread_flushes_total" in body
                    assert "qf_lock_wait_seconds_count" in body
                    get_json(server.url + "/healthz")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        updaters = [
            threading.Thread(target=update, args=(seed,)) for seed in (1, 2)
        ]
        scrapers = [threading.Thread(target=scrape) for _ in range(3)]
        for t in updaters + scrapers:
            t.start()
        for t in scrapers:
            t.join()
        stop.set()
        for t in updaters:
            t.join()
        server.stop()
        assert errors == []
        assert cqf.thread_flushes > 0


class TestVerdictFlips:
    def test_drift_stream_flips_healthz_to_degraded(self):
        """Acceptance: a drift-injected stream names exceedance_drift."""
        filt = QuantileFilter(
            Criteria(delta=0.9, threshold=300.0, epsilon=5.0),
            num_buckets=256, bucket_size=4, vague_width=1024, seed=0,
        )
        monitor = HealthMonitor.for_filter(
            filt, drift_window_items=1_024, shadow_sample_rate=None,
        )
        source = FilterServeSource(filt, monitor=monitor)
        trace = generate_drift_trace(DriftConfig(
            num_items=24_000, num_keys=400, num_phases=2,
            anomalous_per_phase=120, anomaly_boost=25.0, seed=1,
        ))
        with HealthServer(source) as server:
            # Phase 1: baseline traffic establishes the drift reference.
            half = trace.keys.shape[0] // 2
            for i in range(half):
                filt.insert(int(trace.keys[i]), float(trace.values[i]))
            monitor.observe_batch(trace.keys[:half], trace.values[:half])
            _, baseline = get_json(server.url + "/healthz")
            drift_before = next(
                s for s in baseline["signals"]
                if s["name"] == "exceedance_drift"
            )
            assert drift_before["verdict"] == "ok"

            # Phase 2: a much larger anomalous key set shifts the
            # exceedance fraction across T.
            for i in range(half, trace.keys.shape[0]):
                filt.insert(int(trace.keys[i]), float(trace.values[i]))
            monitor.observe_batch(trace.keys[half:], trace.values[half:])
            status, flipped = get_json(server.url + "/healthz")
        assert status == 200  # degraded still serves 200
        assert flipped["verdict"] == "degraded"
        assert any(r.startswith("exceedance_drift:") for r in
                   flipped["reasons"])

    def test_saturation_stress_flips_healthz_with_named_signal(self):
        """Acceptance: candidate-saturation stress names its signal."""
        # A deliberately tiny candidate part, flooded with distinct
        # hot keys: occupancy pins at 100 % and churn explodes.
        filt = QuantileFilter(
            CRIT, num_buckets=2, bucket_size=2, vague_width=64, seed=0,
        )
        source = FilterServeSource(
            filt,
            monitor=HealthMonitor.for_filter(filt, shadow_sample_rate=None),
        )
        rng = np.random.default_rng(0)
        with HealthServer(source) as server:
            for i in range(6_000):
                filt.insert(i % 500, float(rng.lognormal(5.2, 0.5)))
            _, payload = get_json(server.url + "/healthz")
        assert payload["verdict"] in ("degraded", "critical")
        flagged = {r.split(":")[0] for r in payload["reasons"]}
        assert flagged & {
            "candidate_occupancy", "candidate_churn", "vague_pressure",
            "vague_saturation",
        }

    def test_critical_verdict_returns_503(self):
        filt = fed_filter(num_items=2_000)
        monitor = HealthMonitor.for_filter(filt, shadow_sample_rate=None)
        source = FilterServeSource(filt, monitor=monitor)
        # Force a critical signal through the snapshot.
        registry = source.registry
        registry.gauge("qf_vague_saturation", agg="mean",
                       labels={"forced": "1"}).set(0.9)
        with HealthServer(source) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(server.url + "/healthz")
        assert err.value.code == 503
        assert json.load(err.value)["verdict"] == "critical"


class TestPipelineSource:
    def test_serves_cached_views_and_per_shard_breakdown(self):
        from repro.parallel.pipeline import ParallelPipeline

        rng = np.random.default_rng(5)
        keys = rng.integers(0, 1_000, size=24_000)
        values = rng.lognormal(4.0, 0.7, size=24_000)
        pipeline = ParallelPipeline(
            CRIT, 2, memory_bytes=32 * 1024, chunk_items=4_096,
            collect_stats=True,
        )
        monitor = HealthMonitor.for_criteria(CRIT, shadow_sample_rate=None)
        source = PipelineServeSource(pipeline, monitor=monitor)
        with pipeline:
            pipeline.start()
            with HealthServer(source) as server:
                half = keys.shape[0] // 2
                monitor.observe_batch(keys[:half], values[:half])
                pipeline.feed(keys[:half], values[:half])
                pipeline.collect_stats_view()

                status, payload = get_json(server.url + "/healthz")
                assert status == 200
                workers = next(
                    s for s in payload["signals"]
                    if s["name"] == "workers_alive"
                )
                assert workers["verdict"] == "ok"

                _, shards = get_json(server.url + "/health/shards")
                assert len(shards["shards"]) == 2
                assert {s["source"] for s in shards["shards"]} == {
                    "shard-0", "shard-1",
                }

                _, metrics, _ = get(server.url + "/metrics")
                assert "qf_health_status" in metrics
                assert "pipeline_items_fed_total" in metrics

                monitor.observe_batch(keys[half:], values[half:])
                pipeline.feed(keys[half:], values[half:])
                pipeline.collect_stats_view()
                pipeline.finish()

                # After finish the cached snapshot still serves.
                status, payload = get_json(server.url + "/healthz")
                assert status == 200
                assert all(
                    s["name"] != "workers_alive"
                    for s in payload["signals"]
                )

    def test_last_per_shard_stats_cached_by_view_and_finish(self):
        from repro.parallel.pipeline import ParallelPipeline

        rng = np.random.default_rng(6)
        keys = rng.integers(0, 200, size=8_000)
        values = rng.lognormal(4.0, 0.5, size=8_000)
        pipeline = ParallelPipeline(
            CRIT, 2, memory_bytes=32 * 1024, chunk_items=2_048,
            collect_stats=True,
        )
        assert pipeline.last_per_shard_stats is None
        with pipeline:
            pipeline.start()
            assert pipeline.running
            pipeline.feed(keys, values)
            pipeline.collect_stats_view()
            assert len(pipeline.last_per_shard_stats) == 2
            pipeline.finish()
        assert not pipeline.running
        assert len(pipeline.last_per_shard_stats) == 2
        assert pipeline.reported_keys == set(pipeline.reported_keys)


class TestIncidents:
    def test_route_empty_without_recorder(self):
        with serve_filter(fed_filter()) as server:
            status, payload = get_json(server.url + "/incidents")
        assert status == 200
        assert payload == {"count": 0, "incidents": []}

    def test_route_lists_dumped_bundles(self, tmp_path):
        from repro.observability.recorder import FlightRecorder

        filt = fed_filter()
        recorder = FlightRecorder(filt, incident_dir=tmp_path)
        recorder.feed([1, 2, 3], [5.0, 6.0, 7.0])
        recorder.dump("explicit")
        source = FilterServeSource(filt, recorder=recorder)
        with HealthServer(source).start() as server:
            status, payload = get_json(server.url + "/incidents")
            _, metrics, _ = get(server.url + "/metrics")
        assert status == 200
        assert payload["count"] == 1
        manifest = payload["incidents"][0]
        assert manifest["reason"] == "explicit"
        assert manifest["engine"] == "scalar"
        # The recorder's gauges ride the same registry as the filter's.
        assert "qf_recorder_dumps_total 1" in metrics
        assert "qf_recorder_retained_items 3" in metrics

    def test_concurrent_scrapes_while_dump_in_flight(self, tmp_path):
        """Satellite: scrapes must never block on a recorder dump.

        The monitor forwards health reports to the recorder OUTSIDE its
        own lock, and the recorder's feed/dump lock is never taken by
        the read-only routes — so /healthz, /metrics and /incidents
        stay responsive while bundles are being written.
        """
        from repro.observability.recorder import FlightRecorder

        filt = fed_filter()
        recorder = FlightRecorder(
            filt, max_chunks=4, incident_dir=tmp_path, max_incidents=64,
        )
        source = FilterServeSource(filt, recorder=recorder)
        rng = np.random.default_rng(1)
        errors = []
        scraped = []

        with HealthServer(source).start() as server:
            stop = threading.Event()

            def scrape():
                try:
                    while not stop.is_set():
                        status, _, _ = get(server.url + "/metrics")
                        assert status == 200
                        status, payload = get_json(server.url + "/healthz")
                        assert status in (200, 503)
                        status, listing = get_json(server.url + "/incidents")
                        assert status == 200
                        scraped.append(listing["count"])
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=scrape) for _ in range(3)]
            for t in threads:
                t.start()
            # Feed and dump continuously while the scrapers hammer the
            # read-only routes.
            for _ in range(10):
                keys = rng.integers(0, 80, size=512).tolist()
                values = rng.lognormal(4.0, 0.6, size=512).tolist()
                recorder.feed(keys, values)
                recorder.dump("stress")
            stop.set()
            for t in threads:
                t.join()

        assert errors == []
        assert scraped, "scrapers must have completed at least one pass"
        assert recorder.dumps_total == 10
        # Every listing observed a consistent prefix of the dumps.
        assert all(0 <= count <= 10 for count in scraped)


class TestAlertsRoute:
    def make_alerted_source(self):
        from repro.observability.alerts import AlertRule
        from repro.observability.timeseries import MetricStore

        now = {"t": 0.0}
        store = MetricStore(clock=lambda: now["t"])
        rules = [AlertRule(
            name="items-high", expr="value(qf_items_total) > 100",
            severity="critical", resolve=50.0,
        )]
        source = FilterServeSource(fed_filter(), rules=rules, store=store)
        return source, now

    def test_alerts_route_serves_engine_state(self):
        source, now = self.make_alerted_source()
        source.tick(now=0.0)
        with HealthServer(source) as server:
            status, payload = get_json(server.url + "/alerts")
        assert status == 200
        assert payload["rules"] == 1
        assert payload["firing"] == ["items-high"]
        (alert,) = payload["alerts"]
        assert alert["state"] == "firing"
        assert alert["rule"]["expr"] == "value(qf_items_total) > 100"

    def test_alerts_stub_without_engine(self):
        with serve_filter(fed_filter()) as server:
            status, payload = get_json(server.url + "/alerts")
        assert status == 200
        assert payload == {
            "evaluated_at": None, "rules": 0, "firing": [], "alerts": [],
        }

    def test_routes_listing_includes_alerts(self):
        with serve_filter(fed_filter()) as server:
            try:
                get(server.url + "/bogus")
            except urllib.error.HTTPError as err:
                payload = json.loads(err.read().decode())
            else:  # pragma: no cover
                pytest.fail("expected a 404")
        assert "/alerts" in payload["routes"]

    def test_firing_rule_folds_into_healthz_and_metrics(self):
        """Acceptance slice: /healthz goes 503 naming the rule, and
        /metrics exports qf_alert_state / qf_alerts_fired_total."""
        source, now = self.make_alerted_source()
        source.tick(now=0.0)
        with HealthServer(source) as server:
            try:
                get(server.url + "/healthz")
            except urllib.error.HTTPError as err:
                assert err.code == 503
                payload = json.loads(err.read().decode())
            else:  # pragma: no cover
                pytest.fail("firing critical rule must 503")
            _, metrics, _ = get(server.url + "/metrics")
        assert payload["verdict"] == "critical"
        assert any(
            "rule items-high firing" in reason
            for reason in payload["reasons"]
        )
        assert ('qf_alert_state{rule="items-high",severity="critical"} 2'
                in metrics)
        assert 'qf_alerts_fired_total{rule="items-high"} 1' in metrics
        assert "qf_store_points_ingested_total" in metrics

    def test_tick_returns_transitions_and_respects_throttle(self):
        from repro.observability.alerts import AlertRule
        from repro.observability.timeseries import MetricStore

        now = {"t": 0.0}
        store = MetricStore(step_seconds=10.0, clock=lambda: now["t"])
        source = FilterServeSource(
            fed_filter(),
            rules=[AlertRule(
                name="items-high", expr="value(qf_items_total) > 100",
                resolve=50.0,
            )],
            store=store,
        )
        transitions = source.tick(now=0.0)
        assert [t.new_state for t in transitions] == ["firing"]
        # Within step_seconds the collect is throttled, so no
        # re-evaluation happens either.
        assert source.tick(now=3.0) == []
        assert store.collections_skipped == 1


class TestProcessGauges:
    def test_metrics_include_process_family(self):
        source = FilterServeSource(fed_filter())
        snapshot = source.metrics_snapshot()
        assert snapshot["qf_process_rss_bytes"] > 0
        assert snapshot["qf_uptime_seconds"] >= 0
        assert snapshot["qf_gc_collections_total"] >= 0

    def test_process_gauges_stay_off_the_filter_registry(self):
        """The separate registry protects aggregate == shard-sum
        invariants: the filter's own registry must not grow process
        samples."""
        source = FilterServeSource(fed_filter())
        assert "qf_process_rss_bytes" not in source.registry.snapshot()
        assert "qf_process_rss_bytes" in source.process_registry.snapshot()
