"""The `repro stats` / `repro watch` CLI, checked against the docs.

The acceptance criterion for the telemetry layer is self-enforcing
here: every metric family documented in ``docs/observability.md`` must
appear in a live ``repro stats`` snapshot (windowed-filter metrics
excepted — the pipeline runs batch filters).
"""

import json
import pathlib
import re

import pytest

from repro.observability.cli import build_parser, main
from repro.observability.registry import base_name

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs" / "observability.md"

STATS_ARGS = [
    "--dataset", "internet", "--scale", "12000", "--shards", "2",
    "--chunk-items", "4096", "--seed", "3",
]


def documented_families():
    """Metric families from the doc's metric tables (backticked first
    column).  Only the two metric-catalogue sections count — the doc
    also tables span names and provenance fields, which are not
    snapshot samples."""
    families = {}
    in_metric_section = False
    for line in DOCS.read_text().splitlines():
        if line.startswith("## "):
            in_metric_section = "metrics (" in line
            continue
        if not in_metric_section:
            continue
        m = re.match(r"\| `([a-z0-9_]+)[`{]", line)
        if m:
            families[m.group(1)] = (
                "Windowed filters only" in line
                or "Thread-parallel engine only" in line
            )
    return families


def test_doc_tables_cover_the_canonical_metric_list():
    from repro.observability.instrument import FILTER_METRIC_HELP

    documented = set(documented_families())
    assert set(FILTER_METRIC_HELP) <= documented
    assert "pipeline_queue_depth" in documented
    assert "worker_chunks_total" in documented


class TestParser:
    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.command == "stats"
        assert args.format == "prom"
        assert args.shards == 2

    def test_watch_defaults_to_json(self):
        args = build_parser().parse_args(["watch"])
        assert args.format == "json"
        assert args.every == 4

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.linger == 0.0
        assert args.every == 4

    def test_health_defaults_to_text(self):
        args = build_parser().parse_args(["health"])
        assert args.command == "health"
        assert args.format == "text"


class TestStatsCommand:
    @pytest.fixture(scope="class")
    def prom_output(self):
        # capsys is function-scoped; capture by hand so the (slow)
        # pipeline run happens once for the whole class.
        import contextlib
        import io

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            rc = main(["stats", *STATS_ARGS])
        assert rc == 0
        return out.getvalue()

    def test_every_documented_metric_appears(self, prom_output):
        present = set()
        for line in prom_output.splitlines():
            if not line or line.startswith("#"):
                continue
            family = base_name(line.split(" ")[0])
            present.add(family)
            # Histogram families appear through their exploded
            # _bucket/_count/_sum samples.
            for suffix in ("_bucket", "_count", "_sum"):
                if family.endswith(suffix):
                    present.add(family[: -len(suffix)])
        for family, other_engine_only in documented_families().items():
            if other_engine_only:
                continue
            assert family in present, (
                f"{family} documented in docs/observability.md but missing "
                f"from `repro stats` output")

    def test_prometheus_headers_present(self, prom_output):
        assert "# TYPE qf_items_total counter" in prom_output
        assert "# TYPE qf_candidate_occupancy gauge" in prom_output
        assert "# HELP pipeline_workers_alive" in prom_output

    def test_items_match_scale(self, prom_output):
        for line in prom_output.splitlines():
            if line.startswith("qf_items_total "):
                assert line.split()[1] == "12000"
                break
        else:  # pragma: no cover
            pytest.fail("qf_items_total sample missing")


def test_watch_emits_valid_json_lines(capsys):
    rc = main(["watch", *STATS_ARGS, "--every", "1"])
    assert rc == 0
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    assert len(lines) >= 2  # at least one stride plus the final record
    records = [json.loads(l) for l in lines]
    assert records[-1].get("final") is True
    assert records[-1]["qf_items_total"] == 12000.0
    # Items are cumulative across strides.
    items = [r["qf_items_total"] for r in records]
    assert items == sorted(items)


def test_stats_text_format(capsys):
    rc = main(["stats", *STATS_ARGS, "--format", "text"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "#" not in out.split("\n")[0]
    assert re.search(r"qf_items_total\s+12000", out)


def test_health_command_prints_report(capsys):
    rc = main(["health", *STATS_ARGS])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.startswith("verdict:")
    assert "exceedance_drift" in out


def test_health_command_json_format(capsys):
    rc = main(["health", *STATS_ARGS, "--format", "json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["verdict"] in ("ok", "degraded", "critical")
    assert {s["name"] for s in payload["signals"]} >= {
        "report_rate", "exceedance_drift", "shadow_accuracy",
    }


def test_serve_command_scrapeable_while_running():
    """Integration: `repro serve` on an ephemeral port, scraped mid-run.

    Runs the CLI in a thread against a throttled stream, scrapes
    /metrics and /healthz while items are still flowing, and checks the
    command exits 0 without leaving server threads behind.
    """
    import io
    import re as _re
    import threading
    import time
    import urllib.request
    from contextlib import redirect_stderr

    stderr = io.StringIO()
    result = {}

    def run():
        with redirect_stderr(stderr):
            result["rc"] = main([
                "serve", *STATS_ARGS, "--scale", "30000",
                "--chunk-items", "2048", "--every", "1",
                "--throttle", "0.25", "--port", "0", "--linger", "3",
            ])

    baseline_threads = threading.active_count()
    thread = threading.Thread(target=run)
    thread.start()
    try:
        url = None
        deadline = time.monotonic() + 30
        while url is None and time.monotonic() < deadline:
            m = _re.search(r"serving on (http://\S+)", stderr.getvalue())
            if m:
                url = m.group(1)
            else:
                time.sleep(0.05)
        assert url is not None, "serve never printed its URL"

        with urllib.request.urlopen(url + "/healthz", timeout=10) as resp:
            payload = json.load(resp)
        assert payload["verdict"] in ("ok", "degraded")
        assert payload["signals"]

        with urllib.request.urlopen(url + "/metrics", timeout=10) as resp:
            body = resp.read().decode()
        assert "qf_health_status" in body
        for line in body.strip().splitlines():
            if not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])  # parseable values

        # The first per-shard view lands after the first stride's
        # collect_stats_view(); poll briefly for it.
        shards = {"shards": []}
        deadline = time.monotonic() + 30
        while len(shards["shards"]) < 2 and time.monotonic() < deadline:
            with urllib.request.urlopen(
                url + "/health/shards", timeout=10
            ) as resp:
                shards = json.load(resp)
            if len(shards["shards"]) < 2:
                time.sleep(0.1)
        assert len(shards["shards"]) == 2
    finally:
        thread.join(timeout=120)
    assert not thread.is_alive()
    assert result["rc"] == 0
    time.sleep(0.2)
    assert threading.active_count() <= baseline_threads


def test_health_text_reports_tracer_drops(capsys):
    """Satellite: the one-shot health report surfaces ring-buffer drops.

    With --trace the tracer runs and its per-role drop counters are
    summed into a visible line; without it the line says tracing was
    off rather than implying a clean run."""
    rc = main(["health", *STATS_ARGS, "--trace"])
    assert rc == 0
    out = capsys.readouterr().out
    match = re.search(r"tracer drops: (\d+) total \(([^)]*)\)", out)
    assert match, f"health --trace must print a drops line, got:\n{out}"
    roles = dict(
        part.split("=") for part in match.group(2).split(", ")
    )
    assert {"master", "shard-0", "shard-1"} <= set(roles)
    assert sum(int(v) for v in roles.values()) == int(match.group(1))


def test_health_text_without_trace_says_tracing_off(capsys):
    rc = main(["health", *STATS_ARGS])
    assert rc == 0
    assert "tracer drops: none recorded (tracing off)" \
        in capsys.readouterr().out


class TestRecordCommand:
    def test_parser_defaults(self):
        from repro.observability.cli import build_record_parser

        args = build_record_parser().parse_args(["dump"])
        assert args.record_command == "dump"
        assert args.dataset == "internet"
        assert args.engine == "batch"
        assert args.max_chunks == 32
        assert args.chunk_items == 4096
        assert str(args.dir) == "incidents"
        args = build_record_parser().parse_args(
            ["replay", "bundle.json.gz", "--format", "json"]
        )
        assert args.record_command == "replay"
        assert args.bundle == "bundle.json.gz"

    def test_record_subcommand_routes_through_main(self, tmp_path, capsys):
        rc = main([
            "record", "dump", "--dataset", "internet", "--scale", "6000",
            "--engine", "batch", "--dir", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        bundle = [
            line for line in out.splitlines()
            if line.endswith(".json.gz")
        ][-1]
        assert main(["record", "replay", bundle]) == 0
        assert "replay MATCH" in capsys.readouterr().out
        assert main(["record", "list", "--dir", str(tmp_path)]) == 0
        listing = capsys.readouterr().out
        assert "engine=batch" in listing
        assert "reason=explicit" in listing


class TestTopCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.command == "top"
        assert args.every == 4
        assert not args.once
        assert args.rules is None
        assert args.window == 120.0

    def test_top_once_plain_frame_under_dumb_term(self, capsys, monkeypatch):
        """CI criterion: TERM=dumb `repro top --once` emits one plain
        frame — no ANSI escapes, no cursor games."""
        monkeypatch.setenv("TERM", "dumb")
        rc = main(["top", *STATS_ARGS, "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "\x1b[" not in out
        assert "repro top · internet" in out
        assert "verdict:" in out
        assert "throughput" in out
        assert "alerts (" in out  # the default pack is attached

    def test_top_no_alerts_drops_the_alert_block(self, capsys, monkeypatch):
        monkeypatch.setenv("TERM", "dumb")
        rc = main(["top", *STATS_ARGS, "--once", "--no-alerts"])
        assert rc == 0
        assert "alerts (" not in capsys.readouterr().out

    def test_top_bad_rules_path_fails_fast(self, capsys):
        rc = main(["top", *STATS_ARGS, "--once", "--rules", "/nope.json"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestAlertsCommand:
    def test_parser_defaults(self):
        from repro.observability.cli import build_alerts_parser

        args = build_alerts_parser().parse_args(["check"])
        assert args.alerts_command == "check"
        assert args.tick == 5.0
        assert args.rules is None
        args = build_alerts_parser().parse_args(["list", "--format", "json"])
        assert args.alerts_command == "list"

    def test_list_prints_the_default_pack(self, capsys):
        rc = main(["alerts", "list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "report-rate-drift" in out
        assert "worker-death" in out
        assert "[critical]" in out

    def test_list_json_round_trips(self, capsys):
        from repro.observability.alerts import parse_rules

        rc = main(["alerts", "list", "--format", "json"])
        assert rc == 0
        tables = json.loads(capsys.readouterr().out)
        assert len(parse_rules(tables)) == len(tables) >= 5

    def test_check_benign_run_exits_zero(self, capsys):
        rc = main(["alerts", "check", *STATS_ARGS])
        assert rc == 0
        assert "ok: no firing alerts" in capsys.readouterr().out

    def test_check_firing_critical_exits_two(self, tmp_path, capsys):
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps({"rule": [{
            "name": "always-items",
            "expr": "value(qf_items_total) > 100",
            "severity": "critical",
            "resolve": 50.0,
        }]}))
        rc = main([
            "alerts", "check", *STATS_ARGS, "--rules", str(rules),
            "--format", "json",
        ])
        assert rc == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["firing"] == ["always-items"]
        assert any(
            "inactive -> firing" in t for t in payload["transitions"]
        )

    def test_check_firing_warning_exits_one(self, tmp_path, capsys):
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps({"rule": [{
            "name": "warn-items",
            "expr": "value(qf_items_total) > 100",
            "severity": "warning",
            "resolve": 50.0,
        }]}))
        rc = main(["alerts", "check", *STATS_ARGS, "--rules", str(rules)])
        assert rc == 1
        assert "FIRING [warning] warn-items" in capsys.readouterr().out

    def test_check_bad_rules_exit_three(self, capsys):
        rc = main(["alerts", "check", "--rules", "/nope.toml"])
        assert rc == 3
        assert "error:" in capsys.readouterr().err


def test_watch_prom_degrades_to_plain_lines_off_tty(capsys):
    """Satellite: watch without a TTY appends plain snapshots — no ANSI
    control sequences anywhere in the stream."""
    rc = main(["watch", *STATS_ARGS, "--format", "prom"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "\x1b[" not in out
    assert out.count("# --- after") >= 1
    assert "# --- final ---" in out
