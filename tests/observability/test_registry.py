"""Counter/gauge semantics and snapshot aggregation rules."""

import pytest

from repro.common.errors import ParameterError
from repro.observability.registry import (
    Counter,
    Gauge,
    MetricSpec,
    StatsRegistry,
    aggregate_snapshots,
    base_name,
    sample_name,
)


class TestNames:
    def test_sample_name_without_labels_is_base_name(self):
        assert sample_name("qf_items_total") == "qf_items_total"
        assert sample_name("qf_items_total", {}) == "qf_items_total"

    def test_labels_render_sorted_prometheus_style(self):
        full = sample_name("qf_reports_total",
                           {"source": "vague", "shard": "3"})
        assert full == 'qf_reports_total{shard="3",source="vague"}'

    def test_base_name_round_trips(self):
        full = sample_name("qf_reports_total", {"source": "candidate"})
        assert base_name(full) == "qf_reports_total"
        assert base_name("plain") == "plain"


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("events_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("events_total")
        with pytest.raises(ParameterError):
            c.inc(-1)
        assert c.value == 0.0

    def test_callback_backed_counter_pulls_and_rejects_inc(self):
        state = {"n": 7}
        c = Counter("events_total", fn=lambda: state["n"])
        assert c.value == 7.0
        state["n"] = 9
        assert c.value == 9.0
        with pytest.raises(ParameterError):
            c.inc()


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("depth")
        g.set(4)
        g.set(2)
        assert g.value == 2.0

    def test_callback_backed_gauge_pulls_and_rejects_set(self):
        g = Gauge("depth", fn=lambda: 1.25)
        assert g.value == 1.25
        with pytest.raises(ParameterError):
            g.set(0)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = StatsRegistry()
        a = reg.counter("x_total")
        b = reg.counter("x_total")
        assert a is b
        a.inc()
        assert reg.snapshot()["x_total"] == 1.0

    def test_same_family_different_labels_are_distinct_samples(self):
        reg = StatsRegistry()
        reg.counter("r_total", labels={"source": "candidate"}).inc(2)
        reg.counter("r_total", labels={"source": "vague"}).inc(5)
        snap = reg.snapshot()
        assert snap['r_total{source="candidate"}'] == 2.0
        assert snap['r_total{source="vague"}'] == 5.0
        assert len(reg) == 2

    def test_kind_conflict_on_sample_raises(self):
        reg = StatsRegistry()
        reg.counter("x_total")
        with pytest.raises(ParameterError):
            reg.gauge("x_total")

    def test_kind_conflict_on_family_raises(self):
        reg = StatsRegistry()
        reg.counter("mixed", labels={"a": "1"})
        with pytest.raises(ParameterError):
            reg.gauge("mixed", labels={"a": "2"})

    def test_unknown_agg_rejected(self):
        reg = StatsRegistry()
        with pytest.raises(ParameterError):
            reg.gauge("g", agg="median")

    def test_contains_and_names(self):
        reg = StatsRegistry()
        reg.gauge("b")
        reg.counter("a_total")
        assert "a_total" in reg
        assert "missing" not in reg
        assert reg.names() == ["a_total", "b"]

    def test_specs_capture_help_and_agg(self):
        reg = StatsRegistry()
        reg.gauge_fn("occ", lambda: 0.5, help="occupancy", agg="mean")
        spec = reg.specs()["occ"]
        assert spec == MetricSpec(name="occ", kind="gauge",
                                  help="occupancy", agg="mean")


class TestAggregateSnapshots:
    SPECS = {
        "c_total": MetricSpec("c_total", "counter"),
        "occ": MetricSpec("occ", "gauge", agg="mean"),
        "peak": MetricSpec("peak", "gauge", agg="max"),
    }

    def test_sum_mean_max_rules(self):
        shards = [
            {"c_total": 3.0, "occ": 0.5, "peak": 2.0},
            {"c_total": 4.0, "occ": 0.3, "peak": 9.0},
        ]
        agg = aggregate_snapshots(shards, specs=self.SPECS)
        assert agg["c_total"] == 7.0
        assert agg["occ"] == pytest.approx(0.4)
        assert agg["peak"] == 9.0

    def test_mean_averages_only_over_carriers(self):
        shards = [{"occ": 0.6}, {"occ": 0.2}, {"c_total": 1.0}]
        agg = aggregate_snapshots(shards, specs=self.SPECS)
        assert agg["occ"] == pytest.approx(0.4)

    def test_unknown_samples_default_to_sum(self):
        agg = aggregate_snapshots([{"mystery": 1.0}, {"mystery": 2.0}],
                                  specs={})
        assert agg["mystery"] == 3.0

    def test_labelled_samples_use_family_spec(self):
        shards = [
            {'c_total{shard="0"}': 2.0, 'occ{shard="0"}': 0.8},
            {'c_total{shard="0"}': 3.0, 'occ{shard="0"}': 0.4},
        ]
        agg = aggregate_snapshots(shards, specs=self.SPECS)
        assert agg['c_total{shard="0"}'] == 5.0
        assert agg['occ{shard="0"}'] == pytest.approx(0.6)

    def test_empty_input(self):
        assert aggregate_snapshots([], specs=self.SPECS) == {}
