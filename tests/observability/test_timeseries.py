"""MetricStore/Series: bounded retention, accounting, derivations."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ParameterError
from repro.observability.timeseries import (
    DERIVATIONS,
    POINT_DERIVATIONS,
    STORE_METRIC_HELP,
    WINDOW_DERIVATIONS,
    MetricStore,
    Series,
)


def accounting_holds(series: Series) -> bool:
    return (
        series.fine_count + series.pending_count + series.coarse_weight
        + series.evicted
        == series.ingested
    )


class TestSeries:
    def test_fine_ring_keeps_newest_capacity_points(self):
        series = Series("s", capacity=8, downsample=2)
        for tick in range(50):
            series.append(float(tick), float(tick * 10))
        assert series.fine_count == 8
        ts, vs = series.points()
        assert ts.tolist() == [float(t) for t in range(42, 50)]
        assert vs.tolist() == [float(t * 10) for t in range(42, 50)]
        assert series.last == (49.0, 490.0)

    def test_rotated_points_fold_into_coarse_summaries(self):
        series = Series("s", capacity=4, downsample=2, coarse_capacity=100)
        for tick in range(12):
            series.append(float(tick), float(tick))
        # 8 rotated out -> 4 coarse groups of 2, none evicted.
        assert series.coarse_count == 4
        assert series.coarse_weight == 8
        assert series.evicted == 0
        t_end, mean, vmax, count = series.coarse()[0]
        assert (t_end, mean, vmax, count) == (1.0, 0.5, 1.0, 2)
        assert accounting_holds(series)

    def test_coarse_overflow_evicts_oldest_with_weight(self):
        series = Series("s", capacity=4, downsample=2, coarse_capacity=3)
        for tick in range(30):
            series.append(float(tick), float(tick))
        assert series.coarse_count == 3
        assert series.evicted > 0
        assert accounting_holds(series)
        # Newest summaries survive.
        assert series.coarse()[-1][0] == 25.0

    def test_downsample_zero_disables_coarse_tier(self):
        series = Series("s", capacity=4, downsample=0)
        for tick in range(10):
            series.append(float(tick), float(tick))
        assert series.coarse_count == 0
        assert series.pending_count == 0
        assert series.evicted == 6
        assert accounting_holds(series)

    def test_append_many_matches_scalar_appends(self):
        scalar = Series("a", capacity=16, downsample=4)
        bulk = Series("b", capacity=16, downsample=4)
        ts = np.arange(200, dtype=np.float64)
        vs = np.sqrt(ts + 1.0)
        for t, v in zip(ts, vs):
            scalar.append(float(t), float(v))
        # Mixed batch sizes exercise the pending-buffer carry.
        for begin in (0, 3, 50, 67, 130):
            end = {0: 3, 3: 50, 50: 67, 67: 130, 130: 200}[begin]
            bulk.append_many(ts[begin:end], vs[begin:end])
        assert bulk.ingested == scalar.ingested == 200
        assert np.array_equal(bulk.points()[0], scalar.points()[0])
        assert np.array_equal(bulk.points()[1], scalar.points()[1])
        assert bulk.coarse() == scalar.coarse()
        assert bulk.evicted == scalar.evicted
        assert accounting_holds(bulk)

    def test_append_many_rejects_mismatched_shapes(self):
        series = Series("s", capacity=4)
        with pytest.raises(ParameterError):
            series.append_many([1.0, 2.0], [1.0])

    def test_geometry_validation(self):
        with pytest.raises(ParameterError):
            Series("s", capacity=1)
        with pytest.raises(ParameterError):
            Series("s", downsample=-1)
        with pytest.raises(ParameterError):
            Series("s", coarse_capacity=-1)

    @settings(max_examples=40, deadline=None)
    @given(
        capacity=st.integers(min_value=2, max_value=20),
        downsample=st.integers(min_value=0, max_value=6),
        coarse_capacity=st.integers(min_value=0, max_value=10),
        batches=st.lists(
            st.integers(min_value=1, max_value=50), min_size=1, max_size=12
        ),
    )
    def test_accounting_invariant_under_random_geometry(
        self, capacity, downsample, coarse_capacity, batches
    ):
        series = Series(
            "s", capacity=capacity, downsample=downsample,
            coarse_capacity=coarse_capacity,
        )
        tick = 0
        for batch in batches:
            ts = np.arange(tick, tick + batch, dtype=np.float64)
            series.append_many(ts, ts * 2.0)
            tick += batch
            assert accounting_holds(series)
            assert series.fine_count <= capacity
            assert series.coarse_count <= max(coarse_capacity, 0)
            if downsample:
                assert series.pending_count < downsample


class TestMetricStoreCollection:
    def test_collect_one_series_per_sample(self):
        store = MetricStore(clock=lambda: 0.0)
        assert store.collect({"a_total": 1.0, "b": 2.0}, now=0.0)
        assert store.collect({"a_total": 2.0, "b": 3.0}, now=1.0)
        assert store.names() == ["a_total", "b"]
        assert store.points_ingested == 4
        assert len(store) == 2

    def test_step_throttle_skips_and_counts(self):
        store = MetricStore(step_seconds=5.0, clock=lambda: 0.0)
        assert store.collect({"a": 1.0}, now=0.0)
        assert not store.collect({"a": 2.0}, now=3.0)
        assert store.collect({"a": 3.0}, now=5.0)
        assert store.collections == 2
        assert store.collections_skipped == 1
        samples = store.samples()
        assert samples["qf_store_collections_skipped_total"] == 1.0

    def test_non_numeric_values_are_skipped(self):
        store = MetricStore(clock=lambda: 0.0)
        store.collect({"a": 1.0, "b": "not-a-number", "c": None}, now=0.0)
        assert store.names() == ["a"]

    def test_max_series_evicts_stalest(self):
        store = MetricStore(max_series=2, clock=lambda: 0.0)
        store.collect({"old": 1.0}, now=0.0)
        store.collect({"old": 2.0, "mid": 1.0}, now=1.0)
        # "old" saw an update at t=1 too; "mid" is now the stalest once
        # "old" keeps updating.
        store.collect({"old": 3.0, "new": 1.0}, now=2.0)
        assert "mid" not in store.names()
        assert store.series_evicted == 1
        # The evicted series' weight stays in the global accounting:
        # 3 appends to "old", 1 to the evicted "mid", 1 to "new".
        assert store.points_ingested == 5
        assert (
            store.points_ingested
            == store.retained_weight + store.points_evicted
        )

    def test_store_samples_are_registered_metrics(self):
        from repro.observability.registry import SPEC_INDEX

        store = MetricStore(clock=lambda: 0.0)
        store.collect({"a": 1.0}, now=0.0)
        for name in store.samples():
            assert name in STORE_METRIC_HELP
            assert name in SPEC_INDEX

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            MetricStore(step_seconds=-1.0)
        with pytest.raises(ParameterError):
            MetricStore(max_series=0)

    def test_concurrent_collect_and_window(self):
        store = MetricStore(clock=lambda: 0.0)
        errors = []

        def writer():
            for tick in range(300):
                store.collect({"a_total": float(tick)}, now=float(tick))

        def reader():
            try:
                for _ in range(300):
                    ts, vs = store.window("a_total", 1e9, now=300.0)
                    assert ts.size == vs.size
                    store.derive("value", "a_total")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestDerivations:
    @pytest.fixture()
    def store(self):
        store = MetricStore(clock=lambda: 9.0)
        for tick in range(10):
            store.collect(
                {"c_total": tick * 100.0, "g": float(tick % 4)},
                now=float(tick),
            )
        return store

    def test_rate_is_exact_over_window(self, store):
        assert store.derive("rate", "c_total", window=5.0, now=9.0) == 100.0

    def test_delta_is_last_minus_first(self, store):
        assert store.derive("delta", "c_total", window=4.0, now=9.0) == 400.0

    def test_rate_ignores_counter_resets(self):
        store = MetricStore(clock=lambda: 4.0)
        for tick, value in enumerate([100.0, 200.0, 0.0, 100.0, 200.0]):
            store.collect({"c_total": value}, now=float(tick))
        # Positive increments: 100 + 100 + 100 over 4 seconds.
        assert store.derive("rate", "c_total", window=10.0, now=4.0) == 75.0

    def test_labelled_series_pool_under_family_name(self):
        store = MetricStore(clock=lambda: 2.0)
        for tick in range(3):
            store.collect(
                {
                    'c_total{shard="0"}': tick * 10.0,
                    'c_total{shard="1"}': tick * 30.0,
                },
                now=float(tick),
            )
        # Per-series rates sum: 10/s + 30/s.
        assert store.derive("rate", "c_total", window=10.0, now=2.0) == 40.0
        # Exact sample name isolates one series.
        assert store.derive(
            "rate", 'c_total{shard="1"}', window=10.0, now=2.0
        ) == 30.0
        # value() sums the latest points.
        assert store.derive("value", "c_total") == 80.0

    def test_mean_max_min_are_exact(self, store):
        assert store.derive("mean", "g", window=100.0, now=9.0) == pytest.approx(
            np.mean([t % 4 for t in range(10)])
        )
        assert store.derive("max", "g", window=100.0, now=9.0) == 3.0
        assert store.derive("min", "g", window=100.0, now=9.0) == 0.0

    def test_percentile_within_log_bucket_resolution(self):
        store = MetricStore(clock=lambda: 999.0)
        values = np.linspace(1.0, 1000.0, 500)
        store.ingest_many(
            "lat", np.arange(values.size, dtype=np.float64), values
        )
        p90 = store.derive("p90", "lat", window=1e6, now=999.0)
        exact = float(np.percentile(values, 90.0))
        assert abs(p90 - exact) / exact < 0.15

    def test_value_and_age(self, store):
        assert store.derive("value", "g") == 1.0
        assert store.derive("age", "g", now=12.0) == 3.0

    def test_missing_metric_returns_none(self, store):
        for fn in DERIVATIONS:
            window = 10.0 if fn in WINDOW_DERIVATIONS else None
            assert store.derive(fn, "nope", window=window, now=9.0) is None

    def test_window_requirements_enforced(self, store):
        with pytest.raises(ParameterError):
            store.derive("rate", "c_total")
        with pytest.raises(ParameterError):
            store.derive("value", "c_total", window=5.0)
        with pytest.raises(ParameterError):
            store.derive("frobnicate", "c_total")

    def test_derivation_catalogue_is_consistent(self):
        assert set(DERIVATIONS) == set(POINT_DERIVATIONS) | set(
            WINDOW_DERIVATIONS
        )


class TestSoak:
    def test_ten_million_tick_soak_stays_bounded(self):
        """Acceptance: 10M ingested points hold retention <= the
        configured bound, with eviction counters accounting for every
        point not retained."""
        store = MetricStore(
            capacity=240, downsample=8, coarse_capacity=240,
            clock=lambda: 0.0,
        )
        total = 10_000_000
        batch = 100_000
        series_names = [f"soak_{i}" for i in range(4)]
        tick = 0
        for _ in range(total // (batch * len(series_names))):
            ts = np.arange(tick, tick + batch, dtype=np.float64)
            for name in series_names:
                store.ingest_many(name, ts, ts * 0.5)
            tick += batch
        assert store.points_ingested == total
        # Per-series bound: fine ring + pending group + coarse ring.
        per_series_bound = 240 + 8 + 240
        assert store.retained_points <= per_series_bound * len(series_names)
        assert (
            store.points_ingested
            == store.retained_weight + store.points_evicted
        )
        # The memory estimate stays a few tens of KiB, not O(total).
        assert store.nbytes < 64 * 1024
        # Newest points are exact: the fine ring ends at the last tick.
        ts, _ = store.window("soak_0", 1e12, now=float(tick))
        assert ts[-1] == float(tick - 1)
