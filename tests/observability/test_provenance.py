"""Tests for repro.observability.provenance.

The integration tests assert the acceptance property: every report
emitted by a ``collect_provenance=True`` filter carries a provenance
record consistent with the filter's own state at emission.
"""

import json

import pytest

from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.observability.provenance import ReportProvenance, provenance_record

CRIT = Criteria(delta=0.5, threshold=10.0, epsilon=2.0)


def make_provenance(**overrides):
    base = dict(
        part="candidate", bucket=3, fingerprint=77, qweight=50.0,
        threshold=10.0, bucket_occupancy=2, replacements=1,
        items_since_reset=20, resets=0,
    )
    base.update(overrides)
    return ReportProvenance(**base)


class TestReportProvenance:
    def test_frozen(self):
        prov = make_provenance()
        with pytest.raises(AttributeError):
            prov.bucket = 9

    def test_as_dict_round_trips_through_json(self):
        prov = make_provenance()
        assert json.loads(json.dumps(prov.as_dict())) == prov.as_dict()
        assert prov.as_dict()["part"] == "candidate"


class TestProvenanceRecord:
    def test_record_without_provenance_is_dumpable(self):
        qf = QuantileFilter(CRIT, num_buckets=8, vague_width=16)
        report = None
        for _ in range(30):
            report = qf.insert("k", 50.0) or report
        assert report is not None and report.provenance is None
        record = provenance_record(report)
        assert record["provenance"] is None
        json.dumps(record)

    def test_non_primitive_keys_become_repr(self):
        qf = QuantileFilter(
            CRIT, num_buckets=8, vague_width=16, collect_provenance=True
        )
        report = None
        for _ in range(30):
            report = qf.insert(("src", 8080), 50.0) or report
        record = provenance_record(report)
        assert record["key"] == repr(("src", 8080))
        json.dumps(record)


class TestFilterIntegration:
    def test_provenance_matches_filter_state(self):
        qf = QuantileFilter(
            CRIT, num_buckets=8, vague_width=32, counter_kind="float",
            collect_provenance=True, seed=1,
        )
        reports = []
        qf._on_report = reports.append
        for i in range(200):
            qf.insert(i % 5, 40.0)
        assert reports
        for report in reports:
            prov = report.provenance
            assert prov is not None
            assert prov.part == report.source
            assert prov.qweight == report.qweight
            assert prov.threshold == CRIT.report_threshold
            assert 0 <= prov.bucket < qf.candidate.num_buckets
            assert 1 <= prov.bucket_occupancy <= qf.candidate.bucket_size
            assert prov.items_since_reset <= qf.items_processed
            assert prov.resets == 0

    def test_off_by_default(self):
        qf = QuantileFilter(CRIT, num_buckets=8, vague_width=16)
        report = None
        for _ in range(30):
            report = qf.insert("k", 50.0) or report
        assert report.provenance is None

    def test_items_since_reset_restarts_after_reset(self):
        qf = QuantileFilter(
            CRIT, num_buckets=8, vague_width=16, collect_provenance=True
        )
        for _ in range(50):
            qf.insert("k", 50.0)
        qf.reset()
        report = None
        for _ in range(30):
            report = qf.insert("k", 50.0) or report
        assert report is not None
        assert report.provenance.items_since_reset <= 30
        assert report.provenance.resets == 1

    def test_vague_reports_carry_vague_part(self):
        # One bucket of one slot: the second key must live in the vague
        # part, so its report's provenance says so.
        qf = QuantileFilter(
            CRIT, num_buckets=1, bucket_size=1, vague_width=64,
            counter_kind="float", collect_provenance=True, seed=0,
        )
        reports = []
        qf._on_report = reports.append
        for _ in range(60):
            qf.insert("a", 50.0)
            qf.insert("b", 50.0)
        vague = [r for r in reports if r.source == "vague"]
        assert vague
        for report in vague:
            assert report.provenance.part == "vague"
            assert report.provenance.bucket_occupancy == 1

    def test_provenance_does_not_change_detection(self):
        kwargs = dict(
            num_buckets=4, bucket_size=2, vague_width=32,
            counter_kind="float", seed=7,
        )
        plain = QuantileFilter(CRIT, **kwargs)
        audited = QuantileFilter(CRIT, collect_provenance=True, **kwargs)
        for i in range(500):
            key, value = i % 23, 40.0 + (i % 5) * 10.0
            plain.insert(key, value)
            audited.insert(key, value)
        assert audited.reported_keys == plain.reported_keys
        assert audited.report_count == plain.report_count
