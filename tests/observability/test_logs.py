"""Tests for repro.observability.logs."""

import io
import json
import logging

from repro.observability.logs import JsonLogFormatter, configure_json_logging


def make_logger(name):
    stream = io.StringIO()
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLogFormatter())
    logger = logging.getLogger(name)
    logger.handlers = [handler]
    logger.setLevel(logging.INFO)
    logger.propagate = False
    return logger, stream


class TestJsonLogFormatter:
    def test_one_json_object_per_record(self):
        logger, stream = make_logger("t_json_basic")
        logger.info("pipeline started")
        logger.warning("queue slow")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["message"] == "pipeline started"
        assert first["level"] == "INFO"
        assert first["logger"] == "t_json_basic"
        assert isinstance(first["created"], float)
        assert json.loads(lines[1])["level"] == "WARNING"

    def test_extra_fields_become_payload(self):
        logger, stream = make_logger("t_json_extra")
        logger.info(
            "pipeline finished", extra={"event": "finish", "items": 20000}
        )
        record = json.loads(stream.getvalue())
        assert record["event"] == "finish"
        assert record["items"] == 20000

    def test_unserialisable_extras_fall_back_to_repr(self):
        logger, stream = make_logger("t_json_repr")
        logger.info("odd", extra={"payload": {1, 2}})
        record = json.loads(stream.getvalue())
        assert record["payload"] == repr({1, 2})

    def test_exceptions_included_as_text(self):
        logger, stream = make_logger("t_json_exc")
        try:
            raise ValueError("boom")
        except ValueError:
            logger.exception("worker died")
        record = json.loads(stream.getvalue())
        assert "boom" in record["exc_info"]

    def test_percent_formatting_still_applies(self):
        logger, stream = make_logger("t_json_fmt")
        logger.info("processed %d items", 42)
        assert json.loads(stream.getvalue())["message"] == "processed 42 items"


class TestConfigureJsonLogging:
    def test_installs_json_handler_once(self):
        stream = io.StringIO()
        logger = configure_json_logging(stream=stream, name="t_cfg_once")
        again = configure_json_logging(stream=stream, name="t_cfg_once")
        assert logger is again
        assert (
            sum(
                isinstance(h.formatter, JsonLogFormatter)
                for h in logger.handlers
            )
            == 1
        )
        logger.info("hello")
        assert json.loads(stream.getvalue())["message"] == "hello"

    def test_pipeline_logger_inherits(self):
        stream = io.StringIO()
        configure_json_logging(stream=stream, name="t_cfg_parent")
        child = logging.getLogger("t_cfg_parent.pipeline")
        child.info("from child", extra={"event": "start"})
        record = json.loads(stream.getvalue())
        assert record["logger"] == "t_cfg_parent.pipeline"
        assert record["event"] == "start"
