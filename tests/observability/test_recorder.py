"""Flight recorder: ring invariant, triggers, bundles, replay."""

import gzip
import json

import numpy as np
import pytest

from repro.common.errors import ParameterError, TraceFormatError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.core.vectorized import BatchQuantileFilter
from repro.detection.threshold import ThresholdControlLoop, ThresholdController
from repro.observability.health import HealthModel
from repro.observability.recorder import (
    BUNDLE_SCHEMA_VERSION,
    FlightRecorder,
    TriggerPolicy,
    list_incidents,
    load_bundle,
    observe_recorder,
    replay_bundle,
)
from repro.observability.registry import StatsRegistry

CRIT = Criteria(delta=0.9, threshold=100.0, epsilon=5.0)
GEOMETRY = dict(num_buckets=64, bucket_size=4, vague_width=512, seed=3)


def make_stream(n, seed=11):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 60, size=n).tolist()
    values = np.where(
        rng.random(n) < 0.15, 400.0, rng.uniform(0.0, 90.0, n)
    ).tolist()
    return keys, values


def scalar_filter(**overrides):
    geometry = dict(GEOMETRY)
    geometry.update(overrides)
    return QuantileFilter(CRIT, **geometry)


def health_report(filt, verdict_hint=None):
    """A real HealthReport over the filter's own counters."""
    report = HealthModel().evaluate({
        "qf_items_total": float(filt.items_processed),
        "qf_reports_total": float(filt.report_count),
    })
    if verdict_hint is not None:
        object.__setattr__(report, "verdict", verdict_hint)
    return report


class TestRingInvariant:
    def test_feed_replays_bit_identically(self):
        filt = scalar_filter()
        rec = FlightRecorder(filt, max_chunks=4)
        keys, values = make_stream(6_000)
        for begin in range(0, len(keys), 500):
            rec.feed(keys[begin:begin + 500], values[begin:begin + 500])
        result = replay_bundle(rec.bundle("test"))
        assert result.ok, result.mismatches
        assert result.fingerprint_ok and result.verdict_ok

    def test_ring_rotates_and_stays_replayable(self):
        filt = scalar_filter()
        rec = FlightRecorder(filt, max_chunks=3)
        keys, values = make_stream(8_000)
        for begin in range(0, len(keys), 400):
            rec.feed(keys[begin:begin + 400], values[begin:begin + 400])
        # 20 chunks through a 3-slot ring: rotations happened, the
        # retained window is bounded, and base + chunks still equals
        # the live filter.
        assert rec.retained_chunks <= 3
        assert rec.snapshots_total > 1
        result = replay_bundle(rec.bundle("test"))
        assert result.ok, result.mismatches
        assert result.items_replayed == rec.retained_items

    def test_insert_tap_seals_chunks_and_replays(self):
        filt = scalar_filter()
        rec = FlightRecorder(filt, max_chunks=4, chunk_items=256)
        keys, values = make_stream(2_000)
        reports = 0
        for key, value in zip(keys, values):
            if rec.insert(key, value) is not None:
                reports += 1
        assert reports == filt.report_count
        # 2000 items / 256 per chunk leaves a partial pending chunk;
        # bundling seals it so nothing recorded is lost.
        bundle = rec.bundle("test")
        assert sum(len(c["keys"]) for c in bundle["chunks"]) \
            == rec.retained_items
        result = replay_bundle(bundle)
        assert result.ok, result.mismatches

    def test_insert_and_feed_mix_matches_unrecorded_filter(self):
        keys, values = make_stream(3_000)
        recorded = scalar_filter()
        rec = FlightRecorder(recorded, max_chunks=8, chunk_items=512)
        plain = scalar_filter()
        for key, value in zip(keys[:1_000], values[:1_000]):
            rec.insert(key, value)
        rec.feed(keys[1_000:], values[1_000:])
        plain.insert_many(keys, values)
        # Recording must never perturb detection behaviour.
        assert recorded.report_count == plain.report_count
        assert recorded.reported_keys == plain.reported_keys

    def test_batch_engine_feed_replays(self):
        filt = BatchQuantileFilter(CRIT, 1 << 16, seed=5, chunk_size=1_024)
        rec = FlightRecorder(filt, max_chunks=4)
        keys, values = make_stream(6_000)
        for begin in range(0, len(keys), 1_024):
            rec.feed(keys[begin:begin + 1_024], values[begin:begin + 1_024])
        result = replay_bundle(rec.bundle("test"))
        assert result.ok, result.mismatches
        assert result.engine == "batch"

    def test_insert_tap_rejects_batch_engine(self):
        filt = BatchQuantileFilter(CRIT, 1 << 16, seed=5)
        rec = FlightRecorder(filt)
        with pytest.raises(ParameterError, match="scalar engine"):
            rec.insert(1, 2.0)

    def test_discontinuity_rebases_across_retarget(self):
        filt = scalar_filter()
        rec = FlightRecorder(filt, max_chunks=8)
        keys, values = make_stream(4_000)
        rec.feed(keys[:2_000], values[:2_000])
        filt.retarget(50.0)
        rec.note_discontinuity("retarget:50.0")
        rec.feed(keys[2_000:], values[2_000:])
        # The retained window starts AFTER the retarget, so replay sees
        # a consistent threshold throughout.
        bundle = rec.bundle("test")
        assert bundle["manifest"]["criteria"]["threshold"] == 50.0
        assert any(
            p.get("discontinuity") == "retarget:50.0"
            for p in bundle["forensics"]["probes"]
        )
        result = replay_bundle(bundle)
        assert result.ok, result.mismatches

    def test_parameter_validation(self):
        filt = scalar_filter()
        with pytest.raises(ParameterError):
            FlightRecorder(filt, max_chunks=0)
        with pytest.raises(ParameterError):
            FlightRecorder(filt, chunk_items=0)
        with pytest.raises(ParameterError):
            FlightRecorder(filt, max_incidents=0)


class TestForensics:
    def test_periodic_probes_capture_structure_and_stats(self):
        filt = scalar_filter()
        registry = StatsRegistry()
        registry.counter_fn("test_total", lambda: 7.0, help="test")
        rec = FlightRecorder(filt, forensic_every=2, registry=registry)
        keys, values = make_stream(2_000)
        for begin in range(0, len(keys), 250):
            rec.feed(keys[begin:begin + 250], values[begin:begin + 250])
        bundle = rec.bundle("test")
        probes = [p for p in bundle["forensics"]["probes"] if "probe" in p]
        assert probes, "forensic_every=2 over 8 chunks must probe"
        assert "stats" in probes[-1]
        assert probes[-1]["stats"]["test_total"] == 7.0

    def test_control_loop_decisions_ride_the_bundle(self):
        filt = scalar_filter()
        rec = FlightRecorder(filt)
        loop = ThresholdControlLoop(
            ThresholdController(CRIT.threshold, CRIT.delta,
                                warmup_items=64, min_dwell_items=64),
            filt, on_decision=rec.record_decision,
        )
        keys, values = make_stream(1_000)
        for begin in range(0, len(keys), 200):
            chunk_values = values[begin:begin + 200]
            rec.feed(keys[begin:begin + 200], chunk_values)
            loop.observe_many(chunk_values)
        decisions = rec.bundle("test")["forensics"]["decisions"]
        assert decisions
        assert {"retargeted", "threshold", "items_seen"} <= set(decisions[-1])

    def test_provenance_tap(self):
        filt = QuantileFilter(CRIT, collect_provenance=True, **GEOMETRY)
        rec = FlightRecorder(filt)
        keys, values = make_stream(2_000)
        rec.feed(keys, values)
        assert filt.report_count > 0
        prov = rec.bundle("test")["forensics"]["provenance"]
        assert len(prov) == filt.report_count


class TestTriggerPolicy:
    def test_flip_dumps_once_and_dedupes(self, tmp_path):
        filt = scalar_filter()
        rec = FlightRecorder(filt, incident_dir=tmp_path)
        keys, values = make_stream(1_000)
        rec.feed(keys, values)
        assert rec.observe_health(health_report(filt, "ok")) is None
        path = rec.observe_health(health_report(filt, "degraded"))
        assert path is not None and path.exists()
        manifest = json.loads(
            path.with_name(path.name[:-len(".json.gz")]
                           + ".manifest.json").read_text()
        )
        assert manifest["reason"] == "verdict_flip:ok->degraded"
        # Staying degraded must not re-dump.
        assert rec.observe_health(health_report(filt, "degraded")) is None
        assert rec.dumps_total == 1

    def test_critical_first_report_dumps_without_flip(self, tmp_path):
        filt = scalar_filter()
        rec = FlightRecorder(filt, incident_dir=tmp_path)
        rec.feed(*make_stream(500))
        # No previous verdict -> no flip, but on_critical still fires.
        path = rec.observe_health(health_report(filt, "critical"))
        assert path is not None
        assert load_bundle(path)["manifest"]["reason"] == "critical"

    def test_policy_off_never_dumps(self, tmp_path):
        filt = scalar_filter()
        rec = FlightRecorder(
            filt, incident_dir=tmp_path,
            policy=TriggerPolicy(on_critical=False, on_flip=False),
        )
        rec.feed(*make_stream(500))
        assert rec.observe_health(health_report(filt, "ok")) is None
        assert rec.observe_health(health_report(filt, "critical")) is None
        assert not list(tmp_path.iterdir())

    def test_memory_only_recorder_never_dumps(self):
        filt = scalar_filter()
        rec = FlightRecorder(filt)  # no incident_dir
        rec.feed(*make_stream(500))
        assert rec.observe_health(health_report(filt, "critical")) is None
        with pytest.raises(ParameterError, match="incident_dir"):
            rec.dump("explicit")


class TestBundlesOnDisk:
    def test_dump_round_trips_and_replays(self, tmp_path):
        filt = scalar_filter()
        rec = FlightRecorder(
            filt, incident_dir=tmp_path, config={"dataset": "unit"},
        )
        keys, values = make_stream(3_000)
        for begin in range(0, len(keys), 500):
            rec.feed(keys[begin:begin + 500], values[begin:begin + 500])
        path = rec.dump("explicit")
        bundle = load_bundle(path)
        assert bundle["schema_version"] == BUNDLE_SCHEMA_VERSION
        manifest = bundle["manifest"]
        assert manifest["reason"] == "explicit"
        assert manifest["engine"] == "scalar"
        assert manifest["config"] == {"dataset": "unit"}
        assert manifest["criteria"]["threshold"] == CRIT.threshold
        result = replay_bundle(path)
        assert result.ok, result.mismatches
        assert result.items_replayed == manifest["window_items"]

    def test_gzip_payload_is_deterministic_bytes(self, tmp_path):
        # mtime=0 in the gzip header: identical content -> identical
        # bytes, so bundles diff cleanly in artifact stores.
        filt = scalar_filter()
        rec = FlightRecorder(filt, incident_dir=tmp_path)
        rec.feed(*make_stream(500))
        path = rec.dump("explicit")
        raw = path.read_bytes()
        inner = gzip.decompress(raw)
        assert gzip.compress(inner, mtime=0) == raw

    def test_prune_keeps_newest(self, tmp_path):
        filt = scalar_filter()
        rec = FlightRecorder(filt, incident_dir=tmp_path, max_incidents=2)
        rec.feed(*make_stream(200))
        paths = [rec.dump("explicit") for _ in range(4)]
        survivors = sorted(tmp_path.glob("incident-*.json.gz"))
        assert survivors == sorted(paths[-2:])
        # Sidecars are pruned in lockstep.
        assert len(list(tmp_path.glob("incident-*.manifest.json"))) == 2

    def test_list_incidents_recursive_and_newest_first(self, tmp_path):
        filt = scalar_filter()
        rec = FlightRecorder(filt, incident_dir=tmp_path / "shard-0")
        rec.feed(*make_stream(200))
        first = rec.dump("explicit")
        second = rec.dump("explicit")
        manifests = list_incidents(tmp_path)
        assert [m["bundle"] for m in manifests] \
            == [second.name, first.name]
        assert manifests[0]["path"] == str(second)
        assert list_incidents(tmp_path / "missing") == []

    def test_tampered_bundle_fails_replay(self, tmp_path):
        filt = scalar_filter()
        rec = FlightRecorder(filt, incident_dir=tmp_path)
        keys, values = make_stream(2_000)
        rec.feed(keys, values)
        path = rec.dump("explicit")
        bundle = load_bundle(path)
        bundle["chunks"][0]["values"][7] += 1_000.0
        result = replay_bundle(bundle)
        assert not result.ok
        assert not result.fingerprint_ok

    def test_unreadable_and_wrong_schema_raise(self, tmp_path):
        garbage = tmp_path / "incident-bad.json.gz"
        garbage.write_bytes(b"not a bundle")
        with pytest.raises(TraceFormatError, match="cannot read"):
            load_bundle(garbage)
        wrong = tmp_path / "incident-wrong.json"
        wrong.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(TraceFormatError, match="unsupported"):
            load_bundle(wrong)


class TestMetrics:
    def test_observe_recorder_exports_gauges(self):
        filt = scalar_filter()
        rec = FlightRecorder(filt, max_chunks=4)
        registry = observe_recorder(rec)
        rec.feed(*make_stream(1_000))
        snap = registry.snapshot()
        assert snap["qf_recorder_retained_chunks"] == rec.retained_chunks
        assert snap["qf_recorder_retained_items"] == 1_000
        assert snap["qf_recorder_retained_bytes"] == 16_000
        assert snap["qf_recorder_snapshots_total"] == rec.snapshots_total
        assert snap["qf_recorder_dumps_total"] == 0

    def test_dump_counters_advance(self, tmp_path):
        filt = scalar_filter()
        rec = FlightRecorder(filt, incident_dir=tmp_path)
        registry = observe_recorder(rec, labels={"role": "shard-0"})
        rec.feed(*make_stream(300))
        rec.dump("explicit")
        snap = registry.snapshot()
        assert snap['qf_recorder_dumps_total{role="shard-0"}'] == 1
        assert snap['qf_recorder_last_dump_unix{role="shard-0"}'] > 0
