"""Tests for repro.observability.tracing."""

import json

import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.core.vectorized import BatchQuantileFilter
from repro.observability.tracing import (
    FILTER_EVENTS,
    PIPELINE_SPANS,
    FilterTraceHook,
    Tracer,
    attach_filter_tracing,
)

CRIT = Criteria(delta=0.5, threshold=10.0, epsilon=2.0)


class TestTracer:
    def test_span_context_manager_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("stage_a", items=7):
            pass
        (event,) = tracer.chrome_events()
        assert event["name"] == "stage_a"
        assert event["ph"] == "X"
        assert event["dur"] >= 0.0
        assert event["args"] == {"items": 7}
        assert event["pid"] > 0 and event["tid"] > 0

    def test_add_span_microsecond_conversion(self):
        tracer = Tracer()
        tracer.add_span("s", 1.0, 1.5)
        (event,) = tracer.chrome_events()
        assert event["ts"] == pytest.approx(1.0e6)
        assert event["dur"] == pytest.approx(0.5e6)

    def test_add_span_clamps_negative_duration(self):
        tracer = Tracer()
        tracer.add_span("s", 2.0, 1.0)
        assert tracer.chrome_events()[0]["dur"] == 0.0

    def test_instant_event_shape(self):
        tracer = Tracer()
        tracer.instant("report", key="'k'")
        (event,) = tracer.chrome_events()
        assert event["ph"] == "i"
        assert event["s"] == "p"
        assert event["args"]["key"] == "'k'"

    def test_ring_buffer_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.instant(f"e{i}")
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [e["name"] for e in tracer.chrome_events()] == [
            "e2", "e3", "e4"
        ]

    def test_invalid_capacity(self):
        with pytest.raises(ParameterError):
            Tracer(capacity=0)

    def test_extend_folds_foreign_events(self):
        worker, master = Tracer(), Tracer()
        worker.add_span("shard_insert", 0.0, 0.1)
        master.extend(worker.chrome_events())
        assert master.chrome_events()[0]["name"] == "shard_insert"

    def test_chrome_trace_is_json_serialisable_and_perfetto_shaped(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        trace = json.loads(json.dumps(tracer.chrome_trace(run="t")))
        assert trace["displayTimeUnit"] == "ms"
        assert isinstance(trace["traceEvents"], list)
        assert trace["metadata"]["run"] == "t"

    def test_chrome_trace_reports_drops_in_metadata(self):
        tracer = Tracer(capacity=1)
        tracer.instant("a")
        tracer.instant("b")
        assert tracer.chrome_trace()["metadata"]["droppedEvents"] == 1

    def test_write_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("pipeline_feed"):
            pass
        path = tmp_path / "out.trace.json"
        tracer.write(path, dataset="demo")
        trace = json.loads(path.read_text())
        assert trace["traceEvents"][0]["name"] == "pipeline_feed"
        assert trace["metadata"]["dataset"] == "demo"

    def test_clear_resets_drop_counter(self):
        tracer = Tracer(capacity=1)
        tracer.instant("a")
        tracer.instant("b")
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0


class TestFilterTraceHook:
    def test_sample_every_one_records_everything(self):
        tracer = Tracer()
        hook = FilterTraceHook(tracer, sample_every=1)
        for i in range(5):
            hook("report", "k", 3, 50.0, i)
        assert len(tracer) == 5

    def test_sampling_keeps_first_of_each_stride(self):
        tracer = Tracer()
        hook = FilterTraceHook(tracer, sample_every=10)
        for i in range(25):
            hook("report", "k", 3, 50.0, i)
        recorded = [e["args"]["item_index"] for e in tracer.chrome_events()]
        assert recorded == [0, 10, 20]

    def test_sampling_counters_independent_per_kind(self):
        tracer = Tracer()
        hook = FilterTraceHook(tracer, sample_every=10)
        for kind in FILTER_EVENTS:
            hook(kind, "k", 0, 1.0, 0)
        # First occurrence of each kind always records.
        assert sorted(e["name"] for e in tracer.chrome_events()) == sorted(
            FILTER_EVENTS
        )

    def test_invalid_sample_every(self):
        with pytest.raises(ParameterError):
            FilterTraceHook(Tracer(), sample_every=0)


class TestAttachFilterTracing:
    def test_traced_filter_emits_all_event_kinds(self):
        tracer = Tracer()
        # Tiny geometry forces elections, swaps and reports.
        qf = QuantileFilter(
            CRIT, num_buckets=2, bucket_size=1, vague_width=16,
            counter_kind="float", seed=3,
        )
        attach_filter_tracing(qf, tracer, sample_every=1)
        for i in range(400):
            qf.insert(i % 37, 60.0)
        names = {e["name"] for e in tracer.chrome_events()}
        assert set(FILTER_EVENTS) <= names

    def test_untraced_filter_has_no_hook(self):
        qf = QuantileFilter(CRIT, num_buckets=8, vague_width=16)
        assert qf.trace_hook is None

    def test_batch_engine_rejected(self):
        bf = BatchQuantileFilter(CRIT, num_buckets=8, vague_width=16)
        with pytest.raises(ParameterError):
            attach_filter_tracing(bf, Tracer())

    def test_tracing_does_not_change_reports(self):
        kwargs = dict(
            num_buckets=4, bucket_size=2, vague_width=32,
            counter_kind="float", seed=7,
        )
        plain = QuantileFilter(CRIT, **kwargs)
        traced = QuantileFilter(CRIT, **kwargs)
        attach_filter_tracing(traced, Tracer(), sample_every=1)
        for i in range(500):
            key, value = i % 23, 40.0 + (i % 5) * 10.0
            plain.insert(key, value)
            traced.insert(key, value)
        assert traced.reported_keys == plain.reported_keys
        assert traced.report_count == plain.report_count


def test_span_name_constants_documented():
    """The constants CI asserts against stay stable."""
    assert PIPELINE_SPANS == (
        "pipeline_feed", "pipeline_merge", "pipeline_collect",
        "shard_insert", "shard_queue_wait",
    )
    assert FILTER_EVENTS == ("candidate_elect", "candidate_swap", "report")
