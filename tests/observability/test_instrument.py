"""observe_filter over every filter flavour, plus the package doctests."""

import doctest

import numpy as np
import pytest

import repro.observability
import repro.observability.exporters
import repro.observability.instrument
import repro.observability.registry
from repro import (
    BatchQuantileFilter,
    Criteria,
    QuantileFilter,
    WindowedQuantileFilter,
)
from repro.common.errors import ParameterError
from repro.observability import observe_filter
from repro.observability.instrument import FILTER_METRIC_HELP
from repro.observability.registry import SPEC_INDEX, StatsRegistry

CRIT = Criteria(delta=0.5, threshold=10.0, epsilon=2.0)


def test_every_filter_family_has_a_registered_spec():
    for name in FILTER_METRIC_HELP:
        spec = SPEC_INDEX[name]
        expected_kind = "counter" if name.endswith("_total") else "gauge"
        assert spec.kind == expected_kind
        assert spec.help == FILTER_METRIC_HELP[name]


class TestScalarFilter:
    def make(self):
        return QuantileFilter(CRIT, num_buckets=8, vague_width=16)

    def test_full_schema_before_any_traffic(self):
        stats = observe_filter(self.make())
        snap = stats.snapshot()
        assert snap["qf_items_total"] == 0.0
        assert snap['qf_reports_total{source="candidate"}'] == 0.0
        assert snap['qf_reports_total{source="vague"}'] == 0.0
        assert snap["qf_candidate_occupancy"] == 0.0
        assert snap["qf_estimated_bytes"] > 0.0

    def test_counters_track_real_traffic(self):
        qf = self.make()
        stats = observe_filter(qf)
        reports = 0
        for i in range(200):
            if qf.insert(f"key-{i % 4}", 50.0) is not None:
                reports += 1
        snap = stats.snapshot()
        assert snap["qf_items_total"] == 200.0
        assert (snap['qf_reports_total{source="candidate"}']
                + snap['qf_reports_total{source="vague"}']) == reports
        assert reports >= 1
        assert snap["qf_reported_keys"] == len(qf.reported_keys)
        assert snap["qf_candidate_entries"] == qf.candidate.entry_count()
        assert 0.0 < snap["qf_candidate_hit_rate"] <= 1.0

    def test_reset_and_merge_counters(self):
        a, b = self.make(), self.make()
        stats = observe_filter(a)
        for i in range(50):
            a.insert(f"k{i}", 5.0)
            b.insert(f"k{i}", 5.0)
        a.merge(b)
        a.reset()
        snap = stats.snapshot()
        assert snap["qf_merges_total"] == 1.0
        assert snap["qf_resets_total"] == 1.0

    def test_observing_twice_returns_same_registry(self):
        qf = self.make()
        assert observe_filter(qf) is observe_filter(qf)

    def test_shared_registry_requires_distinct_labels(self):
        reg = StatsRegistry()
        observe_filter(self.make(), registry=reg, labels={"shard": "0"})
        with pytest.raises(ParameterError):
            observe_filter(self.make(), registry=reg, labels={"shard": "0"})
        # A distinct label set coexists fine.
        observe_filter(self.make(), registry=reg, labels={"shard": "1"})
        snap = reg.snapshot()
        assert 'qf_items_total{shard="0"}' in snap
        assert 'qf_items_total{shard="1"}' in snap


class TestBatchFilter:
    def test_tallies_flip_on_and_match_traffic(self):
        bf = BatchQuantileFilter(CRIT, num_buckets=64, vague_width=64)
        assert bf.stats_tallies is False
        stats = observe_filter(bf)
        assert bf.stats_tallies is True
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 16, size=5_000).astype(np.int64)
        values = np.full(5_000, 50.0)
        bf.process(keys, values)
        snap = stats.snapshot()
        assert snap["qf_items_total"] == 5_000.0
        assert snap["qf_candidate_hits_total"] > 0.0
        assert snap['qf_reports_total{source="candidate"}'] >= 1.0
        assert snap["qf_candidate_entries"] == bf.entry_count()
        assert snap["qf_candidate_occupancy"] == pytest.approx(bf.occupancy())
        assert snap["qf_vague_saturation"] == 0.0

    def test_disabled_tallies_stay_zero(self):
        bf = BatchQuantileFilter(CRIT, num_buckets=64, vague_width=64)
        rng = np.random.default_rng(7)
        bf.process(rng.integers(0, 16, size=1_000).astype(np.int64),
                   np.full(1_000, 50.0))
        assert bf.candidate_hits == 0
        assert bf.vague_inserts == 0
        assert bf.swaps == 0


class TestWindowedFilter:
    def test_window_metrics(self):
        wf = WindowedQuantileFilter(CRIT, memory_bytes=4096, window_items=50)
        stats = observe_filter(wf)
        for _ in range(120):
            wf.insert("key-a", 50.0)
        snap = stats.snapshot()
        assert snap["qf_items_total"] == 120.0
        assert snap["qf_window_resets_total"] >= 2.0
        assert 0.0 <= snap["qf_window_fill"] <= 1.0
        assert snap["qf_reports_total"] == wf.report_count


def test_observability_doctests_all_pass():
    # Tier-1 runs from tests/; CI additionally runs
    # `pytest --doctest-modules src/repro/observability`.  Folding the
    # doctests in here keeps both gates equivalent.
    import repro.observability.cli

    for mod in (
        repro.observability,
        repro.observability.registry,
        repro.observability.exporters,
        repro.observability.instrument,
        repro.observability.cli,
    ):
        result = doctest.testmod(mod)
        assert result.failed == 0, (
            f"{mod.__name__}: {result.failed} doctest failures")
        assert result.attempted > 0, f"{mod.__name__}: no doctests collected"


class TestThresholdMetrics:
    def test_gauge_tracks_retargets(self):
        qf = QuantileFilter(CRIT, num_buckets=8, vague_width=16)
        stats = observe_filter(qf)
        snap = stats.snapshot()
        assert snap["qf_threshold"] == CRIT.threshold
        assert snap["qf_retargets_total"] == 0.0
        qf.retarget(25.0)
        snap = stats.snapshot()
        assert snap["qf_threshold"] == 25.0
        assert snap["qf_retargets_total"] == 1.0

    def test_threshold_gauge_averages_across_shards(self):
        from repro.observability.registry import aggregate_snapshots

        snapshots = []
        for _ in range(3):
            filt = QuantileFilter(CRIT, num_buckets=8, vague_width=16)
            stats = observe_filter(filt)
            filt.retarget(40.0)
            snapshots.append(stats.snapshot())
        aggregate = aggregate_snapshots(snapshots)
        # All shards hold the same T; mean aggregation reproduces it.
        assert aggregate["qf_threshold"] == 40.0
        assert aggregate["qf_retargets_total"] == 3.0

    def test_windowed_filter_exposes_threshold(self):
        wf = WindowedQuantileFilter(CRIT, memory_bytes=4096,
                                    window_items=50)
        stats = observe_filter(wf)
        wf.retarget(33.0)
        snap = stats.snapshot()
        assert snap["qf_threshold"] == 33.0
        assert snap["qf_retargets_total"] == 1.0
