"""Alert grammar, rule loading, engine state machine, exports."""

import json
import sys

import pytest

from repro.common.errors import ParameterError
from repro.observability.alerts import (
    DEFAULT_RULE_TABLES,
    SEVERITIES,
    STATE_VALUES,
    STATES,
    AlertEngine,
    AlertRule,
    default_rules,
    load_rules,
    parse_condition,
    parse_duration,
    parse_rules,
)
from repro.observability.timeseries import MetricStore

RULE_PACK_TOML = "benchmarks/alerts/default.toml"
RULE_PACK_JSON = "benchmarks/alerts/default.json"


class TestGrammar:
    @pytest.mark.parametrize(
        "text,expected",
        [("90", 90.0), (15, 15.0), ("500ms", 0.5), ("45s", 45.0),
         ("2m", 120.0), ("1.5h", 5400.0), ("0", 0.0)],
    )
    def test_parse_duration(self, text, expected):
        assert parse_duration(text) == expected

    @pytest.mark.parametrize("text", ["-5", "5x", "", "s", "4 minutes"])
    def test_parse_duration_rejects(self, text):
        with pytest.raises(ParameterError):
            parse_duration(text)

    def test_window_condition(self):
        cond = parse_condition("max(qf_drift_z[120s]) >= 4")
        assert cond.fn == "max"
        assert cond.metric == "qf_drift_z"
        assert cond.window == 120.0
        assert cond.op == ">="
        assert cond.threshold == 4.0
        assert cond.holds(4.0) and not cond.holds(3.9)

    def test_labelled_metric_condition(self):
        cond = parse_condition(
            'mean(qf_health_signal{signal="report_rate"}[60s]) >= 1'
        )
        assert cond.metric == 'qf_health_signal{signal="report_rate"}'

    def test_point_condition_and_implicit_value(self):
        assert parse_condition("age(qf_items_total) > 30").fn == "age"
        implicit = parse_condition("qf_vague_saturation >= 0.25")
        assert implicit.fn == "value"
        assert implicit.window is None

    @pytest.mark.parametrize(
        "expr",
        [
            "frobnicate(m[60s]) > 1",       # unknown derivation
            "rate(m) > 1",                  # window derivation, no window
            "value(m[60s]) > 1",            # point derivation with window
            "max(m[60s]) >> 1",             # bad operator
            "max(m[60s])",                  # no comparison
            "max(m[60s] > 1",               # unbalanced paren
            "max(m[-5s]) > 1",              # negative window
            "",
        ],
    )
    def test_bad_expressions_rejected(self, expr):
        with pytest.raises(ParameterError):
            parse_condition(expr)

    @pytest.mark.parametrize("op,holds,not_holds", [
        (">", 2.0, 1.0), (">=", 1.0, 0.9), ("<", 0.5, 1.0),
        ("<=", 1.0, 1.1), ("==", 1.0, 2.0), ("!=", 2.0, 1.0),
    ])
    def test_every_operator(self, op, holds, not_holds):
        cond = parse_condition(f"value(m) {op} 1")
        assert cond.holds(holds)
        assert not cond.holds(not_holds)


class TestAlertRule:
    def test_from_mapping_round_trips(self):
        rule = AlertRule.from_mapping({
            "name": "r1", "expr": "max(m[60s]) > 5", "for": "30s",
            "resolve": 2.0, "severity": "critical",
            "labels": {"team": "stream"}, "description": "d",
            "response": "do the thing",
        })
        assert rule.for_seconds == 30.0
        assert rule.severity == "critical"
        again = AlertRule.from_mapping(rule.as_dict() | {"for": "30s"})
        assert again.as_dict() == rule.as_dict()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ParameterError):
            AlertRule.from_mapping(
                {"name": "r", "expr": "value(m) > 1", "bogus": 1}
            )

    def test_bad_names_and_severities_rejected(self):
        with pytest.raises(ParameterError):
            AlertRule(name="1bad", expr="value(m) > 1")
        with pytest.raises(ParameterError):
            AlertRule(name="r", expr="value(m) > 1", severity="panic")

    def test_resolve_direction_must_oppose_threshold(self):
        with pytest.raises(ParameterError):
            AlertRule(name="r", expr="value(m) > 5", resolve=9.0)
        with pytest.raises(ParameterError):
            AlertRule(name="r", expr="value(m) < 5", resolve=1.0)

    def test_recovers_hysteresis(self):
        rule = AlertRule(name="r", expr="value(m) > 5", resolve=2.0)
        assert not rule.recovers(3.0)  # below threshold, above resolve
        assert rule.recovers(2.0)

    def test_duplicate_names_rejected(self):
        tables = [
            {"name": "same", "expr": "value(m) > 1"},
            {"name": "same", "expr": "value(m) > 2"},
        ]
        with pytest.raises(ParameterError):
            parse_rules(tables)


class TestRulePacks:
    def test_default_pack_covers_required_scenarios(self):
        rules = default_rules()
        names = {rule.name for rule in rules}
        assert {
            "report-rate-drift", "worker-death", "vague-saturation",
            "ring-buffer-drops", "scrape-staleness",
        } <= names
        for rule in rules:
            assert rule.severity in SEVERITIES
            assert rule.description
            assert rule.response

    def test_json_twin_matches_builtin(self):
        pack = load_rules(RULE_PACK_JSON)
        assert [r.as_dict() for r in pack] == [
            r.as_dict() for r in default_rules()
        ]

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="tomllib needs Python 3.11+"
    )
    def test_toml_twin_matches_builtin(self):
        pack = load_rules(RULE_PACK_TOML)
        assert [r.as_dict() for r in pack] == [
            r.as_dict() for r in default_rules()
        ]

    def test_tables_parse_standalone(self):
        assert len(parse_rules(DEFAULT_RULE_TABLES)) == len(
            DEFAULT_RULE_TABLES
        )

    def test_load_rules_rejects_unknown_suffix(self, tmp_path):
        path = tmp_path / "rules.yaml"
        path.write_text("rule: []")
        with pytest.raises(ParameterError):
            load_rules(path)

    def test_load_rules_rejects_bad_shape(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": []}))  # wrong key
        with pytest.raises(ParameterError):
            load_rules(path)


def engine_with(rule_kwargs, clock_value=0.0):
    now = {"t": clock_value}
    store = MetricStore(clock=lambda: now["t"])
    rule = AlertRule(**rule_kwargs)
    engine = AlertEngine(store, [rule])
    return store, engine, rule, now


class TestEngine:
    def test_immediate_firing_without_for(self):
        store, engine, rule, _ = engine_with(
            dict(name="r", expr="value(m) > 5", resolve=2.0)
        )
        store.collect({"m": 9.0}, now=0.0)
        (transition,) = engine.evaluate(now=0.0)
        assert (transition.old_state, transition.new_state) == (
            "inactive", "firing"
        )
        assert engine.states()["r"] == "firing"

    def test_pending_until_for_elapses(self):
        store, engine, rule, _ = engine_with(
            dict(name="r", expr="value(m) > 5", for_seconds=20.0,
                 resolve=2.0)
        )
        store.collect({"m": 9.0}, now=0.0)
        engine.evaluate(now=0.0)
        assert engine.states()["r"] == "pending"
        store.collect({"m": 9.0}, now=10.0)
        engine.evaluate(now=10.0)
        assert engine.states()["r"] == "pending"
        store.collect({"m": 9.0}, now=20.0)
        engine.evaluate(now=20.0)
        assert engine.states()["r"] == "firing"

    def test_pending_resets_on_recovery(self):
        store, engine, rule, _ = engine_with(
            dict(name="r", expr="value(m) > 5", for_seconds=20.0)
        )
        store.collect({"m": 9.0}, now=0.0)
        engine.evaluate(now=0.0)
        store.collect({"m": 1.0}, now=10.0)
        engine.evaluate(now=10.0)
        assert engine.states()["r"] == "inactive"
        # A fresh breach restarts the for: window from scratch.
        store.collect({"m": 9.0}, now=15.0)
        engine.evaluate(now=15.0)
        store.collect({"m": 9.0}, now=30.0)
        engine.evaluate(now=30.0)
        assert engine.states()["r"] == "pending"

    def test_hysteresis_holds_firing_between_threshold_and_resolve(self):
        store, engine, rule, _ = engine_with(
            dict(name="r", expr="value(m) > 5", resolve=2.0)
        )
        store.collect({"m": 9.0}, now=0.0)
        engine.evaluate(now=0.0)
        # Recovered below the threshold but not past resolve: still firing.
        store.collect({"m": 3.0}, now=1.0)
        assert engine.evaluate(now=1.0) == []
        assert engine.states()["r"] == "firing"
        store.collect({"m": 1.0}, now=2.0)
        (transition,) = engine.evaluate(now=2.0)
        assert transition.new_state == "resolved"
        # resolved relaxes to inactive on the next tick.
        store.collect({"m": 1.0}, now=3.0)
        engine.evaluate(now=3.0)
        assert engine.states()["r"] == "inactive"

    def test_missing_data_holds_firing(self):
        store, engine, rule, _ = engine_with(
            dict(name="r", expr="max(m[10s]) > 5", resolve=2.0)
        )
        store.collect({"m": 9.0}, now=0.0)
        engine.evaluate(now=0.0)
        assert engine.states()["r"] == "firing"
        # Far in the future the window is empty: state is held, not
        # silently resolved.
        engine.evaluate(now=1000.0)
        assert engine.states()["r"] == "firing"

    def test_fired_count_and_samples(self):
        store, engine, rule, _ = engine_with(
            dict(name="r", expr="value(m) > 5", resolve=2.0,
                 severity="critical")
        )
        for tick, value in enumerate([9.0, 1.0, 1.0, 9.0]):
            store.collect({"m": value}, now=float(tick))
            engine.evaluate(now=float(tick))
        samples = engine.samples()
        assert samples['qf_alerts_fired_total{rule="r"}'] == 2.0
        assert samples[
            'qf_alert_state{rule="r",severity="critical"}'
        ] == float(STATE_VALUES["firing"])
        assert samples["qf_alerts_firing"] == 1.0
        assert engine.firing_critical()[0].name == "r"

    def test_report_names_firing_rule(self):
        store, engine, rule, _ = engine_with(
            dict(name="r", expr="value(m) > 5", resolve=2.0,
                 severity="critical")
        )
        store.collect({"m": 9.0}, now=0.0)
        engine.evaluate(now=0.0)
        report = engine.report(now=0.0)
        assert report.verdict == "critical"
        assert any("rule r firing" in reason for reason in report.reasons)
        payload = engine.as_dict(now=0.0)
        assert payload["firing"] == ["r"]
        assert payload["rules"] == 1
        assert payload["alerts"][0]["state"] == "firing"

    def test_states_catalogue(self):
        assert STATES == ("inactive", "pending", "firing", "resolved")
        assert set(STATE_VALUES) == set(STATES)

    def test_duplicate_rules_rejected(self):
        store = MetricStore(clock=lambda: 0.0)
        rule = AlertRule(name="r", expr="value(m) > 5")
        with pytest.raises(ParameterError):
            AlertEngine(store, [rule, rule])
