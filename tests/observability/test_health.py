"""Health model: signal thresholds, drift detection, aggregation."""

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.inspect import structural_probe
from repro.core.quantile_filter import QuantileFilter
from repro.observability.health import (
    HEALTH_METRIC_HELP,
    ExceedanceDriftDetector,
    HealthModel,
    HealthMonitor,
    HealthReport,
    HealthSignal,
    HealthThresholds,
    aggregate_reports,
    verdict_rank,
    worst_verdict,
)
from repro.observability.instrument import observe_filter
from repro.observability.registry import SPEC_INDEX, StatsRegistry

CRIT = Criteria(delta=0.9, threshold=100.0, epsilon=5.0)


def snapshot(**families):
    """Shorthand: snake_case kwargs to a qf_* snapshot dict."""
    base = {"qf_items_total": 50_000.0}
    base.update(families)
    return base


class TestVerdicts:
    def test_rank_ordering(self):
        assert verdict_rank("ok") < verdict_rank("degraded")
        assert verdict_rank("degraded") < verdict_rank("critical")

    def test_unknown_verdict_raises(self):
        with pytest.raises(ParameterError):
            verdict_rank("meh")

    def test_worst_verdict_empty_is_ok(self):
        assert worst_verdict([]) == "ok"

    def test_worst_verdict_picks_most_severe(self):
        assert worst_verdict(["ok", "critical", "degraded"]) == "critical"


class TestSignals:
    def test_all_ok_on_benign_snapshot(self):
        report = HealthModel().evaluate(snapshot(
            qf_candidate_occupancy=0.5,
            qf_candidate_swaps_total=100.0,
            qf_vague_inserts_total=500.0,
            qf_vague_saturation=0.0,
            qf_reports_total=10.0,
        ))
        assert report.verdict == "ok"
        assert report.reasons == []

    def test_occupancy_degraded_above_threshold(self):
        report = HealthModel().evaluate(snapshot(qf_candidate_occupancy=0.99))
        signal = report.signal("candidate_occupancy")
        assert signal.verdict == "degraded"
        assert "candidate_occupancy" in report.reasons[0]

    def test_churn_degraded(self):
        report = HealthModel().evaluate(snapshot(
            qf_candidate_swaps_total=25_000.0,
        ))
        assert report.signal("candidate_churn").verdict == "degraded"

    def test_vague_pressure_degraded(self):
        report = HealthModel().evaluate(snapshot(
            qf_vague_inserts_total=10_000.0,
        ))
        assert report.signal("vague_pressure").verdict == "degraded"

    def test_saturation_critical_above_critical_threshold(self):
        report = HealthModel().evaluate(snapshot(qf_vague_saturation=0.3))
        assert report.signal("vague_saturation").verdict == "critical"
        assert report.verdict == "critical"

    def test_saturation_degraded_between_thresholds(self):
        report = HealthModel().evaluate(snapshot(qf_vague_saturation=0.1))
        assert report.signal("vague_saturation").verdict == "degraded"

    def test_collision_signal_comes_from_probe(self):
        report = HealthModel().evaluate(
            snapshot(), probe={"fingerprint_collision_probability": 0.05},
        )
        assert report.signal("fingerprint_collision").verdict == "degraded"
        report = HealthModel().evaluate(snapshot(), probe={})
        assert report.signal("fingerprint_collision") is None

    def test_noise_signal_relative_to_report_threshold(self):
        probe = {"vague_noise_std": 30.0, "report_threshold": 50.0}
        report = HealthModel().evaluate(snapshot(), probe=probe)
        assert report.signal("vague_noise").verdict == "degraded"
        probe["vague_noise_std"] = 60.0
        report = HealthModel().evaluate(snapshot(), probe=probe)
        assert report.signal("vague_noise").verdict == "critical"

    def test_report_rate_windows_between_evaluations(self):
        model = HealthModel()
        first = model.evaluate(snapshot(qf_reports_total=10.0))
        assert first.signal("report_rate").verdict == "ok"
        # 1 000 new reports over 1 000 new items: a 100 % window rate.
        second = model.evaluate({
            "qf_items_total": 51_000.0, "qf_reports_total": 1_010.0,
        })
        assert second.signal("report_rate").verdict == "degraded"

    def test_report_rate_survives_counter_reset(self):
        model = HealthModel()
        model.evaluate(snapshot(qf_reports_total=100.0))
        fresh = model.evaluate({
            "qf_items_total": 2_000.0, "qf_reports_total": 1.0,
        })
        assert fresh.signal("report_rate").verdict == "ok"

    def test_warmup_forces_ok(self):
        report = HealthModel().evaluate({
            "qf_items_total": 10.0,
            "qf_candidate_occupancy": 1.0,
            "qf_vague_saturation": 0.9,
        })
        assert report.verdict == "ok"
        assert all(s.verdict == "ok" for s in report.signals)
        assert any("warming up" in s.reason for s in report.signals)

    def test_workers_alive_critical_when_short(self):
        report = HealthModel().evaluate(
            snapshot(pipeline_workers_alive=1.0), expected_workers=4,
        )
        assert report.signal("workers_alive").verdict == "critical"

    def test_workers_alive_not_masked_by_warmup(self):
        report = HealthModel().evaluate(
            {"qf_items_total": 5.0, "pipeline_workers_alive": 0.0},
            expected_workers=2,
        )
        assert report.verdict == "critical"

    def test_labelled_samples_fold_into_families(self):
        report = HealthModel().evaluate({
            'qf_items_total{shard="0"}': 25_000.0,
            'qf_items_total{shard="1"}': 25_000.0,
            'qf_candidate_occupancy{shard="0"}': 0.999,
            'qf_candidate_occupancy{shard="1"}': 0.999,
        })
        assert report.signal("candidate_occupancy").verdict == "degraded"


class TestDriftDetector:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            ExceedanceDriftDetector(1.0, window_items=0)
        with pytest.raises(ParameterError):
            ExceedanceDriftDetector(1.0, warmup_windows=0)

    def test_not_warmed_up_until_warmup_windows(self):
        det = ExceedanceDriftDetector(10.0, window_items=10, warmup_windows=2)
        det.observe_batch([0.0] * 10)
        assert not det.warmed_up
        det.observe_batch([0.0] * 10)
        assert det.warmed_up

    def test_stationary_stream_stays_quiet(self):
        rng = np.random.default_rng(7)
        det = ExceedanceDriftDetector(
            1.0, window_items=500, warmup_windows=2
        )
        values = (rng.random(5_000) < 0.1).astype(float) * 2.0
        det.observe_batch(values)
        assert det.warmed_up
        assert det.last_z < 4.0

    def test_shift_raises_z(self):
        det = ExceedanceDriftDetector(
            10.0, window_items=200, warmup_windows=2
        )
        base = [5.0] * 190 + [50.0] * 10  # 5 % exceedance
        det.observe_batch(base * 2)
        det.observe_batch([5.0] * 100 + [50.0] * 100)  # 50 %
        assert det.last_z > 4.0
        assert det.last_fraction == pytest.approx(0.5)

    def test_scalar_and_batch_paths_agree(self):
        values = list(np.linspace(0.0, 20.0, 400))
        a = ExceedanceDriftDetector(10.0, window_items=50, warmup_windows=2)
        b = ExceedanceDriftDetector(10.0, window_items=50, warmup_windows=2)
        for v in values:
            a.observe(v)
        b.observe_batch(values)
        assert a.last_fraction == b.last_fraction
        assert a.last_z == b.last_z
        assert a.reference == b.reference

    def test_model_emits_drift_signal(self):
        det = ExceedanceDriftDetector(10.0, window_items=100, warmup_windows=1)
        det.observe_batch([5.0] * 95 + [50.0] * 5)
        det.observe_batch([50.0] * 100)
        report = HealthModel().evaluate(snapshot(), drift=det)
        assert report.signal("exceedance_drift").verdict == "degraded"
        assert any("drifted" in r for r in report.reasons)


class TestAggregation:
    def mk(self, source, **verdicts):
        return HealthReport(
            verdict=worst_verdict(verdicts.values()),
            signals=tuple(
                HealthSignal(name, verdict, 0.0, f"{name} reason")
                for name, verdict in verdicts.items()
            ),
            source=source,
        )

    def test_worst_wins_per_signal(self):
        merged = aggregate_reports([
            self.mk("shard-0", occupancy="ok", churn="degraded"),
            self.mk("shard-1", occupancy="critical", churn="ok"),
        ])
        assert merged.verdict == "critical"
        assert merged.signal("occupancy").verdict == "critical"
        assert merged.signal("churn").verdict == "degraded"

    def test_shard_source_prefixes_reason(self):
        merged = aggregate_reports([
            self.mk("shard-0", occupancy="ok"),
            self.mk("shard-1", occupancy="degraded"),
        ])
        assert "[shard-1]" in merged.signal("occupancy").reason

    def test_empty_is_ok(self):
        merged = aggregate_reports([])
        assert merged.verdict == "ok"
        assert merged.signals == ()


class TestMonitor:
    def make_filter(self):
        return QuantileFilter(
            CRIT, num_buckets=32, bucket_size=4, vague_width=256, seed=3
        )

    def test_for_filter_end_to_end(self):
        filt = self.make_filter()
        registry = observe_filter(filt, StatsRegistry())
        monitor = HealthMonitor.for_filter(filt, shadow_sample_rate=1)
        rng = np.random.default_rng(0)
        for _ in range(4_000):
            key = int(rng.integers(0, 64))
            value = float(rng.lognormal(4.0, 0.6))
            filt.insert(key, value)
            monitor.observe(key, value)
        report = monitor.report(
            registry.snapshot(),
            probe=structural_probe(filt),
            reported_keys=filt.reported_keys,
        )
        assert monitor.last_report is report
        names = {s.name for s in report.signals}
        assert {"candidate_occupancy", "exceedance_drift",
                "shadow_accuracy"} <= names

    def test_shadow_disabled_mode(self):
        monitor = HealthMonitor.for_criteria(CRIT, shadow_sample_rate=None)
        assert monitor.shadow is None
        monitor.observe_batch(
            np.arange(10), np.full(10, 5.0)
        )  # must not raise

    def test_health_samples_empty_before_first_report(self):
        monitor = HealthMonitor.for_criteria(CRIT)
        assert monitor.health_samples() == {}

    def test_health_samples_render_verdict_ranks(self):
        monitor = HealthMonitor.for_criteria(CRIT, shadow_sample_rate=None)
        monitor.report({"qf_items_total": 5_000.0,
                        "qf_vague_saturation": 0.5})
        samples = monitor.health_samples()
        assert samples["qf_health_status"] == 2.0
        assert samples['qf_health_signal{signal="vague_saturation"}'] == 2.0
        assert "qf_drift_exceedance_fraction" in samples

    def test_health_families_registered_in_spec_index(self):
        for family in HEALTH_METRIC_HELP:
            assert family in SPEC_INDEX
            assert SPEC_INDEX[family].kind == "gauge"
