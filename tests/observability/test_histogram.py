"""Tests for repro.observability.histogram.

The hypothesis property at the bottom mirrors
``tests/parallel/test_shard_equivalence.py``: splitting a stream of
observations across histograms and merging must equal one histogram
over the union — the invariant that makes per-shard latency histograms
aggregate exactly master-side.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ParameterError
from repro.common.percentile import percentile, percentile_from_buckets
from repro.observability.histogram import (
    Histogram,
    LogHistogram,
    buckets_from_snapshot,
    histogram_families,
    log_bounds,
    percentiles_from_snapshot,
)
from repro.observability.registry import StatsRegistry, aggregate_snapshots


class TestLogBounds:
    def test_deterministic_and_ends_in_inf(self):
        assert log_bounds() == log_bounds()
        assert log_bounds()[-1] == math.inf

    def test_ladder_is_geometric(self):
        bounds = log_bounds(1e-3, 1.0, buckets_per_decade=2)
        finite = bounds[:-1]
        ratios = [b / a for a, b in zip(finite, finite[1:])]
        assert all(r == pytest.approx(10 ** 0.5) for r in ratios)

    def test_covers_min_to_max(self):
        bounds = log_bounds(1e-6, 100.0)
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-2] >= 100.0 * 0.999

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            log_bounds(min_value=0.0)
        with pytest.raises(ParameterError):
            log_bounds(min_value=1.0, max_value=0.5)
        with pytest.raises(ParameterError):
            log_bounds(buckets_per_decade=0)


class TestLogHistogram:
    def test_count_sum_mean(self):
        h = LogHistogram()
        h.record_many([0.001, 0.002, 0.003])
        assert h.count == 3
        assert h.total == pytest.approx(0.006)
        assert h.mean == pytest.approx(0.002)

    def test_empty_histogram(self):
        h = LogHistogram()
        assert h.count == 0 and h.mean == 0.0
        assert h.percentile(99) == 0.0

    def test_each_value_lands_in_its_bound_bucket(self):
        h = LogHistogram()
        for value in (1e-7, 1e-6, 3e-4, 0.02, 1.5, 99.0, 1e4):
            before = list(h.counts)
            h.record(value)
            (index,) = [
                i for i, (a, b) in enumerate(zip(before, h.counts)) if a != b
            ]
            upper = h.bounds[index]
            lower = h.bounds[index - 1] if index else 0.0
            assert lower < max(value, h.min_value) <= upper or (
                upper == math.inf and value > h.max_value
            )

    def test_negative_and_tiny_values_clamp_to_first_bucket(self):
        h = LogHistogram()
        h.record(-5.0)
        h.record(0.0)
        assert h.counts[0] == 2

    def test_overflow_lands_in_inf_bucket(self):
        h = LogHistogram(max_value=1.0)
        h.record(50.0)
        assert h.counts[-1] == 1

    def test_merge_requires_same_geometry(self):
        with pytest.raises(ParameterError):
            LogHistogram().merge(LogHistogram(buckets_per_decade=3))

    def test_merge_adds_counts_and_totals(self):
        a, b = LogHistogram(), LogHistogram()
        a.record(0.001)
        b.record(0.1)
        a.merge(b)
        assert a.count == 2
        assert a.total == pytest.approx(0.101)

    def test_percentile_monotone(self):
        h = LogHistogram()
        h.record_many([0.001 * (i + 1) for i in range(200)])
        values = [h.percentile(q) for q in (10, 50, 90, 99, 99.9)]
        assert values == sorted(values)

    def test_percentile_brackets_uniform_data(self):
        h = LogHistogram()
        for _ in range(1000):
            h.record(0.01)
        # All mass in one bucket: every percentile within that bucket.
        p50 = h.percentile(50)
        lower = max(b for b in h.bounds if b < p50 or b == h.bounds[0])
        assert 0.01 / 10 < p50 <= 0.01 * 10

    def test_summary_keys(self):
        h = LogHistogram()
        h.record(0.001)
        assert sorted(h.summary()) == ["count", "mean", "p50", "p99", "p999"]


class TestRegistryIntegration:
    def test_histogram_explodes_into_prometheus_convention(self):
        reg = StatsRegistry()
        h = reg.histogram("t_lat_seconds", help="latency")
        h.record(0.001)
        h.record(10.0)
        snap = reg.snapshot()
        assert snap["t_lat_seconds_count"] == 2.0
        assert snap["t_lat_seconds_sum"] == pytest.approx(10.001)
        assert snap['t_lat_seconds_bucket{le="+Inf"}'] == 2.0
        # Bucket samples are cumulative.
        buckets = [
            v for k, v in snap.items() if k.startswith("t_lat_seconds_bucket")
        ]
        assert buckets == sorted(buckets)

    def test_get_or_create_and_kind_conflicts(self):
        reg = StatsRegistry()
        h = reg.histogram("t_h")
        assert reg.histogram("t_h") is h
        with pytest.raises(ParameterError):
            reg.counter("t_h")

    def test_cross_shard_aggregation_is_exact_merge(self):
        values = [0.001 * (i + 1) for i in range(100)]
        shard_a, shard_b = StatsRegistry(), StatsRegistry()
        whole = LogHistogram()
        shard_a_h = shard_a.histogram("t_agg_seconds")
        shard_b_h = shard_b.histogram("t_agg_seconds")
        for i, value in enumerate(values):
            (shard_a_h if i % 2 else shard_b_h).record(value)
            whole.record(value)
        combined = aggregate_snapshots(
            [shard_a.snapshot(), shard_b.snapshot()]
        )
        bounds, counts = buckets_from_snapshot(combined, "t_agg_seconds")
        assert list(bounds) == list(whole.bounds)
        assert counts == whole.counts
        recovered = percentiles_from_snapshot(combined, "t_agg_seconds")
        for q, key in ((50.0, "p50"), (99.0, "p99"), (99.9, "p999")):
            assert recovered[key] == pytest.approx(whole.percentile(q))

    def test_histogram_families_discovery(self):
        reg = StatsRegistry()
        reg.histogram("t_fam_seconds").record(0.001)
        reg.counter("t_plain_total").inc()
        snap = reg.snapshot()
        assert histogram_families(snap) == ["t_fam_seconds"]

    def test_buckets_from_snapshot_missing_family(self):
        with pytest.raises(ParameterError):
            buckets_from_snapshot({}, "nope")


class TestSharedPercentileMath:
    def test_exact_percentile_empty_and_validation(self):
        assert percentile([], 50) == 0.0
        with pytest.raises(ParameterError):
            percentile([1.0], 101)
        with pytest.raises(ParameterError):
            percentile_from_buckets((1.0, math.inf), [1, 0], -1)

    def test_bucket_percentile_interpolates_within_bucket(self):
        # 10 observations in (1, 2]: p0 edge=1, p100 edge=2.
        bounds = (1.0, 2.0, math.inf)
        counts = [0, 10, 0]
        assert percentile_from_buckets(bounds, counts, 0) == pytest.approx(1.0)
        assert percentile_from_buckets(bounds, counts, 100) == pytest.approx(
            2.0
        )
        mid = percentile_from_buckets(bounds, counts, 50)
        assert 1.0 < mid < 2.0

    def test_bucket_percentile_never_returns_inf(self):
        bounds = (1.0, math.inf)
        counts = [0, 5]
        assert math.isfinite(percentile_from_buckets(bounds, counts, 99))


# ----------------------------------------------------------------------
# Property: hist(A ∪ B) == merge(hist(A), hist(B))
# ----------------------------------------------------------------------

latencies = st.lists(
    st.floats(
        min_value=1e-9, max_value=1e4,
        allow_nan=False, allow_infinity=False,
    ),
    max_size=200,
)
geometries = st.sampled_from([
    dict(),
    dict(min_value=1e-4, max_value=10.0, buckets_per_decade=3),
    dict(min_value=1e-6, max_value=100.0, buckets_per_decade=10),
])


@given(sample_a=latencies, sample_b=latencies, geometry=geometries)
@settings(max_examples=100, deadline=None)
def test_union_equals_merge(sample_a, sample_b, geometry):
    hist_a = LogHistogram(**geometry)
    hist_b = LogHistogram(**geometry)
    union = LogHistogram(**geometry)
    hist_a.record_many(sample_a)
    hist_b.record_many(sample_b)
    union.record_many(sample_a + sample_b)

    merged = hist_a.merged(hist_b)
    assert merged.counts == union.counts
    assert merged.total == pytest.approx(union.total)
    for q in (50.0, 99.0, 99.9):
        assert merged.percentile(q) == pytest.approx(union.percentile(q))


@given(sample_a=latencies, sample_b=latencies)
@settings(max_examples=50, deadline=None)
def test_union_equals_merge_through_snapshots(sample_a, sample_b):
    """Same property through the registry/snapshot/aggregate path —
    the exact route per-shard histograms take in the pipeline."""
    reg_a, reg_b = StatsRegistry(), StatsRegistry()
    union = LogHistogram()
    hist_a = reg_a.histogram("t_prop_seconds")
    hist_b = reg_b.histogram("t_prop_seconds")
    hist_a.data.record_many(sample_a)
    hist_b.data.record_many(sample_b)
    union.record_many(sample_a + sample_b)

    combined = aggregate_snapshots([reg_a.snapshot(), reg_b.snapshot()])
    _, counts = buckets_from_snapshot(combined, "t_prop_seconds")
    assert counts == union.counts
    assert combined["t_prop_seconds_sum"] == pytest.approx(union.total)
