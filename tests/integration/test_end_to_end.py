"""End-to-end integration tests across modules.

These exercise the full pipeline — generator -> detector(s) -> metrics —
and pin the qualitative results the paper's evaluation rests on.
"""

import pytest

from repro.core.criteria import Criteria
from repro.core.vectorized import BatchQuantileFilter
from repro.experiments.config import build_trace, default_criteria_for
from repro.experiments.harness import (
    accuracy_sweep,
    build_detector,
    ground_truth_for,
    run_detection,
)
from repro.metrics.accuracy import score_sets


@pytest.fixture(scope="module")
def internet_trace():
    return build_trace("internet", scale=12_000, seed=0)


@pytest.fixture(scope="module")
def internet_criteria():
    return default_criteria_for("internet")


@pytest.fixture(scope="module")
def internet_truth(internet_trace, internet_criteria):
    return ground_truth_for(internet_trace, internet_criteria)


class TestQuantileFilterShape:
    def test_high_f1_at_modest_memory(
        self, internet_trace, internet_criteria, internet_truth
    ):
        detector = build_detector(
            "quantilefilter", internet_criteria, 32_768, seed=1
        )
        record = run_detection(detector, internet_trace, internet_truth)
        assert record.score.f1 > 0.9

    def test_precision_high_even_starved(
        self, internet_trace, internet_criteria, internet_truth
    ):
        """The paper's unilaterality claim: precision stays high at any
        memory, recall is what grows with space."""
        detector = build_detector(
            "quantilefilter", internet_criteria, 1_024, seed=1
        )
        record = run_detection(detector, internet_trace, internet_truth)
        assert record.score.precision > 0.8

    def test_recall_monotone_with_memory(
        self, internet_trace, internet_criteria, internet_truth
    ):
        recalls = []
        for memory in (512, 8_192, 131_072):
            detector = build_detector(
                "quantilefilter", internet_criteria, memory, seed=1
            )
            record = run_detection(detector, internet_trace, internet_truth)
            recalls.append(record.score.recall)
        assert recalls[0] <= recalls[-1]
        assert recalls[-1] > 0.95


class TestBaselineShapes:
    def test_quantilefilter_beats_baselines_at_low_memory(
        self, internet_trace, internet_criteria, internet_truth
    ):
        """Key result 2's shape: at a starved budget QuantileFilter's F1
        dominates every SOTA baseline."""
        memory = 8_192
        f1 = {}
        for algorithm in ("quantilefilter", "squad", "sketchpolymer",
                          "histsketch"):
            detector = build_detector(
                algorithm, internet_criteria, memory, seed=1
            )
            record = run_detection(detector, internet_trace, internet_truth)
            f1[algorithm] = record.score.f1
        assert f1["quantilefilter"] == max(f1.values())
        assert f1["quantilefilter"] > 0.8

    def test_sketchpolymer_low_precision_high_recall_when_starved(
        self, internet_trace, internet_criteria, internet_truth
    ):
        detector = build_detector(
            "sketchpolymer", internet_criteria, 2_048, seed=1
        )
        record = run_detection(detector, internet_trace, internet_truth)
        assert record.score.recall > 0.9
        assert record.score.precision < 0.5

    def test_squad_converges_with_memory(
        self, internet_trace, internet_criteria, internet_truth
    ):
        detector = build_detector(
            "squad", internet_criteria, 1 << 20, seed=1
        )
        record = run_detection(detector, internet_trace, internet_truth)
        assert record.score.recall > 0.9


class TestSpeedShape:
    def test_quantilefilter_faster_than_query_baselines(
        self, internet_trace, internet_criteria, internet_truth
    ):
        """Key result 1's shape: same substrate, QuantileFilter's
        insert-only loop beats every insert+query baseline."""
        memory = 32_768
        qf = run_detection(
            build_detector("quantilefilter", internet_criteria, memory, seed=1),
            internet_trace, internet_truth,
        )
        for baseline in ("squad", "sketchpolymer", "histsketch"):
            record = run_detection(
                build_detector(baseline, internet_criteria, memory, seed=1),
                internet_trace, internet_truth,
            )
            assert qf.mops > record.mops, baseline

    def test_batch_engine_faster_than_scalar(
        self, internet_trace, internet_criteria, internet_truth
    ):
        import time

        scalar = build_detector(
            "quantilefilter", internet_criteria, 32_768, seed=1
        )
        scalar_record = run_detection(scalar, internet_trace, internet_truth)

        batch = BatchQuantileFilter(internet_criteria, 32_768, seed=1)
        start = time.perf_counter()
        reported = batch.process(internet_trace.keys, internet_trace.values)
        batch_seconds = time.perf_counter() - start
        batch_mops = len(internet_trace) / batch_seconds / 1e6

        assert batch_mops > scalar_record.mops
        # And it loses no accuracy.
        batch_score = score_sets(reported, internet_truth)
        assert batch_score.f1 >= scalar_record.score.f1 - 0.1


class TestCloudDataset:
    def test_pipeline_on_high_cardinality(self):
        trace = build_trace("cloud", scale=12_000, seed=0)
        criteria = default_criteria_for("cloud")
        truth = ground_truth_for(trace, criteria)
        records = accuracy_sweep(
            trace, criteria, ("quantilefilter",), (65_536,), truth=truth
        )
        assert records[0].score.f1 > 0.7


class TestNaiveComparison:
    def test_two_part_beats_naive_when_starved(
        self, internet_trace, internet_criteria, internet_truth
    ):
        """The candidate-election motivation: at equal tight memory the
        two-part filter should not lose to the dual-sketch strawman."""
        memory = 2_048
        qf = run_detection(
            build_detector("quantilefilter", internet_criteria, memory, seed=1),
            internet_trace, internet_truth,
        )
        naive = run_detection(
            build_detector("naive", internet_criteria, memory, seed=1),
            internet_trace, internet_truth,
        )
        assert qf.score.f1 >= naive.score.f1
