"""Retarget broadcast across the process pipeline.

The acceptance scenario for the adaptive-threshold loop on the
parallel stack: a mid-stream ``retarget(T2)`` must reach every shard
worker at a consistent between-chunks cut, produce exactly the reports
the deterministic in-process sharded filter produces under the same
retarget, and show up in the merged view's criteria and the aggregate
telemetry.
"""

import numpy as np
import pytest

from repro.core.criteria import Criteria
from repro.parallel.pipeline import ParallelPipeline, PipelineError
from repro.parallel.sharded import ShardedQuantileFilter
from repro.streams.caida_like import CaidaLikeConfig, generate_caida_like_trace

CRITERIA = Criteria(delta=0.95, threshold=200.0, epsilon=30.0)
GEOMETRY = dict(num_buckets=512, vague_width=256, seed=0)
CHUNK = 8_192
NEW_T = 340.0


@pytest.fixture(scope="module")
def trace():
    return generate_caida_like_trace(
        CaidaLikeConfig(num_items=120_000, num_keys=3_000, seed=2)
    )


def test_pipeline_retarget_matches_inprocess_sharding(trace):
    split = 6 * CHUNK  # chunk-aligned so both sides cut at a boundary

    sharded = ShardedQuantileFilter(CRITERIA, 4, engine="batch", **GEOMETRY)
    expected = set(sharded.process(trace.keys[:split], trace.values[:split]))
    sharded.retarget(NEW_T)
    expected |= sharded.process(trace.keys[split:], trace.values[split:])

    pipe = ParallelPipeline(
        CRITERIA, 4, engine="batch", chunk_items=CHUNK, **GEOMETRY
    )
    with pipe:
        pipe.feed(trace.keys[:split], trace.values[:split])
        pipe.retarget(NEW_T)
        pipe.feed(trace.keys[split:], trace.values[split:])
        result = pipe.finish()

    assert pipe.criteria.threshold == NEW_T
    assert result.reported_keys == sharded.reported_keys
    assert result.reported_keys == expected


def test_retarget_reaches_merged_view_and_telemetry(trace):
    pipe = ParallelPipeline(
        CRITERIA, 2, engine="batch", chunk_items=CHUNK,
        collect_merged=True, collect_stats=True, **GEOMETRY,
    )
    with pipe:
        pipe.feed(trace.keys[:2 * CHUNK], trace.values[:2 * CHUNK])
        pipe.retarget(NEW_T)
        pipe.feed(trace.keys[2 * CHUNK:4 * CHUNK],
                  trace.values[2 * CHUNK:4 * CHUNK])
        stats = pipe.collect_stats_view()
        result = pipe.finish()

    # Snapshot requests ride the same per-shard FIFO as the retarget,
    # so every shard's view (and hence the merged filter) already
    # carries the new criteria.
    assert result.merged is not None
    assert result.merged.criteria.threshold == NEW_T
    assert stats["pipeline_retargets_total"] == 1.0
    assert stats["qf_threshold"] == pytest.approx(NEW_T)
    assert stats["qf_retargets_total"] == 2.0  # one per shard, summed


def test_retarget_before_start_autostarts_and_after_finish_raises(trace):
    pipe = ParallelPipeline(
        CRITERIA, 2, engine="batch", chunk_items=CHUNK, **GEOMETRY
    )
    try:
        pipe.retarget(NEW_T)
        assert pipe.running
        pipe.feed(trace.keys[:CHUNK], trace.values[:CHUNK])
        pipe.finish()
    finally:
        pipe.close()
    with pytest.raises(PipelineError):
        pipe.retarget(500.0)


def test_sharded_facade_broadcasts_to_every_shard():
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 100, size=5_000).astype(np.int64)
    values = rng.uniform(0.0, 400.0, size=5_000)
    for engine in ("scalar", "batch"):
        sharded = ShardedQuantileFilter(CRITERIA, 3, engine=engine,
                                        **GEOMETRY)
        sharded.process(keys, values)
        sharded.retarget(NEW_T)
        assert sharded.criteria.threshold == NEW_T
        assert sharded.retargets == 1
        for shard in sharded.shards:
            assert shard.criteria.threshold == NEW_T
        merged = sharded.merged()
        assert merged.criteria.threshold == NEW_T
