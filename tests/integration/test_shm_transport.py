"""The shm chunk transport must be indistinguishable from pickle.

``transport="shm"`` changes *how* chunk bytes reach the workers — a
shared-memory slot ring with credit-based reuse instead of pickled
queue messages — and nothing else.  These tests pin that contract on a
200k-item CAIDA-like trace: identical reported keys on both engines,
slot-credit exhaustion and reuse under a deliberately tiny ring, the
crash surface (a SIGKILLed worker must raise, not hang, and the shared
blocks must be unlinked), and the ring arithmetic itself.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.parallel.pipeline import ParallelPipeline, WorkerCrashError
from repro.parallel.transport import ShmSlotRing
from repro.streams.caida_like import CaidaLikeConfig, generate_caida_like_trace

CRITERIA = Criteria(delta=0.95, threshold=200.0, epsilon=30.0)
GEOMETRY = dict(num_buckets=4_096, vague_width=2_048, seed=0)


@pytest.fixture(scope="module")
def trace():
    return generate_caida_like_trace(
        CaidaLikeConfig(num_items=200_000, num_keys=5_000, seed=0)
    )


def _assert_no_live_workers(pipe):
    for worker in pipe.workers:
        assert not worker.is_alive(), f"worker {worker.name} still alive"


@pytest.mark.parametrize("engine", ["batch", "scalar"])
def test_shm_matches_pickle_output(trace, engine):
    results = {}
    for transport in ("pickle", "shm"):
        pipe = ParallelPipeline(
            CRITERIA, 4, engine=engine, transport=transport, **GEOMETRY
        )
        results[transport] = pipe.run(trace.keys, trace.values)
        _assert_no_live_workers(pipe)

    assert results["shm"].reported_keys == results["pickle"].reported_keys
    assert results["shm"].items == results["pickle"].items == len(trace)
    assert (
        results["shm"].per_shard_items == results["pickle"].per_shard_items
    )
    assert (
        results["shm"].per_shard_reports
        == results["pickle"].per_shard_reports
    )


def test_shm_slot_ring_wraps_under_tiny_capacity(trace):
    # queue_capacity=1 -> 3 slots per worker; 200k items in 4k chunks
    # forces every slot to be returned and reused many times over.
    pickle_pipe = ParallelPipeline(
        CRITERIA, 2, engine="batch", transport="pickle",
        chunk_items=4_096, queue_capacity=1, **GEOMETRY,
    )
    expected = pickle_pipe.run(trace.keys, trace.values).reported_keys

    shm_pipe = ParallelPipeline(
        CRITERIA, 2, engine="batch", transport="shm",
        chunk_items=4_096, queue_capacity=1, **GEOMETRY,
    )
    result = shm_pipe.run(trace.keys, trace.values)
    _assert_no_live_workers(shm_pipe)
    assert result.reported_keys == expected
    assert result.chunks == -(-len(trace) // 4_096)


def test_shm_worker_crash_surfaces_error_and_unlinks(trace):
    pipe = ParallelPipeline(
        CRITERIA, 3, engine="batch", transport="shm",
        chunk_items=8_192, stall_timeout=20.0, **GEOMETRY,
    )
    pipe.start()
    ring_names = [ring.name for ring in pipe._rings]
    start = time.perf_counter()
    try:
        with pytest.raises(WorkerCrashError) as excinfo:
            first = True
            for begin in range(0, len(trace), pipe.chunk_items):
                end = begin + pipe.chunk_items
                pipe.feed(trace.keys[begin:end], trace.values[begin:end])
                if first:
                    os.kill(pipe.workers[1].pid, signal.SIGKILL)
                    first = False
            pipe.finish()
        elapsed = time.perf_counter() - start
        assert elapsed < pipe.stall_timeout + 10.0
        assert "shard 1" in str(excinfo.value)
    finally:
        pipe.close()
    _assert_no_live_workers(pipe)
    # close() must have destroyed every shared block.
    assert pipe._rings is None
    for name in ring_names:
        assert not os.path.exists(f"/dev/shm/{name.lstrip('/')}")


def test_slot_ring_roundtrip_and_validation():
    ring = ShmSlotRing.create(num_slots=3, slot_items=8)
    try:
        peer = ShmSlotRing.attach(ring.name, 3, 8)
        try:
            keys = np.arange(5, dtype=np.int64) + 100
            values = np.linspace(0.0, 1.0, 5)
            assert ring.write(1, keys, values) == 5
            got_keys, got_values = peer.read(1, 5)
            assert np.array_equal(got_keys, keys)
            assert np.array_equal(got_values, values)
            # Oversized chunks are rejected, not truncated.
            with pytest.raises(ParameterError):
                ring.write(0, np.zeros(9, dtype=np.int64), np.zeros(9))
        finally:
            peer.close()
    finally:
        ring.close()
        ring.unlink()
    with pytest.raises(ParameterError):
        ShmSlotRing.create(num_slots=0, slot_items=8)
    with pytest.raises(ParameterError):
        ShmSlotRing.create(num_slots=1, slot_items=0)


def test_transport_validation():
    with pytest.raises(ParameterError):
        ParallelPipeline(CRITERIA, 2, transport="carrier-pigeon", **GEOMETRY)


def test_slot_ring_shutdown_is_idempotent():
    """Double close()/unlink() in any interleaving must be a no-op.

    Pipeline shutdown can reach the ring twice (explicit close plus the
    master's atexit sweep), and historically the second pass re-ran the
    teardown against an already-released mapping.
    """
    ring = ShmSlotRing.create(num_slots=2, slot_items=4)
    name = ring.name
    ring.close()
    ring.close()          # second close: latched no-op
    ring.unlink()
    ring.unlink()         # second unlink: latched no-op
    ring.close()          # close after unlink still fine
    assert not os.path.exists(f"/dev/shm/{name.lstrip('/')}")

    # unlink-before-close ordering (atexit sweep beating close()).
    ring2 = ShmSlotRing.create(num_slots=2, slot_items=4)
    ring2.unlink()
    ring2.close()
    ring2.unlink()

    # An attached (non-owner) peer must never unlink the block.
    ring3 = ShmSlotRing.create(num_slots=2, slot_items=4)
    try:
        peer = ShmSlotRing.attach(ring3.name, 2, 4)
        peer.unlink()
        peer.unlink()
        assert os.path.exists(f"/dev/shm/{ring3.name.lstrip('/')}")
        peer.close()
        peer.close()
    finally:
        ring3.close()
        ring3.unlink()
