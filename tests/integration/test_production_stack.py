"""Composition test: the full operations stack working together.

Sizing -> auto-threshold calibration -> windowing -> report log +
alert policy -> checkpoint/restore, all on one drifting workload.  Each
piece has its own unit tests; this verifies they compose without
stepping on each other's state.
"""

import random

import pytest

from repro.analysis.sizing import recommend
from repro.core.criteria import Criteria
from repro.core.inspect import describe, health_warnings
from repro.core.persistence import load_filter, save_filter
from repro.core.windowed import WindowedQuantileFilter
from repro.detection.calibration import (
    AutoThresholdCalibrator,
    AutoThresholdFilter,
)
from repro.detection.reports import AlertPolicy, ReportLog
from repro.streams.drift import DriftConfig, generate_drift_trace
from repro.streams.trace_io import load_trace, save_trace


class TestFullStack:
    def test_sized_windowed_monitor_with_alert_hygiene(self):
        trace = generate_drift_trace(
            DriftConfig(num_items=30_000, num_keys=600, num_phases=2,
                        anomalous_per_phase=10, seed=1)
        )
        criteria = Criteria(delta=0.95, threshold=300.0, epsilon=10.0)
        rec = recommend(expected_keys=600, expected_outstanding=10,
                        criteria=criteria, expected_items_per_key=50.0)

        log = ReportLog()
        policy = AlertPolicy(cooldown_items=5_000)
        # Rotating mode splits the budget across two panes, so a sized
        # deployment doubles the recommendation (cf. docs/operations.md).
        window = WindowedQuantileFilter(
            criteria, rec.total_bytes * 2, window_items=15_000,
            mode="rotating", seed=2,
        )
        pages = 0
        for key, value in trace.items():
            report = window.insert(key, value)
            if report is not None:
                log.record(report)
                if policy.should_alert(report):
                    pages += 1

        anomalous = set()
        for members in trace.metadata["phase_anomalous_keys"]:
            anomalous |= set(members)
        flagged = set(log.keys())
        # Most injected anomalies flagged, with at most a sliver of
        # false positives (the sized budget is deliberately tight).
        assert len(flagged & anomalous) >= 0.8 * len(anomalous)
        assert len(flagged - anomalous) <= max(2, len(anomalous) // 5)
        # Alert hygiene really suppressed something.
        assert 0 < pages <= log.total_reports

    def test_auto_threshold_inside_report_pipeline(self):
        rng = random.Random(3)
        base = Criteria(delta=0.9, threshold=1.0, epsilon=5.0)
        log = ReportLog()
        auto = AutoThresholdFilter(
            base, memory_bytes=32 * 1024,
            calibrator=AutoThresholdCalibrator(
                target_abnormal_fraction=0.05,
                recalibrate_every=2_000, min_samples=1_000,
            ),
            seed=4,
        )
        for _ in range(25_000):
            key = rng.randrange(150)
            value = 400.0 if key < 4 else rng.uniform(0, 100)
            report = auto.insert(key, value)
            if report is not None:
                log.record(report)
        # The calibrated monitor's noisiest keys are the injected ones.
        noisiest = {summary.key for summary in log.top(4)}
        assert noisiest <= {0, 1, 2, 3}
        assert 90.0 < auto.current_threshold < 400.0

    def test_checkpoint_mid_stack_and_inspect(self, tmp_path):
        """Checkpoint the inner filter of a running monitor, restore it,
        and verify the inspection report reads coherently on both."""
        criteria = Criteria(delta=0.95, threshold=200.0, epsilon=10.0)
        window = WindowedQuantileFilter(
            criteria, 32 * 1024, window_items=50_000, mode="tumbling",
            seed=5,
        )
        rng = random.Random(6)
        for _ in range(8_000):
            key = rng.randrange(100)
            value = 500.0 if key < 5 else rng.uniform(0, 150)
            window.insert(key, value)

        inner = window._filter
        path = tmp_path / "inner.npz"
        save_filter(inner, path)
        restored = load_filter(path)

        original_report = describe(inner)
        restored_report = describe(restored)
        assert "health: ok" in original_report
        assert health_warnings(restored) == health_warnings(inner)
        for key in range(100):
            assert restored.query(key) == pytest.approx(inner.query(key))

    def test_trace_io_round_trips_drift_metadata(self, tmp_path):
        trace = generate_drift_trace(
            DriftConfig(num_items=3_000, num_keys=100, num_phases=3,
                        anomalous_per_phase=5, seed=7)
        )
        path = tmp_path / "drift.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.metadata["phase_anomalous_keys"] == (
            trace.metadata["phase_anomalous_keys"]
        )
        assert loaded.metadata["phase_boundaries"] == (
            trace.metadata["phase_boundaries"]
        )
        assert (loaded.values == trace.values).all()
