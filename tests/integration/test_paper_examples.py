"""The paper's worked examples, reproduced literally.

Each test replays a scenario the paper walks through in prose or a
figure, asserting the implementation reaches the same conclusions.
"""

import pytest

from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.detection.ground_truth import GroundTruthDetector


class TestNoiseMonitoringExample:
    """Sec. II-A: city noise monitoring, T = 70 dB, delta = 0.8, eps = 1.

    Neighborhood A must be reported; B and C must not.
    """

    READINGS = {
        "A": [65, 67, 72, 69, 74, 66, 68, 75],
        "B": [60, 62, 64, 61, 63, 75, 80, 62],
        "C": [55, 57, 59, 58, 76, 57, 56, 55],
    }
    CRITERIA = Criteria(delta=0.8, threshold=70.0, epsilon=1.0)

    def interleaved(self):
        # The stream updates every 5 minutes, one reading per
        # neighborhood per round.
        for round_ in range(8):
            for name in ("A", "B", "C"):
                yield name, float(self.READINGS[name][round_])

    def test_oracle_reports_only_a(self):
        oracle = GroundTruthDetector(self.CRITERIA)
        for key, value in self.interleaved():
            oracle.process(key, value)
        assert oracle.reported_keys == {"A"}

    def test_quantilefilter_reports_only_a(self):
        qf = QuantileFilter(self.CRITERIA, memory_bytes=64 * 1024, seed=1)
        for key, value in self.interleaved():
            qf.insert(key, value)
        assert qf.reported_keys == {"A"}


class TestFigure3Cases:
    """Fig. 3's walkthrough: delta = 0.9, epsilon = 5 -> threshold 50."""

    CRITERIA = Criteria(delta=0.9, threshold=100.0, epsilon=5.0)

    def test_report_threshold_is_50(self):
        assert self.CRITERIA.report_threshold == pytest.approx(50.0)

    def test_case_a_matching_candidate_reports_at_threshold(self):
        """Key A's Qweight reaches 50 via +9 increments and is reported
        then reset."""
        qf = QuantileFilter(self.CRITERIA, memory_bytes=64 * 1024, seed=1)
        report = None
        for i in range(20):
            report = qf.insert("A", 500.0)  # +9 each
            if report is not None:
                break
        assert report is not None
        # Ceil(50 / 9) = 6 items needed.
        assert report.item_index == 5
        assert qf.query("A") == pytest.approx(0.0)  # reset after report

    def test_case_b_vacancy_stores_directly(self):
        qf = QuantileFilter(self.CRITERIA, memory_bytes=64 * 1024, seed=1)
        qf.insert("B", 1.0)
        assert qf.candidate_hit_rate() >= 0.0
        assert qf.query("B") == pytest.approx(-1.0)

    def test_case_c_swap_with_smallest(self):
        """A full bucket swaps in a vague key whose estimate beats the
        bucket minimum (the -2 entry in the figure)."""
        qf = QuantileFilter(self.CRITERIA, num_buckets=1, bucket_size=2,
                            vague_width=1024, seed=1)
        # Occupy the bucket with one positive and one negative entry.
        qf.insert("D", 500.0)           # +9
        for _ in range(2):
            qf.insert("E", 1.0)         # -2 total (the figure's fpE)
        # C arrives via the vague part with a positive Qweight.
        qf.insert("C", 500.0)
        qf.insert("C", 500.0)
        assert qf.swaps >= 1
        # C now candidate-resident: exact Qweight (+18).
        assert qf.query("C") == pytest.approx(18.0)
        # The displaced E's Qweight moved to the vague part.
        assert qf.query("E") == pytest.approx(-2.0)


class TestSqlSemantics:
    """The problem statement's SQL: SELECT key ... HAVING
    QUANTILE(value_set, delta) >= T — per Definition 4 with reset."""

    def test_group_by_having_equivalent(self):
        criteria = Criteria(delta=0.5, threshold=3.0, epsilon=0.0)
        stream = [("A", 1.0), ("A", 5.0), ("B", 1.0), ("A", 9.0),
                  ("B", 1.0), ("C", 4.0)]
        oracle = GroundTruthDetector(criteria)
        for key, value in stream:
            oracle.process(key, value)
        # A qualifies (median above 3), C qualifies on its single item
        # (index 0 value 4 > 3), B never does.
        assert oracle.reported_keys == {"A", "C"}
