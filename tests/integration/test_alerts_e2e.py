"""Alerting end to end, plus scrape concurrency against a live pipeline.

Two scenarios close the loop on the time-series/alerting layer:

* **Drift-to-bundle acceptance**: injected exceedance drift must walk a
  critical rule ``inactive -> pending -> firing`` within its ``for:``
  window, after which ``/alerts`` reports it firing, ``/healthz`` turns
  critical *naming the rule*, the flight recorder has written an
  ``alert:<rule>`` incident bundle, and ``repro alerts check`` exits 2.
* **Scrape concurrency**: HTTP threads hammering ``/metrics`` and
  ``/alerts`` while the feeding thread retargets the pipeline and a
  firing rule broadcasts a worker incident dump — every response must
  parse (no torn reads) and everything must join (no deadlock).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.observability.alerts import AlertRule
from repro.observability.health import HealthMonitor
from repro.observability.instrument import observe_filter
from repro.observability.recorder import FlightRecorder, list_incidents
from repro.observability.server import (
    FilterServeSource,
    HealthServer,
    PipelineServeSource,
)
from repro.observability.timeseries import MetricStore
from repro.streams.drift import DriftConfig, generate_drift_trace

CRITERIA = Criteria(delta=0.9, threshold=300.0, epsilon=5.0)
GEOMETRY = dict(num_buckets=256, bucket_size=4, vague_width=1_024, seed=7)
STRIDE = 2_048
TICK_SECONDS = 10.0

BENIGN = DriftConfig(
    num_items=12_000, num_keys=400, num_phases=1,
    anomalous_per_phase=0, seed=3,
)
INJECTED = DriftConfig(
    num_items=12_000, num_keys=400, num_phases=1,
    anomalous_per_phase=120, anomaly_boost=25.0, seed=3,
)

DRIFT_RULE = dict(
    name="drift-critical",
    expr="max(qf_drift_z[60s]) >= 4",
    for_seconds=20.0,
    resolve=2.0,
    severity="critical",
)


def get_json(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode())


class TestDriftFiresRuleEndToEnd:
    @pytest.fixture(scope="class")
    def scenario(self, tmp_path_factory):
        """Benign phase, then injected drift, on a synthetic clock."""
        incident_dir = tmp_path_factory.mktemp("incidents")
        filt = QuantileFilter(CRITERIA, **GEOMETRY)
        registry = observe_filter(filt)
        recorder = FlightRecorder(
            filt, max_chunks=16, chunk_items=STRIDE,
            incident_dir=incident_dir, registry=registry,
        )
        monitor = HealthMonitor.for_filter(
            filt, drift_window_items=1_024, recorder=recorder
        )
        clock = {"t": 0.0}
        store = MetricStore(clock=lambda: clock["t"])
        source = FilterServeSource(
            filt, monitor=monitor, registry=registry, recorder=recorder,
            rules=[AlertRule(**DRIFT_RULE)], store=store,
        )
        transitions = []
        breach_times = {}  # state -> synthetic time it was entered

        def feed(trace):
            for begin in range(0, len(trace), STRIDE):
                keys = [int(k) for k in trace.keys[begin:begin + STRIDE]]
                values = [
                    float(v) for v in trace.values[begin:begin + STRIDE]
                ]
                for key, value in zip(keys, values):
                    filt.insert(key, value)
                recorder.feed(keys, values)
                monitor.observe_batch(keys, values)
                for transition in source.tick(now=clock["t"]):
                    transitions.append(transition)
                    breach_times[transition.new_state] = clock["t"]
                clock["t"] += TICK_SECONDS

        feed(generate_drift_trace(BENIGN))
        benign_states = dict(source.alerts.states())
        feed(generate_drift_trace(INJECTED))
        return dict(
            source=source, transitions=transitions,
            breach_times=breach_times, benign_states=benign_states,
            incident_dir=incident_dir, clock=clock,
        )

    def test_benign_phase_stays_inactive(self, scenario):
        assert scenario["benign_states"] == {"drift-critical": "inactive"}

    def test_rule_fires_through_pending_within_for_window(self, scenario):
        edges = [
            (t.old_state, t.new_state) for t in scenario["transitions"]
        ]
        assert ("inactive", "pending") in edges
        assert ("pending", "firing") in edges
        held = (
            scenario["breach_times"]["firing"]
            - scenario["breach_times"]["pending"]
        )
        # Fired as soon as for: elapsed — within one tick of the window.
        assert DRIFT_RULE["for_seconds"] <= held \
            <= DRIFT_RULE["for_seconds"] + TICK_SECONDS

    def test_alerts_route_reports_firing(self, scenario):
        with HealthServer(scenario["source"]) as server:
            status, payload = get_json(server.url + "/alerts")
        assert status == 200
        assert payload["firing"] == ["drift-critical"]
        (alert,) = payload["alerts"]
        assert alert["state"] == "firing"
        assert alert["fired_count"] >= 1

    def test_healthz_goes_critical_naming_the_rule(self, scenario):
        with HealthServer(scenario["source"]) as server:
            status, payload = get_json(server.url + "/healthz")
        assert status == 503
        assert payload["verdict"] == "critical"
        assert any(
            "rule drift-critical firing" in reason
            for reason in payload["reasons"]
        )

    def test_flight_recorder_wrote_alert_bundle(self, scenario):
        manifests = list_incidents(scenario["incident_dir"])
        reasons = [m["reason"] for m in manifests]
        assert "alert:drift-critical" in reasons

    def test_repro_alerts_check_exits_two(self, tmp_path, capsys):
        from repro.observability.cli import main

        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps({"rule": [{
            "name": "drift-critical",
            "expr": "value(qf_items_total) > 100",
            "severity": "critical",
            "resolve": 50.0,
        }]}))
        rc = main([
            "alerts", "check", "--dataset", "internet",
            "--scale", "12000", "--chunk-items", "4096",
            "--rules", str(rules),
        ])
        assert rc == 2
        assert "FIRING [critical] drift-critical" \
            in capsys.readouterr().out


class TestScrapeConcurrency:
    def test_scrapes_race_retarget_and_incident_dump(self, tmp_path):
        """Satellite: /metrics + /alerts scrapes keep parsing while the
        feeder retargets every shard and a firing critical rule
        broadcasts a worker incident dump."""
        from repro.parallel.pipeline import ParallelPipeline
        from repro.streams.caida_like import (
            CaidaLikeConfig,
            generate_caida_like_trace,
        )

        trace = generate_caida_like_trace(
            CaidaLikeConfig(num_items=60_000, num_keys=2_000, seed=5)
        )
        pipeline = ParallelPipeline(
            Criteria(delta=0.95, threshold=200.0, epsilon=30.0),
            2, engine="batch", chunk_items=2_048, collect_stats=True,
            record=True, incident_dir=tmp_path, num_buckets=256,
            vague_width=256, seed=0,
        )
        clock = {"t": 0.0}
        store = MetricStore(clock=lambda: clock["t"])
        source = PipelineServeSource(
            pipeline,
            rules=[AlertRule(
                name="items-flowing",
                expr="value(qf_items_total) > 1000",
                severity="critical", resolve=500.0,
            )],
            store=store,
        )
        errors = []
        stop = threading.Event()

        def scraper(route):
            while not stop.is_set():
                try:
                    status, payload = get_json(url + route)
                    if route == "/alerts":
                        assert status == 200
                        assert payload["rules"] == 1
                    else:
                        assert status in (200, 503)
                except Exception as exc:  # pragma: no cover
                    errors.append((route, exc))
                    return

        def scrape_metrics():
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(
                        url + "/metrics", timeout=10
                    ) as resp:
                        body = resp.read().decode()
                    for line in body.strip().splitlines():
                        if not line.startswith("#"):
                            float(line.rsplit(" ", 1)[1])
                except Exception as exc:  # pragma: no cover
                    errors.append(("/metrics", exc))
                    return

        with pipeline:
            pipeline.start()
            with HealthServer(source) as server:
                url = server.url
                threads = [
                    threading.Thread(target=scraper, args=("/alerts",)),
                    threading.Thread(target=scraper, args=("/healthz",)),
                    threading.Thread(target=scrape_metrics),
                ]
                for t in threads:
                    t.start()
                stride = 4 * 2_048
                half = trace.keys.shape[0] // 2
                try:
                    for begin in range(0, trace.keys.shape[0], stride):
                        pipeline.feed(
                            trace.keys[begin:begin + stride],
                            trace.values[begin:begin + stride],
                        )
                        pipeline.collect_stats_view()
                        source.tick(now=clock["t"])
                        clock["t"] += 5.0
                        if begin <= half < begin + stride:
                            pipeline.retarget(340.0)
                    result = pipeline.finish()
                finally:
                    stop.set()
                    for t in threads:
                        t.join(timeout=30)
        assert not errors, errors
        assert all(not t.is_alive() for t in threads)
        assert result.items == trace.keys.shape[0]
        assert pipeline.criteria.threshold == 340.0
        # The firing critical rule dumped one bundle per shard.
        manifests = list_incidents(tmp_path)
        alert_dumps = [
            m for m in manifests
            if m["reason"] == "alert:items-flowing"
        ]
        assert len(alert_dumps) == 2
