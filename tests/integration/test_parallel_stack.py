"""Soak the full parallel stack on a 200k-item CAIDA-like trace.

These tests exercise the process-backed :class:`ParallelPipeline`
end-to-end: agreement with the deterministic in-process sharded filter,
ordered-mode determinism, periodic merged views, and — the part unit
tests cannot cover — the failure model.  A worker killed mid-stream
must surface as a :class:`WorkerCrashError` within the stall budget and
leave no live child processes behind; a hang here is a bug.
"""

import os
import signal
import time

import pytest

from repro.core.criteria import Criteria
from repro.parallel.pipeline import ParallelPipeline, WorkerCrashError
from repro.parallel.sharded import ShardedQuantileFilter
from repro.streams.caida_like import CaidaLikeConfig, generate_caida_like_trace

CRITERIA = Criteria(delta=0.95, threshold=200.0, epsilon=30.0)
GEOMETRY = dict(num_buckets=4_096, vague_width=2_048, seed=0)


@pytest.fixture(scope="module")
def trace():
    return generate_caida_like_trace(
        CaidaLikeConfig(num_items=200_000, num_keys=5_000, seed=0)
    )


def _assert_no_live_workers(pipe):
    for worker in pipe.workers:
        assert not worker.is_alive(), f"worker {worker.name} still alive"


def test_pipeline_matches_inprocess_sharding(trace):
    sharded = ShardedQuantileFilter(CRITERIA, 4, engine="batch", **GEOMETRY)
    expected = sharded.process(trace.keys, trace.values)

    pipe = ParallelPipeline(CRITERIA, 4, engine="batch", **GEOMETRY)
    result = pipe.run(trace.keys, trace.values)

    assert result.items == len(trace)
    assert sum(result.per_shard_items) == len(trace)
    assert result.reported_keys == expected
    assert result.reported_keys == sharded.reported_keys
    assert sum(result.per_shard_reports) == sharded.report_count
    _assert_no_live_workers(pipe)


def test_ordered_mode_is_deterministic(trace):
    def run_once():
        sequence = []
        pipe = ParallelPipeline(
            CRITERIA, 3, engine="batch", mode="ordered",
            chunk_items=16_384,
            on_reports=lambda batch: sequence.append(
                (batch.chunk_id, batch.shard_id, tuple(batch.keys))
            ),
            **GEOMETRY,
        )
        result = pipe.run(trace.keys, trace.values)
        _assert_no_live_workers(pipe)
        return sequence, result.reported_keys

    first_sequence, first_reports = run_once()
    second_sequence, second_reports = run_once()
    assert first_sequence == second_sequence
    assert first_reports == second_reports
    # Ordered mode releases whole chunks in stream order.
    chunk_ids = [chunk_id for chunk_id, _, _ in first_sequence]
    assert chunk_ids == sorted(chunk_ids)


def test_periodic_merged_views(trace):
    views = []
    pipe = ParallelPipeline(
        CRITERIA, 2, engine="batch", merge_every=4, collect_merged=True,
        chunk_items=16_384,
        on_merge=lambda merged, chunk_id: views.append(
            (chunk_id, merged.items_processed)
        ),
        **GEOMETRY,
    )
    result = pipe.run(trace.keys, trace.values)
    _assert_no_live_workers(pipe)

    assert views, "merge_every produced no intermediate views"
    counts = [items for _, items in views]
    assert counts == sorted(counts)
    assert all(0 < items <= len(trace) for items in counts)
    assert result.merged is not None
    assert result.merged.items_processed == len(trace)
    assert result.merged.reported_keys == result.reported_keys


def test_worker_crash_surfaces_error_not_hang(trace):
    pipe = ParallelPipeline(
        CRITERIA, 3, engine="batch", chunk_items=8_192, stall_timeout=20.0,
        **GEOMETRY,
    )
    pipe.start()
    start = time.perf_counter()
    try:
        with pytest.raises(WorkerCrashError) as excinfo:
            first = True
            for begin in range(0, len(trace), pipe.chunk_items):
                end = begin + pipe.chunk_items
                pipe.feed(trace.keys[begin:end], trace.values[begin:end])
                if first:
                    os.kill(pipe.workers[1].pid, signal.SIGKILL)
                    first = False
            pipe.finish()
        elapsed = time.perf_counter() - start
        # Surfaced well before anything resembling a hang.
        assert elapsed < pipe.stall_timeout + 10.0
        message = str(excinfo.value)
        assert "shard 1" in message
        assert "died" in message
    finally:
        pipe.close()
    _assert_no_live_workers(pipe)
