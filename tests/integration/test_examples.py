"""Smoke tests for the runnable examples.

Fast examples run end-to-end (their printed self-checks must hold);
slow ones (multi-minute sweeps) are compile-checked so a syntax or
import regression still fails the suite.
"""

import importlib.util
import py_compile
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestFastExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        output = capsys.readouterr().out
        assert "outstanding keys: [0, 1, 2, 3, 4]" in output
        assert "exact oracle agrees: True" in output

    def test_sensor_analytics(self, capsys):
        load_example("sensor_analytics").main()
        output = capsys.readouterr().out
        assert "construction sites flagged sustained: True" in output
        assert "nightclub districts flagged spiky:    True" in output
        assert "residential sensors quiet:            True" in output

    def test_observed_monitoring(self, capsys):
        load_example("observed_monitoring").main()
        output = capsys.readouterr().out
        assert "aggregate equals shard sum: True" in output
        assert "items conserved end to end: True" in output
        assert "# TYPE qf_items_total counter" in output
        assert "qf_items_total 80000" in output

    def test_health_monitoring(self, capsys):
        load_example("health_monitoring").main()
        output = capsys.readouterr().out
        assert "baseline verdict: ok" in output
        assert "baseline drift signal ok: True" in output
        assert "drifted verdict: degraded" in output
        assert "drift signal degraded after injection: True" in output
        assert "triggering signal named in reasons: True" in output
        assert "qf_health_status 1" in output

    def test_recorded_monitoring(self, capsys, tmp_path):
        result = load_example("recorded_monitoring").main(str(tmp_path))
        output = capsys.readouterr().out
        assert "baseline verdict: ok" in output
        assert "drifted verdict: degraded" in output
        assert "trigger: verdict_flip:ok->degraded" in output
        assert "replay MATCH" in output
        assert "replay matches capture bit-identically: True" in output
        assert result.ok
        # The flip dump landed where the caller asked.
        assert list(tmp_path.glob("incident-*.json.gz"))
        assert list(tmp_path.glob("incident-*.manifest.json"))

    def test_threshold_demo(self, capsys):
        load_example("threshold_demo").main()
        output = capsys.readouterr().out
        assert "controller retargeted under drift:     True" in output
        assert "controlled rate within 25% of target:  True" in output
        assert "fixed-threshold rate off by over 50%:  True" in output

    def test_cpu_utilization_scaled_down(self, capsys):
        module = load_example("cpu_utilization")
        module.TICKS = 1_200
        module.NIGHT_STARTS = 600
        module.main()
        output = capsys.readouterr().out
        assert "saturated hosts 0-2 caught during the day: True" in output
        assert "rogue night job on host 3 caught at night: True" in output


class TestSlowExamplesCompile:
    SLOW_EXAMPLES = [
        "network_latency_monitoring", "parameter_tuning",
        "streaming_service", "distributed_monitoring",
        "sharded_monitoring",
    ]

    @pytest.mark.parametrize("name", SLOW_EXAMPLES)
    def test_compiles(self, name):
        py_compile.compile(str(EXAMPLES_DIR / f"{name}.py"), doraise=True)

    @pytest.mark.parametrize("name", SLOW_EXAMPLES)
    def test_imports_and_exposes_main(self, name):
        module = load_example(name)
        assert callable(module.main)
