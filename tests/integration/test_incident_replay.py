"""End-to-end incident forensics: drift fires a dump, replay reproduces it.

The acceptance scenario for the flight recorder: an injected-drift
incident on BOTH engines must auto-dump a bundle whose replay is
bit-identical, the ``repro record`` CLI must round-trip it with honest
exit codes, and a crashing pipeline worker must leave behind a bundle
that replays the exact chunks it ingested before dying.
"""

import gzip
import json
import queue as queue_module
import re

import numpy as np
import pytest

from repro.core.criteria import Criteria
from repro.core.inspect import structural_probe
from repro.core.quantile_filter import QuantileFilter
from repro.core.vectorized import BatchQuantileFilter
from repro.observability.cli import main as cli_main
from repro.observability.health import HealthMonitor
from repro.observability.recorder import (
    FlightRecorder,
    list_incidents,
    load_bundle,
    replay_bundle,
)
from repro.parallel.pipeline import ParallelPipeline, WorkerFailedError
from repro.streams.drift import DriftConfig, generate_drift_trace

CRITERIA = Criteria(delta=0.9, threshold=300.0, epsilon=5.0)
GEOMETRY = dict(num_buckets=128, bucket_size=4, vague_width=512, seed=7)
STRIDE = 1_024

BENIGN = DriftConfig(
    num_items=6_000, num_keys=200, num_phases=1,
    anomalous_per_phase=0, seed=3,
)
INJECTED = DriftConfig(
    num_items=6_000, num_keys=200, num_phases=1,
    anomalous_per_phase=60, anomaly_boost=25.0, seed=3,
)


def drive_incident(filt, recorder, monitor):
    """Benign phase then injected drift; returns the flip bundle path."""
    flip_path = None
    for trace in (generate_drift_trace(BENIGN),
                  generate_drift_trace(INJECTED)):
        for begin in range(0, len(trace), STRIDE):
            keys = [int(k) for k in trace.keys[begin:begin + STRIDE]]
            values = [
                float(v) for v in trace.values[begin:begin + STRIDE]
            ]
            recorder.feed(keys, values)
            monitor.observe_batch(keys, values)
        before = recorder.dumps_total
        report = monitor.report(
            {
                "qf_items_total": float(filt.items_processed),
                "qf_reports_total": float(filt.report_count),
            },
            probe=structural_probe(filt),
        )
        if recorder.dumps_total > before:
            flip_path = recorder.list_incidents()[0]["path"]
            assert report.verdict != "ok"
    return flip_path


@pytest.mark.parametrize("engine", ["scalar", "batch"])
def test_drift_incident_replays_bit_identically(engine, tmp_path):
    if engine == "scalar":
        filt = QuantileFilter(CRITERIA, **GEOMETRY)
    else:
        filt = BatchQuantileFilter(CRITERIA, chunk_size=STRIDE, **GEOMETRY)
    recorder = FlightRecorder(
        filt, max_chunks=8, chunk_items=STRIDE, incident_dir=tmp_path,
        config={"scenario": "injected-drift", "engine": engine},
    )
    monitor = HealthMonitor.for_criteria(
        CRITERIA, drift_window_items=512, shadow_sample_rate=None,
        recorder=recorder,
    )

    flip_path = drive_incident(filt, recorder, monitor)
    assert flip_path is not None, "drift injection must flip the verdict"
    bundle = load_bundle(flip_path)
    assert bundle["manifest"]["engine"] == engine
    assert bundle["manifest"]["reason"].startswith("verdict_flip:ok->")
    assert bundle["forensics"]["health"]["verdict"] != "ok"

    result = replay_bundle(flip_path)
    assert result.ok, result.mismatches
    assert result.engine == engine
    assert result.fingerprint_ok and result.verdict_ok
    # Replaying a second time from the same bytes is just as identical:
    # the bundle is self-contained, not dependent on ambient state.
    again = replay_bundle(flip_path)
    assert again.as_dict() == result.as_dict()


class TestRecordCli:
    def test_dump_replay_list_round_trip(self, tmp_path, capsys):
        incident_dir = tmp_path / "incidents"
        rc = cli_main([
            "record", "dump", "--dataset", "drift", "--scale", "20000",
            "--engine", "scalar", "--dir", str(incident_dir),
            "--max-chunks", "8", "--chunk-items", "2048",
        ])
        assert rc == 0
        bundles = [
            line for line in capsys.readouterr().out.splitlines()
            if line.endswith(".json.gz")
        ]
        assert bundles, "dump must print the bundle path(s)"

        rc = cli_main(["record", "replay", bundles[-1]])
        out = capsys.readouterr().out
        assert rc == 0
        assert "replay MATCH" in out

        rc = cli_main([
            "record", "replay", bundles[-1], "--format", "json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["ok"] is True
        assert payload["mismatches"] == []

        rc = cli_main(["record", "list", "--dir", str(incident_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "reason=explicit" in out

    def test_replay_exit_codes_are_honest(self, tmp_path, capsys):
        incident_dir = tmp_path / "incidents"
        assert cli_main([
            "record", "dump", "--dataset", "internet", "--scale", "8000",
            "--dir", str(incident_dir),
        ]) == 0
        bundle_path = [
            line for line in capsys.readouterr().out.splitlines()
            if line.endswith(".json.gz")
        ][-1]

        # Tampered stream -> exit 1 and a MISMATCH diagnosis.
        bundle = load_bundle(bundle_path)
        bundle["chunks"][0]["values"][0] += 1_000.0
        tampered = tmp_path / "tampered.json.gz"
        tampered.write_bytes(
            gzip.compress(json.dumps(bundle).encode(), mtime=0)
        )
        rc = cli_main(["record", "replay", str(tampered)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "replay MISMATCH" in out

        # Unreadable file -> exit 2 (usage-class failure, not a replay
        # verdict).
        garbage = tmp_path / "garbage.json.gz"
        garbage.write_bytes(b"nope")
        assert cli_main(["record", "replay", str(garbage)]) == 2

    def test_list_empty_dir(self, tmp_path, capsys):
        assert cli_main([
            "record", "list", "--dir", str(tmp_path / "none"),
        ]) == 0
        assert "no incident bundles" in capsys.readouterr().out


class TestPipelineWorkerCrash:
    def test_crash_dump_names_bundle_and_replays(self, tmp_path):
        rng = np.random.default_rng(0)
        pipe = ParallelPipeline(
            CRITERIA, 2, engine="batch", chunk_items=STRIDE,
            record=True, incident_dir=tmp_path, record_chunks=8,
            num_buckets=128, vague_width=512,
        )
        pipe.start()
        try:
            for _ in range(6):
                keys = rng.integers(0, 200, size=2_048).astype(np.int64)
                values = rng.uniform(0.0, 400.0, size=2_048)
                pipe.feed(keys, values)
            # Poison one worker: an unknown message kind raises inside
            # its loop, which must dump a crash bundle before the error
            # propagates.  Keep draining acks while enqueuing — a
            # blocking put with a full ack queue would deadlock against
            # the backpressure the pipeline normally applies in feed().
            while True:
                try:
                    pipe._in_queues[0].put(("poison",), timeout=0.5)
                    break
                except queue_module.Full:
                    pipe._drain(block=False)
            with pytest.raises(WorkerFailedError) as excinfo:
                pipe.finish()
        finally:
            pipe.close()
        message = str(excinfo.value)
        match = re.search(r"\[incident bundle: (.+?)\]", message)
        assert match, f"crash must name its bundle, got: {message}"
        bundle_path = match.group(1)

        bundle = load_bundle(bundle_path)
        assert bundle["manifest"]["reason"] == "worker_crash"
        assert bundle["manifest"]["config"]["shard"] == 0
        assert "poison" in bundle["forensics"]["extra"]["traceback"]
        result = replay_bundle(bundle_path)
        assert result.ok, result.mismatches

        # The shard subdirectory layout is discoverable from the root.
        manifests = list_incidents(tmp_path)
        assert any(m["reason"] == "worker_crash" for m in manifests)

    def test_record_requires_incident_dir(self):
        from repro.common.errors import ParameterError

        with pytest.raises(ParameterError, match="incident_dir"):
            ParallelPipeline(CRITERIA, 2, record=True)

    def test_clean_run_leaves_no_bundles(self, tmp_path):
        rng = np.random.default_rng(1)
        pipe = ParallelPipeline(
            CRITERIA, 2, engine="batch", chunk_items=STRIDE,
            record=True, incident_dir=tmp_path, record_chunks=4,
            num_buckets=128, vague_width=512,
        )
        keys = rng.integers(0, 100, size=8_192).astype(np.int64)
        values = rng.uniform(0.0, 400.0, size=8_192)
        recorded = pipe.run(keys, values)
        assert list_incidents(tmp_path) == []

        # Recording must not change what gets detected.
        plain = ParallelPipeline(
            CRITERIA, 2, engine="batch", chunk_items=STRIDE,
            num_buckets=128, vague_width=512,
        ).run(keys, values)
        assert recorded.reported_keys == plain.reported_keys
