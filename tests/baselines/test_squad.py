"""Tests for repro.baselines.squad."""

import random

import pytest

from repro.common.errors import ParameterError
from repro.baselines.squad import Squad
from repro.quantiles.base import NEG_INF


class TestSquad:
    def test_heavy_key_gets_summary(self):
        squad = Squad(memory_bytes=64 * 1024, seed=1)
        for i in range(500):
            squad.insert("heavy", float(i))
        assert squad.tracked_keys >= 1
        median = squad.quantile("heavy", 0.5)
        assert median == pytest.approx(250.0, abs=25.0)

    def test_unseen_key_is_neg_inf(self):
        squad = Squad(memory_bytes=64 * 1024, seed=1)
        squad.insert("a", 1.0)
        assert squad.quantile("never", 0.5) == NEG_INF

    def test_light_key_answered_from_reservoir(self):
        rng = random.Random(2)
        squad = Squad(memory_bytes=256 * 1024, heavy_fraction=0.5, seed=2)
        # One light key drowned among many heavy ones.
        for _ in range(2_000):
            squad.insert(rng.randrange(5), rng.uniform(0, 10))
        for _ in range(200):
            squad.insert("light", 100.0)
        estimate = squad.quantile("light", 0.5)
        # Either its own summary (if elected) or the reservoir: both
        # should see only 100s for this key.
        assert estimate == pytest.approx(100.0, abs=1.0) or estimate == NEG_INF

    def test_eviction_drops_summary(self):
        squad = Squad(memory_bytes=2_000, heavy_fraction=0.75, seed=3)
        capacity = squad.heavy.capacity
        for i in range(capacity + 5):
            squad.insert(f"key-{i}", 1.0)
        assert squad.tracked_keys <= capacity

    def test_quantile_accuracy_on_tracked_key(self):
        rng = random.Random(4)
        squad = Squad(memory_bytes=128 * 1024, gk_eps=0.01, seed=4)
        values = [rng.uniform(0, 1000) for _ in range(5_000)]
        for value in values:
            squad.insert("k", value)
        ordered = sorted(values)
        for delta in (0.5, 0.95):
            estimate = squad.quantile("k", delta)
            true = ordered[int(delta * len(ordered))]
            assert estimate == pytest.approx(true, abs=60.0)

    def test_reset_key_clears_tracked_summary(self):
        squad = Squad(memory_bytes=64 * 1024, seed=5)
        for i in range(100):
            squad.insert("k", float(i))
        assert squad.reset_key("k")
        # The per-key summary forgets; the uniform reservoir cannot (it
        # has no per-key index), so queries fall back to sampled values.
        assert squad.summaries["k"].count == 0

    def test_reset_key_untracked_returns_false(self):
        squad = Squad(memory_bytes=64 * 1024, seed=6)
        assert not squad.reset_key("nope")

    def test_nbytes_grows_with_content(self):
        squad = Squad(memory_bytes=64 * 1024, seed=7)
        before = squad.nbytes
        for i in range(1_000):
            squad.insert("k", float(i))
        assert squad.nbytes > before

    def test_epsilon_respected(self):
        squad = Squad(memory_bytes=64 * 1024, seed=8)
        squad.insert("k", 100.0)
        # One value with epsilon=30: index negative -> -inf.
        assert squad.quantile("k", 0.95, epsilon=30) == NEG_INF

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            Squad(memory_bytes=100)
        with pytest.raises(ParameterError):
            Squad(memory_bytes=10_000, heavy_fraction=1.5)
