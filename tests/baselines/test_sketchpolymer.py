"""Tests for repro.baselines.sketchpolymer."""

import random

import pytest

from repro.common.errors import ParameterError
from repro.baselines.sketchpolymer import SketchPolymer
from repro.quantiles.base import NEG_INF


class TestBucketing:
    def test_bucket_monotone_in_value(self):
        sp = SketchPolymer(memory_bytes=64 * 1024)
        buckets = [sp.bucket_of(v) for v in (0.01, 1.0, 10.0, 100.0, 10_000.0)]
        assert buckets == sorted(buckets)

    def test_values_clamped_to_range(self):
        sp = SketchPolymer(memory_bytes=64 * 1024, value_min=1.0, value_max=1024.0)
        assert sp.bucket_of(0.0001) == 0
        assert sp.bucket_of(1e9) == sp.num_buckets - 1

    def test_bucket_upper_value_brackets(self):
        sp = SketchPolymer(memory_bytes=64 * 1024, value_min=1.0, value_max=1024.0)
        for value in (1.5, 3.0, 100.0, 900.0):
            bucket = sp.bucket_of(value)
            assert sp.bucket_upper_value(bucket) >= value * 0.99

    def test_num_buckets_log_of_range(self):
        sp = SketchPolymer(memory_bytes=64 * 1024, value_min=1.0, value_max=1024.0)
        assert sp.num_buckets == 10


class TestEarlyFilter:
    def test_early_values_discarded(self):
        """The skip filter is SketchPolymer's recall-error source."""
        sp = SketchPolymer(memory_bytes=256 * 1024, skip_count=3, seed=1)
        sp.insert("k", 100.0)
        sp.insert("k", 100.0)
        sp.insert("k", 100.0)
        assert sp.quantile("k", 0.5) == NEG_INF  # nothing recorded yet
        sp.insert("k", 100.0)
        assert sp.quantile("k", 0.5) > 0

    def test_skip_zero_records_everything(self):
        sp = SketchPolymer(memory_bytes=256 * 1024, skip_count=0, seed=2)
        sp.insert("k", 100.0)
        assert sp.quantile("k", 0.5) > 0


class TestQuantiles:
    def test_tail_quantile_roughly_correct(self):
        rng = random.Random(3)
        sp = SketchPolymer(memory_bytes=512 * 1024, skip_count=0, seed=3)
        values = [rng.uniform(1, 100) for _ in range(2_000)]
        for value in values:
            sp.insert("k", value)
        estimate = sp.quantile("k", 0.95)
        true = sorted(values)[int(0.95 * len(values))]
        # Log2 buckets: estimate within a factor of ~2 of the truth.
        assert true / 2 <= estimate <= true * 2.5

    def test_low_memory_overestimates_tails(self):
        """Collisions inflate counts -> tails pulled up -> the paper's
        low-precision/high-recall regime."""
        rng = random.Random(4)
        tiny = SketchPolymer(memory_bytes=512, skip_count=0, seed=4)
        big = SketchPolymer(memory_bytes=1 << 20, skip_count=0, seed=4)
        for _ in range(5_000):
            key = rng.randrange(500)
            value = rng.uniform(1, 10)
            tiny.insert(key, value)
            big.insert(key, value)
        probe_keys = list(range(50))
        tiny_tails = [tiny.quantile(k, 0.95) for k in probe_keys]
        big_tails = [big.quantile(k, 0.95) for k in probe_keys]
        assert sum(tiny_tails) > sum(big_tails)

    def test_epsilon_respected(self):
        sp = SketchPolymer(memory_bytes=256 * 1024, skip_count=0, seed=5)
        sp.insert("k", 100.0)
        assert sp.quantile("k", 0.95, epsilon=30) == NEG_INF

    def test_unseen_key_neg_inf_with_big_sketch(self):
        sp = SketchPolymer(memory_bytes=1 << 20, skip_count=0, seed=6)
        sp.insert("a", 5.0)
        assert sp.quantile("zzz", 0.5) == NEG_INF

    def test_reset_key_unsupported(self):
        sp = SketchPolymer(memory_bytes=64 * 1024)
        sp.insert("k", 5.0)
        assert not sp.reset_key("k")


class TestSizing:
    def test_nbytes_within_budget(self):
        sp = SketchPolymer(memory_bytes=100_000)
        assert sp.nbytes <= 100_000

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            SketchPolymer(memory_bytes=10_000, value_min=0.0)
        with pytest.raises(ParameterError):
            SketchPolymer(memory_bytes=10_000, value_min=10.0, value_max=5.0)
        with pytest.raises(ParameterError):
            SketchPolymer(memory_bytes=10_000, skip_count=-1)
        with pytest.raises(ParameterError):
            SketchPolymer(memory_bytes=10_000, stage1_fraction=0.0)
