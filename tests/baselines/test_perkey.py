"""Tests for repro.baselines.perkey (the holistic approach)."""

import random

import pytest

from repro.common.errors import ParameterError
from repro.baselines.perkey import ESTIMATOR_FACTORIES, PerKeyQuantileStore
from repro.core.criteria import Criteria
from repro.detection.adapters import QueryOnInsertAdapter
from repro.detection.ground_truth import compute_ground_truth
from repro.quantiles.base import NEG_INF
from tests.conftest import make_two_class_stream


class TestBasics:
    @pytest.mark.parametrize("name", sorted(ESTIMATOR_FACTORIES))
    def test_every_estimator_kind_works(self, name):
        store = PerKeyQuantileStore(estimator=name)
        for i in range(200):
            store.insert("k", float(i % 500))
        estimate = store.quantile("k", 0.5)
        assert estimate != NEG_INF

    def test_keys_isolated(self):
        store = PerKeyQuantileStore(estimator="exact")
        for _ in range(10):
            store.insert("low", 1.0)
            store.insert("high", 100.0)
        assert store.quantile("low", 0.5) == 1.0
        assert store.quantile("high", 0.5) == 100.0

    def test_unseen_key(self):
        store = PerKeyQuantileStore()
        assert store.quantile("never", 0.5) == NEG_INF

    def test_reset_key(self):
        store = PerKeyQuantileStore(estimator="exact")
        store.insert("k", 5.0)
        assert store.reset_key("k")
        assert store.quantile("k", 0.5) == NEG_INF
        assert not store.reset_key("other")

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            PerKeyQuantileStore(estimator="magic")
        with pytest.raises(ParameterError):
            PerKeyQuantileStore(max_keys=0)


class TestFailureModes:
    def test_memory_grows_with_key_count(self):
        """The paper's 'intolerable storage demands': footprint scales
        linearly with distinct keys."""
        small = PerKeyQuantileStore(estimator="gk")
        large = PerKeyQuantileStore(estimator="gk")
        for key in range(100):
            small.insert(key, 1.0)
        for key in range(10_000):
            large.insert(key, 1.0)
        assert large.nbytes > 50 * small.nbytes
        assert large.tracked_keys == 10_000

    def test_admission_cap_drops_new_keys(self):
        store = PerKeyQuantileStore(estimator="exact", max_keys=2)
        store.insert("a", 1.0)
        store.insert("b", 1.0)
        store.insert("c", 99.0)  # dropped
        assert store.tracked_keys == 2
        assert store.dropped_items == 1
        assert store.quantile("c", 0.5) == NEG_INF

    def test_cap_causes_recall_collapse(self, py_random):
        """With the cap, late-arriving hot keys are invisible — the
        recall failure mode the module docstring describes."""
        crit = Criteria(delta=0.9, threshold=100.0, epsilon=3.0)
        items = [(f"cold-{i}", 1.0) for i in range(50)]
        items += make_two_class_stream(py_random, n_items=2_000, n_keys=20,
                                       n_hot=5, hot_value=500.0,
                                       cold_max=50.0)
        adapter = QueryOnInsertAdapter(
            PerKeyQuantileStore(estimator="gk", max_keys=50), crit
        )
        for key, value in items:
            adapter.process(key, value)
        truth = compute_ground_truth(items, crit)
        assert truth and not (truth & adapter.reported_keys)


class TestAccuracyUnbounded:
    def test_matches_truth_with_exact_estimators(self, py_random):
        crit = Criteria(delta=0.9, threshold=100.0, epsilon=3.0)
        items = make_two_class_stream(py_random, n_items=5_000, n_keys=50,
                                      n_hot=5, hot_value=500.0, cold_max=50.0)
        adapter = QueryOnInsertAdapter(
            PerKeyQuantileStore(estimator="exact"), crit
        )
        for key, value in items:
            adapter.process(key, value)
        truth = compute_ground_truth(items, crit)
        assert adapter.reported_keys == truth

    def test_gk_estimators_close_to_truth(self, py_random):
        crit = Criteria(delta=0.9, threshold=100.0, epsilon=3.0)
        items = make_two_class_stream(py_random, n_items=5_000, n_keys=50,
                                      n_hot=5, hot_value=500.0, cold_max=50.0)
        adapter = QueryOnInsertAdapter(
            PerKeyQuantileStore(estimator="gk"), crit
        )
        for key, value in items:
            adapter.process(key, value)
        truth = compute_ground_truth(items, crit)
        assert truth <= adapter.reported_keys
