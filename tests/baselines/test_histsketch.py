"""Tests for repro.baselines.histsketch."""

import random

import pytest

from repro.common.errors import ParameterError
from repro.baselines.histsketch import HistSketch
from repro.quantiles.base import NEG_INF


class TestBinning:
    def test_bins_monotone(self):
        hs = HistSketch(memory_bytes=64 * 1024)
        bins = [hs.bin_of(v) for v in (0.01, 0.5, 5.0, 500.0, 1e5)]
        assert bins == sorted(bins)

    def test_bin_upper_value_brackets(self):
        hs = HistSketch(memory_bytes=64 * 1024)
        for value in (0.1, 1.0, 10.0, 1_000.0):
            assert hs.bin_upper_value(hs.bin_of(value)) >= value * 0.99

    def test_values_clamped(self):
        hs = HistSketch(memory_bytes=64 * 1024, value_min=1.0, value_max=100.0)
        assert hs.bin_of(0.0001) == 0
        assert hs.bin_of(1e9) == hs.num_bins - 1


class TestHeavyPart:
    def test_owner_key_histogram_accurate(self):
        rng = random.Random(1)
        hs = HistSketch(memory_bytes=256 * 1024, num_bins=32, seed=1)
        values = [rng.uniform(1, 100) for _ in range(2_000)]
        for value in values:
            hs.insert("solo", value)
        estimate = hs.quantile("solo", 0.5)
        true = sorted(values)[1_000]
        # Log-bin resolution: within one bin's span of the truth.
        assert true / 2 <= estimate <= true * 2

    def test_voting_replacement(self):
        """A heavy newcomer eventually usurps an idle incumbent's slot."""
        hs = HistSketch(memory_bytes=2_048, num_bins=8, vote_lambda=2.0, seed=2)
        # Find two keys colliding into the same slot.
        from repro.common.hashing import canonical_key

        slot_of = lambda key: hs._slot_of(canonical_key(key))  # noqa: E731
        base = "incumbent"
        challenger = None
        for i in range(10_000):
            candidate = f"challenger-{i}"
            if slot_of(candidate) == slot_of(base) and candidate != base:
                challenger = candidate
                break
        assert challenger is not None
        hs.insert(base, 5.0)
        for _ in range(100):
            hs.insert(challenger, 50.0)
        # The challenger outvoted the single-item incumbent.
        assert hs.quantile(challenger, 0.5) > 0

    def test_reset_key_owned_slot(self):
        hs = HistSketch(memory_bytes=256 * 1024, seed=3)
        for _ in range(50):
            hs.insert("k", 10.0)
        assert hs.reset_key("k")
        # Only light-part residue (zero here) remains.
        assert hs.quantile("k", 0.5) == NEG_INF

    def test_reset_key_not_owned(self):
        hs = HistSketch(memory_bytes=256 * 1024, seed=4)
        assert not hs.reset_key("never-seen")


class TestLightPart:
    def test_evicted_key_still_answerable(self):
        """Flushed histograms land in the light part, so an evicted
        key's distribution survives (with CM noise)."""
        hs = HistSketch(memory_bytes=4_096, num_bins=8, vote_lambda=1.0, seed=5)
        for _ in range(20):
            hs.insert("victim", 10.0)
        # Hammer colliding keys until the victim's slot is usurped.
        for i in range(3_000):
            hs.insert(f"noise-{i % 97}", 1.0)
        estimate = hs.quantile("victim", 0.5)
        assert estimate == NEG_INF or estimate > 0  # never crashes


class TestSizing:
    def test_nbytes_accounts_for_both_parts(self):
        hs = HistSketch(memory_bytes=100_000)
        assert hs.nbytes <= 100_000
        assert hs.num_slots >= 1

    def test_per_key_cost_is_high(self):
        """The HistSketch trade-off the paper highlights: honest accuracy
        needs a heavy slot per key, costing 16 + 4*num_bins bytes each."""
        hs = HistSketch(memory_bytes=100_000, num_bins=16)
        assert hs._slot_bytes == 16 + 64

    def test_unseen_key(self):
        hs = HistSketch(memory_bytes=64 * 1024, seed=6)
        assert hs.quantile("nope", 0.5) == NEG_INF

    def test_epsilon_respected(self):
        hs = HistSketch(memory_bytes=64 * 1024, seed=7)
        hs.insert("k", 5.0)
        assert hs.quantile("k", 0.95, epsilon=30) == NEG_INF

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            HistSketch(memory_bytes=10_000, num_bins=1)
        with pytest.raises(ParameterError):
            HistSketch(memory_bytes=10_000, value_min=0.0)
        with pytest.raises(ParameterError):
            HistSketch(memory_bytes=10_000, vote_lambda=0.0)
