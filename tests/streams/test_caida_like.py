"""Tests for repro.streams.caida_like."""

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.streams.caida_like import (
    CaidaLikeConfig,
    generate_caida_like_trace,
    pack_five_tuple,
)


def small_config(**overrides) -> CaidaLikeConfig:
    defaults = dict(num_items=20_000, num_keys=500, seed=1)
    defaults.update(overrides)
    return CaidaLikeConfig(**defaults)


class TestGenerator:
    def test_shape_and_universe(self):
        trace = generate_caida_like_trace(small_config())
        assert len(trace) == 20_000
        assert trace.keys.max() < 500
        assert (trace.values > 0).all()

    def test_reproducible(self):
        a = generate_caida_like_trace(small_config())
        b = generate_caida_like_trace(small_config())
        assert (a.values == b.values).all()

    def test_anomalous_keys_injected(self):
        trace = generate_caida_like_trace(small_config())
        assert trace.metadata["anomalous_keys"] > 0

    def test_abnormal_item_share_near_paper(self):
        """T = 300 ms should put roughly 5-15 % of items above it
        (paper: 7.6 %)."""
        trace = generate_caida_like_trace(small_config())
        share = trace.anomaly_fraction(300.0)
        assert 0.03 < share < 0.20

    def test_key_frequency_skewed(self):
        trace = generate_caida_like_trace(small_config())
        counts = np.sort(np.bincount(trace.keys, minlength=500))[::-1]
        assert counts[0] > 5 * counts[249]

    def test_no_anomalies_config(self):
        trace = generate_caida_like_trace(
            small_config(anomalous_key_fraction=0.0)
        )
        assert trace.metadata["anomalous_keys"] == 0

    def test_anomalous_band_fallback_on_tiny_trace(self):
        """When no key reaches the frequency floor, the generator falls
        back to the most frequent keys instead of producing none."""
        trace = generate_caida_like_trace(
            CaidaLikeConfig(num_items=200, num_keys=150,
                            anomalous_min_frequency=1_000, seed=2)
        )
        assert trace.metadata["anomalous_keys"] > 0

    def test_invalid_config(self):
        with pytest.raises(ParameterError):
            CaidaLikeConfig(num_items=0)
        with pytest.raises(ParameterError):
            CaidaLikeConfig(anomalous_key_fraction=1.5)
        with pytest.raises(ParameterError):
            CaidaLikeConfig(anomaly_boost=0.5)


class TestPackFiveTuple:
    def test_deterministic(self):
        tuple_ = (0x0A000001, 0x0A000002, 443, 51234, 6)
        assert pack_five_tuple(*tuple_) == pack_five_tuple(*tuple_)

    def test_distinct_flows_distinct_keys(self):
        keys = {
            pack_five_tuple(src, dst, sport, 443, 6)
            for src in range(20)
            for dst in range(20)
            for sport in (1000, 2000)
        }
        assert len(keys) == 800

    def test_port_order_matters(self):
        a = pack_five_tuple(1, 2, 80, 443, 6)
        b = pack_five_tuple(1, 2, 443, 80, 6)
        assert a != b
