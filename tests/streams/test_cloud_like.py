"""Tests for repro.streams.cloud_like."""

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.streams.cloud_like import CloudLikeConfig, generate_cloud_like_trace


def small_config(**overrides) -> CloudLikeConfig:
    defaults = dict(num_items=20_000, recurring_keys=500, seed=1)
    defaults.update(overrides)
    return CloudLikeConfig(**defaults)


class TestGenerator:
    def test_extreme_key_cardinality(self):
        """The Cloud dataset's signature: distinct keys ~ stream length."""
        trace = generate_cloud_like_trace(small_config())
        assert trace.distinct_keys > 0.6 * len(trace)

    def test_singleton_fraction_controls_cardinality(self):
        low = generate_cloud_like_trace(small_config(singleton_fraction=0.2))
        high = generate_cloud_like_trace(small_config(singleton_fraction=0.9))
        assert high.distinct_keys > low.distinct_keys

    def test_singleton_keys_unique(self):
        trace = generate_cloud_like_trace(small_config())
        singleton_keys = trace.keys[trace.keys >= 500]
        assert len(np.unique(singleton_keys)) == len(singleton_keys)

    def test_recurring_keys_recur(self):
        trace = generate_cloud_like_trace(small_config(singleton_fraction=0.5))
        recurring = trace.keys[trace.keys < 500]
        counts = np.bincount(recurring, minlength=500)
        assert (counts > 1).sum() > 100

    def test_reproducible(self):
        a = generate_cloud_like_trace(small_config())
        b = generate_cloud_like_trace(small_config())
        assert (a.keys == b.keys).all() and (a.values == b.values).all()

    def test_values_positive(self):
        trace = generate_cloud_like_trace(small_config())
        assert (trace.values > 0).all()

    def test_abnormal_share_at_default_threshold(self):
        trace = generate_cloud_like_trace(small_config())
        share = trace.anomaly_fraction(20.0)
        assert 0.02 < share < 0.25

    def test_anomalous_keys_in_metadata(self):
        trace = generate_cloud_like_trace(small_config())
        assert trace.metadata["anomalous_keys"] > 0

    def test_invalid_config(self):
        with pytest.raises(ParameterError):
            CloudLikeConfig(num_items=0)
        with pytest.raises(ParameterError):
            CloudLikeConfig(singleton_fraction=1.0)
