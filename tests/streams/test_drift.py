"""Tests for repro.streams.drift."""

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.streams.drift import DriftConfig, generate_drift_trace


def small_config(**overrides) -> DriftConfig:
    defaults = dict(num_items=12_000, num_keys=300, num_phases=3,
                    anomalous_per_phase=8, seed=1)
    defaults.update(overrides)
    return DriftConfig(**defaults)


class TestGenerator:
    def test_shape_and_metadata(self):
        trace = generate_drift_trace(small_config())
        assert len(trace) == 12_000
        meta = trace.metadata
        assert meta["num_phases"] == 3
        assert len(meta["phase_boundaries"]) == 3
        assert len(meta["phase_anomalous_keys"]) == 3
        for members in meta["phase_anomalous_keys"]:
            assert len(members) == 8

    def test_reproducible(self):
        a = generate_drift_trace(small_config())
        b = generate_drift_trace(small_config())
        assert (a.values == b.values).all()
        assert a.metadata["phase_anomalous_keys"] == (
            b.metadata["phase_anomalous_keys"]
        )

    def test_full_churn_changes_anomalous_sets(self):
        trace = generate_drift_trace(small_config(carry_over=0))
        sets = [set(s) for s in trace.metadata["phase_anomalous_keys"]]
        assert sets[0] != sets[1]
        assert not (sets[0] & sets[1])  # full churn -> disjoint

    def test_carry_over_keeps_some_keys(self):
        trace = generate_drift_trace(small_config(carry_over=4))
        sets = [set(s) for s in trace.metadata["phase_anomalous_keys"]]
        assert len(sets[0] & sets[1]) == 4

    def test_anomalous_keys_hot_only_in_their_phase(self):
        trace = generate_drift_trace(small_config())
        meta = trace.metadata
        boundaries = meta["phase_boundaries"] + [len(trace)]
        sets = [set(s) for s in meta["phase_anomalous_keys"]]
        # A phase-0-only anomalous key has high values in phase 0 and
        # normal values later.
        only_phase0 = sets[0] - sets[1] - sets[2]
        assert only_phase0
        key = next(iter(only_phase0))
        phase0_values = trace.values[:boundaries[1]][
            trace.keys[:boundaries[1]] == key
        ]
        later_values = trace.values[boundaries[1]:][
            trace.keys[boundaries[1]:] == key
        ]
        assert phase0_values.size and later_values.size
        assert np.median(phase0_values) > 4 * np.median(later_values)

    def test_invalid_configs(self):
        with pytest.raises(ParameterError):
            DriftConfig(num_phases=0)
        with pytest.raises(ParameterError):
            DriftConfig(anomalous_per_phase=10, carry_over=11)
        with pytest.raises(ParameterError):
            DriftConfig(num_keys=5, anomalous_per_phase=10)
