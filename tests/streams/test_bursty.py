"""Tests for the bursty adversarial workload generator."""

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.streams.bursty import (
    BurstyConfig,
    burst_windows,
    generate_bursty_trace,
)

TINY = BurstyConfig(
    num_items=6_000, num_keys=200, num_bursts=3, burst_length=600,
    burst_keys=8, seed=1,
)


class TestConfigValidation:
    def test_bursts_must_fit_the_stream(self):
        with pytest.raises(ParameterError):
            BurstyConfig(num_items=100, num_bursts=4, burst_length=50)

    def test_burst_share_bounds(self):
        with pytest.raises(ParameterError):
            BurstyConfig(burst_share=0.0)
        with pytest.raises(ParameterError):
            BurstyConfig(burst_share=1.5)

    def test_burst_keys_bounds(self):
        with pytest.raises(ParameterError):
            BurstyConfig(num_keys=10, burst_keys=11)
        with pytest.raises(ParameterError):
            BurstyConfig(burst_keys=0)

    def test_at_least_one_burst(self):
        with pytest.raises(ParameterError):
            BurstyConfig(num_bursts=0)


class TestWindows:
    def test_windows_are_disjoint_and_in_range(self):
        windows = burst_windows(TINY)
        assert len(windows) == TINY.num_bursts
        for (start, end), (next_start, _next_end) in zip(windows, windows[1:]):
            assert end <= next_start
        assert windows[0][0] >= 0
        assert windows[-1][1] <= TINY.num_items

    def test_every_window_has_burst_length(self):
        for start, end in burst_windows(TINY):
            assert end - start == TINY.burst_length


class TestTraceShape:
    def test_basic_shape_and_metadata(self):
        trace = generate_bursty_trace(TINY)
        assert len(trace) == TINY.num_items
        assert trace.name == "bursty"
        assert trace.keys.dtype == np.int64
        meta = trace.metadata
        assert meta["generator"] == "bursty"
        assert len(meta["burst_windows"]) == TINY.num_bursts
        assert len(meta["burst_key_sets"]) == TINY.num_bursts
        for key_set in meta["burst_key_sets"]:
            assert len(key_set) == TINY.burst_keys

    def test_bursts_concentrate_exceedances(self):
        trace = generate_bursty_trace(TINY)
        threshold = 300.0
        in_burst = np.zeros(len(trace), dtype=bool)
        for start, end in trace.metadata["burst_windows"]:
            in_burst[start:end] = True
        burst_rate = float(np.mean(trace.values[in_burst] > threshold))
        quiet_rate = float(np.mean(trace.values[~in_burst] > threshold))
        assert burst_rate > 0.4
        assert quiet_rate < 0.15
        assert burst_rate > 3 * quiet_rate

    def test_burst_keys_dominate_their_window(self):
        trace = generate_bursty_trace(TINY)
        windows = trace.metadata["burst_windows"]
        for (start, end), key_set in zip(
            windows, trace.metadata["burst_key_sets"]
        ):
            window_keys = trace.keys[start:end]
            share = float(np.isin(window_keys, list(key_set)).mean())
            assert share == pytest.approx(TINY.burst_share, abs=0.1)

    def test_deterministic_per_seed(self):
        a = generate_bursty_trace(TINY)
        b = generate_bursty_trace(TINY)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.values, b.values)
        assert a.metadata["burst_key_sets"] == b.metadata["burst_key_sets"]

    def test_seed_changes_trace(self):
        a = generate_bursty_trace(TINY)
        b = generate_bursty_trace(
            BurstyConfig(
                num_items=6_000, num_keys=200, num_bursts=3,
                burst_length=600, burst_keys=8, seed=2,
            )
        )
        assert not np.array_equal(a.values, b.values)

    def test_default_config_builds(self):
        trace = generate_bursty_trace()
        assert len(trace) == BurstyConfig().num_items
        assert trace.distinct_keys > 100
