"""Tests for repro.streams.model."""

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.streams.model import Trace, threshold_for_fraction


def small_trace() -> Trace:
    return Trace(
        keys=np.array([1, 2, 1, 3, 1]),
        values=np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
        name="small",
    )


class TestTrace:
    def test_length(self):
        assert len(small_trace()) == 5

    def test_items_python_scalars(self):
        for key, value in small_trace().items():
            assert isinstance(key, int)
            assert isinstance(value, float)

    def test_distinct_keys(self):
        assert small_trace().distinct_keys == 3

    def test_anomaly_fraction(self):
        trace = small_trace()
        assert trace.anomaly_fraction(25.0) == pytest.approx(0.6)
        assert trace.anomaly_fraction(100.0) == 0.0

    def test_anomaly_fraction_empty(self):
        empty = Trace(keys=np.array([], dtype=np.int64),
                      values=np.array([], dtype=np.float64))
        assert empty.anomaly_fraction(1.0) == 0.0

    def test_head(self):
        prefix = small_trace().head(2)
        assert len(prefix) == 2
        assert prefix.keys.tolist() == [1, 2]

    def test_head_negative_raises(self):
        with pytest.raises(ParameterError):
            small_trace().head(-1)

    def test_head_is_copy(self):
        trace = small_trace()
        prefix = trace.head(2)
        prefix.values[0] = 999.0
        assert trace.values[0] == 10.0

    def test_key_frequency(self):
        assert small_trace().key_frequency() == {1: 3, 2: 1, 3: 1}

    def test_shape_mismatch_raises(self):
        with pytest.raises(ParameterError):
            Trace(keys=np.array([1, 2]), values=np.array([1.0]))

    def test_dtype_coercion(self):
        trace = Trace(keys=np.array([1, 2], dtype=np.int32),
                      values=np.array([1, 2], dtype=np.int64))
        assert trace.keys.dtype == np.int64
        assert trace.values.dtype == np.float64


class TestThresholdForFraction:
    def test_calibrates_fraction(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 100, size=100_000)
        threshold = threshold_for_fraction(values, 0.05)
        assert np.mean(values > threshold) == pytest.approx(0.05, abs=0.005)

    def test_invalid_fraction(self):
        with pytest.raises(ParameterError):
            threshold_for_fraction(np.array([1.0]), 0.0)
        with pytest.raises(ParameterError):
            threshold_for_fraction(np.array([1.0]), 1.0)

    def test_empty_values(self):
        with pytest.raises(ParameterError):
            threshold_for_fraction(np.array([]), 0.05)
