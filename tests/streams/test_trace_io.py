"""Tests for repro.streams.trace_io."""

import numpy as np
import pytest

from repro.common.errors import TraceFormatError
from repro.streams.model import Trace
from repro.streams.trace_io import export_csv, import_csv, load_trace, save_trace


def sample_trace() -> Trace:
    return Trace(
        keys=np.array([1, 2, 3, 1]),
        values=np.array([1.5, 2.5, 3.5, -4.0]),
        name="sample",
        metadata={"generator": "test", "alpha": 1.5},
    )


class TestNpzRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.npz"
        original = sample_trace()
        save_trace(original, path)
        loaded = load_trace(path)
        assert (loaded.keys == original.keys).all()
        assert (loaded.values == original.values).all()
        assert loaded.name == "sample"
        assert loaded.metadata == original.metadata

    def test_large_trace_round_trip(self, tmp_path):
        rng = np.random.default_rng(1)
        trace = Trace(
            keys=rng.integers(0, 1_000, size=50_000),
            values=rng.random(50_000),
            name="big",
        )
        path = tmp_path / "big.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert (loaded.values == trace.values).all()

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_trace(tmp_path / "nope.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not an npz archive")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_wrong_archive_keys(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(TraceFormatError):
            load_trace(path)


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.csv"
        original = sample_trace()
        export_csv(original, path)
        loaded = import_csv(path)
        assert (loaded.keys == original.keys).all()
        assert (loaded.values == original.values).all()

    def test_name_from_stem(self, tmp_path):
        path = tmp_path / "mystream.csv"
        export_csv(sample_trace(), path)
        assert import_csv(path).name == "mystream"

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2.0\n")
        with pytest.raises(TraceFormatError):
            import_csv(path)

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("key,value\n1,not-a-number\n")
        with pytest.raises(TraceFormatError, match="bad2.csv:2"):
            import_csv(path)

    def test_float_precision_preserved(self, tmp_path):
        trace = Trace(keys=np.array([1]), values=np.array([0.1234567890123456]))
        path = tmp_path / "precise.csv"
        export_csv(trace, path)
        loaded = import_csv(path)
        assert loaded.values[0] == trace.values[0]
