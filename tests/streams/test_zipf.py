"""Tests for repro.streams.zipf."""

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.common.rng import np_rng
from repro.streams.zipf import ZipfConfig, generate_zipf_trace, sample_zipf_keys


class TestSampleZipfKeys:
    def test_keys_within_universe(self):
        rng = np_rng(1, "test")
        keys = sample_zipf_keys(10_000, 100, 1.1, rng)
        assert keys.min() >= 0 and keys.max() < 100

    def test_skew_increases_with_alpha(self):
        rng_low = np_rng(2, "low")
        rng_high = np_rng(2, "high")
        low = sample_zipf_keys(20_000, 1_000, 0.8, rng_low)
        high = sample_zipf_keys(20_000, 1_000, 1.6, rng_high)
        top_share = lambda keys: np.sort(np.bincount(keys))[-10:].sum() / keys.size  # noqa: E731
        assert top_share(high) > top_share(low)

    def test_frequency_follows_power_law(self):
        """Frequency of rank-r key ~ r^-alpha: check the 1st/10th ratio."""
        rng = np_rng(3, "ratio")
        alpha = 1.0
        keys = sample_zipf_keys(200_000, 1_000, alpha, rng)
        counts = np.sort(np.bincount(keys, minlength=1_000))[::-1]
        ratio = counts[0] / counts[9]
        assert 5.0 < ratio < 20.0  # ideal: 10^1 = 10

    def test_ids_shuffled(self):
        """Key id must not encode rank (id 0 isn't automatically heavy)."""
        heavy_ids = []
        for seed in range(20):
            rng = np_rng(seed, "shuffle")
            keys = sample_zipf_keys(5_000, 100, 1.5, rng)
            heavy_ids.append(int(np.argmax(np.bincount(keys, minlength=100))))
        assert len(set(heavy_ids)) > 5


class TestGenerateZipfTrace:
    def test_reproducible(self):
        a = generate_zipf_trace(ZipfConfig(num_items=1_000, seed=7))
        b = generate_zipf_trace(ZipfConfig(num_items=1_000, seed=7))
        assert (a.keys == b.keys).all()
        assert (a.values == b.values).all()

    def test_seed_changes_trace(self):
        a = generate_zipf_trace(ZipfConfig(num_items=1_000, seed=1))
        b = generate_zipf_trace(ZipfConfig(num_items=1_000, seed=2))
        assert not (a.values == b.values).all()

    def test_paper_recipe_components(self):
        """Per-key offsets: the same key always shares its constant
        component, so per-key value spreads are Zipf-shaped only."""
        trace = generate_zipf_trace(
            ZipfConfig(num_items=20_000, num_keys=50, value_scale=30.0, seed=3)
        )
        # For each key, min value ~ offset + 1*scale; offsets differ by key.
        mins = {}
        for key, value in trace.items():
            mins[key] = min(mins.get(key, np.inf), value)
        assert np.std(list(mins.values())) > 10.0

    def test_metadata(self):
        config = ZipfConfig(num_items=100, num_keys=10, alpha=1.2, seed=4)
        trace = generate_zipf_trace(config)
        assert trace.metadata["generator"] == "zipf"
        assert trace.metadata["alpha"] == 1.2

    def test_invalid_config(self):
        with pytest.raises(ParameterError):
            ZipfConfig(num_items=0)
        with pytest.raises(ParameterError):
            ZipfConfig(alpha=0.0)
        with pytest.raises(ParameterError):
            ZipfConfig(value_alpha=1.0)
