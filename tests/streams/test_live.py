"""Tests for repro.streams.live."""

import itertools

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.core.vectorized import BatchQuantileFilter
from repro.detection.adapters import QuantileFilterDetector
from repro.streams.live import (
    batch_detect_stream,
    detect_stream,
    interleave_traces,
    replay,
)
from repro.streams.model import Trace

CRIT = Criteria(delta=0.5, threshold=10.0, epsilon=2.0)


def hot_items(n):
    for i in range(n):
        yield "hot", 100.0


class TestDetectStream:
    def test_yields_reports_lazily(self):
        qf = QuantileFilter(CRIT, memory_bytes=8_192, seed=1)
        stream = detect_stream(qf, hot_items(100))
        first = next(stream)
        assert first.key == "hot"
        # Laziness: the detector has only consumed up to the trigger.
        assert qf.items_processed == first.item_index + 1

    def test_report_count_matches_filter(self):
        qf = QuantileFilter(CRIT, memory_bytes=8_192, seed=1)
        reports = list(detect_stream(qf, hot_items(100)))
        assert len(reports) == qf.report_count > 0

    def test_unbounded_source_supported(self):
        qf = QuantileFilter(CRIT, memory_bytes=8_192, seed=1)
        infinite = (("hot", 100.0) for _ in itertools.count())
        stream = detect_stream(qf, infinite)
        got = [next(stream) for _ in range(3)]
        assert len(got) == 3


class TestBatchDetectStream:
    def test_matches_whole_batch_run(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 100, size=5_000).astype(np.int64)
        values = np.where(keys < 5, 100.0, 1.0)
        crit = Criteria(delta=0.9, threshold=10.0, epsilon=3.0)

        whole = BatchQuantileFilter(crit, 16_384, seed=3)
        whole.process(keys, values)

        chunked = BatchQuantileFilter(crit, 16_384, seed=3)
        fresh_total = set()
        for _, fresh in batch_detect_stream(
            chunked, zip(keys.tolist(), values.tolist()), chunk_items=512
        ):
            fresh_total |= fresh
        assert fresh_total == whole.reported_keys
        assert chunked.items_processed == 5_000

    def test_progress_counts(self):
        crit = Criteria(delta=0.9, threshold=10.0, epsilon=3.0)
        engine = BatchQuantileFilter(crit, 8_192, seed=1)
        progress = [
            processed
            for processed, _ in batch_detect_stream(
                engine, [(1, 1.0)] * 1_000, chunk_items=300
            )
        ]
        assert progress == [300, 600, 900, 1_000]

    def test_invalid_chunk(self):
        crit = Criteria(delta=0.9, threshold=10.0)
        engine = BatchQuantileFilter(crit, 8_192)
        with pytest.raises(ParameterError):
            list(batch_detect_stream(engine, [], chunk_items=0))


class TestReplay:
    def test_replay_runs_whole_trace(self):
        # Report threshold is epsilon/(1-delta) = 4 Qweight; each above-T
        # item adds +1, so the fifth item triggers the report.
        trace = Trace(keys=np.array([1] * 5), values=np.array([99.0] * 5))
        detector = QuantileFilterDetector.build(CRIT, memory_bytes=8_192)
        replay(detector, trace)
        assert detector.items_processed == 5
        assert 1 in detector.reported_keys


class TestInterleave:
    def _traces(self):
        a = Trace(keys=np.array([0, 1, 0]), values=np.array([1.0, 2.0, 3.0]),
                  name="a")
        b = Trace(keys=np.array([0, 0]), values=np.array([10.0, 20.0]),
                  name="b")
        return a, b

    def test_lengths_add(self):
        a, b = self._traces()
        merged = interleave_traces([a, b], seed=1)
        assert len(merged) == 5

    def test_key_spaces_disjoint(self):
        a, b = self._traces()
        merged = interleave_traces([a, b], seed=1)
        # a's keys stay 0..1; b's are offset past them.
        b_offset = merged.metadata["key_offsets"][1]
        assert b_offset > 1
        assert set(merged.keys.tolist()) == {0, 1, b_offset}

    def test_within_source_order_preserved(self):
        a, b = self._traces()
        merged = interleave_traces([a, b], seed=2)
        a_values = [v for k, v in merged.items() if k in (0, 1)]
        assert a_values == [1.0, 2.0, 3.0]
        b_values = [v for k, v in merged.items() if k not in (0, 1)]
        assert b_values == [10.0, 20.0]

    def test_deterministic(self):
        a, b = self._traces()
        one = interleave_traces([a, b], seed=3)
        two = interleave_traces([a, b], seed=3)
        assert (one.keys == two.keys).all()

    def test_empty_list_rejected(self):
        with pytest.raises(ParameterError):
            interleave_traces([])
