"""Tests for repro.core.windowed."""

import random

import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.windowed import WindowedQuantileFilter


CRIT = Criteria(delta=0.9, threshold=100.0, epsilon=3.0)


class TestTumbling:
    def test_reset_happens_on_schedule(self):
        wf = WindowedQuantileFilter(CRIT, 16_384, window_items=100,
                                    mode="tumbling", seed=1)
        for i in range(350):
            wf.insert(i % 7, 1.0)
        assert wf.resets == 3
        assert wf.items_processed == 350

    def test_state_cleared_at_boundary(self):
        wf = WindowedQuantileFilter(CRIT, 16_384, window_items=10,
                                    mode="tumbling", seed=1)
        for _ in range(10):
            wf.insert("k", 1.0)
        assert wf.query("k") < 0  # accumulated negative Qweight
        wf.insert("other", 1.0)  # crosses the boundary -> reset first
        assert wf.query("k") == pytest.approx(0.0)

    def test_reports_still_fire_within_window(self):
        wf = WindowedQuantileFilter(CRIT, 16_384, window_items=1_000,
                                    mode="tumbling", seed=1)
        fired = [wf.insert("hot", 500.0) for _ in range(20)]
        assert any(fired)
        assert "hot" in wf.reported_keys

    def test_window_fill(self):
        wf = WindowedQuantileFilter(CRIT, 16_384, window_items=10,
                                    mode="tumbling", seed=1)
        for _ in range(5):
            wf.insert("k", 1.0)
        assert wf.window_fill == pytest.approx(0.5)

    def test_insert_many_matches_per_item_inserts(self):
        """insert_many ≡ insert per item, including mid-batch resets."""
        import numpy as np

        rng = random.Random(7)
        keys = [rng.randrange(20) for _ in range(500)]
        values = [rng.choice([1.0, 500.0]) for _ in range(500)]

        loop = WindowedQuantileFilter(CRIT, 16_384, window_items=64,
                                      mode="tumbling", seed=1)
        loop_reports = [
            r for r in (loop.insert(k, v) for k, v in zip(keys, values))
            if r is not None
        ]
        bulk = WindowedQuantileFilter(CRIT, 16_384, window_items=64,
                                      mode="tumbling", seed=1)
        bulk_reports = bulk.insert_many(
            np.asarray(keys, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
        )
        assert [r.key for r in bulk_reports] == \
            [r.key for r in loop_reports]
        assert bulk.resets == loop.resets
        assert bulk.items_processed == loop.items_processed
        assert bulk.reported_keys == loop.reported_keys
        assert all(
            bulk.query(k) == pytest.approx(loop.query(k))
            for k in set(keys)
        )

    def test_old_anomaly_forgotten(self):
        """A key hot only in an old window must not alert later from
        stale Qweight."""
        wf = WindowedQuantileFilter(CRIT, 32_768, window_items=50,
                                    mode="tumbling", seed=1)
        # Partial build-up: 1 above-T item (+9), below threshold 30.
        wf.insert("old-hot", 500.0)
        for i in range(60):  # crosses a boundary
            wf.insert(f"filler-{i}", 1.0)
        # In the new window, one more hot item must not inherit +9.
        report = wf.insert("old-hot", 500.0)
        assert report is None
        assert wf.query("old-hot") == pytest.approx(9.0)


class TestRotating:
    def test_reports_fire(self):
        wf = WindowedQuantileFilter(CRIT, 32_768, window_items=1_000,
                                    mode="rotating", seed=1)
        fired = [wf.insert("hot", 500.0) for _ in range(30)]
        assert any(fired)

    def test_rotation_count(self):
        wf = WindowedQuantileFilter(CRIT, 32_768, window_items=100,
                                    mode="rotating", seed=1)
        for i in range(500):
            wf.insert(i % 5, 1.0)
        # Rotates every ~51 items.
        assert 7 <= wf.resets <= 10

    def test_no_blind_spot_after_rotation(self):
        """Right after a rotation the elder pane already holds the last
        half-window of history — reports keep firing."""
        wf = WindowedQuantileFilter(CRIT, 64 * 1024, window_items=40,
                                    mode="rotating", seed=1)
        reports = 0
        for _ in range(300):
            if wf.insert("hot", 500.0):
                reports += 1
        # Report threshold 30 -> ~4 hot items per report without resets;
        # rotation must not starve it below half that rate.
        assert reports >= 30

    def test_memory_split_across_panes(self):
        wf = WindowedQuantileFilter(CRIT, 32_768, window_items=100,
                                    mode="rotating", seed=1)
        assert wf.nbytes <= 32_768

    def test_accuracy_over_long_stream(self):
        rng = random.Random(5)
        wf = WindowedQuantileFilter(CRIT, 64 * 1024, window_items=5_000,
                                    mode="rotating", seed=2)
        for _ in range(20_000):
            key = rng.randrange(100)
            value = 500.0 if key < 5 else rng.uniform(0, 50)
            wf.insert(key, value)
        assert {0, 1, 2, 3, 4} <= wf.reported_keys
        assert all(key < 5 for key in wf.reported_keys)


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ParameterError):
            WindowedQuantileFilter(CRIT, 8_192, window_items=0)

    def test_bad_mode(self):
        with pytest.raises(ParameterError):
            WindowedQuantileFilter(CRIT, 8_192, window_items=10, mode="hopping")


class TestRetarget:
    @pytest.mark.parametrize("mode", ["tumbling", "rotating"])
    def test_moves_threshold_on_every_pane(self, mode):
        wf = WindowedQuantileFilter(CRIT, 8_192, window_items=1_000,
                                    mode=mode)
        for i in range(500):
            wf.insert(i % 7, 50.0)
        processed = wf.items_processed
        wf.retarget(40.0)
        assert wf.criteria.threshold == 40.0
        assert wf.retargets == 1
        assert wf.items_processed == processed
        panes = [wf._filter] if mode == "tumbling" else wf._panes
        for pane in panes:
            assert pane.criteria.threshold == 40.0

    def test_new_threshold_survives_rotation(self):
        wf = WindowedQuantileFilter(CRIT, 8_192, window_items=100,
                                    mode="rotating")
        wf.retarget(10.0)
        report = None
        for i in range(400):
            report = wf.insert("hot", 50.0) or report
        # 50 > 10 == T, so the key becomes outstanding under the new
        # criteria even though the panes rotated several times.
        assert report is not None
        assert wf.resets >= 2
