"""Tests for repro.core.multi_criteria."""

import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.multi_criteria import MultiCriteriaFilter


def two_criteria():
    return [
        Criteria(delta=0.99, threshold=100.0, epsilon=2.0),   # strict tail
        Criteria(delta=0.5, threshold=300.0, epsilon=2.0),    # median spike
    ]


class TestMultiCriteriaFilter:
    def test_requires_criteria(self):
        with pytest.raises(ParameterError):
            MultiCriteriaFilter([], memory_bytes=8_192)

    def test_reports_identify_criterion(self):
        mcf = MultiCriteriaFilter(two_criteria(), memory_bytes=128 * 1024)
        # Values above 100 but below 300: only criterion 0 can fire.
        hits = []
        for _ in range(30):
            hits.extend(mcf.insert("k", 200.0))
        fired = {index for index, _ in hits}
        assert fired == {0}

    def test_both_criteria_can_fire(self):
        mcf = MultiCriteriaFilter(two_criteria(), memory_bytes=128 * 1024)
        hits = []
        for _ in range(30):
            hits.extend(mcf.insert("k", 500.0))  # above both thresholds
        fired = {index for index, _ in hits}
        assert fired == {0, 1}

    def test_report_carries_original_key(self):
        mcf = MultiCriteriaFilter(two_criteria(), memory_bytes=128 * 1024)
        report = None
        for _ in range(30):
            results = mcf.insert("flow-7", 500.0)
            if results:
                report = results[0][1]
                break
        assert report is not None
        assert report.key == "flow-7"

    def test_reported_by_criterion_sets(self):
        mcf = MultiCriteriaFilter(two_criteria(), memory_bytes=128 * 1024)
        for _ in range(30):
            mcf.insert("a", 200.0)   # fires criterion 0 only
            mcf.insert("b", 500.0)   # fires both
        assert "a" in mcf.reported_by_criterion[0]
        assert "a" not in mcf.reported_by_criterion[1]
        assert "b" in mcf.reported_by_criterion[0]
        assert "b" in mcf.reported_by_criterion[1]

    def test_query_per_criterion(self):
        mcf = MultiCriteriaFilter(two_criteria(), memory_bytes=128 * 1024)
        mcf.insert("k", 200.0)
        # Criterion 0 (delta=0.99): above -> +99; criterion 1: below -> -1.
        assert mcf.query("k", 0) == pytest.approx(99.0)
        assert mcf.query("k", 1) == pytest.approx(-1.0)

    def test_delete_per_criterion(self):
        mcf = MultiCriteriaFilter(two_criteria(), memory_bytes=128 * 1024)
        mcf.insert("k", 200.0)
        mcf.delete("k", 0)
        assert mcf.query("k", 0) == pytest.approx(0.0)
        assert mcf.query("k", 1) == pytest.approx(-1.0)

    def test_invalid_criterion_index(self):
        mcf = MultiCriteriaFilter(two_criteria(), memory_bytes=8_192)
        with pytest.raises(ParameterError):
            mcf.query("k", 5)

    def test_tuple_keys_compose(self):
        mcf = MultiCriteriaFilter(two_criteria(), memory_bytes=128 * 1024)
        fired = []
        for _ in range(30):
            fired.extend(mcf.insert((10, 20, 80), 500.0))
        assert any(report.key == (10, 20, 80) for _, report in fired)

    def test_items_processed_counts_data_items(self):
        mcf = MultiCriteriaFilter(two_criteria(), memory_bytes=8_192)
        for _ in range(5):
            mcf.insert("k", 1.0)
        assert mcf.items_processed == 5

    def test_reset(self):
        mcf = MultiCriteriaFilter(two_criteria(), memory_bytes=128 * 1024)
        mcf.insert("k", 200.0)
        mcf.reset()
        assert mcf.query("k", 0) == pytest.approx(0.0)
