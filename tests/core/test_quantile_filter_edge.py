"""Edge-case and failure-injection tests for QuantileFilter.

These pin behaviour at the corners: engineered fingerprint collisions,
counter saturation under adversarial streams, exact-threshold Qweights,
degenerate dimensions, and unusual value inputs.
"""

import math
import random

import pytest

from repro.common.hashing import FingerprintHasher, canonical_key, mix64
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter


def find_colliding_keys(qf: QuantileFilter, limit: int = 200_000):
    """Two distinct int keys sharing fingerprint AND candidate bucket."""
    seen = {}
    for key in range(limit):
        key_int, fp, bucket = qf._locate(key)
        signature = (fp, bucket)
        if signature in seen and seen[signature] != key:
            return seen[signature], key
        seen[signature] = key
    raise AssertionError("no colliding pair found; enlarge the search")


class TestFingerprintCollision:
    def test_colliding_keys_share_one_qweight(self):
        """The documented failure mode of fingerprinting: two keys with
        the same (fp, bucket) are indistinguishable and merge Qweights.
        With 16-bit fingerprints this needs ~2^16 x buckets keys; the
        test engineers it deliberately."""
        crit = Criteria(delta=0.95, threshold=100.0, epsilon=1e9)
        qf = QuantileFilter(crit, num_buckets=2, bucket_size=4,
                            vague_width=64, fp_bits=4, seed=1)
        a, b = find_colliding_keys(qf, limit=5_000)
        qf.insert(a, 500.0)   # +19
        qf.insert(b, 500.0)   # +19 into the SAME entry
        assert qf.query(a) == pytest.approx(38.0)
        assert qf.query(a) == qf.query(b)

    def test_collision_probability_matches_width(self):
        """16-bit fingerprints: <0.01 % pairwise collisions (the paper's
        quote), verified by birthday counting."""
        hasher = FingerprintHasher(bits=16, seed=1)
        fps = [hasher.fingerprint(canonical_key(k)) for k in range(1_000)]
        pairs = 1_000 * 999 / 2
        collisions = pairs * (1 / (1 << 16))
        observed = len(fps) - len(set(fps))
        # Expected ~7.6 colliding values; allow generous slack.
        assert observed < 30


class TestSaturationStress:
    def _pinned_filter(self) -> QuantileFilter:
        """A filter whose only candidate slot is unbeatable, so every
        other key is forced through the int8 vague part forever."""
        crit = Criteria(delta=0.95, threshold=100.0, epsilon=1e9)
        qf = QuantileFilter(crit, num_buckets=1, bucket_size=1,
                            vague_width=2, counter_kind="int8", seed=2)
        qf.candidate.set_entry(0, 0, fingerprint=1, qweight=1e18)
        return qf

    def test_int8_vague_survives_hot_pileup(self):
        """Hammer one vague counter far past +127; saturation must clamp
        (not wrap to -128) and the filter must keep functioning."""
        qf = self._pinned_filter()
        for _ in range(500):
            qf.insert("overflow", 500.0)  # vague-bound, +19 each
        estimate = qf.query("overflow")
        assert -128 <= estimate <= 127  # clamped at type range, no wrap
        assert estimate > 0             # crucially not flipped negative
        assert qf.items_processed == 500

    def test_saturation_fraction_reported(self):
        qf = self._pinned_filter()
        for _ in range(500):
            qf.insert("overflow", 500.0)
        assert qf.vague.sketch.counters.saturation_fraction() > 0.0


class TestExactThreshold:
    def test_report_at_exactly_threshold(self):
        """Qweight == epsilon/(1-delta) must report (the lemma's >=)."""
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=2.0)
        # threshold = 4; each above-T item adds exactly +1.
        qf = QuantileFilter(crit, memory_bytes=16 * 1024, seed=3)
        outcomes = [qf.insert("k", 99.0) for _ in range(4)]
        assert outcomes[:3] == [None, None, None]
        assert outcomes[3] is not None

    def test_one_below_threshold_does_not_report(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=2.0)
        qf = QuantileFilter(crit, memory_bytes=16 * 1024, seed=3)
        for _ in range(3):
            assert qf.insert("k", 99.0) is None
        assert qf.query("k") == pytest.approx(3.0)


class TestDegenerateDimensions:
    def test_single_bucket_single_slot_single_column(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        qf = QuantileFilter(crit, num_buckets=1, bucket_size=1,
                            vague_width=1, depth=1, seed=4)
        rng = random.Random(5)
        for _ in range(500):
            qf.insert(rng.randrange(20), rng.uniform(0, 20))
        assert qf.items_processed == 500  # no crash at minimum size

    def test_tiny_memory_budget(self):
        crit = Criteria(delta=0.5, threshold=10.0)
        qf = QuantileFilter(crit, memory_bytes=16)
        qf.insert("k", 99.0)
        assert qf.nbytes >= 1


class TestUnusualValues:
    def test_infinite_value_counts_as_above(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=1e9)
        qf = QuantileFilter(crit, memory_bytes=16 * 1024, seed=6)
        qf.insert("k", math.inf)
        assert qf.query("k") == pytest.approx(crit.positive_weight)

    def test_negative_infinity_counts_as_below(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=1e9)
        qf = QuantileFilter(crit, memory_bytes=16 * 1024, seed=6)
        qf.insert("k", -math.inf)
        assert qf.query("k") == pytest.approx(-1.0)

    def test_nan_value_counts_as_below(self):
        """NaN > T is False, so NaN readings weigh -1 — documented
        behaviour (sensor glitches never push a key toward a report)."""
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=1e9)
        qf = QuantileFilter(crit, memory_bytes=16 * 1024, seed=6)
        qf.insert("k", math.nan)
        assert qf.query("k") == pytest.approx(-1.0)

    def test_negative_threshold_supported(self):
        crit = Criteria(delta=0.5, threshold=-5.0, epsilon=0.0)
        qf = QuantileFilter(crit, memory_bytes=16 * 1024, seed=7)
        report = qf.insert("k", -1.0)  # -1 > -5: above threshold
        assert report is not None


class TestManyKeysChurn:
    def test_key_churn_does_not_leak_candidate_slots(self):
        """A million distinct one-shot keys must not wedge the candidate
        part: occupancy stays <= 1 and hot keys still win through."""
        crit = Criteria(delta=0.9, threshold=100.0, epsilon=3.0)
        qf = QuantileFilter(crit, memory_bytes=4_096, seed=8)
        rng = random.Random(9)
        for i in range(20_000):
            qf.insert(f"oneshot-{i}", rng.uniform(0, 50))
            if i % 4 == 0:
                qf.insert("persistent-hot", 500.0)
        assert qf.candidate.occupancy() <= 1.0
        assert "persistent-hot" in qf.reported_keys
