"""Tests for repro.core.criteria."""

import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria


class TestConstruction:
    def test_derived_weights_delta_095(self):
        crit = Criteria(delta=0.95, threshold=200.0, epsilon=30.0)
        assert crit.positive_weight == pytest.approx(19.0)
        assert crit.report_threshold == pytest.approx(600.0)

    def test_derived_weights_delta_09(self):
        crit = Criteria(delta=0.9, threshold=70.0, epsilon=5.0)
        assert crit.positive_weight == pytest.approx(9.0)
        assert crit.report_threshold == pytest.approx(50.0)  # the paper's Fig. 3

    def test_epsilon_zero_threshold_zero(self):
        crit = Criteria(delta=0.5, threshold=3.0)
        assert crit.report_threshold == 0.0
        assert crit.positive_weight == pytest.approx(1.0)

    def test_invalid_delta(self):
        with pytest.raises(ParameterError):
            Criteria(delta=0.0, threshold=1.0)
        with pytest.raises(ParameterError):
            Criteria(delta=1.0, threshold=1.0)

    def test_invalid_epsilon(self):
        with pytest.raises(ParameterError):
            Criteria(delta=0.5, threshold=1.0, epsilon=-1.0)

    def test_frozen(self):
        crit = Criteria(delta=0.5, threshold=1.0)
        with pytest.raises(AttributeError):
            crit.delta = 0.9

    def test_hashable_and_equal(self):
        a = Criteria(delta=0.5, threshold=1.0, epsilon=2.0)
        b = Criteria(delta=0.5, threshold=1.0, epsilon=2.0)
        assert a == b
        assert hash(a) == hash(b)


class TestItemWeight:
    def test_above_threshold(self):
        crit = Criteria(delta=0.9, threshold=100.0)
        assert crit.item_weight(100.1) == pytest.approx(9.0)

    def test_at_threshold_counts_as_below(self):
        crit = Criteria(delta=0.9, threshold=100.0)
        assert crit.item_weight(100.0) == -1.0

    def test_below_threshold(self):
        crit = Criteria(delta=0.9, threshold=100.0)
        assert crit.item_weight(0.0) == -1.0


class TestWithUpdates:
    def test_change_one_field(self):
        crit = Criteria(delta=0.95, threshold=200.0, epsilon=30.0)
        modified = crit.with_updates(epsilon=60.0)
        assert modified.epsilon == 60.0
        assert modified.delta == crit.delta
        assert modified.threshold == crit.threshold
        assert modified.report_threshold == pytest.approx(1200.0)

    def test_change_delta_recomputes_weight(self):
        crit = Criteria(delta=0.95, threshold=200.0, epsilon=30.0)
        modified = crit.with_updates(delta=0.5)
        assert modified.positive_weight == pytest.approx(1.0)

    def test_unknown_field_raises(self):
        crit = Criteria(delta=0.5, threshold=1.0)
        with pytest.raises(ParameterError):
            crit.with_updates(gamma=1.0)

    def test_original_untouched(self):
        crit = Criteria(delta=0.5, threshold=1.0)
        crit.with_updates(threshold=9.0)
        assert crit.threshold == 1.0
