"""Tests for merging (distributed shards): sketches and QuantileFilter."""

import random

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.common.hashing import canonical_key
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.core.qweight import ExactQweightTracker
from repro.sketches.count_mean_min import CountMeanMinSketch
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch


class TestSketchMerge:
    @pytest.mark.parametrize(
        "cls", [CountSketch, CountMinSketch, CountMeanMinSketch]
    )
    def test_merge_equals_union_stream(self, cls):
        """Linearity: sketch(A) merge sketch(B) == sketch(A + B)."""
        a = cls(depth=3, width=64, counter_kind="float", seed=1)
        b = cls(depth=3, width=64, counter_kind="float", seed=1)
        union = cls(depth=3, width=64, counter_kind="float", seed=1)
        rng = random.Random(2)
        for i in range(500):
            key = canonical_key(rng.randrange(50))
            weight = rng.choice([19.0, -1.0])
            target = a if i % 2 else b
            target.update(key, weight)
            union.update(key, weight)
        a.merge(b)
        assert np.allclose(a.counters.data, union.counters.data)
        for key in range(50):
            assert a.estimate(canonical_key(key)) == pytest.approx(
                union.estimate(canonical_key(key))
            )

    def test_merge_dimension_mismatch(self):
        a = CountSketch(depth=3, width=64, seed=1)
        b = CountSketch(depth=3, width=128, seed=1)
        with pytest.raises(ParameterError):
            a.merge(b)

    def test_merge_seed_mismatch(self):
        a = CountSketch(depth=3, width=64, seed=1)
        b = CountSketch(depth=3, width=64, seed=2)
        with pytest.raises(ParameterError):
            a.merge(b)

    def test_merge_saturates_integer_counters(self):
        a = CountSketch(depth=1, width=1, counter_kind="int8", seed=1)
        b = CountSketch(depth=1, width=1, counter_kind="int8", seed=1)
        a.counters.set(0, 0, 100)
        b.counters.set(0, 0, 100)
        a.merge(b)
        assert a.counters.get(0, 0) == 127  # clamped, not wrapped


class TestQuantileFilterMerge:
    CRIT = Criteria(delta=0.95, threshold=200.0, epsilon=10.0)

    def _shard(self, seed_stream: int, n: int = 8_000) -> QuantileFilter:
        qf = QuantileFilter(self.CRIT, memory_bytes=64 * 1024,
                            counter_kind="float", seed=9)
        rng = random.Random(seed_stream)
        for _ in range(n):
            key = rng.randrange(200)
            value = 500.0 if key < 8 else rng.uniform(0, 150)
            qf.insert(key, value)
        return qf

    def test_merged_qweights_match_union_stream(self):
        """With ample memory, merge(shardA, shardB) gives every key the
        exact Qweight of the concatenated stream."""
        shard_a = self._shard(1)
        shard_b = self._shard(2)

        # Exact reference over both streams, honouring each shard's
        # reset timeline (reports happened independently per shard, so
        # compare only keys that never reported).
        trackers = {}
        for seed_stream in (1, 2):
            rng = random.Random(seed_stream)
            for _ in range(8_000):
                key = rng.randrange(200)
                value = 500.0 if key < 8 else rng.uniform(0, 150)
                tracker = trackers.setdefault(
                    key, ExactQweightTracker(self.CRIT)
                )
                tracker.offer(value)

        shard_a.merge(shard_b)
        never_reported = [
            key for key in range(8, 200)
            if key not in shard_a.reported_keys
        ]
        assert len(never_reported) > 150
        for key in never_reported:
            assert shard_a.query(key) == pytest.approx(
                trackers[key].qweight, abs=1e-6
            ), key

    def test_reported_keys_union(self):
        shard_a = self._shard(1)
        shard_b = self._shard(2)
        union = shard_a.reported_keys | shard_b.reported_keys
        shard_a.merge(shard_b)
        assert shard_a.reported_keys >= union

    def test_counters_sum(self):
        shard_a = self._shard(1, n=1_000)
        shard_b = self._shard(2, n=2_000)
        shard_a.merge(shard_b)
        assert shard_a.items_processed == 3_000

    def test_split_key_reunified(self):
        """A key candidate-resident in shard A but vague-resident in
        shard B ends with its full Qweight in A's candidate entry."""
        # Tiny candidate space so placement differs between shards.
        def tiny(seed_extra):
            return QuantileFilter(self.CRIT, num_buckets=1, bucket_size=1,
                                  vague_width=512, counter_kind="float",
                                  seed=4)

        shard_a = tiny(0)
        shard_b = tiny(0)
        shard_a.insert("x", 500.0)       # x takes A's only slot (+19)
        shard_b.insert("y", 500.0)       # y takes B's only slot
        shard_b.insert("x", 1.0)         # x lands in B's VAGUE part (-1)
        shard_a.merge(shard_b)
        # x stayed (or re-won) a slot somewhere; its total must be 18.
        assert shard_a.query("x") == pytest.approx(18.0)
        assert shard_a.query("y") == pytest.approx(19.0)

    def test_incompatible_configs_rejected(self):
        other = QuantileFilter(self.CRIT, memory_bytes=32 * 1024, seed=9)
        mine = QuantileFilter(self.CRIT, memory_bytes=64 * 1024, seed=9)
        with pytest.raises(ParameterError):
            mine.merge(other)
        different_seed = QuantileFilter(self.CRIT, memory_bytes=64 * 1024,
                                        seed=10)
        with pytest.raises(ParameterError):
            QuantileFilter(self.CRIT, memory_bytes=64 * 1024, seed=9).merge(
                different_seed
            )

    def test_mismatch_error_names_the_differing_field(self):
        """The rejection message must say *what* differs — a bare
        'incompatible' is useless when debugging a shard fleet."""
        mine = QuantileFilter(self.CRIT, num_buckets=64, vague_width=256,
                              seed=9)
        other = QuantileFilter(self.CRIT, num_buckets=128, vague_width=256,
                               seed=9)
        with pytest.raises(ParameterError, match="num_buckets"):
            mine.merge(other)
        with pytest.raises(ParameterError, match=r"64.*128"):
            mine.merge(other)
        different_seed = QuantileFilter(self.CRIT, num_buckets=64,
                                        vague_width=256, seed=10)
        with pytest.raises(ParameterError, match="seed"):
            mine.merge(different_seed)

    def test_mismatched_criteria_rejected(self):
        """Shards with different default criteria never made the same
        report decisions; merging them is a configuration bug."""
        mine = QuantileFilter(self.CRIT, memory_bytes=64 * 1024, seed=9)
        other_criteria = Criteria(delta=0.9, threshold=200.0, epsilon=10.0)
        other = QuantileFilter(other_criteria, memory_bytes=64 * 1024, seed=9)
        with pytest.raises(ParameterError, match="criteria"):
            mine.merge(other)

    def test_merge_with_differing_candidate_occupancy(self):
        """One nearly-empty shard merged into one saturated shard: the
        saturated shard's state survives, the sparse keys arrive, and
        the empty slots stay consistent."""
        full = QuantileFilter(self.CRIT, num_buckets=4, bucket_size=2,
                              vague_width=512, counter_kind="float", seed=9)
        sparse = QuantileFilter(self.CRIT, num_buckets=4, bucket_size=2,
                                vague_width=512, counter_kind="float", seed=9)
        rng = random.Random(3)
        for _ in range(2_000):  # saturate all 8 candidate slots
            full.insert(rng.randrange(100), 500.0 * rng.random())
        sparse.insert("lonely", 500.0)  # one occupied slot in total
        full.merge(sparse)
        assert full.query("lonely") == pytest.approx(19.0)
        # Symmetric direction: sparse absorbing full also works and
        # agrees on the sparse shard's own key.
        sparse2 = QuantileFilter(self.CRIT, num_buckets=4, bucket_size=2,
                                 vague_width=512, counter_kind="float",
                                 seed=9)
        sparse2.insert("lonely", 500.0)
        full2 = QuantileFilter(self.CRIT, num_buckets=4, bucket_size=2,
                               vague_width=512, counter_kind="float", seed=9)
        rng = random.Random(3)
        for _ in range(2_000):
            full2.insert(rng.randrange(100), 500.0 * rng.random())
        sparse2.merge(full2)
        assert sparse2.items_processed == full.items_processed
        assert sparse2.query("lonely") == pytest.approx(full.query("lonely"))

    def test_merge_empty_shard_is_identity(self):
        loaded = self._shard(1)
        empty = QuantileFilter(self.CRIT, memory_bytes=64 * 1024,
                               counter_kind="float", seed=9)
        before_reports = set(loaded.reported_keys)
        before_queries = {key: loaded.query(key) for key in range(200)}
        loaded.merge(empty)
        assert loaded.reported_keys == before_reports
        for key, qweight in before_queries.items():
            assert loaded.query(key) == pytest.approx(qweight)

    def test_detection_after_merge(self):
        """A key just under threshold on both shards crosses it once
        their Qweights combine — the distributed-detection payoff."""
        shard_a = QuantileFilter(self.CRIT, memory_bytes=64 * 1024,
                                 counter_kind="float", seed=9)
        shard_b = QuantileFilter(self.CRIT, memory_bytes=64 * 1024,
                                 counter_kind="float", seed=9)
        # Threshold = 200 Qweight; give each shard ~120 (7 x 19 = 133).
        for _ in range(7):
            shard_a.insert("global-anomaly", 500.0)
            shard_b.insert("global-anomaly", 500.0)
        assert "global-anomaly" not in shard_a.reported_keys
        shard_a.merge(shard_b)
        assert shard_a.query("global-anomaly") == pytest.approx(266.0)
        # The next arrival anywhere triggers the report.
        report = shard_a.insert("global-anomaly", 500.0)
        assert report is not None
