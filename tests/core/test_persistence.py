"""Tests for repro.core.persistence (checkpoint/restore)."""

import random

import pytest

from repro.common.errors import TraceFormatError
from repro.core.criteria import Criteria
from repro.core.persistence import load_filter, save_filter
from repro.core.quantile_filter import QuantileFilter


def build_warm_filter(**kwargs) -> QuantileFilter:
    crit = Criteria(delta=0.95, threshold=200.0, epsilon=10.0)
    defaults = dict(memory_bytes=16 * 1024, seed=3)
    defaults.update(kwargs)
    qf = QuantileFilter(crit, **defaults)
    rng = random.Random(1)
    for _ in range(5_000):
        key = rng.randrange(300)
        value = 500.0 if key < 10 else rng.uniform(0, 150)
        qf.insert(key, value)
    return qf


class TestRoundTrip:
    def test_queries_identical_after_restore(self, tmp_path):
        original = build_warm_filter()
        path = tmp_path / "filter.npz"
        save_filter(original, path)
        restored = load_filter(path)
        for key in range(300):
            assert restored.query(key) == pytest.approx(original.query(key))

    def test_counters_and_history_preserved(self, tmp_path):
        original = build_warm_filter()
        path = tmp_path / "filter.npz"
        save_filter(original, path)
        restored = load_filter(path)
        assert restored.items_processed == original.items_processed
        assert restored.report_count == original.report_count
        assert restored.reported_keys == original.reported_keys
        assert restored.swaps == original.swaps
        assert restored.nbytes == original.nbytes

    def test_stream_continues_equivalently(self, tmp_path):
        """Checkpoint mid-stream, continue on both copies, compare."""
        original = build_warm_filter(counter_kind="float")
        path = tmp_path / "filter.npz"
        save_filter(original, path)
        restored = load_filter(path)
        rng_a, rng_b = random.Random(7), random.Random(7)
        for _ in range(3_000):
            key = rng_a.randrange(300)
            value = 500.0 if key < 10 else rng_a.uniform(0, 150)
            original.insert(key, value)
            key = rng_b.randrange(300)
            value = 500.0 if key < 10 else rng_b.uniform(0, 150)
            restored.insert(key, value)
        assert restored.reported_keys == original.reported_keys
        for key in range(50):
            assert restored.query(key) == pytest.approx(original.query(key))

    def test_per_key_criteria_survive(self, tmp_path):
        original = build_warm_filter()
        strict = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        original.set_key_criteria(42, strict)
        path = tmp_path / "filter.npz"
        save_filter(original, path)
        restored = load_filter(path)
        assert restored._key_criteria[42] == strict

    def test_string_keys_supported(self, tmp_path):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        qf = QuantileFilter(crit, memory_bytes=8_192, seed=1)
        qf.insert("service-a", 99.0)
        path = tmp_path / "filter.npz"
        save_filter(qf, path)
        assert load_filter(path).reported_keys == {"service-a"}

    def test_cmm_backend_round_trip(self, tmp_path):
        original = build_warm_filter(vague_backend="cmm")
        path = tmp_path / "filter.npz"
        save_filter(original, path)
        restored = load_filter(path)
        for key in range(100):
            assert restored.query(key) == pytest.approx(original.query(key))


class TestFailureModes:
    def test_tuple_keys_rejected_with_history(self, tmp_path):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        qf = QuantileFilter(crit, memory_bytes=8_192)
        qf.insert((1, 2, 3), 99.0)
        with pytest.raises(TraceFormatError, match="include_history"):
            save_filter(qf, tmp_path / "filter.npz")

    def test_tuple_keys_ok_without_history(self, tmp_path):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        qf = QuantileFilter(crit, memory_bytes=8_192)
        qf.insert((1, 2, 3), 99.0)
        path = tmp_path / "filter.npz"
        save_filter(qf, path, include_history=False)
        restored = load_filter(path)
        assert restored.reported_keys == set()
        assert restored.query((1, 2, 3)) == pytest.approx(0.0)  # reset fired

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_filter(tmp_path / "nope.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"garbage")
        with pytest.raises(TraceFormatError):
            load_filter(path)
