"""Tests for repro.core.vectorized — batch/scalar equivalence."""

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.core.vectorized import BatchQuantileFilter


def make_stream(seed: int, n: int = 20_000, n_keys: int = 500, n_hot: int = 20):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, n_keys, size=n)
    values = np.where(keys < n_hot, 500.0, rng.uniform(0, 150, size=n))
    return keys.astype(np.int64), values


class TestEquivalenceWithScalar:
    """The batch engine must report exactly what the scalar filter
    (float counters, same seed) reports — item-for-item semantics."""

    @pytest.mark.parametrize("dims", [(8, 32), (64, 256), (512, 2_048)])
    def test_reported_sets_identical(self, dims):
        num_buckets, vague_width = dims
        crit = Criteria(delta=0.95, threshold=200.0, epsilon=5.0)
        keys, values = make_stream(seed=1)
        scalar = QuantileFilter(
            crit, num_buckets=num_buckets, vague_width=vague_width,
            counter_kind="float", seed=9,
        )
        for key, value in zip(keys.tolist(), values.tolist()):
            scalar.insert(key, value)
        batch = BatchQuantileFilter(
            crit, num_buckets=num_buckets, vague_width=vague_width, seed=9
        )
        batch.process(keys, values)
        assert batch.reported_keys == scalar.reported_keys

    def test_report_counts_identical(self):
        crit = Criteria(delta=0.9, threshold=200.0, epsilon=3.0)
        keys, values = make_stream(seed=2, n=8_000)
        scalar = QuantileFilter(
            crit, num_buckets=32, vague_width=128,
            counter_kind="float", seed=4,
        )
        for key, value in zip(keys.tolist(), values.tolist()):
            scalar.insert(key, value)
        batch = BatchQuantileFilter(
            crit, num_buckets=32, vague_width=128, seed=4
        )
        batch.process(keys, values)
        assert batch.report_count == scalar.report_count

    def test_chunk_size_does_not_change_results(self):
        crit = Criteria(delta=0.95, threshold=200.0, epsilon=5.0)
        keys, values = make_stream(seed=3, n=5_000)
        outcomes = []
        for chunk_size in (64, 1_000, 100_000):
            batch = BatchQuantileFilter(
                crit, memory_bytes=16_384, seed=5, chunk_size=chunk_size
            )
            batch.process(keys, values)
            outcomes.append((frozenset(batch.reported_keys), batch.report_count))
        assert outcomes[0] == outcomes[1] == outcomes[2]


class TestBehaviour:
    def test_finds_hot_keys(self):
        crit = Criteria(delta=0.95, threshold=200.0, epsilon=5.0)
        keys, values = make_stream(seed=6)
        batch = BatchQuantileFilter(crit, memory_bytes=64 * 1024, seed=1)
        reported = batch.process(keys, values)
        assert set(range(20)) <= reported

    def test_incremental_processing(self):
        crit = Criteria(delta=0.95, threshold=200.0, epsilon=5.0)
        keys, values = make_stream(seed=7, n=4_000)
        whole = BatchQuantileFilter(crit, memory_bytes=16_384, seed=2)
        whole.process(keys, values)
        parts = BatchQuantileFilter(crit, memory_bytes=16_384, seed=2)
        parts.process(keys[:2_000], values[:2_000])
        parts.process(keys[2_000:], values[2_000:])
        assert parts.reported_keys == whole.reported_keys

    def test_items_processed(self):
        crit = Criteria(delta=0.95, threshold=200.0)
        keys, values = make_stream(seed=8, n=1_234)
        batch = BatchQuantileFilter(crit, memory_bytes=8_192)
        batch.process(keys, values)
        assert batch.items_processed == 1_234

    def test_nbytes_within_budget(self):
        crit = Criteria(delta=0.95, threshold=200.0)
        batch = BatchQuantileFilter(crit, memory_bytes=10_000)
        assert batch.nbytes <= 10_000

    def test_length_mismatch_raises(self):
        crit = Criteria(delta=0.95, threshold=200.0)
        batch = BatchQuantileFilter(crit, memory_bytes=8_192)
        with pytest.raises(ParameterError):
            batch.process(np.zeros(3, dtype=np.int64), np.zeros(4))

    def test_invalid_chunk_size(self):
        crit = Criteria(delta=0.95, threshold=200.0)
        with pytest.raises(ParameterError):
            BatchQuantileFilter(crit, memory_bytes=8_192, chunk_size=0)

    def test_forceful_strategy_supported(self):
        crit = Criteria(delta=0.95, threshold=200.0, epsilon=5.0)
        keys, values = make_stream(seed=9, n=3_000)
        batch = BatchQuantileFilter(
            crit, memory_bytes=8_192, strategy="forceful", seed=3
        )
        reported = batch.process(keys, values)
        assert reported  # hot keys still found under forceful election
