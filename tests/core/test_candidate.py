"""Tests for repro.core.candidate."""

import pytest

from repro.common.errors import ParameterError
from repro.core.candidate import CandidatePart


class TestSlots:
    def test_starts_empty(self):
        part = CandidatePart(num_buckets=4, bucket_size=3)
        assert part.entry_count() == 0
        assert part.occupancy() == 0.0
        assert part.find(0, 17) is None

    def test_insert_and_find(self):
        part = CandidatePart(num_buckets=2, bucket_size=2)
        slot = part.free_slot(0)
        part.set_entry(0, slot, fingerprint=17, qweight=5.0)
        assert part.find(0, 17) == slot
        assert part.get_qweight(0, slot) == 5.0

    def test_find_scoped_to_bucket(self):
        part = CandidatePart(num_buckets=2, bucket_size=2)
        part.set_entry(0, 0, 17, 1.0)
        assert part.find(1, 17) is None

    def test_free_slot_none_when_full(self):
        part = CandidatePart(num_buckets=1, bucket_size=2)
        part.set_entry(0, 0, 1, 0.0)
        part.set_entry(0, 1, 2, 0.0)
        assert part.free_slot(0) is None

    def test_add_qweight(self):
        part = CandidatePart(num_buckets=1, bucket_size=1)
        part.set_entry(0, 0, 5, 10.0)
        assert part.add_qweight(0, 0, -1.0) == pytest.approx(9.0)
        assert part.add_qweight(0, 0, 19.0) == pytest.approx(28.0)

    def test_reset_qweight_keeps_entry(self):
        part = CandidatePart(num_buckets=1, bucket_size=1)
        part.set_entry(0, 0, 5, 10.0)
        part.reset_qweight(0, 0)
        assert part.find(0, 5) == 0
        assert part.get_qweight(0, 0) == 0.0

    def test_evict_returns_and_clears(self):
        part = CandidatePart(num_buckets=1, bucket_size=2)
        part.set_entry(0, 1, 9, -2.5)
        fp, qw = part.evict(0, 1)
        assert (fp, qw) == (9, -2.5)
        assert part.find(0, 9) is None
        assert part.free_slot(0) is not None


class TestMinEntry:
    def test_min_among_occupied(self):
        part = CandidatePart(num_buckets=1, bucket_size=3)
        part.set_entry(0, 0, 1, 5.0)
        part.set_entry(0, 1, 2, -3.0)
        part.set_entry(0, 2, 3, 1.0)
        slot, qw = part.min_entry(0)
        assert slot == 1 and qw == -3.0

    def test_empty_slots_ignored(self):
        part = CandidatePart(num_buckets=1, bucket_size=3)
        part.set_entry(0, 2, 3, 7.0)  # empties have qw 0 < 7 but no fp
        slot, qw = part.min_entry(0)
        assert slot == 2 and qw == 7.0

    def test_empty_bucket_raises(self):
        part = CandidatePart(num_buckets=1, bucket_size=2)
        with pytest.raises(ParameterError):
            part.min_entry(0)


class TestSizing:
    def test_nbytes_paper_layout(self):
        # 16-bit fp + 32-bit counter = 6 bytes per slot.
        part = CandidatePart(num_buckets=10, bucket_size=6, fp_bits=16)
        assert part.nbytes == 10 * 6 * 6

    def test_from_bytes_fits_budget(self):
        part = CandidatePart.from_bytes(6_000, bucket_size=6, fp_bits=16)
        assert part.nbytes <= 6_000
        assert part.num_buckets >= 1

    def test_from_bytes_tiny_budget(self):
        part = CandidatePart.from_bytes(4, bucket_size=6, fp_bits=16)
        assert part.num_buckets == 1

    def test_clear(self):
        part = CandidatePart(num_buckets=2, bucket_size=2)
        part.set_entry(1, 1, 5, 3.0)
        part.clear()
        assert part.entry_count() == 0

    def test_occupancy(self):
        part = CandidatePart(num_buckets=2, bucket_size=2)
        part.set_entry(0, 0, 1, 0.0)
        assert part.occupancy() == pytest.approx(0.25)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            CandidatePart(num_buckets=0)
        with pytest.raises(ParameterError):
            CandidatePart(num_buckets=1, bucket_size=0)
        with pytest.raises(ParameterError):
            CandidatePart(num_buckets=1, fp_bits=0)
