"""Tests for repro.core.vague."""

import pytest

from repro.common.errors import ParameterError
from repro.core.vague import VaguePart, vague_key
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch


class TestVagueKey:
    def test_deterministic(self):
        assert vague_key(17, 3) == vague_key(17, 3)

    def test_fingerprint_and_bucket_both_matter(self):
        assert vague_key(17, 3) != vague_key(18, 3)
        assert vague_key(17, 3) != vague_key(17, 4)

    def test_spread(self):
        keys = {vague_key(fp, b) for fp in range(100) for b in range(100)}
        assert len(keys) == 10_000


class TestVaguePart:
    def test_cs_backend_default(self):
        part = VaguePart(depth=3, width=64)
        assert isinstance(part.sketch, CountSketch)
        assert part.backend == "cs"

    def test_cms_backend(self):
        part = VaguePart(depth=3, width=64, backend="cms")
        assert isinstance(part.sketch, CountMinSketch)

    def test_unknown_backend_raises(self):
        with pytest.raises(ParameterError):
            VaguePart(backend="bloom")

    def test_update_estimate_delete_roundtrip(self):
        part = VaguePart(depth=3, width=512, seed=1)
        vkey = vague_key(42, 7)
        part.update(vkey, 19.0)
        part.update(vkey, -1.0)
        assert part.estimate(vkey) == pytest.approx(18.0)
        part.delete(vkey, 18.0)
        assert part.estimate(vkey) == pytest.approx(0.0)

    def test_fused_update_and_estimate(self):
        part = VaguePart(depth=3, width=512, seed=2)
        vkey = vague_key(1, 1)
        assert part.update_and_estimate(vkey, 19.0) == pytest.approx(19.0)
        assert part.update_and_estimate(vkey, -1.0) == pytest.approx(18.0)

    def test_from_bytes_respects_budget(self):
        part = VaguePart.from_bytes(12_000, depth=3, counter_kind="int32")
        assert part.nbytes <= 12_000
        assert part.width == 1_000

    def test_from_bytes_counter_kind_scales_width(self):
        int16 = VaguePart.from_bytes(12_000, depth=3, counter_kind="int16")
        int32 = VaguePart.from_bytes(12_000, depth=3, counter_kind="int32")
        assert int16.width == 2 * int32.width

    def test_from_bytes_tiny_budget(self):
        part = VaguePart.from_bytes(1, depth=3)
        assert part.width == 1

    def test_clear(self):
        part = VaguePart(depth=2, width=64, seed=3)
        part.update(vague_key(5, 5), 10.0)
        part.clear()
        assert part.estimate(vague_key(5, 5)) == 0.0

    def test_properties(self):
        part = VaguePart(depth=4, width=128, counter_kind="int16")
        assert part.depth == 4
        assert part.width == 128
        assert part.nbytes == 4 * 128 * 2
