"""Tests for repro.core.quantile_filter — Algorithm 2 end to end."""

import random

import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter, Report
from repro.detection.ground_truth import compute_ground_truth
from tests.conftest import make_two_class_stream


def big_filter(criteria, **kwargs) -> QuantileFilter:
    """A filter large enough that hash collisions are negligible."""
    defaults = dict(memory_bytes=256 * 1024, seed=1)
    defaults.update(kwargs)
    return QuantileFilter(criteria, **defaults)


class TestConstruction:
    def test_memory_budget_split(self):
        crit = Criteria(delta=0.95, threshold=100.0, epsilon=30.0)
        qf = QuantileFilter(crit, memory_bytes=100_000)
        assert qf.nbytes <= 100_000
        # Paper's 4:1 split: candidate ~80 % of the structure.
        assert 0.7 < qf.candidate.nbytes / qf.nbytes < 0.9

    def test_explicit_dimensions(self):
        crit = Criteria(delta=0.95, threshold=100.0)
        qf = QuantileFilter(crit, num_buckets=8, vague_width=64)
        assert qf.candidate.num_buckets == 8
        assert qf.vague.width == 64

    def test_missing_both_sizings_raises(self):
        crit = Criteria(delta=0.95, threshold=100.0)
        with pytest.raises(ParameterError):
            QuantileFilter(crit)

    def test_strategy_and_backend_selectable(self):
        crit = Criteria(delta=0.95, threshold=100.0)
        qf = QuantileFilter(
            crit, memory_bytes=10_000, strategy="forceful", vague_backend="cms"
        )
        assert qf.strategy.name == "forceful"
        assert qf.vague.backend == "cms"


class TestReporting:
    def test_paper_figure1_example(self):
        """Fig. 1: user A reported at its third item, user B never."""
        crit = Criteria(delta=0.5, threshold=3.0, epsilon=0.0)
        qf = big_filter(crit)
        reports = []
        for key, value in [("A", 1.0), ("A", 5.0), ("B", 1.0),
                           ("A", 9.0), ("B", 1.0)]:
            report = qf.insert(key, value)
            if report:
                reports.append(report.key)
        assert "A" in reports
        assert "B" not in reports

    def test_outstanding_keys_detected_exactly(self, loose_criteria, py_random):
        items = make_two_class_stream(py_random, n_items=10_000, n_keys=100,
                                      n_hot=5, hot_value=500.0, cold_max=50.0)
        qf = big_filter(loose_criteria)
        for key, value in items:
            qf.insert(key, value)
        truth = compute_ground_truth(items, loose_criteria)
        assert qf.reported_keys == truth

    def test_report_metadata(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        qf = big_filter(crit)
        report = qf.insert("hot", 100.0)
        assert isinstance(report, Report)
        assert report.key == "hot"
        assert report.item_index == 0
        assert report.source in ("candidate", "vague")
        assert report.qweight >= crit.report_threshold

    def test_epsilon_delays_reports(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=4.0)
        qf = big_filter(crit)
        outcomes = [qf.insert("k", 100.0) for _ in range(10)]
        first_report = next(i for i, r in enumerate(outcomes) if r)
        # Needs Qweight >= 8; each item adds +1 -> 8th item (index 7).
        assert first_report == 7

    def test_reset_after_report(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=2.0)
        qf = big_filter(crit)
        reports = [bool(qf.insert("k", 100.0)) for _ in range(20)]
        indices = [i for i, r in enumerate(reports) if r]
        gaps = [b - a for a, b in zip(indices, indices[1:])]
        assert gaps and all(gap == gaps[0] for gap in gaps)

    def test_on_report_callback(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        seen = []
        qf = QuantileFilter(crit, memory_bytes=8_192, on_report=seen.append)
        qf.insert("x", 99.0)
        assert len(seen) == 1 and seen[0].key == "x"

    def test_track_reports_disabled(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        qf = QuantileFilter(crit, memory_bytes=8_192, track_reports=False)
        qf.insert("x", 99.0)
        assert qf.reported_keys == set()
        assert qf.report_count == 1


class TestQueryDeleteReset:
    def test_query_candidate_exact(self):
        crit = Criteria(delta=0.95, threshold=100.0, epsilon=1000.0)
        qf = big_filter(crit)
        for _ in range(3):
            qf.insert("k", 500.0)  # +19 each
        qf.insert("k", 1.0)  # -1
        assert qf.query("k") == pytest.approx(3 * 19.0 - 1.0)

    def test_query_unknown_key_near_zero(self):
        crit = Criteria(delta=0.95, threshold=100.0)
        qf = big_filter(crit)
        assert qf.query("never-seen") == pytest.approx(0.0)

    def test_delete_candidate(self):
        crit = Criteria(delta=0.95, threshold=100.0, epsilon=1000.0)
        qf = big_filter(crit)
        qf.insert("k", 500.0)
        qf.delete("k")
        assert qf.query("k") == pytest.approx(0.0)

    def test_delete_vague_key(self):
        crit = Criteria(delta=0.95, threshold=100.0, epsilon=1000.0)
        # Single bucket of size 1 forces overflow into the vague part.
        qf = QuantileFilter(crit, num_buckets=1, bucket_size=1,
                            vague_width=512, seed=2)
        qf.insert("a", 500.0)  # takes the candidate slot
        qf.insert("b", 1.0)    # negative weight -> stays in vague
        assert qf.query("b") == pytest.approx(-1.0)
        qf.delete("b")
        assert qf.query("b") == pytest.approx(0.0)

    def test_reset_clears_state_keeps_history(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        qf = big_filter(crit)
        qf.insert("x", 99.0)
        qf.reset()
        assert qf.query("x") == pytest.approx(0.0)
        assert "x" in qf.reported_keys


class TestPerKeyCriteria:
    def test_override_per_insert(self):
        default = Criteria(delta=0.95, threshold=100.0, epsilon=1000.0)
        strict = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        qf = big_filter(default)
        report = qf.insert("udp-flow", 50.0, criteria=strict)
        assert report is not None  # strict criteria trigger immediately

    def test_standing_key_criteria(self):
        default = Criteria(delta=0.95, threshold=100.0, epsilon=1000.0)
        strict = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        qf = big_filter(default)
        qf.set_key_criteria("udp-flow", strict)
        assert qf.insert("udp-flow", 50.0) is not None
        assert qf.insert("tcp-flow", 50.0) is None

    def test_modify_criteria_resets_qweight(self):
        default = Criteria(delta=0.95, threshold=100.0, epsilon=1000.0)
        qf = big_filter(default)
        qf.insert("k", 500.0)
        assert qf.query("k") > 0
        qf.modify_criteria("k", default.with_updates(epsilon=2000.0))
        assert qf.query("k") == pytest.approx(0.0)

    def test_clear_key_criteria(self):
        default = Criteria(delta=0.95, threshold=100.0, epsilon=1000.0)
        strict = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        qf = big_filter(default)
        qf.set_key_criteria("k", strict)
        qf.clear_key_criteria("k")
        assert qf.insert("k", 50.0) is None


class TestTwoPartMechanics:
    def test_candidate_hit_rate_high_with_few_keys(self, py_random):
        crit = Criteria(delta=0.95, threshold=100.0, epsilon=30.0)
        qf = big_filter(crit)
        for key, value in make_two_class_stream(py_random, n_items=5_000,
                                                n_keys=50):
            qf.insert(key, value)
        assert qf.candidate_hit_rate() > 0.9

    def test_vague_used_when_buckets_overflow(self, py_random):
        crit = Criteria(delta=0.95, threshold=100.0, epsilon=30.0)
        qf = QuantileFilter(crit, num_buckets=2, bucket_size=2,
                            vague_width=256, seed=3)
        for key, value in make_two_class_stream(py_random, n_items=3_000,
                                                n_keys=300):
            qf.insert(key, value)
        assert qf.vague_inserts > 0

    def test_swaps_promote_heavy_keys(self):
        """A hot key arriving late must displace cold candidates."""
        crit = Criteria(delta=0.95, threshold=100.0, epsilon=30.0)
        qf = QuantileFilter(crit, num_buckets=1, bucket_size=2,
                            vague_width=1024, seed=4)
        # Fill the single bucket with two cold keys.
        for key in ("cold1", "cold2"):
            for _ in range(5):
                qf.insert(key, 1.0)
        # Hot key hammers in through the vague part.
        for _ in range(40):
            qf.insert("hot", 500.0)
        assert qf.swaps > 0
        assert "hot" in qf.reported_keys

    def test_memory_model_breakdown(self):
        crit = Criteria(delta=0.95, threshold=100.0)
        qf = QuantileFilter(crit, memory_bytes=50_000)
        model = qf.memory_model()
        assert model.total_bytes == qf.nbytes
        assert set(model.breakdown()) == {"candidate", "vague"}

    def test_narrow_counters_do_not_crash(self, py_random):
        crit = Criteria(delta=0.95, threshold=100.0, epsilon=30.0)
        qf = QuantileFilter(crit, memory_bytes=4_096, counter_kind="int8",
                            seed=5)
        for key, value in make_two_class_stream(py_random, n_items=3_000):
            qf.insert(key, value)
        assert qf.items_processed == 3_000


class TestAccuracyUnderPressure:
    def test_precision_stays_high_at_tiny_memory(self, py_random):
        """The paper's signature: precision ~1 even when starved."""
        crit = Criteria(delta=0.95, threshold=200.0, epsilon=10.0)
        items = make_two_class_stream(py_random, n_items=20_000, n_keys=2_000,
                                      n_hot=20, hot_value=500.0,
                                      cold_max=150.0)
        truth = compute_ground_truth(items, crit)
        qf = QuantileFilter(crit, memory_bytes=2_048, seed=6)
        for key, value in items:
            qf.insert(key, value)
        false_positives = qf.reported_keys - truth
        assert len(false_positives) <= max(1, len(truth) // 10)

    def test_recall_converges_with_memory(self, py_random):
        crit = Criteria(delta=0.95, threshold=200.0, epsilon=10.0)
        items = make_two_class_stream(py_random, n_items=20_000, n_keys=2_000,
                                      n_hot=20, hot_value=500.0,
                                      cold_max=150.0)
        truth = compute_ground_truth(items, crit)
        recalls = []
        for memory in (1_024, 65_536):
            qf = QuantileFilter(crit, memory_bytes=memory, seed=7)
            for key, value in items:
                qf.insert(key, value)
            recalls.append(len(qf.reported_keys & truth) / len(truth))
        assert recalls[-1] >= recalls[0]
        assert recalls[-1] == pytest.approx(1.0)
