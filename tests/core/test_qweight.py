"""Tests for repro.core.qweight — including the conversion lemma."""

import random

import pytest

from repro.core.criteria import Criteria
from repro.core.qweight import (
    ExactQweightTracker,
    counts_exceed_threshold,
    exact_qweight,
    qweight_exceeds_report_threshold,
    qweight_from_counts,
    quantile_exceeds_threshold,
)


class TestExactQweight:
    def test_paper_figure3_case_a(self):
        """Fig. 3: delta=0.9, one above-T item contributes +9."""
        crit = Criteria(delta=0.9, threshold=10.0, epsilon=5.0)
        assert exact_qweight([11.0], crit) == pytest.approx(9.0)

    def test_mixed_values(self):
        crit = Criteria(delta=0.9, threshold=10.0)
        # two above (+9 each), three below (-1 each)
        values = [20.0, 15.0, 1.0, 2.0, 3.0]
        assert exact_qweight(values, crit) == pytest.approx(15.0)

    def test_counts_form_agrees(self):
        crit = Criteria(delta=0.8, threshold=5.0)
        values = [1.0, 6.0, 7.0, 2.0]
        assert qweight_from_counts(4, 2, crit) == pytest.approx(
            exact_qweight(values, crit)
        )


class TestConversionLemma:
    """The paper's Sec. III-A equivalence, checked exhaustively."""

    @pytest.mark.parametrize("delta", [0.5, 0.75, 0.9, 0.95, 0.99])
    @pytest.mark.parametrize("epsilon", [0.0, 1.0, 3.0])
    def test_equivalence_exhaustive_counts(self, delta, epsilon):
        crit = Criteria(delta=delta, threshold=10.0, epsilon=epsilon)
        for n in range(1, 60):
            for above in range(0, n + 1):
                values = [20.0] * above + [1.0] * (n - above)
                quantile_side = quantile_exceeds_threshold(values, crit)
                qweight_side = qweight_exceeds_report_threshold(values, crit)
                assert quantile_side == qweight_side, (
                    f"delta={delta} eps={epsilon} n={n} above={above}: "
                    f"quantile={quantile_side} qweight={qweight_side}"
                )

    def test_counts_form_matches_value_form(self):
        rng = random.Random(3)
        crit = Criteria(delta=0.9, threshold=50.0, epsilon=2.0)
        for _ in range(300):
            n = rng.randrange(1, 40)
            values = [rng.uniform(0, 100) for _ in range(n)]
            above = sum(1 for v in values if v > crit.threshold)
            assert counts_exceed_threshold(n, above, crit) == (
                quantile_exceeds_threshold(values, crit)
            )

    def test_values_at_threshold_do_not_count(self):
        crit = Criteria(delta=0.5, threshold=10.0)
        # All values exactly at T: quantile is 10, not > 10.
        assert not quantile_exceeds_threshold([10.0] * 5, crit)
        assert not qweight_exceeds_report_threshold([10.0] * 5, crit)


class TestExactQweightTracker:
    def test_paper_figure1_example(self):
        """Fig. 1's user A is reported under (0, 0.5, 3).

        The figure narrates the report at A's third item (value set
        {1, 5, 9}), but by Definition 4 the report already fires at the
        second: {1, 5} has index floor(0.5*2) = 1, value 5 > 3.  After
        the reset, the third item {9} fires again.  Either way A is
        reported and B is not — the figure's point.
        """
        crit = Criteria(delta=0.5, threshold=3.0, epsilon=0.0)
        tracker = ExactQweightTracker(crit)
        assert not tracker.offer(1.0)
        assert tracker.offer(5.0)
        assert tracker.offer(9.0)

    def test_paper_figure1_user_b_not_reported(self):
        crit = Criteria(delta=0.5, threshold=3.0, epsilon=0.0)
        tracker = ExactQweightTracker(crit)
        assert not tracker.offer(1.0)
        assert not tracker.offer(1.0)

    def test_reset_after_report(self):
        crit = Criteria(delta=0.5, threshold=3.0, epsilon=0.0)
        tracker = ExactQweightTracker(crit)
        tracker.offer(9.0)  # single high value reports immediately (eps=0)
        assert tracker.n == 0 and tracker.above == 0

    def test_report_cadence_bounded_by_epsilon(self):
        """Reports occur less often than every epsilon items (Sec. II-A)."""
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=5.0)
        tracker = ExactQweightTracker(crit)
        report_indices = []
        for index in range(200):
            if tracker.offer(100.0):
                report_indices.append(index)
        gaps = [
            b - a for a, b in zip(report_indices, report_indices[1:])
        ]
        assert all(gap >= 5 for gap in gaps)

    def test_qweight_property(self):
        crit = Criteria(delta=0.9, threshold=10.0, epsilon=100.0)
        tracker = ExactQweightTracker(crit)
        tracker.offer(20.0)
        tracker.offer(1.0)
        assert tracker.qweight == pytest.approx(8.0)

    def test_manual_reset(self):
        crit = Criteria(delta=0.9, threshold=10.0, epsilon=100.0)
        tracker = ExactQweightTracker(crit)
        tracker.offer(20.0)
        tracker.reset()
        assert tracker.qweight == 0.0
