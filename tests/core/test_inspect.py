"""Tests for repro.core.inspect."""

import random

from repro.core.criteria import Criteria
from repro.core.inspect import describe, health_warnings
from repro.core.quantile_filter import QuantileFilter

CRIT = Criteria(delta=0.95, threshold=200.0, epsilon=10.0)


def warm_filter(**kwargs) -> QuantileFilter:
    defaults = dict(memory_bytes=16 * 1024, seed=1)
    defaults.update(kwargs)
    qf = QuantileFilter(CRIT, **defaults)
    rng = random.Random(2)
    for _ in range(5_000):
        key = rng.randrange(100)
        value = 500.0 if key < 5 else rng.uniform(0, 150)
        qf.insert(key, value)
    return qf


class TestDescribe:
    def test_contains_all_sections(self):
        report = describe(warm_filter())
        for fragment in ("QuantileFilter", "criteria:", "candidate:",
                         "vague [cs]:", "traffic:", "candidate Qweights"):
            assert fragment in report

    def test_healthy_filter_reports_ok(self):
        report = describe(warm_filter())
        assert "health: ok" in report

    def test_top_k_limit(self):
        report = describe(warm_filter(), top_k=2)
        assert report.count("fp=0x") == 2

    def test_empty_filter(self):
        qf = QuantileFilter(CRIT, memory_bytes=8_192)
        report = describe(qf)
        assert "0 items" in report or "traffic: 0" in report


class TestHealthWarnings:
    def test_healthy(self):
        assert health_warnings(warm_filter()) == []

    def test_low_hit_rate_warns(self):
        """A candidate part far too small for the key population."""
        qf = QuantileFilter(CRIT, num_buckets=1, bucket_size=1,
                            vague_width=256, seed=3)
        rng = random.Random(4)
        for i in range(3_000):
            qf.insert(f"churn-{i}", rng.uniform(0, 150))
        warnings = health_warnings(qf)
        assert any("hit rate" in w for w in warnings)

    def test_saturation_warns(self):
        qf = QuantileFilter(CRIT, num_buckets=1, bucket_size=1,
                            vague_width=2, counter_kind="int8", seed=5)
        qf.candidate.set_entry(0, 0, fingerprint=1, qweight=1e18)
        for _ in range(2_000):
            qf.insert("overflow", 500.0)
        warnings = health_warnings(qf)
        assert any("saturated" in w for w in warnings)

    def test_no_warnings_before_enough_traffic(self):
        qf = QuantileFilter(CRIT, num_buckets=1, bucket_size=1,
                            vague_width=2, counter_kind="int8")
        qf.insert("a", 1.0)
        assert health_warnings(qf) == []
