"""Tests for repro.core.strategies."""

import pytest

from repro.common.errors import ParameterError
from repro.core.strategies import (
    ComparativeReplacement,
    ForcefulReplacement,
    ProbabilisticReplacement,
    make_strategy,
    strategy_names,
)


class TestComparative:
    def test_strictly_greater_swaps(self):
        strategy = ComparativeReplacement()
        assert strategy.should_replace(5.0, 3.0)
        assert strategy.should_replace(0.0, -2.0)

    def test_equal_or_less_keeps(self):
        strategy = ComparativeReplacement()
        assert not strategy.should_replace(3.0, 3.0)
        assert not strategy.should_replace(-1.0, 3.0)


class TestForceful:
    def test_always_swaps(self):
        strategy = ForcefulReplacement()
        assert strategy.should_replace(-100.0, 100.0)
        assert strategy.should_replace(0.0, 0.0)


class TestProbabilistic:
    def test_non_positive_estimate_never_swaps(self):
        strategy = ProbabilisticReplacement(seed=1)
        assert not any(strategy.should_replace(0.0, 5.0) for _ in range(100))
        assert not any(strategy.should_replace(-3.0, 5.0) for _ in range(100))

    def test_dominant_estimate_always_swaps(self):
        # est positive, min so negative that est + min <= 0: ratio > 1.
        strategy = ProbabilisticReplacement(seed=2)
        assert all(strategy.should_replace(5.0, -10.0) for _ in range(100))

    def test_probability_matches_formula(self):
        strategy = ProbabilisticReplacement(seed=3)
        est, min_qw = 3.0, 1.0  # probability 3/4
        swaps = sum(strategy.should_replace(est, min_qw) for _ in range(10_000))
        assert abs(swaps / 10_000 - 0.75) < 0.03

    def test_seeded_reproducible(self):
        a = ProbabilisticReplacement(seed=7)
        b = ProbabilisticReplacement(seed=7)
        outcomes_a = [a.should_replace(2.0, 1.0) for _ in range(50)]
        outcomes_b = [b.should_replace(2.0, 1.0) for _ in range(50)]
        assert outcomes_a == outcomes_b


class TestFactory:
    def test_make_all_names(self):
        for name in strategy_names():
            strategy = make_strategy(name, seed=1)
            assert strategy.name == name

    def test_registry_contents(self):
        assert set(strategy_names()) == {
            "comparative", "probabilistic", "forceful"
        }

    def test_unknown_name_raises(self):
        with pytest.raises(ParameterError):
            make_strategy("greedy")
