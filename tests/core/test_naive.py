"""Tests for repro.core.naive (the Section II-D strawman)."""

import pytest

from repro.core.criteria import Criteria
from repro.core.naive import NaiveDualCSketch
from repro.detection.ground_truth import compute_ground_truth
from tests.conftest import make_two_class_stream


class TestNaiveDualCSketch:
    def test_detects_obvious_outstanding_key(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=2.0)
        naive = NaiveDualCSketch(crit, memory_bytes=64 * 1024, seed=1)
        for _ in range(20):
            naive.insert("hot", 100.0)
        assert "hot" in naive.reported_keys

    def test_ignores_cold_key(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=2.0)
        naive = NaiveDualCSketch(crit, memory_bytes=64 * 1024, seed=1)
        for _ in range(50):
            naive.insert("cold", 1.0)
        assert naive.reported_keys == set()

    def test_matches_truth_with_ample_memory(self, py_random):
        crit = Criteria(delta=0.9, threshold=100.0, epsilon=3.0)
        items = make_two_class_stream(py_random, n_items=8_000, n_keys=80,
                                      n_hot=4, hot_value=500.0, cold_max=50.0)
        naive = NaiveDualCSketch(crit, memory_bytes=512 * 1024, seed=2)
        for key, value in items:
            naive.insert(key, value)
        truth = compute_ground_truth(items, crit)
        assert naive.reported_keys == truth

    def test_query_sign(self):
        crit = Criteria(delta=0.95, threshold=100.0, epsilon=1000.0)
        naive = NaiveDualCSketch(crit, memory_bytes=64 * 1024, seed=3)
        naive.insert("k", 500.0)
        assert naive.query("k") > 0
        for _ in range(5):
            naive.insert("j", 1.0)
        assert naive.query("j") < 0

    def test_per_item_criteria_override(self):
        default = Criteria(delta=0.95, threshold=100.0, epsilon=1000.0)
        strict = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        naive = NaiveDualCSketch(default, memory_bytes=64 * 1024, seed=4)
        report = naive.insert("k", 50.0, criteria=strict)
        assert report is not None

    def test_reset(self):
        crit = Criteria(delta=0.95, threshold=100.0, epsilon=1000.0)
        naive = NaiveDualCSketch(crit, memory_bytes=64 * 1024, seed=5)
        naive.insert("k", 500.0)
        naive.reset()
        assert naive.query("k") == pytest.approx(0.0)

    def test_nbytes_within_budget(self):
        crit = Criteria(delta=0.95, threshold=100.0)
        naive = NaiveDualCSketch(crit, memory_bytes=10_000)
        assert naive.nbytes <= 10_000

    def test_above_fraction_split(self):
        crit = Criteria(delta=0.95, threshold=100.0)
        naive = NaiveDualCSketch(
            crit, memory_bytes=12_000, above_fraction=0.25
        )
        assert naive.above.nbytes < naive.below.nbytes

    def test_report_count_and_items(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        naive = NaiveDualCSketch(crit, memory_bytes=64 * 1024, seed=6)
        naive.insert("a", 99.0)
        naive.insert("b", 1.0)
        assert naive.items_processed == 2
        assert naive.report_count == 1
