"""The public API surface: everything advertised must import and work.

Guards against export drift: names documented in docs/api.md and the
README must stay importable from the advertised locations, and
``__all__`` lists must match reality.
"""

import importlib

import pytest

import repro

PUBLIC_MODULES = [
    "repro.common", "repro.common.hashing", "repro.common.counters",
    "repro.common.memory", "repro.common.rng", "repro.common.validation",
    "repro.sketches", "repro.sketches.count_sketch",
    "repro.sketches.count_min", "repro.sketches.count_mean_min",
    "repro.sketches.space_saving", "repro.sketches.sampling",
    "repro.quantiles", "repro.quantiles.gk", "repro.quantiles.kll",
    "repro.quantiles.tdigest", "repro.quantiles.ddsketch",
    "repro.quantiles.qdigest", "repro.quantiles.exact",
    "repro.core", "repro.core.criteria", "repro.core.qweight",
    "repro.core.vague", "repro.core.candidate", "repro.core.strategies",
    "repro.core.quantile_filter", "repro.core.naive",
    "repro.core.vectorized", "repro.core.multi_criteria",
    "repro.core.windowed", "repro.core.persistence", "repro.core.inspect",
    "repro.baselines", "repro.baselines.squad",
    "repro.baselines.sketchpolymer", "repro.baselines.histsketch",
    "repro.baselines.perkey",
    "repro.detection", "repro.detection.base",
    "repro.detection.ground_truth", "repro.detection.adapters",
    "repro.detection.reports", "repro.detection.calibration",
    "repro.detection.shadow",
    "repro.observability", "repro.observability.registry",
    "repro.observability.health", "repro.observability.server",
    "repro.observability.timeseries", "repro.observability.alerts",
    "repro.observability.term", "repro.observability.dashboard",
    "repro.streams", "repro.streams.model", "repro.streams.zipf",
    "repro.streams.caida_like", "repro.streams.cloud_like",
    "repro.streams.drift", "repro.streams.bursty",
    "repro.streams.trace_io", "repro.streams.live",
    "repro.metrics", "repro.metrics.accuracy", "repro.metrics.throughput",
    "repro.metrics.latency",
    "repro.analysis", "repro.analysis.theory", "repro.analysis.sizing",
    "repro.experiments", "repro.experiments.config",
    "repro.experiments.harness", "repro.experiments.figures",
    "repro.experiments.scaling", "repro.experiments.report",
    "repro.experiments.cli", "repro.experiments.matrix",
    "repro.experiments.runstore", "repro.experiments.trend",
    "repro.parallel", "repro.parallel.sharded", "repro.parallel.pipeline",
    "repro.parallel.concurrent",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} is missing a module docstring"


@pytest.mark.parametrize(
    "package_name",
    ["repro", "repro.common", "repro.sketches", "repro.quantiles",
     "repro.core", "repro.baselines", "repro.detection", "repro.streams",
     "repro.metrics", "repro.analysis", "repro.parallel",
     "repro.observability"],
)
def test_all_lists_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_top_level_quickstart_names():
    # The README quickstart imports, verbatim.
    from repro import Criteria, QuantileFilter  # noqa: F401
    from repro import BatchQuantileFilter, MultiCriteriaFilter  # noqa: F401
    from repro import WindowedQuantileFilter  # noqa: F401
    from repro import save_filter, load_filter  # noqa: F401
    from repro import compute_ground_truth, score_sets  # noqa: F401
    from repro import ShardedQuantileFilter, ParallelPipeline  # noqa: F401
    from repro import HealthMonitor, HealthServer  # noqa: F401
    from repro import ShadowAccuracyEstimator, serve_pipeline  # noqa: F401
    from repro.analysis.sizing import recommend  # noqa: F401
    from repro.detection.reports import AlertPolicy, ReportLog  # noqa: F401


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_minimal_detection_loop():
    """The README quickstart snippet, executed."""
    from repro import Criteria, QuantileFilter

    qf = QuantileFilter(
        Criteria(delta=0.95, threshold=200.0, epsilon=2.0),
        memory_bytes=64 * 1024,
    )
    stream = [("svc", 500.0)] * 10
    reports = [r for k, v in stream if (r := qf.insert(k, v))]
    assert reports and reports[0].key == "svc"
