"""Property: the vectorised fast tier is bit-exact vs the scalar branch.

``BatchQuantileFilter(vectorize=True)`` splits every chunk into a
vectorised candidate-hit tier and an exact scalar tier; this test lets
hypothesis hunt for a stream where the split changes *anything*.  The
scenarios deliberately stress the tier boundary:

* tiny bucket counts force bucket collisions (shared slots, first-miss
  prefixes),
* hot keys with many above-threshold items force report crossings
  inside the fast tier (the risky-slot replay path),
* random chunk sizes move the classification boundary around.

Beyond report equivalence, the final candidate state (fingerprints and
float Qweights) must match the legacy all-scalar engine **bit for
bit** — the fast tier commits through ordered ``np.add.at`` precisely
so that float accumulation order is preserved.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.core.vectorized import BatchQuantileFilter


@st.composite
def fast_path_scenarios(draw):
    num_buckets = draw(st.sampled_from([1, 2, 3, 8, 64]))
    bucket_size = draw(st.integers(min_value=1, max_value=6))
    vague_width = draw(st.sampled_from([1, 16, 256]))
    depth = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=500))
    chunk = draw(st.sampled_from([1, 3, 32, 512, 10_000]))
    criteria = Criteria(
        delta=draw(st.sampled_from([0.5, 0.9, 0.95])),
        threshold=100.0,
        # Small epsilon -> frequent threshold crossings in the fast
        # tier; large -> long pure accumulation runs.
        epsilon=draw(st.sampled_from([0.0, 1.0, 5.0, 50.0])),
    )
    n = draw(st.integers(min_value=1, max_value=600))
    num_keys = draw(st.sampled_from([1, 2, 5, 40]))
    hot_fraction = draw(st.sampled_from([0.05, 0.3, 0.8]))
    stream_seed = draw(st.integers(min_value=0, max_value=1_000))
    return (num_buckets, bucket_size, vague_width, depth, seed, chunk,
            criteria, n, num_keys, hot_fraction, stream_seed)


def _build_stream(n, num_keys, hot_fraction, threshold, stream_seed):
    rng = np.random.default_rng(stream_seed)
    keys = rng.integers(0, num_keys, size=n).astype(np.int64)
    values = np.where(
        rng.random(n) < hot_fraction,
        threshold * rng.uniform(1.01, 4.0, n),
        rng.uniform(0.0, threshold, n),
    )
    return keys, values


@given(scenario=fast_path_scenarios())
@settings(max_examples=120, deadline=None)
def test_fast_tier_bit_exact_vs_legacy_and_scalar(scenario):
    (num_buckets, bucket_size, vague_width, depth, seed, chunk,
     criteria, n, num_keys, hot_fraction, stream_seed) = scenario
    keys, values = _build_stream(
        n, num_keys, hot_fraction, criteria.threshold, stream_seed
    )
    dims = dict(
        num_buckets=num_buckets, bucket_size=bucket_size,
        vague_width=vague_width, depth=depth, seed=seed,
    )

    vectorized = BatchQuantileFilter(
        criteria, chunk_size=chunk, vectorize=True, **dims
    )
    vectorized.process(keys, values)

    legacy = BatchQuantileFilter(
        criteria, chunk_size=chunk, vectorize=False, **dims
    )
    legacy.process(keys, values)

    scalar = QuantileFilter(criteria, counter_kind="float", **dims)
    for key, value in zip(keys.tolist(), values.tolist()):
        scalar.insert(key, value)

    # Report-for-report equivalence across all three engines.
    assert vectorized.reported_keys == legacy.reported_keys
    assert vectorized.reported_keys == scalar.reported_keys
    assert vectorized.report_count == legacy.report_count
    assert vectorized.report_count == scalar.report_count
    assert vectorized.candidate_reports == legacy.candidate_reports
    assert vectorized.vague_reports == legacy.vague_reports

    # The float state must be IDENTICAL, not merely close: the fast
    # tier preserves the scalar engine's left-to-right addition order.
    assert np.array_equal(vectorized._cand_fps, legacy._cand_fps)
    assert np.array_equal(vectorized._cand_qws, legacy._cand_qws)
    assert vectorized._rows == legacy._rows
