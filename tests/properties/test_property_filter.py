"""Property-based tests of QuantileFilter's end-to-end invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.detection.ground_truth import compute_ground_truth

streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),           # key
        st.floats(min_value=0.0, max_value=1_000.0,
                  allow_nan=False, allow_infinity=False),  # value
    ),
    min_size=1, max_size=400,
)
criterias = st.builds(
    Criteria,
    delta=st.sampled_from([0.5, 0.8, 0.9, 0.95]),
    threshold=st.sampled_from([100.0, 500.0]),
    epsilon=st.sampled_from([0.0, 1.0, 5.0]),
)


@given(stream=streams, criteria=criterias)
@settings(max_examples=100, deadline=None)
def test_collision_free_filter_equals_ground_truth(stream, criteria):
    """With enough memory (no collisions, all keys candidates), the
    filter IS Definition 4: same reported set as the exact oracle."""
    qf = QuantileFilter(criteria, memory_bytes=1 << 20,
                        counter_kind="float", seed=1)
    for key, value in stream:
        qf.insert(key, value)
    assert qf.reported_keys == compute_ground_truth(stream, criteria)


@given(stream=streams, criteria=criterias)
@settings(max_examples=50, deadline=None)
def test_report_count_bounded_by_stream_length(stream, criteria):
    qf = QuantileFilter(criteria, memory_bytes=4_096, seed=2)
    for key, value in stream:
        qf.insert(key, value)
    assert qf.report_count <= len(stream)
    assert qf.items_processed == len(stream)


@given(stream=streams)
@settings(max_examples=50, deadline=None)
def test_query_after_delete_is_zero(stream):
    criteria = Criteria(delta=0.9, threshold=100.0, epsilon=1e6)
    qf = QuantileFilter(criteria, memory_bytes=1 << 18,
                        counter_kind="float", seed=3)
    for key, value in stream:
        qf.insert(key, value)
    probe = stream[0][0]
    qf.delete(probe)
    assert abs(qf.query(probe)) < 1e-6


@given(stream=streams, criteria=criterias)
@settings(max_examples=50, deadline=None)
def test_insertion_order_of_other_keys_does_not_corrupt_candidates(
    stream, criteria
):
    """A candidate-resident key's Qweight equals its exact Qweight
    regardless of what other keys did, when memory is ample."""
    from repro.core.qweight import ExactQweightTracker

    qf = QuantileFilter(criteria, memory_bytes=1 << 20,
                        counter_kind="float", seed=4)
    tracker = ExactQweightTracker(criteria)
    probe = stream[0][0]
    for key, value in stream:
        qf.insert(key, value)
        if key == probe:
            tracker.offer(value)
    assert abs(qf.query(probe) - tracker.qweight) < 1e-6
