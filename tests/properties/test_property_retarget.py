"""Property: retarget(T2) is equivalent to constructing at T2.

Two laws, each checked on the scalar and batch engines over random
streams and structure dimensions:

* a filter retargeted T1→T2 *before any traffic* reports exactly the
  keys a filter constructed at T2 reports, item for item;
* a filter that processed arbitrary traffic at T1, then retargeted to
  T2 (with a reset on the scalar engine, which exposes one), matches
  the reference behaviour on the remaining stream — retargeting
  carries no hidden criteria state, and the batch engine agrees with
  the scalar filter when both retarget at the same stream position.

A third law pins the "state preserved" half of the contract: the
retarget call itself must not change candidate entries, Qweights or
the reported-key history.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.core.vectorized import BatchQuantileFilter


@st.composite
def scenarios(draw):
    num_buckets = draw(st.integers(min_value=1, max_value=16))
    vague_width = draw(st.integers(min_value=8, max_value=64))
    seed = draw(st.integers(min_value=0, max_value=100))
    t1 = draw(st.sampled_from([20.0, 50.0, 500.0]))
    t2 = draw(st.sampled_from([40.0, 80.0, 200.0]))
    criteria = Criteria(
        delta=draw(st.sampled_from([0.5, 0.9])),
        threshold=t1,
        epsilon=draw(st.sampled_from([0.0, 2.0])),
    )
    n = draw(st.integers(min_value=50, max_value=400))
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 12, size=n).astype(np.int64)
    values = rng.uniform(0.0, 300.0, size=n)
    split = draw(st.integers(min_value=0, max_value=n))
    return dict(
        num_buckets=num_buckets, vague_width=vague_width, seed=seed,
        criteria=criteria, t2=t2, keys=keys, values=values, split=split,
    )


def _build(engine_cls, criteria, s):
    return engine_cls(
        criteria, num_buckets=s["num_buckets"],
        vague_width=s["vague_width"], seed=s["seed"],
    )


def _feed_scalar(filt, keys, values):
    reported = []
    for key, value in zip(keys.tolist(), values.tolist()):
        report = filt.insert(key, value)
        reported.append(None if report is None else report.key)
    return reported


@settings(max_examples=40, deadline=None)
@given(scenarios())
def test_scalar_retarget_before_traffic_equals_construction(s):
    retargeted = _build(QuantileFilter, s["criteria"], s)
    retargeted.retarget(s["t2"])
    fresh = _build(
        QuantileFilter, s["criteria"].with_updates(threshold=s["t2"]), s
    )
    assert (_feed_scalar(retargeted, s["keys"], s["values"])
            == _feed_scalar(fresh, s["keys"], s["values"]))
    assert retargeted.criteria == fresh.criteria
    assert retargeted.retargets == 1


@settings(max_examples=40, deadline=None)
@given(scenarios())
def test_batch_retarget_before_traffic_equals_construction(s):
    retargeted = _build(BatchQuantileFilter, s["criteria"], s)
    retargeted.retarget(s["t2"])
    fresh = _build(
        BatchQuantileFilter, s["criteria"].with_updates(threshold=s["t2"]), s
    )
    assert (retargeted.process(s["keys"], s["values"])
            == fresh.process(s["keys"], s["values"]))
    assert retargeted.criteria == fresh.criteria


@settings(max_examples=40, deadline=None)
@given(scenarios())
def test_scalar_retarget_plus_reset_equals_construction_on_suffix(s):
    split = s["split"]
    veteran = _build(QuantileFilter, s["criteria"], s)
    _feed_scalar(veteran, s["keys"][:split], s["values"][:split])
    veteran.retarget(s["t2"])
    veteran.reset()
    fresh = _build(
        QuantileFilter, s["criteria"].with_updates(threshold=s["t2"]), s
    )
    assert (_feed_scalar(veteran, s["keys"][split:], s["values"][split:])
            == _feed_scalar(fresh, s["keys"][split:], s["values"][split:]))


@settings(max_examples=40, deadline=None)
@given(scenarios())
def test_batch_matches_scalar_under_midstream_retarget(s):
    split = s["split"]
    scalar = QuantileFilter(
        s["criteria"], num_buckets=s["num_buckets"],
        vague_width=s["vague_width"], seed=s["seed"],
        counter_kind="float",
    )
    batch = _build(BatchQuantileFilter, s["criteria"], s)
    _feed_scalar(scalar, s["keys"][:split], s["values"][:split])
    batch.process(s["keys"][:split], s["values"][:split])
    scalar.retarget(s["t2"])
    batch.retarget(s["t2"])
    _feed_scalar(scalar, s["keys"][split:], s["values"][split:])
    batch.process(s["keys"][split:], s["values"][split:])
    assert batch.reported_keys == scalar.reported_keys
    assert batch.report_count == scalar.report_count
    assert batch.criteria == scalar.criteria
    assert batch.retargets == scalar.retargets == 1


@settings(max_examples=40, deadline=None)
@given(scenarios())
def test_retarget_preserves_candidate_state(s):
    filt = _build(QuantileFilter, s["criteria"], s)
    _feed_scalar(filt, s["keys"], s["values"])
    top_before = filt.top_candidates(10)
    reported_before = set(filt.reported_keys)
    items_before = filt.items_processed
    filt.retarget(s["t2"])
    assert filt.top_candidates(10) == top_before
    assert set(filt.reported_keys) == reported_before
    assert filt.items_processed == items_before
    assert filt.criteria.threshold == s["t2"]
    # Only T moved: delta/epsilon (and so the report threshold) stand.
    assert filt.criteria.delta == s["criteria"].delta
    assert filt.criteria.epsilon == s["criteria"].epsilon
