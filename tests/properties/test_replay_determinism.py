"""Property: incident-bundle replay is bit-identical, both engines.

The flight recorder's whole value rests on one claim — ``base snapshot
+ retained chunks`` deterministically reproduces the live filter:
reports, counters, state fingerprint and structural health verdict.
Hypothesis picks the structure dimensions, criteria, stream, chunking,
ring size, engine AND a warm-up prefix (so the base snapshot is taken
mid-stream, not at construction).  Every bundle also round-trips
through JSON text first, so the serialised form — float repr and all —
is what's proven deterministic, exactly what a bundle read back from
disk replays.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.core.vectorized import BatchQuantileFilter
from repro.observability.recorder import FlightRecorder, replay_bundle


@st.composite
def scenarios(draw):
    engine = draw(st.sampled_from(["scalar", "batch"]))
    num_buckets = draw(st.integers(min_value=1, max_value=32))
    bucket_size = draw(st.integers(min_value=1, max_value=8))
    vague_width = draw(st.integers(min_value=1, max_value=128))
    depth = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=1_000))
    criteria = Criteria(
        delta=draw(st.sampled_from([0.5, 0.8, 0.9, 0.95])),
        threshold=draw(st.sampled_from([50.0, 200.0])),
        epsilon=draw(st.sampled_from([0.0, 2.0, 10.0])),
    )
    warmup = draw(st.integers(min_value=0, max_value=200))
    n = draw(st.integers(min_value=1, max_value=500))
    chunk = draw(st.sampled_from([1, 7, 64, 256]))
    max_chunks = draw(st.integers(min_value=1, max_value=6))
    stream_seed = draw(st.integers(min_value=0, max_value=1_000))
    return (engine, num_buckets, bucket_size, vague_width, depth, seed,
            criteria, warmup, n, chunk, max_chunks, stream_seed)


def make_stream(n, threshold, stream_seed):
    rng = np.random.default_rng(stream_seed)
    keys = rng.integers(0, 60, size=n).astype(np.int64)
    values = np.where(
        rng.random(n) < 0.2, threshold * 5.0,
        rng.uniform(0, threshold, n),
    )
    return keys, values


@given(scenario=scenarios())
@settings(max_examples=60, deadline=None)
def test_replay_reproduces_capture_bit_identically(scenario):
    (engine, num_buckets, bucket_size, vague_width, depth, seed,
     criteria, warmup, n, chunk, max_chunks, stream_seed) = scenario
    geometry = dict(
        num_buckets=num_buckets, bucket_size=bucket_size,
        vague_width=vague_width, depth=depth, seed=seed,
    )
    if engine == "scalar":
        filt = QuantileFilter(criteria, counter_kind="float", **geometry)
    else:
        filt = BatchQuantileFilter(criteria, chunk_size=max(chunk, 1),
                                   **geometry)
    warm_keys, warm_values = make_stream(
        warmup, criteria.threshold, stream_seed + 10_000
    )
    if warmup:
        if engine == "scalar":
            filt.insert_many(warm_keys.tolist(), warm_values.tolist())
        else:
            filt.process(warm_keys, warm_values)

    # Attach mid-stream: the base snapshot captures the warmed state.
    rec = FlightRecorder(filt, max_chunks=max_chunks, chunk_items=chunk)
    keys, values = make_stream(n, criteria.threshold, stream_seed)
    for begin in range(0, n, chunk):
        rec.feed(keys[begin:begin + chunk].tolist(),
                 values[begin:begin + chunk].tolist())

    bundle = json.loads(json.dumps(rec.bundle("property")))
    result = replay_bundle(bundle)
    assert result.ok, result.mismatches
    assert result.engine == engine
    assert result.fingerprint_ok
    assert result.verdict_ok
    assert result.reports_replayed == result.reports_expected


@given(scenario=scenarios())
@settings(max_examples=20, deadline=None)
def test_scalar_per_item_tap_replays(scenario):
    (_, num_buckets, bucket_size, vague_width, depth, seed,
     criteria, _, n, chunk, max_chunks, stream_seed) = scenario
    filt = QuantileFilter(
        criteria, num_buckets=num_buckets, bucket_size=bucket_size,
        vague_width=vague_width, depth=depth, counter_kind="float",
        seed=seed,
    )
    rec = FlightRecorder(filt, max_chunks=max_chunks, chunk_items=chunk)
    keys, values = make_stream(n, criteria.threshold, stream_seed)
    for key, value in zip(keys.tolist(), values.tolist()):
        rec.insert(key, value)
    result = replay_bundle(json.loads(json.dumps(rec.bundle("property"))))
    assert result.ok, result.mismatches
