"""Property-based tests for persistence and windowed operation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import Criteria
from repro.core.persistence import load_filter, save_filter
from repro.core.quantile_filter import QuantileFilter
from repro.core.windowed import WindowedQuantileFilter

CRIT = Criteria(delta=0.9, threshold=100.0, epsilon=3.0)

streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.floats(min_value=0.0, max_value=500.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1, max_size=200,
)


@given(stream=streams)
@settings(max_examples=60, deadline=None)
def test_checkpoint_roundtrip_preserves_all_queries(stream, tmp_path_factory):
    """For ANY stream, save+load reproduces every key's Qweight and all
    counters exactly."""
    qf = QuantileFilter(CRIT, memory_bytes=32 * 1024,
                        counter_kind="float", seed=11)
    for key, value in stream:
        qf.insert(key, value)
    path = tmp_path_factory.mktemp("ckpt") / "filter.npz"
    save_filter(qf, path)
    restored = load_filter(path)
    for key in range(41):
        assert abs(restored.query(key) - qf.query(key)) < 1e-9
    assert restored.reported_keys == qf.reported_keys
    assert restored.items_processed == qf.items_processed


@given(stream=streams, window=st.integers(min_value=5, max_value=100))
@settings(max_examples=60, deadline=None)
def test_tumbling_window_matches_manual_resets(stream, window):
    """A tumbling window equals a plain filter that is manually reset at
    the same boundaries."""
    windowed = WindowedQuantileFilter(
        CRIT, 32 * 1024, window_items=window, mode="tumbling", seed=12,
        counter_kind="float",
    )
    manual = QuantileFilter(CRIT, memory_bytes=32 * 1024,
                            counter_kind="float", seed=12)
    since = 0
    for key, value in stream:
        if since >= window:
            manual.reset()
            since = 0
        since += 1
        windowed_report = windowed.insert(key, value)
        manual_report = manual.insert(key, value)
        assert (windowed_report is None) == (manual_report is None)
    for key in range(41):
        assert abs(windowed.query(key) - manual.query(key)) < 1e-9


@given(stream=streams, window=st.integers(min_value=4, max_value=60))
@settings(max_examples=40, deadline=None)
def test_rotating_window_invariants(stream, window):
    """Rotating mode never crashes, counts items exactly, and its
    rotation count matches the schedule."""
    windowed = WindowedQuantileFilter(
        CRIT, 32 * 1024, window_items=window, mode="rotating", seed=13
    )
    for key, value in stream:
        windowed.insert(key, value)
    assert windowed.items_processed == len(stream)
    period = window // 2 + 1
    assert windowed.resets == max(0, (len(stream) - 1) // period)
