"""Property tests: the alert state machine under irregular schedules.

Random walks of (time gap, metric value) steps drive a single-rule
engine; the invariants the operators rely on must hold along every
path:

* ``pending`` never skips to ``resolved``, and ``firing`` never drops
  straight to ``inactive`` — every edge is one the docs' state table
  allows.
* ``pending`` promotes to ``firing`` only after the condition has held
  *continuously* for the rule's ``for:`` duration.
* ``firing`` leaves only via ``resolved``, and only once the value has
  recovered past the resolve hysteresis level (not merely below the
  threshold).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.alerts import AlertEngine, AlertRule
from repro.observability.timeseries import MetricStore

#: Every edge the state machine is allowed to take (old, new).
ALLOWED_EDGES = {
    ("inactive", "pending"),
    ("inactive", "firing"),     # for: == 0 promotes immediately
    ("pending", "firing"),
    ("pending", "inactive"),    # condition failed before for: elapsed
    ("firing", "resolved"),
    ("resolved", "inactive"),
    ("resolved", "pending"),    # re-breach while relaxing
    ("resolved", "firing"),
}

steps = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=30.0,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.0, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=2,
    max_size=60,
)


def run_machine(step_list, for_seconds, resolve):
    """Drive one rule through the steps; return the edge history."""
    rule = AlertRule(
        name="walk",
        expr="value(m) > 5",
        for_seconds=for_seconds,
        resolve=resolve,
    )
    now = {"t": 0.0}
    store = MetricStore(clock=lambda: now["t"])
    engine = AlertEngine(store, [rule])
    history = []
    held_since = None  # first tick of the current continuous breach
    for dt, value in step_list:
        now["t"] += dt
        store.collect({"m": value}, now=now["t"])
        breached = value > 5
        if breached and held_since is None:
            held_since = now["t"]
        transitions = engine.evaluate(now=now["t"])
        if not breached:
            held_since = None
        for transition in transitions:
            history.append(
                (transition.old_state, transition.new_state,
                 now["t"], value, held_since)
            )
    return history


@settings(max_examples=150, deadline=None)
@given(
    step_list=steps,
    for_seconds=st.sampled_from([0.0, 5.0, 17.5, 60.0]),
    resolve=st.sampled_from([None, 2.0, 4.999]),
)
def test_state_machine_invariants(step_list, for_seconds, resolve):
    history = run_machine(step_list, for_seconds, resolve)

    for old, new, at, value, held_since in history:
        # 1. Only documented edges, ever.
        assert (old, new) in ALLOWED_EDGES, f"illegal edge {old}->{new}"

        # 2. for: is honoured under irregular intervals — a promotion
        # to firing requires the breach to have held continuously for
        # the full duration (measured from its first breached tick).
        if new == "firing":
            assert held_since is not None
            assert at - held_since >= for_seconds

        # 3. With a for: duration, nothing reaches firing without
        # passing through pending first.
        if for_seconds > 0 and new == "firing":
            assert old == "pending"

        # 4. Hysteresis: resolution requires recovery past the resolve
        # level when one is set, and past the threshold otherwise.
        if (old, new) == ("firing", "resolved"):
            if resolve is not None:
                assert value <= resolve
            else:
                assert not value > 5


@settings(max_examples=60, deadline=None)
@given(step_list=steps)
def test_pending_never_skips_to_resolved(step_list):
    history = run_machine(step_list, for_seconds=10.0, resolve=2.0)
    assert ("pending", "resolved") not in {
        (old, new) for old, new, *_ in history
    }
    assert ("firing", "inactive") not in {
        (old, new) for old, new, *_ in history
    }


@settings(max_examples=60, deadline=None)
@given(step_list=steps)
def test_engine_state_matches_transition_history(step_list):
    """The cached state always equals the last transition's endpoint."""
    rule = AlertRule(name="walk", expr="value(m) > 5", for_seconds=5.0,
                     resolve=2.0)
    now = {"t": 0.0}
    store = MetricStore(clock=lambda: now["t"])
    engine = AlertEngine(store, [rule])
    last_state = "inactive"
    for dt, value in step_list:
        now["t"] += dt
        store.collect({"m": value}, now=now["t"])
        transitions = engine.evaluate(now=now["t"])
        for transition in transitions:
            assert transition.old_state == last_state
            last_state = transition.new_state
        assert engine.states()["walk"] == last_state
