"""Fuzzed operation sequences: filter vs per-key exact reference.

Hypothesis drives random interleavings of every public operation —
insert, query, delete, reset, per-key criteria changes — against a
collision-free QuantileFilter and an exact per-key reference.  Any
divergence in reports or Qweights is a bug in the operation plumbing
(the numeric estimation paths are covered elsewhere).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.core.qweight import ExactQweightTracker

BASE = Criteria(delta=0.9, threshold=100.0, epsilon=3.0)
ALT = Criteria(delta=0.5, threshold=50.0, epsilon=1.0)

keys = st.integers(min_value=0, max_value=8)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys,
                  st.floats(min_value=0.0, max_value=500.0,
                            allow_nan=False, allow_infinity=False)),
        st.tuples(st.just("delete"), keys, st.just(0.0)),
        st.tuples(st.just("modify"), keys, st.just(0.0)),
        st.tuples(st.just("reset"), st.just(0), st.just(0.0)),
    ),
    min_size=1,
    max_size=120,
)


class _Reference:
    """Exact mirror of the filter's semantics for a handful of keys."""

    def __init__(self):
        self.trackers = {}
        self.criteria = {}
        self.reported = []

    def _tracker(self, key) -> ExactQweightTracker:
        tracker = self.trackers.get(key)
        if tracker is None:
            tracker = ExactQweightTracker(self.criteria.get(key, BASE))
            self.trackers[key] = tracker
        return tracker

    def insert(self, key, value) -> bool:
        return self._tracker(key).offer(value)

    def delete(self, key):
        self._tracker(key).reset()

    def modify(self, key):
        self.criteria[key] = ALT
        tracker = self._tracker(key)
        tracker.criteria = ALT
        tracker.reset()

    def reset(self):
        for tracker in self.trackers.values():
            tracker.reset()

    def qweight(self, key) -> float:
        return self._tracker(key).qweight


@given(ops=operations)
@settings(max_examples=150, deadline=None)
def test_operation_sequences_match_reference(ops):
    qf = QuantileFilter(BASE, memory_bytes=1 << 18,
                        counter_kind="float", seed=5)
    reference = _Reference()

    for op, key, value in ops:
        if op == "insert":
            report = qf.insert(key, value)
            expected = reference.insert(key, value)
            assert (report is not None) == expected, (op, key, value)
        elif op == "delete":
            qf.delete(key)
            reference.delete(key)
        elif op == "modify":
            qf.modify_criteria(key, ALT)
            reference.modify(key)
        else:  # reset
            qf.reset()
            reference.reset()

    for key in range(9):
        assert abs(qf.query(key) - reference.qweight(key)) < 1e-6, key


@given(ops=operations)
@settings(max_examples=75, deadline=None)
def test_operation_sequences_never_corrupt_state(ops):
    """Same fuzz under a STARVED filter: reports may differ from exact,
    but no operation may crash and the instrumentation must stay sane."""
    qf = QuantileFilter(BASE, num_buckets=1, bucket_size=1, vague_width=4,
                        counter_kind="int8", seed=6)
    inserts = 0
    for op, key, value in ops:
        if op == "insert":
            qf.insert(key, value)
            inserts += 1
        elif op == "delete":
            qf.delete(key)
        elif op == "modify":
            qf.modify_criteria(key, ALT)
        else:
            qf.reset()
    assert qf.items_processed == inserts
    assert 0 <= qf.candidate_hits <= inserts
    assert 0 <= qf.report_count <= inserts
    assert qf.candidate.occupancy() <= 1.0
