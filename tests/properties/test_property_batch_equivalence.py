"""Property: batch engine == scalar filter, over random configurations.

The equivalence unit tests check a few fixed dimension pairs; this
property test lets hypothesis pick the structure dimensions, stream,
criteria AND chunk size — any divergence between the two engines is a
real bug in one of them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.core.vectorized import BatchQuantileFilter


@st.composite
def scenarios(draw):
    num_buckets = draw(st.integers(min_value=1, max_value=32))
    bucket_size = draw(st.integers(min_value=1, max_value=8))
    vague_width = draw(st.integers(min_value=1, max_value=128))
    depth = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=1_000))
    chunk = draw(st.sampled_from([1, 7, 64, 10_000]))
    criteria = Criteria(
        delta=draw(st.sampled_from([0.5, 0.8, 0.9, 0.95])),
        threshold=draw(st.sampled_from([50.0, 200.0])),
        epsilon=draw(st.sampled_from([0.0, 2.0, 10.0])),
    )
    n = draw(st.integers(min_value=1, max_value=400))
    stream_seed = draw(st.integers(min_value=0, max_value=1_000))
    return (num_buckets, bucket_size, vague_width, depth, seed, chunk,
            criteria, n, stream_seed)


@given(scenario=scenarios())
@settings(max_examples=80, deadline=None)
def test_batch_equals_scalar_everywhere(scenario):
    (num_buckets, bucket_size, vague_width, depth, seed, chunk,
     criteria, n, stream_seed) = scenario
    rng = np.random.default_rng(stream_seed)
    keys = rng.integers(0, 60, size=n).astype(np.int64)
    values = np.where(
        rng.random(n) < 0.2, 500.0, rng.uniform(0, criteria.threshold, n)
    )

    scalar = QuantileFilter(
        criteria, num_buckets=num_buckets, bucket_size=bucket_size,
        vague_width=vague_width, depth=depth, counter_kind="float",
        seed=seed,
    )
    for key, value in zip(keys.tolist(), values.tolist()):
        scalar.insert(key, value)

    batch = BatchQuantileFilter(
        criteria, num_buckets=num_buckets, bucket_size=bucket_size,
        vague_width=vague_width, depth=depth, seed=seed, chunk_size=chunk,
    )
    batch.process(keys, values)

    assert batch.reported_keys == scalar.reported_keys
    assert batch.report_count == scalar.report_count
    assert batch.items_processed == scalar.items_processed
