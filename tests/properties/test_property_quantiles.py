"""Property-based tests of the single-key quantile estimators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantiles.base import NEG_INF, paper_quantile_index
from repro.quantiles.ddsketch import DDSketch
from repro.quantiles.exact import ExactQuantile
from repro.quantiles.gk import GKSummary
from repro.quantiles.kll import KLLSketch

value_lists = st.lists(
    st.floats(min_value=0.001, max_value=10_000.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=300,
)
deltas = st.sampled_from([0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99])


@given(values=value_lists, delta=deltas)
@settings(max_examples=150, deadline=None)
def test_exact_quantile_is_order_statistic(values, delta):
    exact = ExactQuantile()
    for value in values:
        exact.insert(value)
    index = paper_quantile_index(len(values), delta)
    assert exact.quantile(delta) == sorted(values)[index]


@given(values=value_lists, delta=deltas)
@settings(max_examples=100, deadline=None)
def test_gk_quantile_is_a_seen_value(values, delta):
    """GK returns stored tuples, which are all actual input values."""
    gk = GKSummary(eps=0.05)
    for value in values:
        gk.insert(value)
    estimate = gk.quantile(delta)
    assert estimate in values


@given(values=value_lists, delta=deltas)
@settings(max_examples=100, deadline=None)
def test_kll_quantile_within_range(values, delta):
    kll = KLLSketch(k=64, seed=1)
    for value in values:
        kll.insert(value)
    estimate = kll.quantile(delta)
    assert min(values) <= estimate <= max(values)


@given(values=value_lists, delta=deltas)
@settings(max_examples=100, deadline=None)
def test_ddsketch_relative_error(values, delta):
    alpha = 0.05
    dd = DDSketch(alpha=alpha)
    exact = ExactQuantile()
    for value in values:
        dd.insert(value)
        exact.insert(value)
    true = exact.quantile(delta)
    estimate = dd.quantile(delta)
    assert abs(estimate - true) <= 2 * alpha * true + 1e-9


@given(values=value_lists)
@settings(max_examples=100, deadline=None)
def test_quantiles_monotone_in_delta(values):
    """For every estimator, quantile(d1) <= quantile(d2) when d1 < d2."""
    estimators = [
        ExactQuantile(),
        GKSummary(eps=0.05),
        KLLSketch(k=64, seed=2),
        DDSketch(alpha=0.05),
    ]
    for estimator in estimators:
        for value in values:
            estimator.insert(value)
        quantiles = [estimator.quantile(d) for d in (0.1, 0.5, 0.9)]
        finite = [q for q in quantiles if q != NEG_INF]
        assert finite == sorted(finite), type(estimator).__name__


@given(
    values=value_lists,
    delta=deltas,
    epsilon=st.sampled_from([0.0, 1.0, 5.0, 20.0]),
)
@settings(max_examples=100, deadline=None)
def test_epsilon_never_increases_quantile(values, delta, epsilon):
    exact = ExactQuantile()
    for value in values:
        exact.insert(value)
    assert exact.quantile(delta, epsilon) <= exact.quantile(delta)
