"""Property-based tests of the Qweight conversion lemma (Sec. III-A).

The lemma is the paper's load-bearing identity — if it failed on any
input, QuantileFilter would answer a different question than
Definition 4 asks.  Hypothesis searches the space of criteria and value
multisets for counterexamples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import Criteria
from repro.core.qweight import (
    ExactQweightTracker,
    counts_exceed_threshold,
    exact_qweight,
    quantile_exceeds_threshold,
    qweight_exceeds_report_threshold,
    qweight_from_counts,
)

# Deltas drawn from realistic monitoring values (the conversion gap
# degenerates only in pathological float corners far from practice).
deltas = st.sampled_from(
    [0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 0.95, 0.98, 0.99]
)
epsilons = st.sampled_from([0.0, 1.0, 2.0, 5.0, 10.0, 30.0])
values_lists = st.lists(
    st.floats(min_value=0.0, max_value=1_000.0,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


@given(delta=deltas, epsilon=epsilons, values=values_lists)
@settings(max_examples=300, deadline=None)
def test_conversion_lemma(delta, epsilon, values):
    """q_{eps,delta} > T  <=>  Qw >= eps/(1-delta), for any multiset."""
    criteria = Criteria(delta=delta, threshold=500.0, epsilon=epsilon)
    assert quantile_exceeds_threshold(values, criteria) == (
        qweight_exceeds_report_threshold(values, criteria)
    )


@given(delta=deltas, epsilon=epsilons, values=values_lists)
@settings(max_examples=200, deadline=None)
def test_counts_form_equals_values_form(delta, epsilon, values):
    criteria = Criteria(delta=delta, threshold=500.0, epsilon=epsilon)
    above = sum(1 for v in values if v > criteria.threshold)
    assert counts_exceed_threshold(len(values), above, criteria) == (
        quantile_exceeds_threshold(values, criteria)
    )


@given(delta=deltas, values=values_lists)
@settings(max_examples=200, deadline=None)
def test_qweight_from_counts_matches_sum(delta, values):
    criteria = Criteria(delta=delta, threshold=500.0)
    above = sum(1 for v in values if v > criteria.threshold)
    from_counts = qweight_from_counts(len(values), above, criteria)
    from_values = exact_qweight(values, criteria)
    assert abs(from_counts - from_values) < 1e-6


@given(
    delta=deltas,
    epsilon=epsilons,
    values=st.lists(
        st.floats(min_value=0.0, max_value=1_000.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=300,
    ),
)
@settings(max_examples=150, deadline=None)
def test_tracker_agrees_with_literal_replay(delta, epsilon, values):
    """The streaming tracker must fire exactly when a literal
    Definition 4 replay over explicit value sets fires."""
    criteria = Criteria(delta=delta, threshold=500.0, epsilon=epsilon)
    tracker = ExactQweightTracker(criteria)
    literal_values = []
    for value in values:
        literal_values.append(value)
        literal_fires = quantile_exceeds_threshold(literal_values, criteria)
        tracker_fires = tracker.offer(value)
        assert tracker_fires == literal_fires
        if literal_fires:
            literal_values = []


@given(delta=deltas, epsilon=epsilons)
@settings(max_examples=100, deadline=None)
def test_report_threshold_non_negative(delta, epsilon):
    criteria = Criteria(delta=delta, threshold=1.0, epsilon=epsilon)
    assert criteria.report_threshold >= 0.0
    assert criteria.positive_weight > 0.0
