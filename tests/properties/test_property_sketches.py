"""Property-based tests of the sketch substrates' invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import canonical_key, mix64
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch
from repro.sketches.space_saving import SpaceSaving

keys = st.integers(min_value=0, max_value=10_000)
weights = st.floats(min_value=-100.0, max_value=100.0,
                    allow_nan=False, allow_infinity=False)
updates = st.lists(st.tuples(keys, weights), min_size=1, max_size=150)


@given(updates=updates)
@settings(max_examples=100, deadline=None)
def test_count_sketch_update_then_delete_is_identity(updates):
    """Deleting exactly what was inserted restores every counter."""
    sketch = CountSketch(depth=3, width=64, counter_kind="float", seed=1)
    for key, weight in updates:
        sketch.update(canonical_key(key), weight)
    for key, weight in updates:
        sketch.delete(canonical_key(key), weight)
    assert abs(sketch.counters.data).max() < 1e-6


@given(updates=updates)
@settings(max_examples=100, deadline=None)
def test_count_sketch_mass_conservation(updates):
    """Signed counter mass per row equals the sum of signed inserts
    (no mass is created or lost by collisions)."""
    sketch = CountSketch(depth=1, width=16, counter_kind="float", seed=2)
    expected = 0.0
    for key, weight in updates:
        canon = canonical_key(key)
        sign = sketch._signs.sign(0, canon)
        expected += sign * weight
        sketch.update(canon, weight)
    assert abs(float(sketch.counters.data.sum()) - expected) < 1e-6


@given(updates=st.lists(st.tuples(keys, st.floats(min_value=0.0, max_value=50.0,
                                                  allow_nan=False)),
                        min_size=1, max_size=150))
@settings(max_examples=100, deadline=None)
def test_count_min_never_underestimates(updates):
    sketch = CountMinSketch(depth=3, width=32, counter_kind="float", seed=3)
    truth = {}
    for key, weight in updates:
        sketch.update(canonical_key(key), weight)
        truth[key] = truth.get(key, 0.0) + weight
    for key, total in truth.items():
        assert sketch.estimate(canonical_key(key)) >= total - 1e-6


@given(
    stream=st.lists(st.integers(min_value=0, max_value=50),
                    min_size=1, max_size=400),
    capacity=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=100, deadline=None)
def test_space_saving_bounds(stream, capacity):
    """count - error <= true frequency <= count for tracked keys, and
    the total of tracked counts equals the stream length."""
    ss = SpaceSaving(capacity)
    truth = {}
    for key in stream:
        ss.update(key)
        truth[key] = truth.get(key, 0) + 1
    for key in ss.keys():
        assert ss.guaranteed_count(key) <= truth[key] <= ss.estimate(key)
    assert sum(count for _, count in ss.top()) >= len(stream) / max(
        1, len(truth)
    )


@given(value=st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=300, deadline=None)
def test_mix64_is_injective_on_samples(value):
    """splitmix64 is a bijection: x != y -> mix(x) != mix(y) (sampled)."""
    other = (value + 1) & (2**64 - 1)
    assert mix64(value) != mix64(other)
