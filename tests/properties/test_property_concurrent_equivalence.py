"""Property: the thread-parallel engine == the single-thread batch engine.

Three claims, matching the equivalence model in
``repro.parallel.concurrent``'s module docstring:

1. **Single ingest** — one caller flushing through the striped commit
   path is bit-identical (report set AND state fingerprint) to a
   ``BatchQuantileFilter`` fed the same stream with each flush buffer
   stably stripe-sorted: the stripe sort is the only reordering the
   engine introduces.
2. **No-overflow regime** — with bucket-affine feeding and buckets that
   never overflow into the vague part, any number of *racing* threads
   produce the exact single-thread state: candidate interactions are
   bucket-local, each bucket's items arrive through one thread in
   stream order, and cross-bucket commits touch disjoint memory.
3. **Witness replay** — in the general regime (overflow, elections,
   arbitrary key partition), replaying the commit-ticket-ordered
   witness log through a fresh batch filter reproduces the racing
   filter's shared planes bit-exactly.

Hypothesis picks the geometry, stream, stripe count and flush size —
any divergence is a real bug in the striped commit path.
"""

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import Criteria
from repro.core.persistence import state_fingerprint
from repro.core.vectorized import BatchQuantileFilter
from repro.parallel.concurrent import ConcurrentQuantileFilter, replay_witness
from repro.streams.model import Trace


def _stream(stream_seed, n, num_keys, threshold):
    rng = np.random.default_rng(stream_seed)
    keys = rng.integers(0, num_keys, size=n).astype(np.int64)
    values = np.where(
        rng.random(n) < 0.3, threshold * 6.0,
        rng.uniform(0, threshold, n),
    )
    return keys, values


@st.composite
def geometries(draw):
    return dict(
        num_buckets=draw(st.integers(min_value=1, max_value=24)),
        bucket_size=draw(st.integers(min_value=1, max_value=6)),
        vague_width=draw(st.integers(min_value=1, max_value=96)),
        depth=draw(st.integers(min_value=1, max_value=4)),
        seed=draw(st.integers(min_value=0, max_value=500)),
    )


@st.composite
def scenarios(draw):
    return dict(
        geometry=draw(geometries()),
        num_stripes=draw(st.integers(min_value=1, max_value=12)),
        flush_items=draw(st.sampled_from([1, 3, 17, 64, 256])),
        criteria=Criteria(
            delta=draw(st.sampled_from([0.5, 0.9, 0.95])),
            threshold=50.0,
            epsilon=draw(st.sampled_from([0.0, 2.0])),
        ),
        n=draw(st.integers(min_value=1, max_value=400)),
        stream_seed=draw(st.integers(min_value=0, max_value=1_000)),
    )


def _assert_same_state(cqf, reference):
    assert cqf.reported_keys == reference.reported_keys
    assert cqf.report_count == reference.report_count
    assert cqf.items_processed == reference.items_processed
    assert state_fingerprint(cqf.as_batch()) == state_fingerprint(reference)


@given(scenario=scenarios())
@settings(max_examples=60, deadline=None)
def test_single_ingest_equals_stripe_sorted_batch(scenario):
    criteria = scenario["criteria"]
    keys, values = _stream(
        scenario["stream_seed"], scenario["n"], 30, criteria.threshold
    )

    cqf = ConcurrentQuantileFilter(
        criteria, **scenario["geometry"],
        num_stripes=scenario["num_stripes"],
        flush_items=scenario["flush_items"],
    )
    cqf.process(keys, values)

    reference = BatchQuantileFilter(criteria, **scenario["geometry"])
    num_stripes = cqf.num_stripes  # post-clamp value
    for chunk_keys, chunk_values in Trace(keys, values).iter_chunks(
        scenario["flush_items"]
    ):
        _, buckets, _ = reference._chunk_parts(chunk_keys, chunk_values)
        order = np.argsort(buckets % num_stripes, kind="stable")
        reference._process_chunk(chunk_keys[order], chunk_values[order])

    _assert_same_state(cqf, reference)


@st.composite
def affine_scenarios(draw):
    # No-overflow guarantee: fewer distinct keys than slots per bucket,
    # so no bucket can ever spill into the vague part.
    num_keys = draw(st.integers(min_value=1, max_value=5))
    geometry = draw(geometries())
    geometry["bucket_size"] = draw(
        st.integers(min_value=num_keys, max_value=8)
    )
    return dict(
        geometry=geometry,
        num_keys=num_keys,
        num_threads=draw(st.integers(min_value=2, max_value=4)),
        flush_items=draw(st.sampled_from([7, 64])),
        n=draw(st.integers(min_value=50, max_value=1_500)),
        stream_seed=draw(st.integers(min_value=0, max_value=1_000)),
    )


@given(scenario=affine_scenarios())
@settings(max_examples=20, deadline=None)
def test_racing_bucket_affine_threads_match_batch_when_no_overflow(scenario):
    criteria = Criteria(delta=0.9, threshold=50.0, epsilon=2.0)
    keys, values = _stream(
        scenario["stream_seed"], scenario["n"], scenario["num_keys"],
        criteria.threshold,
    )

    cqf = ConcurrentQuantileFilter(
        criteria, **scenario["geometry"],
        flush_items=scenario["flush_items"],
    )
    # Bucket-affine partition: each bucket's stream goes to one thread.
    _, buckets, _ = cqf._core._chunk_parts(keys, values)
    num_threads = scenario["num_threads"]
    owner = buckets % num_threads
    slices = [np.flatnonzero(owner == t) for t in range(num_threads)]

    barrier = threading.Barrier(num_threads)

    def run(idx):
        barrier.wait()
        with cqf.ingest(scenario["flush_items"]) as ingest:
            for key, value in zip(
                keys[idx].tolist(), values[idx].tolist()
            ):
                ingest.insert(key, value)

    threads = [
        threading.Thread(target=run, args=(idx,)) for idx in slices
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # Any per-thread serialization is a valid linearization here; use
    # the thread-concatenated order (per-bucket order == stream order).
    reference = BatchQuantileFilter(criteria, **scenario["geometry"])
    for idx in slices:
        if idx.size:
            reference.process(keys[idx], values[idx])

    _assert_same_state(cqf, reference)
    assert cqf.vague_inserts == 0  # the regime's precondition held


@given(scenario=scenarios(), num_threads=st.integers(min_value=2, max_value=3))
@settings(max_examples=15, deadline=None)
def test_witness_replay_reproduces_racing_threads_bit_exactly(
    scenario, num_threads
):
    criteria = scenario["criteria"]
    keys, values = _stream(
        scenario["stream_seed"], max(scenario["n"], num_threads), 30,
        criteria.threshold,
    )

    cqf = ConcurrentQuantileFilter(
        criteria, **scenario["geometry"],
        num_stripes=scenario["num_stripes"],
        flush_items=scenario["flush_items"],
        record_witness=True,
    )
    # Arbitrary (non-affine) round-robin partition: full general regime.
    slices = [
        np.arange(t, keys.shape[0], num_threads)
        for t in range(num_threads)
    ]
    barrier = threading.Barrier(num_threads)

    def run(idx):
        barrier.wait()
        ingest = cqf.ingest(scenario["flush_items"])
        ingest.insert_many(keys[idx], values[idx])
        ingest.flush()

    threads = [
        threading.Thread(target=run, args=(idx,)) for idx in slices
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    replayed = replay_witness(cqf.witness, cqf)
    _assert_same_state(cqf, replayed)
