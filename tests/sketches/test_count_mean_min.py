"""Tests for repro.sketches.count_mean_min."""

import numpy as np
import pytest

from repro.common.hashing import canonical_key
from repro.sketches.count_mean_min import CountMeanMinSketch
from repro.sketches.count_min import CountMinSketch


def k(i: int) -> int:
    return canonical_key(i)


class TestBasics:
    def test_empty_estimates_zero(self):
        sketch = CountMeanMinSketch(depth=3, width=64, seed=1)
        assert sketch.estimate(k(5)) == 0.0

    def test_single_key_exact_without_collisions(self):
        sketch = CountMeanMinSketch(depth=3, width=1024, seed=1)
        for _ in range(10):
            sketch.update(k(1), 2.0)
        # Correction subtracts ~0 noise when the key owns ~all the mass
        # spread across 1024 columns.
        assert sketch.estimate(k(1)) == pytest.approx(20.0, abs=0.5)

    def test_negative_weights(self):
        sketch = CountMeanMinSketch(depth=3, width=512, seed=2)
        sketch.update(k(3), -7.0)
        assert sketch.estimate(k(3)) == pytest.approx(-7.0, abs=0.5)

    def test_delete_restores(self):
        sketch = CountMeanMinSketch(depth=3, width=512, seed=3)
        sketch.update(k(9), 30.0)
        sketch.delete(k(9), 30.0)
        assert sketch.estimate(k(9)) == pytest.approx(0.0, abs=1e-6)

    def test_fused_matches_separate(self):
        fused = CountMeanMinSketch(depth=3, width=128, seed=4)
        separate = CountMeanMinSketch(depth=3, width=128, seed=4)
        for i in range(300):
            fused_est = fused.update_and_estimate(k(i % 19), 1.0)
            separate.update(k(i % 19), 1.0)
            assert fused_est == pytest.approx(separate.estimate(k(i % 19)))

    def test_clear(self):
        sketch = CountMeanMinSketch(depth=2, width=64, seed=5)
        sketch.update(k(1), 5.0)
        sketch.clear()
        assert sketch.estimate(k(1)) == 0.0

    def test_nbytes_includes_row_totals(self):
        sketch = CountMeanMinSketch(depth=3, width=100, counter_kind="int32")
        assert sketch.nbytes == 1200 + 24


class TestNoiseCorrection:
    def test_less_biased_than_cms_under_collisions(self):
        """The point of the correction: on a crowded sketch the mean
        absolute error for 1-count keys beats plain CMS."""
        cmm = CountMeanMinSketch(depth=3, width=16, seed=6)
        cms = CountMinSketch(depth=3, width=16, seed=6)
        for key in range(400):
            cmm.update(k(key), 1.0)
            cms.update(k(key), 1.0)
        cmm_err = np.mean([abs(cmm.estimate(k(key)) - 1.0) for key in range(400)])
        cms_err = np.mean([abs(cms.estimate(k(key)) - 1.0) for key in range(400)])
        assert cmm_err < cms_err

    def test_roughly_unbiased(self):
        estimates = []
        for seed in range(40):
            sketch = CountMeanMinSketch(depth=1, width=16, seed=seed)
            for key in range(100):
                sketch.update(k(key), 1.0)
            sketch.update(k(999), 25.0)
            estimates.append(sketch.estimate(k(999)))
        assert abs(np.mean(estimates) - 25.0) < 3.0

    def test_width_one_no_correction_blowup(self):
        sketch = CountMeanMinSketch(depth=2, width=1, seed=7)
        sketch.update(k(1), 5.0)
        assert np.isfinite(sketch.estimate(k(1)))


class TestAsVagueBackend:
    def test_registered_in_vague_part(self):
        from repro.core.vague import VaguePart

        part = VaguePart(depth=3, width=64, backend="cmm")
        assert isinstance(part.sketch, CountMeanMinSketch)

    def test_quantilefilter_runs_with_cmm(self):
        import random

        from repro.core.criteria import Criteria
        from repro.core.quantile_filter import QuantileFilter

        crit = Criteria(delta=0.9, threshold=100.0, epsilon=3.0)
        qf = QuantileFilter(crit, memory_bytes=16_384,
                            vague_backend="cmm", seed=1)
        rng = random.Random(8)
        for _ in range(5_000):
            key = rng.randrange(100)
            value = 500.0 if key < 5 else rng.uniform(0, 50)
            qf.insert(key, value)
        assert {0, 1, 2, 3, 4} <= qf.reported_keys
