"""Tests for repro.sketches.sampling."""

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.sketches.sampling import ReservoirSampler


class TestReservoirSampler:
    def test_fills_before_sampling(self):
        sampler = ReservoirSampler(capacity=5, seed=1)
        for i in range(5):
            sampler.offer(i)
        assert sorted(sampler.sample()) == [0, 1, 2, 3, 4]

    def test_capacity_respected(self):
        sampler = ReservoirSampler(capacity=10, seed=2)
        for i in range(1_000):
            sampler.offer(i)
        assert len(sampler) == 10
        assert sampler.seen == 1_000

    def test_uniformity(self):
        """Each item's inclusion probability should be capacity / n."""
        hits = np.zeros(100)
        for seed in range(400):
            sampler = ReservoirSampler(capacity=10, seed=seed)
            for i in range(100):
                sampler.offer(i)
            for item in sampler.sample():
                hits[item] += 1
        # Expected hits per item: 400 * 10/100 = 40.
        assert hits.min() > 15 and hits.max() < 75
        assert abs(hits.mean() - 40.0) < 2.0

    def test_reproducible_with_seed(self):
        a = ReservoirSampler(capacity=4, seed=9)
        b = ReservoirSampler(capacity=4, seed=9)
        for i in range(100):
            a.offer(i)
            b.offer(i)
        assert a.sample() == b.sample()

    def test_clear(self):
        sampler = ReservoirSampler(capacity=3, seed=1)
        sampler.offer("x")
        sampler.clear()
        assert len(sampler) == 0
        assert sampler.seen == 0

    def test_sample_returns_copy(self):
        sampler = ReservoirSampler(capacity=3, seed=1)
        sampler.offer("x")
        snapshot = sampler.sample()
        snapshot.append("tampered")
        assert len(sampler) == 1

    def test_nbytes(self):
        assert ReservoirSampler(capacity=100).nbytes == 1_600

    def test_invalid_capacity(self):
        with pytest.raises(ParameterError):
            ReservoirSampler(capacity=0)


class TestKeyedReservoirSampler:
    def _make(self, capacity=10, seed=1):
        from repro.sketches.sampling import KeyedReservoirSampler

        return KeyedReservoirSampler(capacity=capacity, seed=seed)

    def test_index_matches_items(self):
        import random

        sampler = self._make(capacity=20, seed=3)
        rng = random.Random(4)
        for _ in range(2_000):
            sampler.offer(rng.randrange(10), rng.random())
        # Rebuild the index from the raw items and compare.
        rebuilt = {}
        for key, value in sampler.sample():
            rebuilt.setdefault(key, []).append(value)
        for key in range(10):
            assert sorted(sampler.values_for(key)) == sorted(
                rebuilt.get(key, [])
            )

    def test_capacity_respected(self):
        sampler = self._make(capacity=5)
        for i in range(100):
            sampler.offer(i % 3, float(i))
        assert len(sampler) == 5
        assert sampler.seen == 100

    def test_values_for_unknown_key(self):
        sampler = self._make()
        assert sampler.values_for("none") == []

    def test_values_for_returns_copy(self):
        sampler = self._make()
        sampler.offer("k", 1.0)
        values = sampler.values_for("k")
        values.append(99.0)
        assert sampler.values_for("k") == [1.0]

    def test_uniformity_matches_plain_reservoir(self):
        """Same replacement policy: inclusion probability capacity/n."""
        import numpy as np

        hits = np.zeros(100)
        for seed in range(300):
            sampler = self._make(capacity=10, seed=seed)
            for i in range(100):
                sampler.offer(i, float(i))
            for key, _ in sampler.sample():
                hits[key] += 1
        assert abs(hits.mean() - 30.0) < 2.0

    def test_clear(self):
        sampler = self._make()
        sampler.offer("k", 1.0)
        sampler.clear()
        assert len(sampler) == 0
        assert sampler.values_for("k") == []

    def test_nbytes(self):
        assert self._make(capacity=100).nbytes == 1_600
