"""Tests for repro.sketches.count_sketch."""

import numpy as np
import pytest

from repro.common.hashing import canonical_key, canonical_keys
from repro.sketches.count_sketch import CountSketch


def k(i: int) -> int:
    return canonical_key(i)


class TestBasics:
    def test_empty_estimates_zero(self):
        sketch = CountSketch(depth=3, width=64, seed=1)
        assert sketch.estimate(k(5)) == 0.0

    def test_single_key_exact_when_no_collisions(self):
        sketch = CountSketch(depth=3, width=1024, seed=1)
        for _ in range(10):
            sketch.update(k(1), 2.0)
        assert sketch.estimate(k(1)) == pytest.approx(20.0)

    def test_negative_weights_supported(self):
        sketch = CountSketch(depth=3, width=1024, seed=1)
        sketch.update(k(1), -5.0)
        assert sketch.estimate(k(1)) == pytest.approx(-5.0)

    def test_mixed_weights_accumulate(self):
        sketch = CountSketch(depth=3, width=1024, seed=2)
        sketch.update(k(7), 19.0)
        sketch.update(k(7), -1.0)
        sketch.update(k(7), -1.0)
        assert sketch.estimate(k(7)) == pytest.approx(17.0)

    def test_delete_removes_mass(self):
        sketch = CountSketch(depth=3, width=1024, seed=3)
        sketch.update(k(9), 30.0)
        sketch.delete(k(9), 30.0)
        assert sketch.estimate(k(9)) == pytest.approx(0.0)

    def test_update_and_estimate_fused_matches_separate(self):
        fused = CountSketch(depth=3, width=256, seed=4)
        separate = CountSketch(depth=3, width=256, seed=4)
        for i in range(200):
            fused_est = fused.update_and_estimate(k(i % 17), 1.0)
            separate.update(k(i % 17), 1.0)
            assert fused_est == pytest.approx(separate.estimate(k(i % 17)))

    def test_clear(self):
        sketch = CountSketch(depth=2, width=64, seed=5)
        sketch.update(k(1), 10.0)
        sketch.clear()
        assert sketch.estimate(k(1)) == 0.0

    def test_nbytes(self):
        assert CountSketch(depth=3, width=100, counter_kind="int32").nbytes == 1200
        assert CountSketch(depth=3, width=100, counter_kind="int16").nbytes == 600


class TestAccuracy:
    def test_unbiasedness_over_seeds(self):
        """Theorem 1: E[estimate] equals the true Qweight."""
        true_weight = 40.0
        estimates = []
        for seed in range(60):
            sketch = CountSketch(depth=1, width=16, seed=seed)
            for key in range(64):
                sketch.update(k(key), 1.0)
            sketch.update(k(999), true_weight)
            estimates.append(sketch.estimate(k(999)))
        assert abs(np.mean(estimates) - true_weight) < 4.0

    def test_median_beats_single_row(self):
        """More rows shrink the collision error of a hot key's estimate."""
        errors = {1: [], 5: []}
        for seed in range(30):
            for depth in errors:
                sketch = CountSketch(depth=depth, width=32, seed=seed)
                for key in range(200):
                    sketch.update(k(key), 1.0)
                sketch.update(k(5000), 50.0)
                errors[depth].append(abs(sketch.estimate(k(5000)) - 50.0))
        assert np.mean(errors[5]) <= np.mean(errors[1]) + 1e-9

    def test_error_shrinks_with_width(self):
        errors = {}
        for width in (16, 1024):
            per_seed = []
            for seed in range(20):
                sketch = CountSketch(depth=3, width=width, seed=seed)
                for key in range(300):
                    sketch.update(k(key), 1.0)
                per_seed.append(abs(sketch.estimate(k(31))) - 1.0)
            errors[width] = np.mean(np.abs(per_seed))
        assert errors[1024] <= errors[16]


class TestBatch:
    def test_update_batch_matches_scalar(self):
        scalar = CountSketch(depth=3, width=128, counter_kind="float", seed=6)
        batch = CountSketch(depth=3, width=128, counter_kind="float", seed=6)
        raw_keys = np.arange(500, dtype=np.int64) % 37
        weights = np.where(raw_keys % 5 == 0, 19.0, -1.0)
        canon = canonical_keys(raw_keys)
        for key, weight in zip(canon.tolist(), weights.tolist()):
            scalar.update(int(key), weight)
        batch.update_batch(canon, weights)
        assert np.allclose(scalar.counters.data, batch.counters.data)

    def test_estimate_batch_matches_scalar(self):
        sketch = CountSketch(depth=3, width=128, counter_kind="float", seed=7)
        canon = canonical_keys(np.arange(100, dtype=np.int64))
        sketch.update_batch(canon, np.ones(100))
        batch_estimates = sketch.estimate_batch(canon)
        for key, estimate in zip(canon.tolist(), batch_estimates.tolist()):
            assert sketch.estimate(int(key)) == pytest.approx(estimate)
