"""Tests for repro.sketches.space_saving."""

import random

import pytest

from repro.common.errors import ParameterError
from repro.sketches.space_saving import SpaceSaving


class TestBasics:
    def test_tracks_up_to_capacity_without_eviction(self):
        ss = SpaceSaving(capacity=3)
        for key in ("a", "b", "c"):
            assert ss.update(key) is None
        assert len(ss) == 3
        assert ss.estimate("a") == 1

    def test_repeated_key_increments(self):
        ss = SpaceSaving(capacity=2)
        ss.update("a")
        ss.update("a")
        ss.update("a")
        assert ss.estimate("a") == 3
        assert ss.guaranteed_count("a") == 3

    def test_eviction_returns_victim(self):
        ss = SpaceSaving(capacity=2)
        ss.update("a")
        ss.update("a")
        ss.update("b")
        victim = ss.update("c")
        assert victim == "b"
        assert "c" in ss and "b" not in ss

    def test_replacement_inherits_count_as_error(self):
        ss = SpaceSaving(capacity=1)
        for _ in range(5):
            ss.update("a")
        ss.update("z")
        # z inherits a's count 5 plus its own 1; error bound is 5.
        assert ss.estimate("z") == 6
        assert ss.guaranteed_count("z") == 1

    def test_overestimate_invariant(self):
        """estimate >= true frequency >= guaranteed_count, always."""
        rng = random.Random(1)
        ss = SpaceSaving(capacity=10)
        truth = {}
        for _ in range(2_000):
            key = rng.randrange(50)
            ss.update(key)
            truth[key] = truth.get(key, 0) + 1
        for key in ss.keys():
            assert ss.estimate(key) >= truth.get(key, 0)
            assert ss.guaranteed_count(key) <= truth.get(key, 0)

    def test_finds_true_heavy_hitters(self):
        rng = random.Random(2)
        ss = SpaceSaving(capacity=20)
        for _ in range(10_000):
            # Keys 0 and 1 each take ~25 % of the stream.
            roll = rng.random()
            if roll < 0.25:
                ss.update(0)
            elif roll < 0.5:
                ss.update(1)
            else:
                ss.update(rng.randrange(2, 2_000))
        top_keys = [key for key, _ in ss.top(2)]
        assert set(top_keys) == {0, 1}

    def test_top_k_sorted_descending(self):
        ss = SpaceSaving(capacity=5)
        for key, count in (("a", 5), ("b", 3), ("c", 9)):
            ss.update(key, count)
        top = ss.top()
        counts = [count for _, count in top]
        assert counts == sorted(counts, reverse=True)

    def test_weighted_update(self):
        ss = SpaceSaving(capacity=2)
        ss.update("a", 10)
        assert ss.estimate("a") == 10

    def test_untracked_estimates_zero(self):
        ss = SpaceSaving(capacity=2)
        ss.update("a")
        assert ss.estimate("nope") == 0
        assert ss.guaranteed_count("nope") == 0

    def test_clear(self):
        ss = SpaceSaving(capacity=2)
        ss.update("a")
        ss.clear()
        assert len(ss) == 0
        assert ss.estimate("a") == 0

    def test_nbytes_fixed_by_capacity(self):
        assert SpaceSaving(capacity=100).nbytes == 1_600

    def test_invalid_capacity(self):
        with pytest.raises(ParameterError):
            SpaceSaving(capacity=0)

    def test_min_cache_correct_after_mixed_ops(self):
        """Regression: the lazy min cache must not return a stale key."""
        ss = SpaceSaving(capacity=3)
        ss.update("a")
        ss.update("b")
        ss.update("c")
        ss.update("a")  # a=2, b=1, c=1
        victim = ss.update("d")  # must evict b or c, never a
        assert victim in ("b", "c")
        ss.update("d")
        ss.update("d")
        victim = ss.update("e")  # now min is the remaining 1-count key
        assert ss.estimate("a") >= 2
