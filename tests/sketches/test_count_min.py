"""Tests for repro.sketches.count_min."""

import numpy as np
import pytest

from repro.common.hashing import canonical_key, canonical_keys
from repro.sketches.count_min import CountMinSketch


def k(i: int) -> int:
    return canonical_key(i)


class TestBasics:
    def test_empty_estimates_zero(self):
        sketch = CountMinSketch(depth=3, width=64, seed=1)
        assert sketch.estimate(k(5)) == 0.0

    def test_single_key_exact_without_collisions(self):
        sketch = CountMinSketch(depth=3, width=1024, seed=1)
        for _ in range(7):
            sketch.update(k(1), 3.0)
        assert sketch.estimate(k(1)) == pytest.approx(21.0)

    def test_never_underestimates_positive_streams(self):
        """The classic CMS guarantee for non-negative updates."""
        sketch = CountMinSketch(depth=3, width=16, seed=2)
        truth = {}
        for i in range(500):
            key = i % 40
            sketch.update(k(key), 1.0)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(k(key)) >= count

    def test_negative_weights_allowed(self):
        sketch = CountMinSketch(depth=3, width=512, seed=3)
        sketch.update(k(5), -4.0)
        assert sketch.estimate(k(5)) == pytest.approx(-4.0)

    def test_delete(self):
        sketch = CountMinSketch(depth=2, width=512, seed=4)
        sketch.update(k(5), 10.0)
        sketch.delete(k(5), 10.0)
        assert sketch.estimate(k(5)) == pytest.approx(0.0)

    def test_fused_update_matches_separate(self):
        fused = CountMinSketch(depth=3, width=128, seed=5)
        separate = CountMinSketch(depth=3, width=128, seed=5)
        for i in range(300):
            fused_est = fused.update_and_estimate(k(i % 23), 1.0)
            separate.update(k(i % 23), 1.0)
            assert fused_est == pytest.approx(separate.estimate(k(i % 23)))

    def test_clear_and_nbytes(self):
        sketch = CountMinSketch(depth=2, width=100, counter_kind="int16")
        sketch.update(k(1), 5.0)
        sketch.clear()
        assert sketch.estimate(k(1)) == 0.0
        assert sketch.nbytes == 400


class TestBatch:
    def test_update_batch_matches_scalar(self):
        scalar = CountMinSketch(depth=3, width=64, counter_kind="float", seed=6)
        batch = CountMinSketch(depth=3, width=64, counter_kind="float", seed=6)
        raw = np.arange(300, dtype=np.int64) % 29
        weights = np.ones(300)
        canon = canonical_keys(raw)
        for key in canon.tolist():
            scalar.update(int(key), 1.0)
        batch.update_batch(canon, weights)
        assert np.allclose(scalar.counters.data, batch.counters.data)

    def test_estimate_batch_matches_scalar(self):
        sketch = CountMinSketch(depth=3, width=64, counter_kind="float", seed=7)
        canon = canonical_keys(np.arange(50, dtype=np.int64))
        sketch.update_batch(canon, np.ones(50))
        estimates = sketch.estimate_batch(canon)
        for key, estimate in zip(canon.tolist(), estimates.tolist()):
            assert sketch.estimate(int(key)) == pytest.approx(estimate)


class TestBiasComparedToCS:
    def test_cms_biased_up_for_frequencies(self):
        """Collisions only ever add in CMS — the bias that makes the CS
        vague part more accurate for Qweights (paper Choice 2)."""
        sketch = CountMinSketch(depth=3, width=8, seed=8)
        for key in range(200):
            sketch.update(k(key), 1.0)
        overestimates = sum(
            1 for key in range(200) if sketch.estimate(k(key)) > 1.0
        )
        assert overestimates > 150
