"""Tests for repro.detection.calibration."""

import random

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.detection.calibration import (
    AutoThresholdCalibrator,
    AutoThresholdFilter,
)


class TestCalibrator:
    def test_no_proposal_before_min_samples(self):
        calibrator = AutoThresholdCalibrator(min_samples=100,
                                             recalibrate_every=10)
        for i in range(99):
            assert calibrator.observe(float(i)) is None
        assert calibrator.current_threshold() is None

    def test_proposal_matches_target_fraction(self):
        rng = random.Random(1)
        calibrator = AutoThresholdCalibrator(
            target_abnormal_fraction=0.05,
            recalibrate_every=1_000,
            min_samples=1_000,
            seed=2,
        )
        values = [rng.uniform(0, 100) for _ in range(20_000)]
        proposals = [calibrator.observe(v) for v in values]
        last = [p for p in proposals if p is not None][-1]
        # ~5 % of a U(0, 100) stream sits above ~95.
        assert last == pytest.approx(95.0, abs=3.0)

    def test_proposal_cadence(self):
        calibrator = AutoThresholdCalibrator(
            recalibrate_every=500, min_samples=100
        )
        proposals = sum(
            1 for i in range(2_000)
            if calibrator.observe(float(i % 50)) is not None
        )
        assert proposals == 4

    def test_tracks_drifting_distribution(self):
        calibrator = AutoThresholdCalibrator(
            recalibrate_every=500, min_samples=100, seed=3
        )
        rng = random.Random(4)
        for _ in range(2_000):
            calibrator.observe(rng.uniform(0, 10))
        low_threshold = calibrator.current_threshold()
        for _ in range(20_000):
            calibrator.observe(rng.uniform(0, 1_000))
        assert calibrator.current_threshold() > low_threshold * 5

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            AutoThresholdCalibrator(target_abnormal_fraction=0.0)
        with pytest.raises(ParameterError):
            AutoThresholdCalibrator(recalibrate_every=0)
        with pytest.raises(ParameterError):
            AutoThresholdCalibrator(min_samples=0)


class TestAutoThresholdFilter:
    BASE = Criteria(delta=0.9, threshold=1.0, epsilon=3.0)  # bad bootstrap T

    def test_threshold_converges_and_detects(self):
        """Bootstrap T is absurdly low; the calibrator must find the
        real tail and the filter must then detect only the hot keys."""
        rng = np.random.default_rng(5)
        auto = AutoThresholdFilter(
            self.BASE,
            memory_bytes=64 * 1024,
            calibrator=AutoThresholdCalibrator(
                target_abnormal_fraction=0.05,
                recalibrate_every=2_000,
                min_samples=1_000,
            ),
            seed=1,
        )
        for _ in range(30_000):
            key = int(rng.integers(0, 200))
            value = 500.0 if key < 5 else float(rng.uniform(0, 100))
            auto.insert(key, value)
        # Calibrated T sits between the cold bulk and the hot values.
        assert 90.0 < auto.current_threshold < 500.0
        assert auto.threshold_changes >= 1
        # After calibration, the hot keys dominate new reports.
        late_reports = set()
        for _ in range(10_000):
            key = int(rng.integers(0, 200))
            value = 500.0 if key < 5 else float(rng.uniform(0, 100))
            report = auto.insert(key, value)
            if report is not None:
                late_reports.add(report.key)
        assert {0, 1, 2, 3, 4} <= late_reports
        assert all(k < 5 for k in late_reports)

    def test_large_jump_triggers_reset(self):
        auto = AutoThresholdFilter(
            Criteria(delta=0.9, threshold=10.0, epsilon=3.0),
            memory_bytes=16 * 1024,
            calibrator=AutoThresholdCalibrator(
                recalibrate_every=1_000, min_samples=500
            ),
            reset_on_relative_change=0.5,
        )
        rng = random.Random(6)
        for _ in range(3_000):
            auto.insert(rng.randrange(50), rng.uniform(500, 1_000))
        assert auto.structure_resets >= 1

    def test_resets_disabled(self):
        auto = AutoThresholdFilter(
            Criteria(delta=0.9, threshold=10.0, epsilon=3.0),
            memory_bytes=16 * 1024,
            calibrator=AutoThresholdCalibrator(
                recalibrate_every=1_000, min_samples=500
            ),
            reset_on_relative_change=None,
        )
        rng = random.Random(7)
        for _ in range(3_000):
            auto.insert(rng.randrange(50), rng.uniform(500, 1_000))
        assert auto.structure_resets == 0
        assert auto.threshold_changes >= 1

    def test_invalid_reset_parameter(self):
        with pytest.raises(ParameterError):
            AutoThresholdFilter(self.BASE, 8_192, reset_on_relative_change=0.0)

    def test_nbytes_includes_calibrator(self):
        auto = AutoThresholdFilter(self.BASE, 8_192)
        assert auto.nbytes > auto.filter.nbytes


class TestTopCandidates:
    def test_ranking_and_limit(self):
        crit = Criteria(delta=0.95, threshold=100.0, epsilon=1e9)
        from repro.core.quantile_filter import QuantileFilter

        qf = QuantileFilter(crit, memory_bytes=64 * 1024, seed=1)
        for count, key in ((5, "a"), (2, "b"), (9, "c")):
            for _ in range(count):
                qf.insert(key, 500.0)  # +19 each
        top = qf.top_candidates(k=2)
        assert len(top) == 2
        qweights = [entry[2] for entry in top]
        assert qweights == sorted(qweights, reverse=True)
        assert qweights[0] == pytest.approx(9 * 19.0)

    def test_invalid_k(self):
        crit = Criteria(delta=0.95, threshold=100.0)
        from repro.core.quantile_filter import QuantileFilter

        qf = QuantileFilter(crit, memory_bytes=8_192)
        with pytest.raises(ParameterError):
            qf.top_candidates(k=0)

    def test_empty_filter(self):
        crit = Criteria(delta=0.95, threshold=100.0)
        from repro.core.quantile_filter import QuantileFilter

        qf = QuantileFilter(crit, memory_bytes=8_192)
        assert qf.top_candidates(k=3) == []
