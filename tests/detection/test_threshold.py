"""Tests for repro.detection.threshold.

Estimator accuracy against numpy's exact quantiles, the controller's
guard chain (warmup / dwell / deadband / horizon), and the control
loop's binding to every retargetable engine.
"""

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.core.vectorized import BatchQuantileFilter
from repro.detection.threshold import (
    ESTIMATOR_BACKENDS,
    KLLQuantileEstimator,
    P2QuantileEstimator,
    ThresholdControlLoop,
    ThresholdController,
    make_estimator,
)

CRIT = Criteria(delta=0.5, threshold=100.0, epsilon=2.0)


class TestP2Estimator:
    def test_empty_is_nan(self):
        est = P2QuantileEstimator(0.95)
        assert est.quantile() != est.quantile()  # NaN
        assert est.count == 0

    def test_small_samples_exact(self):
        est = P2QuantileEstimator(0.5)
        for v in [10.0, 30.0, 20.0]:
            est.update(v)
        assert est.quantile() == 20.0

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.95, 0.99])
    def test_tracks_uniform(self, q):
        rng = np.random.default_rng(7)
        values = rng.uniform(0.0, 1000.0, size=20_000)
        est = P2QuantileEstimator(q)
        for v in values.tolist():
            est.update(v)
        exact = float(np.quantile(values, q))
        assert est.quantile() == pytest.approx(exact, rel=0.05)

    def test_tracks_lognormal(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(3.0, 1.0, size=20_000)
        est = P2QuantileEstimator(0.95)
        for v in values.tolist():
            est.update(v)
        exact = float(np.quantile(values, 0.95))
        assert est.quantile() == pytest.approx(exact, rel=0.15)

    def test_clear(self):
        est = P2QuantileEstimator(0.5)
        for v in range(100):
            est.update(float(v))
        est.clear()
        assert est.count == 0
        assert est.quantile() != est.quantile()

    def test_constant_space(self):
        est = P2QuantileEstimator(0.9)
        before = est.nbytes
        for v in range(10_000):
            est.update(float(v % 97))
        assert est.nbytes == before

    def test_invalid_quantile(self):
        for q in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ParameterError):
                P2QuantileEstimator(q)


class TestKLLEstimator:
    def test_empty_is_nan(self):
        est = KLLQuantileEstimator(0.95)
        assert est.quantile() != est.quantile()

    def test_tracks_uniform(self):
        rng = np.random.default_rng(11)
        values = rng.uniform(0.0, 1000.0, size=20_000)
        est = KLLQuantileEstimator(0.95, seed=1)
        for v in values.tolist():
            est.update(v)
        exact = float(np.quantile(values, 0.95))
        assert est.quantile() == pytest.approx(exact, rel=0.05)

    def test_clear_and_merge(self):
        a = KLLQuantileEstimator(0.5, seed=0)
        b = KLLQuantileEstimator(0.5, seed=0)
        for v in range(1_000):
            a.update(float(v))
            b.update(float(v))
        a.merge(b)
        assert a.count == 2_000
        a.clear()
        assert a.count == 0


class TestFactory:
    @pytest.mark.parametrize("backend", ESTIMATOR_BACKENDS)
    def test_builds_each_backend(self, backend):
        est = make_estimator(backend, 0.9, seed=2)
        est.update(1.0)
        assert est.count == 1

    def test_unknown_backend(self):
        with pytest.raises(ParameterError):
            make_estimator("reservoir", 0.9)


class TestControllerGuards:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            ThresholdController(100.0, 1.5)
        with pytest.raises(ParameterError):
            ThresholdController(100.0, 0.9, deadband=-0.1)
        with pytest.raises(ParameterError):
            ThresholdController(100.0, 0.9, min_dwell_items=0)
        with pytest.raises(ParameterError):
            ThresholdController(100.0, 0.9, warmup_items=0)
        with pytest.raises(ParameterError):
            ThresholdController(100.0, 0.9, warmup_items=100,
                                horizon_items=50)

    def test_warmup_holds_threshold(self):
        controller = ThresholdController(
            100.0, 0.5, warmup_items=50, min_dwell_items=1
        )
        for v in range(49):
            decision = controller.observe(float(v))
            assert not decision.retargeted
            assert decision.reason in ("warmup", "empty")
        assert controller.threshold == 100.0

    def test_retargets_after_warmup(self):
        controller = ThresholdController(
            100.0, 0.5, warmup_items=10, min_dwell_items=1, deadband=0.01
        )
        decision = None
        for v in range(50):
            decision = controller.observe(float(v))
        assert controller.retargets >= 1
        assert controller.threshold != 100.0
        # Median of 0..49 is ~24.5; P2 should land near it.
        assert 15.0 <= controller.threshold <= 35.0
        assert decision.items_seen == 50

    def test_dwell_bounds_retarget_rate(self):
        controller = ThresholdController(
            1000.0, 0.5, warmup_items=10, min_dwell_items=100, deadband=0.0
        )
        for v in range(1_000):
            controller.observe(float(v % 50))
        # 1000 observations / dwell 100 => at most 10 moves.
        assert controller.retargets <= 10
        dwell_reasons = [
            controller.observe(float(v % 50)).reason for v in range(50)
        ]
        assert "dwell" in dwell_reasons

    def test_deadband_suppresses_jitter(self):
        controller = ThresholdController(
            50.0, 0.5, warmup_items=10, min_dwell_items=1, deadband=0.10
        )
        # Stationary stream with median ~50: every estimate stays
        # within 10 % of the standing threshold, so T never moves.
        rng = np.random.default_rng(5)
        for v in rng.uniform(49.0, 51.0, size=500).tolist():
            decision = controller.observe(v)
        assert controller.retargets == 0
        assert decision.reason == "deadband"

    def test_zero_deadband_chases_estimate(self):
        controller = ThresholdController(
            50.0, 0.5, warmup_items=10, min_dwell_items=1, deadband=0.0
        )
        for v in [49.0, 51.0] * 50:
            controller.observe(v)
        assert controller.retargets >= 1

    def test_horizon_restarts_estimator(self):
        controller = ThresholdController(
            100.0, 0.5, warmup_items=10, min_dwell_items=1,
            horizon_items=100,
        )
        for v in range(1_000):
            controller.observe(float(v))
        assert controller.restarts == 9
        # After restarts the estimate reflects recent values only.
        assert controller.threshold > 700.0

    def test_horizon_tracks_regime_change(self):
        bounded = ThresholdController(
            10.0, 0.5, warmup_items=20, min_dwell_items=1,
            horizon_items=200, deadband=0.01,
        )
        cumulative = ThresholdController(
            10.0, 0.5, warmup_items=20, min_dwell_items=1, deadband=0.01,
        )
        stream = [10.0] * 1_000 + [1_000.0] * 1_000
        for v in stream:
            bounded.observe(v)
            cumulative.observe(v)
        # The bounded controller converges to the new regime's median;
        # the cumulative one is stuck between the regimes.
        assert bounded.threshold == pytest.approx(1_000.0, rel=0.05)
        assert cumulative.threshold < 900.0

    def test_observe_many_matches_observe_loop(self):
        rng = np.random.default_rng(9)
        values = rng.uniform(0.0, 100.0, size=2_000)
        one = ThresholdController(50.0, 0.9, warmup_items=100,
                                  min_dwell_items=100)
        many = ThresholdController(50.0, 0.9, warmup_items=100,
                                   min_dwell_items=100)
        for v in values.tolist():
            one.observe(v)
        for chunk in np.split(values, 20):
            many.observe_many(chunk)
        # Same estimator state => same final estimate; decision cadence
        # differs (one per chunk), so only the end state must agree.
        assert many.estimator.quantile() == one.estimator.quantile()
        assert many.items_seen == one.items_seen

    def test_custom_estimator(self):
        est = P2QuantileEstimator(0.75)
        controller = ThresholdController(
            10.0, 0.75, estimator=est, warmup_items=10, min_dwell_items=1
        )
        assert controller.backend == "custom"
        for v in range(100):
            controller.observe(float(v))
        assert controller.estimator is est

    def test_target_rate(self):
        controller = ThresholdController(10.0, 0.95)
        assert controller.target_rate == pytest.approx(0.05)


class TestControlLoop:
    def make_filter(self, threshold=1_000.0):
        return QuantileFilter(
            Criteria(delta=0.5, threshold=threshold, epsilon=2.0),
            num_buckets=8, vague_width=16,
        )

    def test_rejects_target_without_retarget(self):
        with pytest.raises(ParameterError):
            ThresholdControlLoop(ThresholdController(10.0, 0.5), object())

    def test_rejects_bad_stride(self):
        with pytest.raises(ParameterError):
            ThresholdControlLoop(
                ThresholdController(10.0, 0.5), self.make_filter(),
                sample_every=0,
            )

    def test_applies_retargets_to_filter(self):
        qf = self.make_filter()
        loop = ThresholdControlLoop(
            ThresholdController(1_000.0, 0.5, warmup_items=16,
                                min_dwell_items=16),
            qf,
        )
        for i in range(200):
            qf.insert("k", float(i % 10))
            loop.observe(float(i % 10))
        assert qf.retargets >= 1
        assert qf.criteria.threshold < 1_000.0
        assert qf.criteria.threshold == loop.threshold
        assert loop.trajectory
        items_seen, old, new = loop.trajectory[0]
        assert old == 1_000.0 and new == loop.trajectory[0][2]

    def test_batch_engine_retargets_at_chunk_boundary(self):
        batch = BatchQuantileFilter(
            Criteria(delta=0.5, threshold=1_000.0, epsilon=2.0),
            num_buckets=8, vague_width=16,
        )
        loop = ThresholdControlLoop(
            ThresholdController(1_000.0, 0.5, warmup_items=32,
                                min_dwell_items=32),
            batch,
        )
        keys = np.zeros(64, dtype=np.int64)
        values = np.full(64, 5.0)
        for _ in range(4):
            batch.process(keys, values)
            loop.observe_many(values)
        assert batch.retargets >= 1
        assert batch.criteria.threshold == pytest.approx(5.0)

    def test_stride_subsampling_consumes_every_nth(self):
        controller = ThresholdController(10.0, 0.5, warmup_items=1,
                                         min_dwell_items=10_000)
        loop = ThresholdControlLoop(controller, self.make_filter(),
                                    sample_every=4)
        for i in range(100):
            loop.observe(float(i))
        assert controller.items_seen == 25

    def test_stride_batches_match_stride_singles(self):
        values = np.arange(1_000, dtype=np.float64)
        single = ThresholdControlLoop(
            ThresholdController(10.0, 0.5, warmup_items=1,
                                min_dwell_items=10_000),
            self.make_filter(), sample_every=7,
        )
        batched = ThresholdControlLoop(
            ThresholdController(10.0, 0.5, warmup_items=1,
                                min_dwell_items=10_000),
            self.make_filter(), sample_every=7,
        )
        for v in values.tolist():
            single.observe(v)
        # Ragged chunking exercises the stride-phase carry.
        at = 0
        for size in (13, 1, 256, 64, 666):
            batched.observe_many(values[at:at + size])
            at += size
        assert at == len(values)
        assert (batched.controller.items_seen
                == single.controller.items_seen)
        assert (batched.controller.estimator.quantile()
                == single.controller.estimator.quantile())

    def test_observe_many_empty_stride_returns_none(self):
        loop = ThresholdControlLoop(
            ThresholdController(10.0, 0.5), self.make_filter(),
            sample_every=64,
        )
        assert loop.observe_many(np.arange(3, dtype=np.float64)) is None
