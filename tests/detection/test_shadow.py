"""Shadow accuracy estimator: sampling, scoring, live CI acceptance."""

import numpy as np
import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.detection.ground_truth import compute_ground_truth
from repro.detection.shadow import (
    ShadowAccuracyEstimator,
    wilson_interval,
)
from repro.metrics.accuracy import score_sets

CRIT = Criteria(delta=0.9, threshold=100.0, epsilon=5.0)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(80, 100)
        assert lo < 0.8 < hi

    def test_stays_inside_unit_interval(self):
        assert wilson_interval(0, 50)[0] == 0.0
        assert wilson_interval(50, 50)[1] == 1.0

    def test_does_not_collapse_at_extremes(self):
        lo, hi = wilson_interval(10, 10)
        assert hi - lo > 0.0
        lo, hi = wilson_interval(0, 10)
        assert hi - lo > 0.0

    def test_narrows_with_more_data(self):
        narrow = wilson_interval(800, 1_000)
        wide = wilson_interval(8, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_empty_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_invalid_counts_raise(self):
        with pytest.raises(ParameterError):
            wilson_interval(5, 3)
        with pytest.raises(ParameterError):
            wilson_interval(-1, 3)


class TestSampling:
    def test_invalid_rate_raises(self):
        with pytest.raises(ParameterError):
            ShadowAccuracyEstimator(CRIT, sample_rate=0)

    def test_rate_one_samples_everything(self):
        est = ShadowAccuracyEstimator(CRIT, sample_rate=1)
        keys = np.arange(200)
        assert est.sample_mask(keys).all()
        assert all(est.is_sampled(int(k)) for k in keys)

    def test_scalar_and_vectorized_predicates_agree(self):
        est = ShadowAccuracyEstimator(CRIT, sample_rate=8, seed=5)
        keys = np.arange(2_000)
        mask = est.sample_mask(keys)
        scalar = np.array([est.is_sampled(int(k)) for k in keys])
        np.testing.assert_array_equal(mask, scalar)

    def test_sampled_fraction_near_rate(self):
        est = ShadowAccuracyEstimator(CRIT, sample_rate=16, seed=1)
        mask = est.sample_mask(np.arange(50_000))
        assert mask.mean() == pytest.approx(1 / 16, rel=0.15)

    def test_seed_varies_the_slice(self):
        keys = np.arange(5_000)
        a = ShadowAccuracyEstimator(CRIT, sample_rate=4, seed=0)
        b = ShadowAccuracyEstimator(CRIT, sample_rate=4, seed=1)
        assert (a.sample_mask(keys) != b.sample_mask(keys)).any()

    def test_membership_is_deterministic(self):
        est = ShadowAccuracyEstimator(CRIT, sample_rate=4, seed=2)
        again = ShadowAccuracyEstimator(CRIT, sample_rate=4, seed=2)
        keys = np.arange(1_000)
        np.testing.assert_array_equal(
            est.sample_mask(keys), again.sample_mask(keys)
        )


class TestObservation:
    def test_scalar_and_batch_observation_agree(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 50, size=3_000)
        values = rng.lognormal(4.5, 0.8, size=3_000)
        scalar = ShadowAccuracyEstimator(CRIT, sample_rate=4, seed=0)
        batch = ShadowAccuracyEstimator(CRIT, sample_rate=4, seed=0)
        for k, v in zip(keys, values):
            scalar.observe(int(k), float(v))
        batch.observe_batch(keys, values)
        assert scalar.sampled_items == batch.sampled_items
        assert scalar.true_outstanding == batch.true_outstanding

    def test_length_mismatch_raises(self):
        est = ShadowAccuracyEstimator(CRIT)
        with pytest.raises(ParameterError):
            est.observe_batch(np.arange(3), np.zeros(4))

    def test_memory_scales_with_slice_not_stream(self):
        full = ShadowAccuracyEstimator(CRIT, sample_rate=1)
        sliced = ShadowAccuracyEstimator(CRIT, sample_rate=16)
        keys = np.arange(8_000)
        values = np.full(8_000, 10.0)
        full.observe_batch(keys, values)
        sliced.observe_batch(keys, values)
        assert sliced.nbytes < full.nbytes / 8


class TestScoring:
    def test_perfect_filter_scores_one(self):
        est = ShadowAccuracyEstimator(CRIT, sample_rate=1)
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 30, size=5_000)
        values = rng.lognormal(4.8, 0.7, size=5_000)
        est.observe_batch(keys, values)
        truth = compute_ground_truth(
            zip((int(k) for k in keys), (float(v) for v in values)), CRIT
        )
        score = est.score(truth)
        assert score.precision == 1.0 and score.recall == 1.0
        assert score.false_positives == 0 and score.false_negatives == 0

    def test_reports_outside_slice_are_ignored(self):
        est = ShadowAccuracyEstimator(CRIT, sample_rate=8, seed=0)
        unsampled = next(
            k for k in range(10_000) if not est.is_sampled(k)
        )
        score = est.score({unsampled})
        assert score.false_positives == 0

    def test_score_dict_round_trips(self):
        est = ShadowAccuracyEstimator(CRIT, sample_rate=1)
        est.observe("k", 500.0)
        est.observe("k", 500.0)
        payload = est.score({"k"}).as_dict()
        assert set(payload) >= {
            "precision", "recall", "precision_ci", "recall_ci",
            "tp", "fp", "fn", "sampled_keys",
        }

    def test_fig4_style_live_estimate_within_ci_of_offline_truth(self):
        """Acceptance: shadow precision/recall vs offline ground truth.

        Runs a real BatchQuantileFilter over a fig4-style workload; the
        exact offline precision/recall (full ground truth vs the full
        report set) must fall inside the shadow estimator's reported
        Wilson interval, padded only by the score's own granularity.
        """
        from repro.core.vectorized import BatchQuantileFilter
        from repro.experiments.config import build_trace, default_criteria_for

        trace = build_trace("internet", scale=30_000, seed=4)
        criteria = default_criteria_for("internet")
        filt = BatchQuantileFilter(criteria, memory_bytes=48 * 1024, seed=4)
        filt.process(trace.keys, trace.values)

        est = ShadowAccuracyEstimator(criteria, sample_rate=8, seed=4)
        est.observe_batch(trace.keys, trace.values)
        shadow = est.score(filt.reported_keys)

        truth = compute_ground_truth(
            zip((int(k) for k in trace.keys),
                (float(v) for v in trace.values)),
            criteria,
        )
        offline = score_sets(filt.reported_keys, truth)

        assert shadow.sampled_keys > 0
        pad = 0.05  # sampling slack beyond the 95 % interval
        assert (
            shadow.precision_low - pad
            <= offline.precision
            <= shadow.precision_high + pad
        )
        assert (
            shadow.recall_low - pad
            <= offline.recall
            <= shadow.recall_high + pad
        )
