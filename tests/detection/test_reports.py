"""Tests for repro.detection.reports."""

import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter, Report
from repro.detection.reports import AlertPolicy, KeyReportSummary, ReportLog
from repro.observability.provenance import ReportProvenance


def make_report(key="k", qweight=50.0, source="candidate", index=0) -> Report:
    return Report(key=key, qweight=qweight, source=source, item_index=index)


class TestReportLog:
    def test_records_counts_and_positions(self):
        log = ReportLog()
        log.record(make_report(index=10))
        log.record(make_report(index=30))
        summary = log.summary("k")
        assert summary.count == 2
        assert summary.first_item_index == 10
        assert summary.last_item_index == 30
        assert log.total_reports == 2

    def test_mean_gap(self):
        log = ReportLog()
        for index in (0, 10, 20):
            log.record(make_report(index=index))
        assert log.summary("k").mean_gap() == pytest.approx(10.0)

    def test_mean_gap_single_report(self):
        log = ReportLog()
        log.record(make_report(index=5))
        assert log.summary("k").mean_gap() is None

    def test_sources_tallied(self):
        log = ReportLog()
        log.record(make_report(source="candidate"))
        log.record(make_report(source="vague", index=1))
        log.record(make_report(source="candidate", index=2))
        assert log.summary("k").sources == {"candidate": 2, "vague": 1}

    def test_keys_ordered_by_count(self):
        log = ReportLog()
        for index in range(3):
            log.record(make_report(key="busy", index=index))
        log.record(make_report(key="quiet", index=9))
        assert log.keys() == ["busy", "quiet"]
        assert [s.key for s in log.top(1)] == ["busy"]

    def test_unknown_key(self):
        assert ReportLog().summary("nope") is None

    def test_clear(self):
        log = ReportLog()
        log.record(make_report())
        log.clear()
        assert len(log) == 0 and log.total_reports == 0

    def test_clear_resets_truncation_counter(self):
        log = ReportLog(max_reports_per_key=1)
        log.record(make_report(index=0))
        log.record(make_report(index=1))
        assert log.total_truncated == 1
        log.clear()
        assert log.total_truncated == 0

    def test_history_bounded_by_max_reports_per_key(self):
        log = ReportLog(max_reports_per_key=3)
        for index in range(10):
            log.record(make_report(index=index))
        summary = log.summary("k")
        # Aggregates never truncate; only the per-report ring does.
        assert summary.count == 10
        assert [r.item_index for r in summary.history] == [7, 8, 9]
        assert summary.truncated == 7
        assert log.total_truncated == 7

    def test_truncation_counted_per_key(self):
        log = ReportLog(max_reports_per_key=2)
        for index in range(5):
            log.record(make_report(key="busy", index=index))
        log.record(make_report(key="quiet", index=9))
        assert log.summary("busy").truncated == 3
        assert log.summary("quiet").truncated == 0
        assert log.total_truncated == 3

    def test_unbounded_history_when_none(self):
        log = ReportLog(max_reports_per_key=None)
        for index in range(100):
            log.record(make_report(index=index))
        summary = log.summary("k")
        assert len(summary.history) == 100
        assert summary.truncated == 0
        assert log.total_truncated == 0

    def test_invalid_max_reports_per_key(self):
        with pytest.raises(ParameterError):
            ReportLog(max_reports_per_key=0)

    def test_last_provenance_folded_in(self):
        prov = ReportProvenance(
            part="candidate", bucket=3, fingerprint=77, qweight=50.0,
            threshold=10.0, bucket_occupancy=1, replacements=0,
            items_since_reset=20, resets=0,
        )
        log = ReportLog()
        log.record(make_report(index=0))
        assert log.summary("k").last_provenance is None
        log.record(
            Report(key="k", qweight=50.0, source="candidate",
                   item_index=1, provenance=prov)
        )
        assert log.summary("k").last_provenance is prov
        # A later provenance-free report keeps the last known context.
        log.record(make_report(index=2))
        assert log.summary("k").last_provenance is prov

    def test_wired_to_filter(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=2.0)
        log = ReportLog()
        qf = QuantileFilter(crit, memory_bytes=8_192, on_report=log.record)
        for _ in range(30):
            qf.insert("hot", 100.0)
        assert log.total_reports == qf.report_count
        assert log.summary("hot").count == qf.report_count


class TestAlertPolicy:
    def test_first_report_always_alerts(self):
        policy = AlertPolicy(cooldown_items=100)
        assert policy.should_alert(make_report(index=0))

    def test_cooldown_suppresses(self):
        policy = AlertPolicy(cooldown_items=100)
        assert policy.should_alert(make_report(index=0))
        assert not policy.should_alert(make_report(index=50))
        assert policy.should_alert(make_report(index=150))
        assert policy.alerts_emitted == 2
        assert policy.alerts_suppressed == 1

    def test_per_key_cooldowns_independent(self):
        policy = AlertPolicy(cooldown_items=100)
        assert policy.should_alert(make_report(key="a", index=0))
        assert policy.should_alert(make_report(key="b", index=1))

    def test_zero_cooldown_passes_everything(self):
        policy = AlertPolicy(cooldown_items=0)
        assert all(
            policy.should_alert(make_report(index=i)) for i in range(5)
        )

    def test_reset_key(self):
        policy = AlertPolicy(cooldown_items=1_000)
        policy.should_alert(make_report(index=0))
        policy.reset_key("k")
        assert policy.should_alert(make_report(index=1))

    def test_invalid_cooldown(self):
        with pytest.raises(ParameterError):
            AlertPolicy(cooldown_items=-1)

    def test_end_to_end_rate_limited_alerts(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=2.0)
        policy = AlertPolicy(cooldown_items=50)
        alerts = []

        def on_report(report):
            if policy.should_alert(report):
                alerts.append(report)

        qf = QuantileFilter(crit, memory_bytes=8_192, on_report=on_report)
        for _ in range(200):
            qf.insert("hot", 100.0)
        assert qf.report_count > len(alerts) > 0
