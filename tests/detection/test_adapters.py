"""Tests for repro.detection.adapters."""

import pytest

from repro.common.errors import ParameterError
from repro.baselines.squad import Squad
from repro.core.criteria import Criteria
from repro.detection.adapters import (
    MultiKeyQuantileEstimator,
    NaiveDetector,
    QuantileFilterDetector,
    QueryOnInsertAdapter,
)
from repro.detection.ground_truth import compute_ground_truth
from repro.quantiles.base import NEG_INF
from tests.conftest import make_two_class_stream


class FakeEstimator(MultiKeyQuantileEstimator):
    """Deterministic estimator for adapter-behaviour tests."""

    def __init__(self):
        self.values = {}
        self.resets = []

    def insert(self, key, value):
        self.values.setdefault(key, []).append(value)

    def quantile(self, key, delta, epsilon=0.0):
        values = sorted(self.values.get(key, []))
        index = int(delta * len(values) - epsilon)
        if index < 0 or not values:
            return NEG_INF
        return values[min(index, len(values) - 1)]

    @property
    def nbytes(self):
        return 123

    def reset_key(self, key):
        self.resets.append(key)
        self.values[key] = []
        return True


class TestQueryOnInsertAdapter:
    def test_reports_outstanding_key(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        adapter = QueryOnInsertAdapter(FakeEstimator(), crit)
        assert adapter.process("k", 99.0) == "k"
        assert "k" in adapter.reported_keys

    def test_resets_after_report(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        estimator = FakeEstimator()
        adapter = QueryOnInsertAdapter(estimator, crit)
        adapter.process("k", 99.0)
        assert estimator.resets == ["k"]

    def test_query_every_cadence(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        adapter = QueryOnInsertAdapter(FakeEstimator(), crit, query_every=10)
        for _ in range(100):
            adapter.process("k", 99.0)
        assert adapter.query_count == 10

    def test_sparse_querying_can_miss(self):
        """Large query_every models the paper's point: slow queries
        force sparse sampling, which misses brief anomalies."""
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        adapter = QueryOnInsertAdapter(FakeEstimator(), crit, query_every=1_000)
        for _ in range(50):
            adapter.process("brief", 99.0)
        for i in range(500):
            adapter.process(f"other-{i}", 1.0)
        assert "brief" not in adapter.reported_keys

    def test_nbytes_delegates(self):
        crit = Criteria(delta=0.5, threshold=10.0)
        adapter = QueryOnInsertAdapter(FakeEstimator(), crit)
        assert adapter.nbytes == 123

    def test_invalid_cadence(self):
        crit = Criteria(delta=0.5, threshold=10.0)
        with pytest.raises(ParameterError):
            QueryOnInsertAdapter(FakeEstimator(), crit, query_every=0)

    def test_with_real_squad(self, py_random):
        crit = Criteria(delta=0.9, threshold=100.0, epsilon=3.0)
        adapter = QueryOnInsertAdapter(
            Squad(memory_bytes=256 * 1024, seed=1), crit
        )
        items = make_two_class_stream(py_random, n_items=5_000, n_keys=40,
                                      n_hot=4, hot_value=500.0, cold_max=50.0)
        for key, value in items:
            adapter.process(key, value)
        truth = compute_ground_truth(items, crit)
        # Ample memory: SQUAD finds all hot keys (recall 1), maybe a few
        # extra from reservoir noise.
        assert truth <= adapter.reported_keys


class TestDetectorShims:
    def test_quantile_filter_detector(self, py_random, loose_criteria):
        detector = QuantileFilterDetector.build(
            loose_criteria, memory_bytes=128 * 1024, seed=1
        )
        items = make_two_class_stream(py_random, n_items=4_000, n_keys=40,
                                      n_hot=4, hot_value=500.0, cold_max=50.0)
        for key, value in items:
            detector.process(key, value)
        truth = compute_ground_truth(items, loose_criteria)
        assert detector.reported_keys == truth
        assert detector.items_processed == 4_000
        assert detector.nbytes > 0

    def test_naive_detector(self, py_random, loose_criteria):
        detector = NaiveDetector.build(
            loose_criteria, memory_bytes=256 * 1024, seed=2
        )
        items = make_two_class_stream(py_random, n_items=4_000, n_keys=40,
                                      n_hot=4, hot_value=500.0, cold_max=50.0)
        for key, value in items:
            detector.process(key, value)
        truth = compute_ground_truth(items, loose_criteria)
        assert truth <= detector.reported_keys

    def test_process_returns_key_on_report(self, loose_criteria):
        detector = QuantileFilterDetector.build(
            loose_criteria, memory_bytes=64 * 1024
        )
        outcomes = [detector.process("hot", 500.0) for _ in range(30)]
        assert "hot" in outcomes
