"""Tests for repro.detection.ground_truth."""

import random

import pytest

from repro.core.criteria import Criteria
from repro.core.qweight import quantile_exceeds_threshold
from repro.detection.ground_truth import GroundTruthDetector, compute_ground_truth
from tests.conftest import make_two_class_stream


class TestGroundTruthDetector:
    def test_matches_definition4_replay(self):
        """The count-based oracle must agree with a literal value-set
        replay of Definition 4."""
        rng = random.Random(1)
        crit = Criteria(delta=0.8, threshold=50.0, epsilon=2.0)
        oracle = GroundTruthDetector(crit)
        value_sets = {}
        literal_reports = set()
        for i in range(5_000):
            key = rng.randrange(30)
            value = rng.uniform(0, 100)
            # Literal Definition 4 on explicit value sets.
            values = value_sets.setdefault(key, [])
            values.append(value)
            if quantile_exceeds_threshold(values, crit):
                literal_reports.add(key)
                value_sets[key] = []
            oracle.process(key, value)
        assert oracle.reported_keys == literal_reports

    def test_reset_on_report(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        oracle = GroundTruthDetector(crit)
        oracle.process("k", 99.0)  # reports immediately
        assert oracle.key_state("k") == (0, 0)

    def test_key_state_tracks_counts(self):
        crit = Criteria(delta=0.95, threshold=10.0, epsilon=100.0)
        oracle = GroundTruthDetector(crit)
        oracle.process("k", 99.0)
        oracle.process("k", 1.0)
        assert oracle.key_state("k") == (2, 1)
        assert oracle.key_state("unknown") == (0, 0)

    def test_per_key_criteria_override(self):
        default = Criteria(delta=0.95, threshold=100.0, epsilon=1000.0)
        strict = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        oracle = GroundTruthDetector(default)
        oracle.set_key_criteria("special", strict)
        assert oracle.process("special", 50.0) == "special"
        assert oracle.process("normal", 50.0) is None

    def test_criteria_change_resets_values(self):
        crit = Criteria(delta=0.95, threshold=10.0, epsilon=100.0)
        oracle = GroundTruthDetector(crit)
        oracle.process("k", 99.0)
        oracle.set_key_criteria("k", crit.with_updates(epsilon=50.0))
        assert oracle.key_state("k") == (0, 0)

    def test_nbytes_per_key(self):
        crit = Criteria(delta=0.5, threshold=10.0)
        oracle = GroundTruthDetector(crit)
        for key in range(10):
            oracle.process(key, 1.0)
        assert oracle.nbytes == 160

    def test_stats(self):
        crit = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        oracle = GroundTruthDetector(crit)
        oracle.process("a", 99.0)
        stats = oracle.stats()
        assert stats.items_processed == 1
        assert stats.report_count == 1


class TestComputeGroundTruth:
    def test_two_class_stream(self, py_random, loose_criteria):
        items = make_two_class_stream(py_random, n_items=5_000, n_keys=50,
                                      n_hot=5, hot_value=500.0, cold_max=50.0)
        truth = compute_ground_truth(items, loose_criteria)
        assert truth == {0, 1, 2, 3, 4}

    def test_empty_stream(self, default_criteria):
        assert compute_ground_truth([], default_criteria) == set()


class TestWindowedGroundTruth:
    def _make(self, window=50):
        from repro.detection.ground_truth import WindowedGroundTruthDetector

        crit = Criteria(delta=0.5, threshold=10.0, epsilon=2.0)
        return WindowedGroundTruthDetector(crit, window_items=window), crit

    def test_matches_windowed_filter_exactly(self):
        """Tumbling WindowedQuantileFilter with ample memory must agree
        item-for-item with the windowed oracle."""
        from repro.core.windowed import WindowedQuantileFilter

        oracle, crit = self._make(window=37)
        wf = WindowedQuantileFilter(crit, 1 << 18, window_items=37,
                                    mode="tumbling", counter_kind="float",
                                    seed=1)
        rng = random.Random(8)
        for _ in range(2_000):
            key = rng.randrange(15)
            value = rng.uniform(0, 30)
            oracle_fired = oracle.process(key, value) is not None
            filter_fired = wf.insert(key, value) is not None
            assert oracle_fired == filter_fired

    def test_window_boundary_forgets(self):
        oracle, crit = self._make(window=5)
        # 3 above-T items: Qweight 3 < 4 (threshold), no report yet.
        for _ in range(3):
            assert oracle.process("k", 99.0) is None
        # Pad past the boundary with other keys.
        for i in range(2):
            oracle.process(f"pad-{i}", 1.0)
        # New window: the old 3 are forgotten; needs 4 fresh ones.
        outcomes = [oracle.process("k", 99.0) for _ in range(4)]
        assert outcomes[:3] == [None, None, None]
        assert outcomes[3] == "k"
        assert oracle.resets == 1

    def test_key_criteria_survive_reset(self):
        oracle, crit = self._make(window=2)
        strict = Criteria(delta=0.5, threshold=10.0, epsilon=0.0)
        oracle.set_key_criteria("special", strict)
        oracle.process("a", 1.0)
        oracle.process("b", 1.0)  # boundary next
        assert oracle.process("special", 99.0) == "special"

    def test_invalid_window(self):
        from repro.common.errors import ParameterError
        from repro.detection.ground_truth import WindowedGroundTruthDetector

        crit = Criteria(delta=0.5, threshold=10.0)
        with pytest.raises(ParameterError):
            WindowedGroundTruthDetector(crit, window_items=0)
