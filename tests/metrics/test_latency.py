"""Tests for repro.metrics.latency."""

import numpy as np
import pytest

from repro.core.criteria import Criteria
from repro.detection.adapters import QuantileFilterDetector, QueryOnInsertAdapter
from repro.detection.adapters import MultiKeyQuantileEstimator
from repro.metrics.latency import LatencyResult, measure_detection_latency
from repro.quantiles.base import NEG_INF
from repro.streams.model import Trace

CRIT = Criteria(delta=0.9, threshold=100.0, epsilon=3.0)


def hot_cold_trace(n=5_000, n_keys=50, n_hot=5, seed=1) -> Trace:
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, n_keys, size=n)
    values = np.where(keys < n_hot, 500.0, rng.uniform(0, 50, size=n))
    return Trace(keys=keys.astype(np.int64), values=values)


class TestLatencyResult:
    def test_empty(self):
        result = LatencyResult()
        assert result.mean_latency == 0.0
        assert result.median_latency == 0.0
        assert result.percentile(95) == 0.0
        assert result.detected == 0

    def test_statistics(self):
        result = LatencyResult(latencies={"a": 0, "b": 10, "c": 20})
        assert result.mean_latency == pytest.approx(10.0)
        assert result.median_latency == pytest.approx(10.0)
        assert result.percentile(100) == 20.0

    def test_as_dict_fields(self):
        row = LatencyResult(latencies={"a": 5}, missed_keys=["b"]).as_dict()
        assert row["detected"] == 1 and row["missed"] == 1
        assert "p95_latency" in row


class TestMeasure:
    def test_exact_filter_zero_latency(self):
        """A collision-free QuantileFilter IS the oracle: latency 0."""
        trace = hot_cold_trace()
        detector = QuantileFilterDetector.build(
            CRIT, memory_bytes=256 * 1024, counter_kind="float", seed=1
        )
        result = measure_detection_latency(detector, trace, CRIT)
        assert result.detected == 5
        assert result.missed == 0
        assert result.mean_latency == 0.0

    def test_starved_filter_early_reports_from_collision_noise(self):
        """Under memory pressure QuantileFilter errs EARLY, not late:
        vague-part collisions inflate Qweights, so some keys report
        before the oracle (negative latency) — the flip side of the
        paper's high-recall behaviour."""
        trace = hot_cold_trace(n=10_000, n_keys=500, n_hot=10, seed=2)
        detector = QuantileFilterDetector.build(CRIT, memory_bytes=512, seed=1)
        result = measure_detection_latency(detector, trace, CRIT)
        assert result.detected + result.missed == 10
        assert result.mean_latency <= 0.0
        assert result.early_keys

    def test_sparse_query_adapter_pays_latency(self):
        """The paper's motivation quantified: a slow baseline that only
        queries every k items reports late by up to ~k items."""

        class ExactStore(MultiKeyQuantileEstimator):
            def __init__(self):
                self.values = {}

            def insert(self, key, value):
                self.values.setdefault(key, []).append(value)

            def quantile(self, key, delta, epsilon=0.0):
                vals = sorted(self.values.get(key, []))
                index = int(delta * len(vals) - epsilon)
                if index < 0 or not vals:
                    return NEG_INF
                return vals[min(index, len(vals) - 1)]

            def reset_key(self, key):
                self.values[key] = []
                return True

            @property
            def nbytes(self):
                return 0

        trace = hot_cold_trace(n=5_000, seed=3)
        prompt = measure_detection_latency(
            QueryOnInsertAdapter(ExactStore(), CRIT, query_every=1),
            trace, CRIT,
        )
        sparse = measure_detection_latency(
            QueryOnInsertAdapter(ExactStore(), CRIT, query_every=200),
            trace, CRIT,
        )
        assert prompt.mean_latency <= sparse.mean_latency
        assert sparse.mean_latency > 0 or sparse.missed > 0

    def test_early_reports_tracked(self):
        """A detector that fires on the key's very first item reports
        earlier than the oracle (epsilon delays the oracle)."""

        class TriggerHappy(QuantileFilterDetector):
            pass

        crit = Criteria(delta=0.9, threshold=100.0, epsilon=10.0)
        trace = hot_cold_trace(n=3_000, seed=4)
        loose = QuantileFilterDetector.build(
            Criteria(delta=0.9, threshold=100.0, epsilon=0.0),
            memory_bytes=128 * 1024, seed=1,
        )
        result = measure_detection_latency(loose, trace, crit)
        # The epsilon=0 detector fires before the epsilon=10 oracle.
        assert result.early_keys
        assert min(result.latencies.values()) < 0
