"""Tests for repro.metrics.accuracy."""

import pytest

from repro.metrics.accuracy import DetectionScore, score_sets


class TestDetectionScore:
    def test_perfect(self):
        score = DetectionScore(true_positives=10, false_positives=0,
                               false_negatives=0)
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_precision_penalises_false_positives(self):
        score = DetectionScore(true_positives=5, false_positives=5,
                               false_negatives=0)
        assert score.precision == pytest.approx(0.5)
        assert score.recall == 1.0
        assert score.f1 == pytest.approx(2 / 3)

    def test_recall_penalises_misses(self):
        score = DetectionScore(true_positives=5, false_positives=0,
                               false_negatives=5)
        assert score.recall == pytest.approx(0.5)
        assert score.precision == 1.0

    def test_nothing_reported_nothing_true(self):
        score = DetectionScore(0, 0, 0)
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_nothing_reported_some_true(self):
        score = DetectionScore(0, 0, 5)
        assert score.precision == 1.0  # vacuous
        assert score.recall == 0.0
        assert score.f1 == 0.0

    def test_everything_wrong(self):
        score = DetectionScore(0, 5, 5)
        assert score.precision == 0.0
        assert score.recall == 0.0
        assert score.f1 == 0.0

    def test_as_dict(self):
        row = DetectionScore(3, 1, 2).as_dict()
        assert row["tp"] == 3 and row["fp"] == 1 and row["fn"] == 2
        assert set(row) == {"tp", "fp", "fn", "precision", "recall", "f1"}


class TestScoreSets:
    def test_set_comparison(self):
        score = score_sets(reported={1, 2, 3}, truth={2, 3, 4})
        assert score.true_positives == 2
        assert score.false_positives == 1
        assert score.false_negatives == 1

    def test_disjoint(self):
        score = score_sets({1}, {2})
        assert score.f1 == 0.0

    def test_empty_both(self):
        score = score_sets(set(), set())
        assert score.f1 == 1.0

    def test_string_and_int_keys_mix(self):
        score = score_sets({"a", 1}, {"a", 2})
        assert score.true_positives == 1
