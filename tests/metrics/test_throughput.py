"""Tests for repro.metrics.throughput."""

import time

import pytest

from repro.common.errors import ParameterError
from repro.metrics.throughput import (
    ThroughputResult,
    measure_throughput,
    speedup,
)


class TestThroughputResult:
    def test_mops(self):
        result = ThroughputResult(items=2_000_000, seconds=1.0)
        assert result.mops == pytest.approx(2.0)

    def test_ns_per_item(self):
        result = ThroughputResult(items=1_000, seconds=0.001)
        assert result.ns_per_item == pytest.approx(1_000.0)

    def test_zero_seconds(self):
        assert ThroughputResult(items=1, seconds=0.0).mops == float("inf")

    def test_zero_items_ns(self):
        assert ThroughputResult(items=0, seconds=1.0).ns_per_item == 0.0


class TestMeasureThroughput:
    def test_times_the_callable(self):
        result = measure_throughput(lambda: time.sleep(0.02), items=100)
        assert result.seconds >= 0.015
        assert result.items == 100

    def test_fast_callable(self):
        result = measure_throughput(lambda: None, items=10)
        assert result.seconds < 0.1
        assert result.mops > 0

    def test_invalid_items(self):
        with pytest.raises(ParameterError):
            measure_throughput(lambda: None, items=0)


class TestSpeedup:
    def test_ratio(self):
        ours = ThroughputResult(items=100, seconds=1.0)
        baseline = ThroughputResult(items=100, seconds=10.0)
        assert speedup(ours, baseline) == pytest.approx(10.0)

    def test_zero_baseline(self):
        ours = ThroughputResult(items=100, seconds=1.0)
        baseline = ThroughputResult(items=0, seconds=1.0)
        assert speedup(ours, baseline) == float("inf")
