"""The committed BENCH_*.json snapshots as a synthetic trend run."""

import json

import pytest

from repro.experiments.benchseed import (
    BENCH_FILES,
    BENCH_SEED_RUN_ID,
    bench_seed_run,
    default_bench_root,
)
from repro.experiments.runstore import RunData
from repro.experiments.trend import render_markdown


@pytest.fixture()
def bench_root(tmp_path):
    (tmp_path / "BENCH_throughput.json").write_text(json.dumps({
        "items": 100, "pipeline_items": 400, "memory_bytes": 4096,
        "workload": "fig8-internet",
        "items_per_s": {
            "scalar": 1000.0, "batch": 8000.0, "pipeline_shm": 3000.0,
        },
    }))
    (tmp_path / "BENCH_observability.json").write_text(json.dumps({
        "items": 100, "baseline_mops": 0.25, "recorded_mops": 0.24,
    }))
    (tmp_path / "BENCH_controller.json").write_text(json.dumps({
        "items": {"scalar": 100, "batch": 1600},
        "scalar_baseline_mops": 0.3, "batch_baseline_mops": 4.0,
    }))
    return tmp_path


def test_adapts_all_three_files(bench_root):
    run = bench_seed_run(bench_root)
    assert isinstance(run, RunData)
    assert run.run_id == BENCH_SEED_RUN_ID
    assert set(run.records) == {
        "bench/throughput/scalar", "bench/throughput/batch",
        "bench/throughput/pipeline_shm",
        "bench/observability/baseline", "bench/observability/recorded",
        "bench/controller/scalar", "bench/controller/batch",
    }
    # Pipeline cells use the pipeline stream length as their scale.
    assert run.records["bench/throughput/pipeline_shm"]["cell"]["scale"] == 400
    assert run.records["bench/throughput/scalar"]["cell"]["scale"] == 100
    # mops figures become items/s so all cells share one unit.
    rec = run.records["bench/observability/recorded"]
    assert rec["timing"]["items_per_s"] == pytest.approx(240_000.0)
    assert rec["accuracy"] == {"overall": {}, "band": {}}


def test_seed_sorts_before_any_real_run(bench_root):
    run = bench_seed_run(bench_root)
    assert run.manifest["created_unix"] == 0.0
    assert run.sort_key() < (1.0, "")


def test_partial_and_missing_files(bench_root, tmp_path):
    (bench_root / "BENCH_throughput.json").unlink()
    (bench_root / "BENCH_controller.json").write_text("not json")
    run = bench_seed_run(bench_root)
    assert set(run.records) == {
        "bench/observability/baseline", "bench/observability/recorded",
    }
    assert bench_seed_run(tmp_path / "empty") is None


def test_renders_into_trend_report(bench_root):
    text = render_markdown([bench_seed_run(bench_root)])
    assert "bench/throughput/batch" in text
    assert "bench-seed" in text


def test_committed_snapshots_adapt_cleanly():
    """The real repo files must always produce a seed run."""
    root = default_bench_root()
    for name in BENCH_FILES:
        assert (root / name).is_file(), f"{name} missing from repo root"
    run = bench_seed_run()
    assert run is not None
    assert "bench/throughput/batch" in run.records
    assert "bench/observability/recorded" in run.records
    assert "bench/controller/batch" in run.records
    for record in run.records.values():
        assert record["timing"]["items_per_s"] > 0
