"""Tests for repro.experiments.config."""

import pytest

from repro.common.errors import ParameterError
from repro.experiments.config import (
    DATASETS,
    PAPER,
    build_trace,
    default_criteria_for,
    memory_sweep_points,
)


class TestPaperDefaults:
    def test_section_va_values(self):
        assert PAPER.bucket_size == 6
        assert PAPER.depth == 3
        assert PAPER.candidate_fraction == pytest.approx(0.8)
        assert PAPER.fp_bits == 16
        assert PAPER.delta == 0.95
        assert PAPER.epsilon == 30.0


class TestDatasets:
    def test_registry_contents(self):
        assert set(DATASETS) == {
            "internet", "cloud", "zipf-large", "zipf-small",
            "drift", "bursty",
        }

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_build_small_trace(self, name):
        trace = build_trace(name, scale=2_000, seed=0)
        assert len(trace) == 2_000
        assert trace.distinct_keys > 10

    def test_unknown_dataset(self):
        with pytest.raises(ParameterError):
            build_trace("netflix")

    def test_invalid_scale(self):
        with pytest.raises(ParameterError):
            build_trace("internet", scale=0)

    def test_seed_changes_trace(self):
        a = build_trace("internet", scale=1_000, seed=1)
        b = build_trace("internet", scale=1_000, seed=2)
        assert not (a.values == b.values).all()


class TestDefaultCriteria:
    def test_paper_thresholds(self):
        assert default_criteria_for("internet").threshold == 300.0
        assert default_criteria_for("cloud").threshold == 20.0

    def test_overrides(self):
        crit = default_criteria_for("internet", delta=0.5, threshold=9.0)
        assert crit.delta == 0.5
        assert crit.threshold == 9.0
        assert crit.epsilon == PAPER.epsilon

    def test_unknown_dataset(self):
        with pytest.raises(ParameterError):
            default_criteria_for("netflix")


class TestMemorySweep:
    def test_geometric_ladder(self):
        points = memory_sweep_points(small=1_024, large=16_384, points=5)
        assert points[0] == 1_024
        assert points[-1] == 16_384
        ratios = [b / a for a, b in zip(points, points[1:])]
        assert max(ratios) / min(ratios) < 1.1

    def test_minimum_points(self):
        with pytest.raises(ParameterError):
            memory_sweep_points(points=1)
