"""Smoke tests for every figure driver at tiny scale.

These verify each driver runs end-to-end and emits the series the paper
plots; the benchmarks run them at meaningful scale.
"""

import pytest

from repro.experiments import figures

TINY = dict(scale=1_500, seed=0)


class TestAccuracyFigures:
    def test_fig4(self):
        result = figures.fig4_accuracy_internet(
            memory_points=[4_096, 16_384],
            algorithms=("quantilefilter", "squad"),
            **TINY,
        )
        assert result.figure == "fig4"
        assert len(result.records) == 4
        assert {r.algorithm for r in result.records} == {
            "quantilefilter", "squad"
        }

    def test_fig5(self):
        result = figures.fig5_accuracy_cloud(
            memory_points=[8_192],
            algorithms=("quantilefilter",),
            **TINY,
        )
        assert result.figure == "fig5"
        assert result.records[0].dataset == "cloud"


class TestSweepFigures:
    def test_fig6_threshold(self):
        result = figures.fig6_threshold_sweep(
            thresholds=[100.0, 400.0], memory_points=[16_384], **TINY
        )
        thresholds = {r.extra["threshold"] for r in result.records}
        assert thresholds == {100.0, 400.0}
        for record in result.records:
            assert "abnormal_fraction" in record.extra

    def test_fig7_delta(self):
        result = figures.fig7_delta_sweep(
            deltas=(0.5, 0.95), memory_bytes=16_384,
            algorithms=("quantilefilter",), **TINY
        )
        assert {r.extra["delta"] for r in result.records} == {0.5, 0.95}

    def test_fig8_throughput(self):
        result = figures.fig8_throughput(
            memory_points=[16_384], algorithms=("quantilefilter",), **TINY
        )
        engines = {r.extra.get("engine") for r in result.records}
        assert engines == {"scalar", "batch"}
        for record in result.records:
            assert record.mops > 0

    def test_fig9_fig10_params(self):
        result = figures.fig9_fig10_parameter_sweeps(
            depths=(1, 3), block_lengths=(2, 6), memory_bytes=16_384, **TINY
        )
        params = [(r.extra["parameter"], r.extra["value"]) for r in result.records]
        assert ("depth", 1) in params and ("block_length", 6) in params

    def test_fig11_memory_ratio(self):
        result = figures.fig11_memory_ratio(
            candidate_fractions=(0.2, 0.8), memory_bytes=16_384, **TINY
        )
        assert len(result.records) == 2
        for record in result.records:
            assert 0 < record.extra["candidate_fraction"] < 1

    def test_fig12_variants(self):
        result = figures.fig12_variants(
            memory_points=[16_384], include_squad=False, **TINY
        )
        assert len(result.records) == 6  # 3 strategies x 2 backends
        backends = {r.extra["backend"] for r in result.records}
        assert backends == {"cs", "cms"}


class TestDynamicModification:
    def test_fig13_epsilon(self):
        result = figures.dynamic_modification_figure(
            "epsilon", (60.0,), memory_bytes=16_384, **TINY
        )
        assert result.figure == "fig13"
        subsets = {r.extra["subset"] for r in result.records}
        assert subsets == {"modified-half", "unmodified-half"}
        algorithms = {r.algorithm for r in result.records}
        assert algorithms == {"qf-baseline", "qf-modified"}

    def test_fig14_delta(self):
        result = figures.dynamic_modification_figure(
            "delta", (0.5,), memory_bytes=16_384, **TINY
        )
        assert result.figure == "fig14"

    def test_fig15_threshold_wrapper(self):
        result = figures.fig15_modify_threshold(memory_bytes=16_384, **TINY)
        assert result.figure == "fig15"
        values = {r.extra["value"] for r in result.records}
        assert "unchanged" in values and len(values) == 5


class TestKeyResultTables:
    def test_space_saving_table(self):
        result = figures.fig4_accuracy_internet(
            memory_points=[4_096, 65_536],
            algorithms=("quantilefilter", "squad"),
            **TINY,
        )
        rows = figures.space_saving_table(result.records, f1_targets=(0.5,))
        assert len(rows) == 1
        assert rows[0]["baseline"] == "squad"

    def test_speed_ratio_table(self):
        result = figures.fig8_throughput(
            memory_points=[65_536],
            algorithms=("quantilefilter", "squad"),
            **TINY,
        )
        rows = figures.speed_ratio_table(result.records, min_f1=0.0)
        assert any(row["baseline"] == "squad" for row in rows)
        for row in rows:
            assert row["speedup"] is None or row["speedup"] > 0
