"""Tests for regression gating and trend report rendering."""

from repro.experiments.runstore import RunData
from repro.experiments.trend import (
    GatePolicy,
    evaluate_gates,
    merge_runs,
    render_html,
    render_markdown,
)
from tests.experiments.test_runstore import make_record


def run_with(records, run_id="run", created=0.0, revision="rev"):
    return RunData(
        run_id=run_id,
        manifest={
            "created_unix": created, "git_revision": revision,
            "config_hash": "cfg", "wall_seconds": 1.0,
        },
        records={record["cell_id"]: record for record in records},
    )


CELL = "internet/quantilefilter/scalar/m1024/n100"


class TestGateTripping:
    def test_identical_runs_pass(self):
        base = run_with([make_record(CELL)], "base", 0.0)
        cand = run_with([make_record(CELL)], "cand", 1.0)
        result = evaluate_gates(base, cand)
        assert result.passed
        assert result.violations == []

    def test_small_slowdown_passes(self):
        base = run_with([make_record(CELL, items_per_s=1000.0)], "base")
        cand = run_with([make_record(CELL, items_per_s=900.0)], "cand", 1.0)
        assert evaluate_gates(base, cand).passed

    def test_big_slowdown_trips(self):
        base = run_with([make_record(CELL, items_per_s=1000.0)], "base")
        cand = run_with([make_record(CELL, items_per_s=100.0)], "cand", 1.0)
        result = evaluate_gates(base, cand)
        assert not result.passed
        assert result.violations[0].metric == "items_per_s"
        assert result.violations[0].baseline == 1000.0

    def test_gate_threshold_is_configurable(self):
        base = run_with([make_record(CELL, items_per_s=1000.0)], "base")
        cand = run_with([make_record(CELL, items_per_s=700.0)], "cand", 1.0)
        assert not evaluate_gates(base, cand).passed
        lax = GatePolicy(min_throughput_ratio=0.5)
        assert evaluate_gates(base, cand, lax).passed

    def test_f1_drop_trips(self):
        base = run_with([make_record(CELL, f1=0.95)], "base")
        cand = run_with([make_record(CELL, f1=0.70)], "cand", 1.0)
        result = evaluate_gates(base, cand)
        assert [v.metric for v in result.violations] == ["overall_f1"]

    def test_band_f1_drop_trips_its_own_gate(self):
        record = make_record(CELL)
        record["accuracy"]["band"]["f1"] = 0.5
        base = run_with([make_record(CELL)], "base")
        cand = run_with([record], "cand", 1.0)
        result = evaluate_gates(base, cand)
        assert [v.metric for v in result.violations] == ["band_f1"]

    def test_speedup_and_f1_gain_pass(self):
        base = run_with([make_record(CELL, f1=0.9, items_per_s=100.0)],
                        "base")
        cand = run_with([make_record(CELL, f1=1.0, items_per_s=500.0)],
                        "cand", 1.0)
        assert evaluate_gates(base, cand).passed

    def test_policy_from_config(self):
        policy = GatePolicy.from_config(
            {"gate": {"min_throughput_ratio": 0.5, "max_f1_drop": 0.2}}
        )
        assert policy.min_throughput_ratio == 0.5
        assert policy.max_f1_drop == 0.2
        assert policy.max_band_f1_drop == 0.10  # default survives
        assert GatePolicy.from_config({}) == GatePolicy()


class TestGateEdgeCases:
    def test_missing_baseline_cell_is_note_not_violation(self):
        base = run_with([make_record(CELL)], "base")
        new_cell = make_record("cloud/quantilefilter/scalar/m1024/n100")
        cand = run_with([make_record(CELL), new_cell], "cand", 1.0)
        result = evaluate_gates(base, cand)
        assert result.passed
        assert any("no baseline" in note for note in result.notes)

    def test_dropped_cell_is_note(self):
        base = run_with([make_record(CELL),
                         make_record("cloud/qf/scalar/m1/n1")], "base")
        cand = run_with([make_record(CELL)], "cand", 1.0)
        result = evaluate_gates(base, cand)
        assert result.passed
        assert any("baseline only" in note for note in result.notes)

    def test_counter_reset_baseline_skips_throughput_gate(self):
        # A counter reset mid-run can persist items_per_s == 0 (or a
        # negative artefact); there is nothing sane to ratio against.
        for poisoned in (0.0, -12.0, float("nan"), float("inf")):
            base = run_with([make_record(CELL, items_per_s=poisoned)],
                            "base")
            cand = run_with([make_record(CELL, items_per_s=500.0)],
                            "cand", 1.0)
            result = evaluate_gates(base, cand)
            assert result.passed, poisoned
            assert any("unusable" in note for note in result.notes)

    def test_counter_reset_candidate_is_violation(self):
        base = run_with([make_record(CELL, items_per_s=1000.0)], "base")
        cand = run_with([make_record(CELL, items_per_s=0.0)], "cand", 1.0)
        result = evaluate_gates(base, cand)
        assert not result.passed
        assert "invalid" in result.violations[0].metric

    def test_missing_f1_is_note(self):
        broken = make_record(CELL)
        del broken["accuracy"]["overall"]["f1"]
        base = run_with([broken], "base")
        cand = run_with([make_record(CELL)], "cand", 1.0)
        result = evaluate_gates(base, cand)
        assert result.passed
        assert any("f1 missing" in note for note in result.notes)


class TestRendering:
    def _two_runs(self):
        base = run_with([make_record(CELL, items_per_s=1000.0)],
                        "run-a", 0.0, "aaaaaaaaaaaa")
        cand = run_with([make_record(CELL, items_per_s=400.0)],
                        "run-b", 1.0, "bbbbbbbbbbbb")
        return base, cand

    def test_markdown_report_sections(self):
        base, cand = self._two_runs()
        gate = evaluate_gates(base, cand)
        text = render_markdown([base, cand], gate=gate)
        assert "# Matrix trend report" in text
        assert "## Runs" in text
        assert "## Regression flags" in text
        assert "**FAIL**" in text and "items_per_s regressed" in text
        assert "## Accuracy vs memory" in text
        assert "## Throughput trajectories" in text
        assert "run-a" in text and "run-b" in text
        assert "aaaaaaaaaa" in text  # short revision

    def test_markdown_pass_verdict(self):
        base, _ = self._two_runs()
        cand = run_with([make_record(CELL, items_per_s=1000.0)],
                        "run-b", 1.0)
        text = render_markdown([base, cand],
                               gate=evaluate_gates(base, cand))
        assert "**PASS**" in text

    def test_markdown_without_gate(self):
        base, _cand = self._two_runs()
        text = render_markdown([base])
        assert "gating skipped" in text

    def test_markdown_empty(self):
        assert "no persisted runs" in render_markdown([])

    def test_load_problems_surface_in_report(self):
        base, cand = self._two_runs()
        cand.problems.append("cell.json: unreadable")
        text = render_markdown([base, cand])
        assert "## Load problems" in text
        assert "unreadable" in text

    def test_html_report_is_standalone(self):
        base, cand = self._two_runs()
        html = render_html([base, cand], gate=evaluate_gates(base, cand))
        assert html.startswith("<!doctype html>")
        assert "Matrix trend report" in html
        assert "<pre>" in html and "</html>" in html

    def test_trajectory_ratio_uses_first_run(self):
        base, cand = self._two_runs()
        series = merge_runs([cand, base])  # deliberately reversed input
        text = render_markdown([base, cand])
        assert series[CELL][0][0].run_id == "run-a"
        assert "0.4" in text  # 400 / 1000 ratio
