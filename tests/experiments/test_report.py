"""Tests for repro.experiments.report."""

from repro.experiments import figures
from repro.experiments.report import (
    REPORT_DRIVERS,
    matrix_appendix,
    render_report,
    run_all_figures,
    write_report,
)

#: A two-figure subset keeps the test fast while covering both key
#: result tables (fig4 -> space, fig8 -> speed).
FAST_DRIVERS = [
    ("fig4", lambda scale, seed: figures.fig4_accuracy_internet(
        scale=scale, seed=seed, memory_points=[4_096, 65_536],
        algorithms=("quantilefilter", "squad"),
    )),
    ("fig8", lambda scale, seed: figures.fig8_throughput(
        scale=scale, seed=seed, memory_points=[16_384],
        algorithms=("quantilefilter", "squad"),
    )),
]


class TestReport:
    def test_registry_covers_all_paper_figures(self):
        labels = [label for label, _ in REPORT_DRIVERS]
        assert labels[0] == "fig4" and labels[-1] == "fig15"
        assert len(labels) == 11  # figs 4..15 with 9+10 combined

    def test_run_all_figures_subset(self):
        results = run_all_figures(1_500, seed=0, drivers=FAST_DRIVERS)
        assert set(results) == {"fig4", "fig8"}
        assert all(r.records for r in results.values())

    def test_render_contains_key_results_and_tables(self):
        results = run_all_figures(1_500, seed=0, drivers=FAST_DRIVERS)
        text = render_report(results, scale=1_500, seed=0,
                             elapsed_seconds=1.0)
        assert "# QuantileFilter reproduction report" in text
        assert "Key result 2" in text
        assert "Key result 1" in text
        assert "fig4" in text and "fig8" in text
        assert "quantilefilter" in text

    def test_write_report_creates_file(self, tmp_path):
        path = write_report(
            tmp_path / "REPORT.md", scale=1_500, seed=0,
            drivers=FAST_DRIVERS,
        )
        assert path.exists()
        content = path.read_text()
        assert content.startswith("# QuantileFilter reproduction report")

    def test_matrix_appendix_empty_store(self, tmp_path):
        assert matrix_appendix(tmp_path / "none") == ""

    def test_report_appends_matrix_trends(self, tmp_path):
        from repro.experiments import RunStore, run_matrix

        config = {
            "matrix": {"name": "rpt", "seed": 0},
            "axes": {
                "algorithms": ["quantilefilter"],
                "engines": ["scalar"],
                "workloads": ["internet"],
                "memory_bytes": [16384],
                "scales": [1000],
            },
        }
        store = RunStore(tmp_path / "runs")
        run_matrix(config, store, run_id="rpt-run")
        path = write_report(
            tmp_path / "REPORT.md", scale=1_500, seed=0,
            drivers=FAST_DRIVERS, matrix_runs=tmp_path / "runs",
        )
        content = path.read_text()
        assert "## Matrix trend report" in content  # demoted heading
        assert "rpt-run" in content

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "mini.md"
        # Full report at tiny scale (all 11 drivers, ~1500 items each).
        exit_code = main(["report", "--scale", "1500",
                          "--out", str(out)])
        assert exit_code == 0
        assert out.exists()
        assert "report written" in capsys.readouterr().out
