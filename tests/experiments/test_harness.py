"""Tests for repro.experiments.harness."""

import pytest

from repro.common.errors import ParameterError
from repro.core.criteria import Criteria
from repro.experiments.config import build_trace, default_criteria_for
from repro.experiments.harness import (
    ALGORITHMS,
    FigureResult,
    accuracy_sweep,
    build_detector,
    format_rows,
    ground_truth_for,
    run_detection,
)


@pytest.fixture(scope="module")
def tiny_trace():
    return build_trace("internet", scale=3_000, seed=0)


@pytest.fixture(scope="module")
def criteria():
    return default_criteria_for("internet")


class TestBuildDetector:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_algorithms_buildable(self, algorithm, criteria):
        detector = build_detector(algorithm, criteria, 16_384, seed=1)
        assert detector.process(1, 5.0) in (None, 1)
        assert detector.nbytes > 0

    def test_unknown_algorithm(self, criteria):
        with pytest.raises(ParameterError):
            build_detector("magic", criteria, 16_384)

    def test_overrides_reach_quantilefilter(self, criteria):
        detector = build_detector(
            "quantilefilter", criteria, 16_384, depth=5, vague_backend="cms"
        )
        assert detector.filter.vague.depth == 5
        assert detector.filter.vague.backend == "cms"


class TestRunDetection:
    def test_record_fields(self, tiny_trace, criteria):
        truth = ground_truth_for(tiny_trace, criteria)
        detector = build_detector("quantilefilter", criteria, 65_536, seed=1)
        record = run_detection(
            detector, tiny_trace, truth,
            dataset="internet", memory_bytes=65_536, algorithm="quantilefilter",
        )
        assert record.items == len(tiny_trace)
        assert record.seconds > 0
        assert record.mops > 0
        assert 0.0 <= record.score.f1 <= 1.0
        assert record.actual_bytes <= 65_536

    def test_as_dict_round_numbers(self, tiny_trace, criteria):
        truth = ground_truth_for(tiny_trace, criteria)
        detector = build_detector("quantilefilter", criteria, 16_384, seed=1)
        record = run_detection(detector, tiny_trace, truth)
        row = record.as_dict()
        assert {"algorithm", "precision", "recall", "f1", "mops"} <= set(row)


class TestAccuracySweep:
    def test_rows_per_algorithm_and_memory(self, tiny_trace, criteria):
        records = accuracy_sweep(
            tiny_trace, criteria,
            algorithms=("quantilefilter", "naive"),
            memory_points=(8_192, 32_768),
            seed=1,
        )
        assert len(records) == 4
        algorithms = {record.algorithm for record in records}
        assert algorithms == {"quantilefilter", "naive"}

    def test_truth_reused_when_passed(self, tiny_trace, criteria):
        truth = ground_truth_for(tiny_trace, criteria)
        records = accuracy_sweep(
            tiny_trace, criteria, ("quantilefilter",), (32_768,), truth=truth
        )
        assert records[0].score.true_positives <= len(truth)


class TestFormatting:
    def test_format_rows_aligned(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 22, "b": 0.25}]
        text = format_rows(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header + rule + 2 rows

    def test_format_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_format_handles_ragged_rows(self):
        rows = [{"a": 1}, {"a": 2, "extra": "x"}]
        text = format_rows(rows)
        assert "extra" in text

    def test_figure_result_str(self, tiny_trace, criteria):
        records = accuracy_sweep(
            tiny_trace, criteria, ("quantilefilter",), (16_384,)
        )
        result = FigureResult("figX", "demo", records)
        text = str(result)
        assert "figX" in text and "quantilefilter" in text
