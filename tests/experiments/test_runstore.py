"""Tests for the persisted run store (schema, tolerance, merging)."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ParameterError
from repro.experiments.runstore import (
    SCHEMA_VERSION,
    RunData,
    RunStore,
    config_hash,
    record_fingerprint,
    safe_name,
    upgrade_record,
)
from repro.experiments.trend import merge_runs


def make_record(cell_id="internet/quantilefilter/scalar/m1024/n100",
                f1=1.0, items_per_s=1000.0, **extra):
    record = {
        "schema_version": SCHEMA_VERSION,
        "cell_id": cell_id,
        "cell": {"workload": "internet", "memory_bytes": 1024},
        "items": 100,
        "actual_bytes": 1024,
        "reported_keys": 3,
        "accuracy": {
            "overall": {"precision": 1.0, "recall": f1, "f1": f1},
            "band": {"band_keys": 2, "precision": 1.0, "recall": 1.0,
                     "f1": 1.0},
        },
        "timing": {"wall_seconds": 0.1, "items_per_s": items_per_s},
    }
    record.update(extra)
    return record


class TestRoundTrip:
    def test_write_load_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        config = {"axes": {"workloads": ["internet"]}}
        run_id = store.create_run(config, run_id="r1", revision="abc123")
        record = make_record()
        store.write_record(run_id, dict(record))
        loaded = store.load_run(run_id)
        assert loaded.problems == []
        got = loaded.records[record["cell_id"]]
        assert got["schema_version"] == SCHEMA_VERSION
        assert got["accuracy"] == record["accuracy"]
        assert got["run_id"] == "r1"
        assert loaded.revision == "abc123"
        assert loaded.manifest["config_hash"] == config_hash(config)

    def test_duplicate_run_id_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        store.create_run({}, run_id="r1")
        with pytest.raises(ParameterError):
            store.create_run({}, run_id="r1")

    def test_record_requires_cell_id(self, tmp_path):
        store = RunStore(tmp_path)
        store.create_run({}, run_id="r1")
        with pytest.raises(ParameterError):
            store.write_record("r1", {"items": 1})

    def test_v0_record_upgrades_on_load(self, tmp_path):
        store = RunStore(tmp_path)
        store.create_run({}, run_id="r1")
        v0 = make_record()
        timing = v0.pop("timing")
        v0.update(timing)  # v0 kept timing fields at top level
        v0["schema_version"] = 0
        path = tmp_path / "r1" / "old-cell.json"
        path.write_text(json.dumps(v0))
        loaded = store.load_run("r1")
        assert loaded.problems == []
        got = loaded.records[v0["cell_id"]]
        assert got["schema_version"] == SCHEMA_VERSION
        assert got["timing"]["items_per_s"] == timing["items_per_s"]
        assert "items_per_s" not in got  # moved, not duplicated

    def test_future_schema_is_skipped_not_fatal(self, tmp_path):
        store = RunStore(tmp_path)
        store.create_run({}, run_id="r1")
        record = make_record(schema_version=SCHEMA_VERSION + 1)
        (tmp_path / "r1" / "future.json").write_text(json.dumps(record))
        loaded = store.load_run("r1")
        assert loaded.records == {}
        assert any("newer" in problem for problem in loaded.problems)

    def test_upgrade_rejects_missing_version(self):
        with pytest.raises(ParameterError):
            upgrade_record({"cell_id": "x"})


class TestTolerantLoading:
    def _store_with_good_record(self, tmp_path):
        store = RunStore(tmp_path)
        store.create_run({}, run_id="r1")
        store.write_record("r1", make_record())
        return store

    def test_corrupt_json_is_reported_not_fatal(self, tmp_path):
        store = self._store_with_good_record(tmp_path)
        (tmp_path / "r1" / "corrupt.json").write_text("{not json!")
        loaded = store.load_run("r1")
        assert len(loaded.records) == 1
        assert any("corrupt.json" in problem for problem in loaded.problems)

    def test_partial_record_is_reported_not_fatal(self, tmp_path):
        store = self._store_with_good_record(tmp_path)
        partial = {"schema_version": SCHEMA_VERSION, "cell_id": "partial/x"}
        (tmp_path / "r1" / "partial.json").write_text(json.dumps(partial))
        loaded = store.load_run("r1")
        assert "partial/x" not in loaded.records
        assert any("partial" in problem for problem in loaded.problems)

    def test_non_object_record_is_reported(self, tmp_path):
        store = self._store_with_good_record(tmp_path)
        (tmp_path / "r1" / "list.json").write_text("[1, 2, 3]")
        loaded = store.load_run("r1")
        assert any("not a JSON object" in p for p in loaded.problems)

    def test_corrupt_manifest_still_loads_records(self, tmp_path):
        store = self._store_with_good_record(tmp_path)
        (tmp_path / "r1" / "manifest.json").write_text("oops")
        loaded = store.load_run("r1")
        assert len(loaded.records) == 1
        assert any("manifest.json" in problem for problem in loaded.problems)

    def test_missing_run_raises(self, tmp_path):
        with pytest.raises(ParameterError):
            RunStore(tmp_path).load_run("nope")

    def test_empty_root_lists_nothing(self, tmp_path):
        assert RunStore(tmp_path / "absent").list_runs() == []


class TestFingerprint:
    def test_volatile_fields_excluded(self):
        a = make_record()
        b = make_record()
        b["timing"] = {"wall_seconds": 99.0, "items_per_s": 1.0}
        b["run_id"] = "other"
        b["git_revision"] = "fff"
        b["started_unix"] = 1.0
        assert record_fingerprint(a) == record_fingerprint(b)

    def test_deterministic_fields_included(self):
        a = make_record()
        b = make_record(f1=0.5)
        assert record_fingerprint(a) != record_fingerprint(b)

    def test_config_hash_order_insensitive(self):
        assert config_hash({"a": 1, "b": [2, 3]}) == \
            config_hash({"b": [2, 3], "a": 1})

    def test_safe_name(self):
        assert safe_name("a/b c:d") == "a-b-c-d"
        assert safe_name("///") == "cell"


class TestOrdering:
    """Trend merging must not depend on load or creation order."""

    @given(st.permutations(list(range(6))))
    def test_merge_is_order_insensitive(self, order):
        runs = []
        for index in range(6):
            run = RunData(
                run_id=f"r{index}",
                manifest={"created_unix": float(index // 2)},  # ties!
                records={"cell/a": make_record("cell/a",
                                               items_per_s=float(index))},
            )
            runs.append(run)
        reference = merge_runs(runs)
        shuffled = merge_runs([runs[i] for i in order])
        assert [
            (run.run_id, record["timing"]["items_per_s"])
            for run, record in reference["cell/a"]
        ] == [
            (run.run_id, record["timing"]["items_per_s"])
            for run, record in shuffled["cell/a"]
        ]

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=1e9),
                      st.integers(min_value=0, max_value=10**6)),
            min_size=1, max_size=8, unique=True,
        )
    )
    def test_series_sorted_by_creation_then_id(self, stamps):
        runs = [
            RunData(
                run_id=f"run-{suffix:06d}",
                manifest={"created_unix": created},
                records={"cell/a": make_record("cell/a")},
            )
            for created, suffix in stamps
        ]
        series = merge_runs(runs)["cell/a"]
        keys = [run.sort_key() for run, _record in series]
        assert keys == sorted(keys)
        assert len(series) == len(stamps)

    def test_store_lists_by_creation_time(self, tmp_path):
        store = RunStore(tmp_path)
        store.create_run({}, run_id="newer", created_unix=2000.0)
        store.create_run({}, run_id="older", created_unix=1000.0)
        assert store.list_runs() == ["older", "newer"]
