"""Calibration acceptance for the adaptive threshold controller.

The gated claim: with the controller in the loop on the drifting
workloads, the windowed exceedance rate ``P(v > T)`` against the live
``T`` — the quantity quantile tracking controls — holds near the
target rate ``1 − q*`` after warmup.  Gates per workload character:

* ``drift`` (gradual phase drift): post-warmup **mean** windowed rate
  within ±25 % of target, and most windows individually in tolerance.
* ``bursty`` (abrupt regime switches): post-warmup **median** windowed
  rate within ±25 % of target — the reaction lag at a regime edge
  mis-calibrates the transition windows by construction, so the mean
  only gets the documented looser ±50 % bound.

Both estimator backends must pass, and the scalar and batch engines
must agree on the control trajectory (same retargets, same final T).
"""

import pytest

from repro.common.errors import ParameterError
from repro.experiments.matrix import (
    CONTROLLERS,
    CellSpec,
    expand_cells,
    run_cell,
)

TARGET = 0.05  # 1 - delta at the paper's delta = 0.95
TIGHT = 0.25 * TARGET
LOOSE = 0.50 * TARGET


def controlled_spec(workload, backend, engine="batch", seed=3):
    return CellSpec(
        workload=workload, algorithm="quantilefilter", engine=engine,
        memory_bytes=1 << 16, scale=60_000, seed=seed,
        threshold=300.0, delta=0.95, epsilon=30.0,
        band_fraction=0.25, shadow_sample_rate=1,
        controller=backend, controller_dwell=512,
        controller_warmup=384, controller_horizon=1_024,
    )


@pytest.mark.parametrize("backend", ["p2", "kll"])
class TestDriftCalibration:
    def test_rate_holds_under_drift(self, backend):
        record = run_cell(controlled_spec("drift", backend))
        ctl = record["controller"]
        assert ctl["retargets"] > 0
        assert ctl["estimator_restarts"] > 0
        assert abs(ctl["post_warmup_mean_rate"] - TARGET) <= TIGHT
        assert abs(ctl["post_warmup_median_rate"] - TARGET) <= TIGHT
        assert ctl["within_tolerance_fraction"] >= 0.8
        # The drift workload's values rise across phases: a controller
        # that holds the rate must have raised T well above the static
        # starting point.
        assert ctl["final_threshold"] > ctl["initial_threshold"]

    def test_band_scored_around_moving_threshold(self, backend):
        record = run_cell(controlled_spec("drift", backend))
        accuracy = record["accuracy"]
        band = accuracy["band"]
        # Precision/recall in the ±band around the final (moving) T is
        # part of the run record, with a populated key band.
        assert band["band_keys"] > 0
        for field in ("precision", "recall", "f1"):
            assert 0.0 <= band[field] <= 1.0
            assert 0.0 <= accuracy["overall"][field] <= 1.0


@pytest.mark.parametrize("backend", ["p2", "kll"])
class TestBurstyCalibration:
    def test_rate_holds_under_bursts(self, backend):
        record = run_cell(controlled_spec("bursty", backend))
        ctl = record["controller"]
        assert ctl["retargets"] > 0
        assert abs(ctl["post_warmup_median_rate"] - TARGET) <= TIGHT
        assert abs(ctl["post_warmup_mean_rate"] - TARGET) <= LOOSE
        assert ctl["within_tolerance_fraction"] >= 0.6


class TestEngineAgreement:
    def test_scalar_and_batch_trace_the_same_control_path(self):
        scalar = run_cell(controlled_spec("drift", "p2", engine="scalar"))
        batch = run_cell(controlled_spec("drift", "p2", engine="batch"))
        assert (scalar["controller"]["retargets"]
                == batch["controller"]["retargets"])
        assert (scalar["controller"]["final_threshold"]
                == pytest.approx(batch["controller"]["final_threshold"]))
        assert (scalar["controller"]["post_warmup_mean_rate"]
                == pytest.approx(
                    batch["controller"]["post_warmup_mean_rate"]))


class TestRecordShape:
    def test_controlled_record_fields(self):
        record = run_cell(controlled_spec("drift", "p2"))
        ctl = record["controller"]
        for field in (
            "backend", "target_quantile", "target_rate",
            "initial_threshold", "final_threshold", "retargets",
            "window_items", "warmup_items", "horizon_items",
            "estimator_restarts", "windows", "post_warmup_mean_rate",
            "post_warmup_median_rate", "rate_tolerance",
            "within_tolerance_fraction",
        ):
            assert field in ctl, field
        assert ctl["backend"] == "p2"
        assert ctl["target_rate"] == pytest.approx(TARGET)
        window = ctl["windows"][0]
        assert set(window) == {"threshold", "exceedance", "items"}
        assert record["cell_id"].endswith("/c-p2")

    def test_fixed_record_has_no_controller_section(self):
        spec = controlled_spec("drift", "p2")
        fixed = CellSpec(**{
            **{f: getattr(spec, f) for f in spec.__dataclass_fields__},
            "controller": "fixed", "scale": 2_000,
        })
        record = run_cell(fixed)
        assert "controller" not in record
        assert not record["cell_id"].endswith("/c-fixed")


class TestControllerAxisExpansion:
    BASE = {
        "matrix": {"seed": 0},
        "axes": {
            "workloads": ["drift"],
            "algorithms": ["quantilefilter", "squad"],
            "engines": ["scalar", "batch", "pipeline-shm"],
            "memory_bytes": [16384],
            "scales": [2000],
            "controllers": ["fixed", "p2", "kll"],
        },
    }

    def test_pipeline_and_baselines_stay_fixed(self):
        cells = expand_cells(self.BASE)
        # quantilefilter: scalar/batch × 3 controllers + pipeline-shm
        # × fixed only = 7; squad: 1 fixed scalar cell.
        assert len(cells) == 8
        adaptive = [c for c in cells if c.controller != "fixed"]
        assert len(adaptive) == 4
        assert all(c.algorithm == "quantilefilter" for c in adaptive)
        assert all(c.engine in ("scalar", "batch") for c in adaptive)
        assert len({c.cell_id for c in cells}) == len(cells)

    def test_fixed_cell_ids_unchanged_by_the_axis(self):
        no_axis = dict(self.BASE, axes={
            k: v for k, v in self.BASE["axes"].items()
            if k != "controllers"
        })
        fixed_ids = {
            c.cell_id for c in expand_cells(self.BASE)
            if c.controller == "fixed"
        }
        assert fixed_ids == {c.cell_id for c in expand_cells(no_axis)}

    def test_controller_section_flows_into_cells(self):
        config = dict(self.BASE)
        config["controller"] = {
            "deadband": 0.1, "min_dwell_items": 999,
            "warmup_items": 333, "window_items": 1111,
            "horizon_items": 4444,
        }
        cell = next(
            c for c in expand_cells(config) if c.controller == "p2"
        )
        assert cell.controller_deadband == 0.1
        assert cell.controller_dwell == 999
        assert cell.controller_warmup == 333
        assert cell.controller_window == 1111
        assert cell.controller_horizon == 4444

    def test_unknown_controller_rejected(self):
        config = dict(self.BASE, axes=dict(
            self.BASE["axes"], controllers=["fixed", "pid"]
        ))
        with pytest.raises(ParameterError):
            expand_cells(config)
        assert "pid" not in CONTROLLERS

    def test_controlled_cell_on_pipeline_engine_rejected(self):
        spec = controlled_spec("drift", "p2", engine="pipeline-shm")
        with pytest.raises(ParameterError):
            run_cell(spec)

    def test_controlled_cell_on_baseline_rejected(self):
        spec = controlled_spec("drift", "p2")
        bad = CellSpec(**{
            **{f: getattr(spec, f) for f in spec.__dataclass_fields__},
            "algorithm": "squad",
        })
        with pytest.raises(ParameterError):
            run_cell(bad)
