"""Tests for the experiment-matrix runner (expansion, cells, bands)."""

import pytest

from repro.common.errors import ParameterError
from repro.experiments.matrix import (
    BASELINES,
    CellSpec,
    band_accuracy,
    expand_cells,
    load_matrix_config,
    run_cell,
)
from repro.experiments.runstore import SCHEMA_VERSION
from repro.streams.model import Trace


def tiny_config(**overrides):
    config = {
        "matrix": {"name": "t", "seed": 0, "band_fraction": 0.25,
                   "shadow_sample_rate": 1},
        "axes": {
            "algorithms": ["quantilefilter", "squad"],
            "engines": ["scalar", "batch"],
            "workloads": ["internet", "bursty"],
            "memory_bytes": [16384],
            "scales": [1500],
        },
        "pipeline": {"shards": 2, "chunk_items": 512},
    }
    for section, values in overrides.items():
        config.setdefault(section, {}).update(values)
    return config


def tiny_cell(**overrides):
    params = dict(
        workload="internet", algorithm="quantilefilter", engine="scalar",
        memory_bytes=16384, scale=1500, seed=0, threshold=300.0,
        delta=0.95, epsilon=30.0, band_fraction=0.25,
        shadow_sample_rate=1, shards=2, chunk_items=512,
    )
    params.update(overrides)
    return CellSpec(**params)


class TestExpansion:
    def test_cross_product_with_baseline_collapse(self):
        cells = expand_cells(tiny_config())
        # quantilefilter x 2 engines + squad (scalar only), x 2 workloads
        assert len(cells) == 6
        ids = {cell.cell_id for cell in cells}
        assert "internet/quantilefilter/batch/m16384/n1500" in ids
        assert "internet/squad/scalar/m16384/n1500" in ids
        assert not any("/squad/batch/" in cell_id for cell_id in ids)

    def test_baselines_never_sweep_engines(self):
        config = tiny_config()
        config["axes"]["engines"] = [
            "scalar", "batch", "pipeline-shm", "threads"
        ]
        for cell in expand_cells(config):
            if cell.algorithm != "quantilefilter":
                assert cell.engine == "scalar"

    def test_parallel_engines_without_quantilefilter_fail_fast(self):
        # A config whose engine axis can never apply should error with a
        # clear message, not silently collapse every cell to scalar.
        config = tiny_config()
        config["axes"]["algorithms"] = ["squad"]
        config["axes"]["engines"] = ["threads"]
        with pytest.raises(ParameterError, match="quantilefilter"):
            expand_cells(config)

    def test_controllers_skip_parallel_engines(self):
        config = tiny_config()
        config["axes"]["algorithms"] = ["quantilefilter"]
        config["axes"]["engines"] = ["batch", "pipeline-shm", "threads"]
        config["axes"]["controllers"] = ["fixed", "p2"]
        combos = {
            (c.engine, c.controller) for c in expand_cells(config)
        }
        assert ("batch", "p2") in combos
        assert ("pipeline-shm", "p2") not in combos
        assert ("threads", "p2") not in combos
        assert ("threads", "fixed") in combos

    def test_threshold_defaults_per_workload(self):
        config = tiny_config()
        config["axes"]["workloads"] = ["internet", "cloud"]
        thresholds = {
            cell.workload: cell.threshold for cell in expand_cells(config)
        }
        assert thresholds == {"internet": 300.0, "cloud": 20.0}

    def test_criteria_overrides(self):
        config = tiny_config(criteria={"threshold": 123.0, "delta": 0.9})
        cell = expand_cells(config)[0]
        assert cell.threshold == 123.0
        assert cell.delta == 0.9
        assert cell.criteria().threshold == 123.0

    def test_unknown_axis_values_rejected(self):
        for section, value in (
            ("workloads", ["netflix"]),
            ("engines", ["gpu"]),
            ("algorithms", ["llm"]),
        ):
            config = tiny_config()
            config["axes"][section] = value
            with pytest.raises(ParameterError):
                expand_cells(config)

    def test_empty_axes_use_defaults(self):
        cells = expand_cells({})
        assert len(cells) == 1
        assert cells[0].workload == "internet"
        assert cells[0].algorithm == "quantilefilter"


class TestConfigLoading:
    def test_json_config(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text('{"axes": {"workloads": ["cloud"]}}')
        assert load_matrix_config(path)["axes"]["workloads"] == ["cloud"]

    def test_toml_config(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")  # noqa: F841  (3.11+)
        path = tmp_path / "m.toml"
        path.write_text('[axes]\nworkloads = ["cloud"]\n')
        assert load_matrix_config(path)["axes"]["workloads"] == ["cloud"]

    def test_bad_json_raises_parameter_error(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{nope")
        with pytest.raises(ParameterError):
            load_matrix_config(path)

    def test_shipped_configs_expand(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2] / "benchmarks" / "matrix"
        smoke = load_matrix_config(root / "smoke.json")
        assert len(expand_cells(smoke)) == 3  # the CI smoke matrix
        try:
            import tomllib  # noqa: F401
        except ModuleNotFoundError:
            return
        default = load_matrix_config(root / "default.toml")
        cells = expand_cells(default)
        # 6 workloads x (4 qf engines + 3 baselines) x 3 memory points
        # fixed cells, plus the controllers axis (p2, kll) rerunning
        # the scalar/batch quantilefilter cells adaptively.
        fixed = [c for c in cells if c.controller == "fixed"]
        adaptive = [c for c in cells if c.controller != "fixed"]
        assert len(fixed) == 6 * 7 * 3
        assert len(adaptive) == 6 * 2 * 3 * 2
        assert all(c.algorithm == "quantilefilter" for c in adaptive)


class TestRunCell:
    def test_record_shape(self):
        record = run_cell(tiny_cell())
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["cell_id"] == "internet/quantilefilter/scalar/m16384/n1500"
        assert record["items"] == 1500
        assert record["cell"]["workload"] == "internet"
        assert set(record["timing"]) == {"wall_seconds", "items_per_s"}
        accuracy = record["accuracy"]
        assert 0.0 <= accuracy["overall"]["f1"] <= 1.0
        assert 0.0 <= accuracy["band"]["f1"] <= 1.0
        assert accuracy["band"]["band_keys"] >= 0
        assert accuracy["overall"]["precision_ci"][0] <= \
            accuracy["overall"]["precision"]

    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    def test_engines_agree_on_accuracy(self, engine):
        record = run_cell(tiny_cell(engine=engine))
        assert record["accuracy"]["overall"]["recall"] >= 0.9

    def test_baseline_algorithms_run(self):
        for algorithm in BASELINES[:2]:  # squad, sketchpolymer
            record = run_cell(tiny_cell(algorithm=algorithm))
            assert record["reported_keys"] >= 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ParameterError):
            run_cell(tiny_cell(engine="gpu"))

    def test_threads_engine_runs_and_matches_batch(self):
        threaded = run_cell(tiny_cell(engine="threads"))
        batch = run_cell(tiny_cell(engine="batch"))
        assert threaded["reported_keys"] == batch["reported_keys"]
        # One shared structure gets the whole budget (not split per
        # shard the way pipeline-shm divides it).
        assert threaded["actual_bytes"] > 0

    def test_controlled_threads_cell_rejected(self):
        with pytest.raises(ParameterError, match="in-process engines"):
            run_cell(tiny_cell(engine="threads", controller="p2"))

    def test_build_quantilefilter_rejects_unknown_engine(self):
        from repro.experiments.matrix import _build_quantilefilter

        with pytest.raises(ParameterError, match="not supported"):
            _build_quantilefilter(tiny_cell(engine="threads"))


class TestBandAccuracy:
    def test_band_keys_are_the_threshold_sensitive_ones(self):
        # Keys: well above T (600), inside the band (310), well below (50).
        import numpy as np

        keys = np.repeat(np.array([1, 2, 3], dtype=np.int64), 200)
        values = np.concatenate([
            np.full(200, 600.0), np.full(200, 310.0), np.full(200, 50.0),
        ])
        trace = Trace(keys=keys, values=values, name="synthetic")
        spec = tiny_cell(band_fraction=0.25)  # band = [225, 375]
        result = band_accuracy(spec, trace, reported={1, 2})
        # Key 2 (310) flips between T*0.75 and T*1.25; key 1 (600) and
        # key 3 (50) do not.
        assert result["band"]["band_keys"] == 1
        assert result["band"]["tp"] == 1
        assert result["band"]["f1"] == 1.0
        assert result["overall"]["tp"] == 2

    def test_band_miss_is_scored(self):
        import numpy as np

        keys = np.repeat(np.array([1, 2], dtype=np.int64), 200)
        values = np.concatenate([np.full(200, 600.0), np.full(200, 310.0)])
        trace = Trace(keys=keys, values=values, name="synthetic")
        result = band_accuracy(tiny_cell(), trace, reported={1})
        assert result["band"]["fn"] == 1  # missed the near-T key
        assert result["band"]["f1"] == 0.0
        assert result["overall"]["recall"] == 0.5

    def test_sampled_shadow_restricts_both_sides(self):
        record = run_cell(tiny_cell(shadow_sample_rate=4))
        accuracy = record["accuracy"]
        assert accuracy["shadow_sample_rate"] == 4
        assert accuracy["overall"]["sampled_items"] < record["items"]


class TestDeterministicSeedAudit:
    """Satellite: every registered cell twice ⇒ identical records.

    This is the RNG-leak tripwire: any hidden nondeterminism in
    ``streams/`` (trace generation) or ``experiments/`` (detector
    seeding, shadow sampling, report collection) shows up as a
    fingerprint mismatch between two executions of the same cell.
    """

    AUDIT_SCALE = 1200

    def _audit_cells(self):
        config = tiny_config()
        config["axes"].update(
            workloads=[
                "internet", "cloud", "zipf-large", "zipf-small",
                "drift", "bursty",
            ],
            engines=["scalar", "batch"],
            algorithms=["quantilefilter", "squad"],
            scales=[self.AUDIT_SCALE],
        )
        return expand_cells(config)

    def test_every_cell_is_deterministic(self):
        from repro.experiments.runstore import record_fingerprint

        cells = self._audit_cells()
        assert len(cells) == 6 * 3
        for spec in cells:
            first = record_fingerprint(run_cell(spec))
            second = record_fingerprint(run_cell(spec))
            assert first == second, f"nondeterministic cell: {spec.cell_id}"

    def test_pipeline_engine_is_deterministic(self):
        # The process-parallel engine reports over nondeterministic
        # interleavings; the persisted record (dedup counts + shadow
        # accuracy) must still be identical run to run.
        from repro.experiments.runstore import record_fingerprint

        spec = tiny_cell(engine="pipeline-shm", scale=self.AUDIT_SCALE)
        assert record_fingerprint(run_cell(spec)) == \
            record_fingerprint(run_cell(spec))

    def test_seed_actually_matters(self):
        # The audit would be vacuous if the fingerprint ignored content.
        from repro.experiments.runstore import record_fingerprint

        base = tiny_cell(scale=self.AUDIT_SCALE)
        other = tiny_cell(scale=self.AUDIT_SCALE, seed=7)
        assert record_fingerprint(run_cell(base)) != \
            record_fingerprint(run_cell(other))
