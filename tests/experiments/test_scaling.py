"""Tests for repro.experiments.scaling."""

from repro.experiments.config import build_trace, default_criteria_for
from repro.experiments.harness import ground_truth_for
from repro.experiments.scaling import minimal_budget_for_f1, scaling_study


class TestMinimalBudget:
    def test_finds_a_qualifying_budget(self):
        trace = build_trace("internet", scale=4_000, seed=0)
        criteria = default_criteria_for("internet")
        truth = ground_truth_for(trace, criteria)
        record = minimal_budget_for_f1(
            trace, criteria, truth, f1_target=0.8, dataset="internet",
        )
        assert record is not None
        assert record.score.f1 >= 0.8

    def test_unreachable_target_returns_none(self):
        trace = build_trace("internet", scale=2_000, seed=0)
        criteria = default_criteria_for("internet")
        truth = ground_truth_for(trace, criteria)
        # Cap the scan below any workable budget.
        record = minimal_budget_for_f1(
            trace, criteria, truth, f1_target=1.01,  # impossible target
            dataset="internet", high=1_024,
        )
        assert record is None

    def test_budget_is_power_of_two_multiple_of_low(self):
        trace = build_trace("internet", scale=4_000, seed=0)
        criteria = default_criteria_for("internet")
        truth = ground_truth_for(trace, criteria)
        record = minimal_budget_for_f1(
            trace, criteria, truth, f1_target=0.8, dataset="internet",
            low=256,
        )
        assert record.memory_bytes % 256 == 0
        budget = record.memory_bytes // 256
        assert budget & (budget - 1) == 0  # power of two


class TestScalingStudy:
    def test_rows_annotated(self):
        result = scaling_study(
            dataset="internet", scales=(3_000, 6_000), f1_target=0.8
        )
        assert result.figure == "scaling-study"
        assert len(result.records) == 2
        for record in result.records:
            assert record.extra["scale"] in (3_000, 6_000)
            assert record.extra["distinct_keys"] > 0
            assert record.extra["bytes_per_key"] > 0

    def test_budgets_non_decreasing(self):
        result = scaling_study(
            dataset="internet", scales=(3_000, 12_000), f1_target=0.8
        )
        budgets = [
            r.memory_bytes
            for r in sorted(result.records, key=lambda r: r.extra["scale"])
        ]
        assert budgets == sorted(budgets)
