"""Tests for the repro-experiments CLI."""

import json

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_figure_required(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_known_figures_accepted(self):
        parser = build_parser()
        args = parser.parse_args(["fig4", "--scale", "1000", "--seed", "3"])
        assert args.figure == "fig4"
        assert args.scale == 1_000
        assert args.seed == 3

    def test_unknown_figure_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig99"])


class TestMain:
    def test_runs_fig11_text(self, capsys):
        exit_code = main(["fig11", "--scale", "1200"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "fig11" in output
        assert "candidate_fraction" in output

    def test_runs_fig7_json(self, capsys):
        exit_code = main(["fig7", "--scale", "1200", "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["figure"] == "fig7"
        assert isinstance(payload["rows"], list) and payload["rows"]

    def test_dataset_flag(self, capsys):
        exit_code = main(["fig11", "--scale", "1200", "--dataset", "zipf-small"])
        assert exit_code == 0
        assert "zipf-small" in capsys.readouterr().out

    def test_scaling_driver_registered(self, capsys):
        # The scaling study ignores --scale (it sweeps its own ladder);
        # this exercises the registration path only, so keep it tiny by
        # calling the driver through main with defaults trimmed via JSON.
        from repro.experiments.cli import _DRIVERS

        assert "scaling" in _DRIVERS
