"""End-to-end acceptance for ``repro matrix run|report|gate``.

The flow the ISSUE pins: ``run`` twice persists two run directories,
``report`` renders a trend document comparing them, and a deliberately
injected slowdown makes ``gate`` exit non-zero.
"""

import json

import pytest

from repro.experiments.cli import matrix_main
from repro.observability.cli import main as repro_main


@pytest.fixture()
def tiny_config_path(tmp_path):
    config = {
        "matrix": {"name": "cli-e2e", "seed": 0, "band_fraction": 0.25,
                   "shadow_sample_rate": 1},
        "axes": {
            "algorithms": ["quantilefilter"],
            "engines": ["scalar", "batch"],
            "workloads": ["internet"],
            "memory_bytes": [16384],
            "scales": [1500],
        },
        # Loose throughput tolerance on purpose: these cells time in
        # single-digit milliseconds, and back-to-back runs on a busy
        # single-core CI box routinely diverge by 25%+ from scheduler
        # noise alone.  The injected regression below is 10x (ratio
        # 0.1), so 0.3 still separates signal from noise cleanly.
        "gate": {"min_throughput_ratio": 0.3, "max_f1_drop": 0.05},
    }
    path = tmp_path / "matrix.json"
    path.write_text(json.dumps(config))
    return path


def _run(args):
    return matrix_main([str(arg) for arg in args])


class TestRunReportGate:
    def test_full_flow_with_injected_slowdown(self, tmp_path, capsys,
                                              tiny_config_path):
        runs = tmp_path / "runs"

        # Two clean runs of the same 2-cell matrix.
        for run_id in ("base", "cand"):
            assert _run(["run", "--config", tiny_config_path,
                         "--runs", runs, "--run-id", run_id,
                         "--quiet"]) == 0
        assert (runs / "base" / "manifest.json").exists()
        cell_files = [
            path for path in (runs / "cand").glob("*.json")
            if path.name != "manifest.json"
        ]
        assert len(cell_files) == 2

        # The trend report compares the two persisted runs.
        report_md = tmp_path / "trend.md"
        report_html = tmp_path / "trend.html"
        assert _run(["report", "--runs", runs, "--out", report_md,
                     "--html", report_html]) == 0
        text = report_md.read_text()
        assert "base" in text and "cand" in text
        assert "## Throughput trajectories" in text
        assert "**PASS**" in text
        assert report_html.read_text().startswith("<!doctype html>")

        # Identical work on the same machine passes the gate.
        assert _run(["gate", "--runs", runs]) == 0

        # Inject a 10x slowdown into the candidate's persisted records…
        for path in cell_files:
            record = json.loads(path.read_text())
            record["timing"]["items_per_s"] /= 10.0
            path.write_text(json.dumps(record))

        # …and the gate must now fail with a non-zero exit code.
        capsys.readouterr()
        assert _run(["gate", "--runs", runs]) == 1
        err = capsys.readouterr().err
        assert "gate FAIL" in err and "items_per_s regressed" in err

        # The report flags the same regression.
        assert _run(["report", "--runs", runs, "--out", report_md]) == 0
        assert "**FAIL**" in report_md.read_text()

    def test_explicit_baseline_candidate_selection(self, tmp_path,
                                                   tiny_config_path):
        runs = tmp_path / "runs"
        for run_id in ("one", "two"):
            assert _run(["run", "--config", tiny_config_path,
                         "--runs", runs, "--run-id", run_id,
                         "--quiet"]) == 0
        assert _run(["gate", "--runs", runs, "--baseline", "one",
                     "--candidate", "two"]) == 0
        with pytest.raises(SystemExit):
            _run(["gate", "--runs", runs, "--baseline", "missing"])

    def test_gate_policy_cli_override(self, tmp_path, tiny_config_path):
        runs = tmp_path / "runs"
        for run_id in ("one", "two"):
            assert _run(["run", "--config", tiny_config_path,
                         "--runs", runs, "--run-id", run_id,
                         "--quiet"]) == 0
        record_paths = [
            path for path in (runs / "two").glob("*.json")
            if path.name != "manifest.json"
        ]
        for path in record_paths:
            record = json.loads(path.read_text())
            record["timing"]["items_per_s"] *= 0.1
            path.write_text(json.dumps(record))
        assert _run(["gate", "--runs", runs]) == 1
        assert _run(["gate", "--runs", runs,
                     "--min-throughput-ratio", "0.02"]) == 0

    def test_gate_needs_two_runs(self, tmp_path, tiny_config_path):
        runs = tmp_path / "runs"
        assert _run(["run", "--config", tiny_config_path, "--runs", runs,
                     "--run-id", "only", "--quiet"]) == 0
        with pytest.raises(SystemExit):
            _run(["gate", "--runs", runs])

    def test_missing_config_is_clean_error(self, tmp_path):
        assert _run(["run", "--config", tmp_path / "absent.json"]) == 2

    def test_zero_cell_config_is_clean_error(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"axes": {"workloads": []}}))
        assert _run(["run", "--config", path,
                     "--runs", tmp_path / "runs"]) == 2


class TestOperationsCliDoor:
    def test_repro_matrix_delegates(self, tmp_path, tiny_config_path,
                                    capsys):
        runs = tmp_path / "runs"
        code = repro_main([
            "matrix", "run", "--config", str(tiny_config_path),
            "--runs", str(runs), "--run-id", "via-repro", "--quiet",
        ])
        assert code == 0
        assert (runs / "via-repro" / "manifest.json").exists()
        assert "persisted run via-repro" in capsys.readouterr().out

    def test_report_on_empty_store_shows_bench_seed(self, tmp_path):
        # A fresh checkout has no persisted runs, but the committed
        # BENCH_*.json snapshots seed the trajectory by default.
        out = tmp_path / "report.md"
        assert _run(["report", "--runs", tmp_path / "none",
                     "--out", out]) == 0
        text = out.read_text()
        assert "bench-seed" in text
        assert "bench/throughput/batch" in text
        assert "bench/observability/recorded" in text

    def test_report_on_empty_store_without_bench_seed(self, tmp_path):
        out = tmp_path / "report.md"
        assert _run(["report", "--runs", tmp_path / "none",
                     "--no-bench-seed", "--out", out]) == 0
        assert "no persisted runs" in out.read_text()
