#!/usr/bin/env python
"""Quickstart: detect quantile-outstanding keys in a synthetic stream.

Build a QuantileFilter, stream key-value pairs through it, and get
outstanding-key reports the moment they qualify — the paper's
"online insertion + online query" model in ~30 lines.

Run:  python examples/quickstart.py
"""

import random

from repro import Criteria, QuantileFilter, compute_ground_truth


def main():
    # Report any key whose 95 %-quantile value exceeds 200 (ms), after a
    # rank slack of epsilon = 10 items (suppresses one-off spikes).
    criteria = Criteria(delta=0.95, threshold=200.0, epsilon=10.0)

    # 64 KB total: ~80 % candidate part, ~20 % Count-Sketch vague part.
    qf = QuantileFilter(criteria, memory_bytes=64 * 1024, seed=7)

    # Synthetic stream: keys 0-4 are slow services (latencies ~ 500 ms),
    # keys 5-499 are healthy (latencies < 150 ms).
    rng = random.Random(42)
    items = []
    for _ in range(100_000):
        key = rng.randrange(500)
        value = rng.gauss(500, 50) if key < 5 else rng.uniform(1, 150)
        items.append((key, value))

    first_report_at = {}
    for index, (key, value) in enumerate(items):
        report = qf.insert(key, value)
        if report is not None and report.key not in first_report_at:
            first_report_at[report.key] = index

    print(f"processed {qf.items_processed:,} items "
          f"in {qf.nbytes:,} modelled bytes")
    print(f"candidate-part hit rate: {qf.candidate_hit_rate():.1%}")
    print(f"outstanding keys: {sorted(qf.reported_keys)}")
    for key in sorted(first_report_at):
        print(f"  key {key}: first reported at item #{first_report_at[key]:,}")

    # Sanity-check against the exact (memory-hungry) oracle.
    truth = compute_ground_truth(items, criteria)
    print(f"exact oracle agrees: {qf.reported_keys == truth}")


if __name__ == "__main__":
    main()
