#!/usr/bin/env python
"""Distributed monitoring: shard-local filters merged at an aggregator.

A load balancer sprays one logical stream across N monitor shards; each
shard runs its own QuantileFilter (identical configuration and seed, so
their hash families correspond).  Periodically the aggregator merges
the shards into a global view — Count-Sketch linearity makes the vague
parts merge exactly, and candidate entries reunify per key.

The payoff demonstrated here: a key whose per-shard traffic sits *under*
the report threshold on every shard is invisible to shard-local
detection, but crosses the threshold in the merged view — the
distributed anomaly only the aggregate can see.

Run:  python examples/distributed_monitoring.py
"""

import random

from repro import Criteria, QuantileFilter, compute_ground_truth

CRITERIA = Criteria(delta=0.95, threshold=200.0, epsilon=30.0)
NUM_SHARDS = 4
SHARD_KWARGS = dict(memory_bytes=32 * 1024, counter_kind="float", seed=17)


def make_stream(rng: random.Random, n_items: int):
    """One logical stream: keys 0-4 hot; key 99 is the *distributed*
    anomaly — hot, but so evenly spread that no single shard sees enough
    of it to report alone."""
    items = []
    for i in range(n_items):
        if i % 397 == 0:
            # ~100 occurrences total -> ~25 per shard: Qweight ~475 per
            # shard, under the 600 report threshold; ~1900 merged.
            items.append((99, 500.0))
            continue
        key = rng.randrange(300)
        value = 500.0 if key < 5 else rng.uniform(0, 150)
        items.append((key, value))
    return items


def main():
    rng = random.Random(21)
    items = make_stream(rng, 40_000)

    # Spray round-robin across shards (what an L4 balancer does).
    shards = [QuantileFilter(CRITERIA, **SHARD_KWARGS)
              for _ in range(NUM_SHARDS)]
    for index, (key, value) in enumerate(items):
        shards[index % NUM_SHARDS].insert(key, value)

    shard_reports = [sorted(shard.reported_keys) for shard in shards]
    print("shard-local reports:")
    for shard_id, reported in enumerate(shard_reports):
        print(f"  shard {shard_id}: {reported}")

    # Aggregate: merge all shards into shard 0's filter.
    aggregate = shards[0]
    for shard in shards[1:]:
        aggregate.merge(shard)
    print(f"\nafter merge: key 99 global Qweight = "
          f"{aggregate.query(99):.0f} "
          f"(report threshold {CRITERIA.report_threshold:.0f})")

    # One more arrival anywhere triggers the global report.
    report = aggregate.insert(99, 500.0)
    print(f"next item for key 99 reports it: {report is not None}")

    truth = compute_ground_truth(items, CRITERIA)
    union_local = set().union(*(set(r) for r in shard_reports))
    print(f"\nground truth over the logical stream: {sorted(truth)}")
    print(f"caught by some shard locally:          {sorted(union_local)}")
    missed_locally = truth - union_local
    print(f"visible only to the aggregate:         {sorted(missed_locally)}")


if __name__ == "__main__":
    main()
