#!/usr/bin/env python
"""Edge-sensor analytics with multiple criteria per key (Sec. III-C).

The paper's third application: sensors at the network edge produce
value streams, and a quantile anomaly signals an event worth attention.
This example monitors city noise sensors under TWO simultaneous
criteria per sensor —

* **sustained**: 80 % of recent readings above 70 dB (persistent noise),
* **spike**: 99 %-quantile above 90 dB (loud bursts),

using :class:`~repro.core.multi_criteria.MultiCriteriaFilter`'s
key-tuple expansion, and prints which criterion fired for which sensor.

Run:  python examples/sensor_analytics.py
"""

import math
import random

from repro import Criteria
from repro.core.multi_criteria import MultiCriteriaFilter

SUSTAINED = Criteria(delta=0.2, threshold=70.0, epsilon=8.0)
SPIKE = Criteria(delta=0.99, threshold=90.0, epsilon=8.0)
CRITERIA_NAMES = ["sustained>70dB", "spike>90dB"]


def sensor_reading(sensor: int, tick: int, rng: random.Random) -> float:
    """Synthetic dB readings with three behaviour classes.

    Sensors 0-2: construction sites — consistently loud.
    Sensors 3-5: nightclub districts — quiet with loud bursts.
    Others: residential background noise.
    """
    if sensor < 3:
        return rng.gauss(78.0, 4.0)
    if sensor < 6:
        base = rng.gauss(55.0, 5.0)
        burst = 45.0 if rng.random() < 0.05 else 0.0
        return base + burst
    daily = 5.0 * math.sin(tick / 200.0)  # day/night cycle
    return rng.gauss(52.0, 6.0) + daily


def main():
    rng = random.Random(2024)
    mcf = MultiCriteriaFilter([SUSTAINED, SPIKE], memory_bytes=64 * 1024,
                              seed=3)

    first_alarm = {}
    for tick in range(4_000):
        for sensor in range(60):
            value = sensor_reading(sensor, tick, rng)
            for criterion_index, report in mcf.insert(sensor, value):
                alarm = (sensor, criterion_index)
                if alarm not in first_alarm:
                    first_alarm[alarm] = tick

    print("criterion fired per sensor (first alarm tick):")
    for (sensor, criterion_index), tick in sorted(first_alarm.items()):
        print(f"  sensor {sensor:2d}  {CRITERIA_NAMES[criterion_index]:15s}"
              f"  tick {tick}")

    print("\nsummary:")
    for index, name in enumerate(CRITERIA_NAMES):
        sensors = sorted(mcf.reported_by_criterion[index])
        print(f"  {name}: sensors {sensors}")

    construction = set(range(3))
    clubs = set(range(3, 6))
    sustained_hits = mcf.reported_by_criterion[0]
    spike_hits = mcf.reported_by_criterion[1]
    print("\nexpected behaviour check:")
    print(f"  construction sites flagged sustained: "
          f"{construction <= sustained_hits}")
    print(f"  nightclub districts flagged spiky:    "
          f"{clubs <= spike_hits}")
    print(f"  residential sensors quiet:            "
          f"{not any(s >= 6 for s in sustained_hits | spike_hits)}")


if __name__ == "__main__":
    main()
