#!/usr/bin/env python
"""Sharded monitoring: one logical stream, N shard filters, one answer.

Where ``distributed_monitoring.py`` sprays items round-robin (each key
visible on every shard), this example partitions by key with the
bucket-affine :class:`~repro.parallel.sharded.ShardedQuantileFilter`:
every key lives on exactly one shard, so shard-local reports ARE the
global reports — no aggregation step is needed for detection, and the
merged view exists purely for global queries.

The second act hands the same trace to the process-backed
:class:`~repro.parallel.pipeline.ParallelPipeline` — the deployment
shape for multi-core hosts — and checks it reproduces the in-process
sharded answer exactly.

Run:  python examples/sharded_monitoring.py
"""

from repro import Criteria, ParallelPipeline, ShardedQuantileFilter
from repro.detection.ground_truth import compute_ground_truth
from repro.streams.caida_like import CaidaLikeConfig, generate_caida_like_trace

CRITERIA = Criteria(delta=0.95, threshold=200.0, epsilon=30.0)
NUM_SHARDS = 4
GEOMETRY = dict(num_buckets=4_096, vague_width=2_048, seed=17)


def main():
    trace = generate_caida_like_trace(
        CaidaLikeConfig(num_items=120_000, num_keys=3_000, seed=21)
    )
    truth = compute_ground_truth(zip(trace.keys.tolist(),
                                     trace.values.tolist()), CRITERIA)

    # --- in-process sharding: detection without any merge step -------
    sharded = ShardedQuantileFilter(CRITERIA, NUM_SHARDS, engine="batch",
                                    **GEOMETRY)
    reported = sharded.process(trace.keys, trace.values)
    per_shard = sharded.shard_items()
    print(f"{len(trace)} items over {NUM_SHARDS} shards "
          f"(per-shard items: {per_shard})")
    print(f"reported {len(reported)} keys; "
          f"ground truth has {len(truth)}; "
          f"missed {len(truth - reported)}, "
          f"spurious {len(reported - truth)}")

    # The merged view serves global point queries (same hash families
    # on every shard make the fold exact).
    merged = sharded.merged()
    hottest = max(reported, key=merged.query)
    print(f"hottest reported key {hottest}: "
          f"global Qweight {merged.query(hottest):.0f} "
          f"(report threshold {CRITERIA.report_threshold:.0f})")

    # --- process-backed pipeline: same answer, worker processes ------
    pipeline = ParallelPipeline(CRITERIA, NUM_SHARDS, engine="batch",
                                **GEOMETRY)
    result = pipeline.run(trace.keys, trace.values)
    print(f"pipeline: {result.items} items in {result.seconds:.2f}s "
          f"({result.mops:.2f} MOPS) across {result.chunks} chunks")
    print(f"pipeline reports match in-process sharding: "
          f"{result.reported_keys == reported}")


if __name__ == "__main__":
    main()
