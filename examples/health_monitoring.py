#!/usr/bin/env python
"""Health monitoring: a drift-injected stream flips ``/healthz``.

The observability layer can *measure* a filter; this example shows it
*judging* one.  A :class:`~repro.observability.HealthMonitor` watches a
standalone filter from the side — a drift detector on the raw values
(the fraction exceeding the criteria threshold ``T``) plus a shadow
accuracy estimator tracking a hash-sampled key slice exactly — while a
:class:`~repro.observability.HealthServer` serves the verdict over
HTTP.

Phase 1 feeds a benign :mod:`repro.streams.drift` trace (no anomalous
keys): the drift detector locks its reference exceedance fraction and
``/healthz`` reports ``ok``.  Phase 2 feeds the same workload with a
large anomalous key set injected, shifting the exceedance fraction far
from the reference; the ``exceedance_drift`` signal flips to
``degraded`` and names itself in the report's reasons — the page an
operator would receive.

Run:  python examples/health_monitoring.py
"""

import json
import urllib.request

from repro import Criteria, QuantileFilter
from repro.observability import FilterServeSource, HealthMonitor, HealthServer
from repro.streams.drift import DriftConfig, generate_drift_trace

CRITERIA = Criteria(delta=0.9, threshold=300.0, epsilon=5.0)
GEOMETRY = dict(num_buckets=256, bucket_size=4, vague_width=1_024, seed=7)

#: Phase 1 is stationary (no anomalous keys); phase 2 is the same
#: workload with a large anomalous set injected, so the value-vs-T
#: exceedance fraction visibly shifts.
BENIGN = DriftConfig(
    num_items=12_000, num_keys=400, num_phases=1,
    anomalous_per_phase=0, seed=3,
)
INJECTED = DriftConfig(
    num_items=12_000, num_keys=400, num_phases=1,
    anomalous_per_phase=120, anomaly_boost=25.0, seed=3,
)


def main():
    benign = generate_drift_trace(BENIGN)
    injected = generate_drift_trace(INJECTED)

    filt = QuantileFilter(CRITERIA, **GEOMETRY)
    monitor = HealthMonitor.for_filter(filt, drift_window_items=1_024)
    source = FilterServeSource(filt, monitor=monitor)

    with HealthServer(source) as server:
        def healthz():
            with urllib.request.urlopen(server.url + "/healthz") as resp:
                return json.load(resp)

        # Phase 1: stationary traffic establishes the drift reference.
        for i in range(len(benign)):
            filt.insert(int(benign.keys[i]), float(benign.values[i]))
        monitor.observe_batch(benign.keys, benign.values)
        baseline = healthz()
        drift_ok = next(
            s for s in baseline["signals"] if s["name"] == "exceedance_drift"
        )
        print(f"baseline verdict: {baseline['verdict']}")
        print(f"baseline exceedance {monitor.drift.last_fraction:.1%} "
              f"(reference {monitor.drift.reference:.1%})")
        print(f"baseline drift signal ok: {drift_ok['verdict'] == 'ok'}")

        # Phase 2: anomalies injected — concept drift across T.
        for i in range(len(injected)):
            filt.insert(int(injected.keys[i]), float(injected.values[i]))
        monitor.observe_batch(injected.keys, injected.values)
        drifted = healthz()
        drift_signal = next(
            s for s in drifted["signals"] if s["name"] == "exceedance_drift"
        )
        print(f"\ndrifted verdict: {drifted['verdict']}")
        print(f"drifted exceedance {monitor.drift.last_fraction:.1%} "
              f"(z = {monitor.drift.last_z:.1f})")
        print(f"drift signal degraded after injection: "
              f"{drift_signal['verdict'] == 'degraded'}")
        print(f"triggering signal named in reasons: "
              f"{any(r.startswith('exceedance_drift:') for r in drifted['reasons'])}")
        for reason in drifted["reasons"]:
            print(f"  reason: {reason}")

        # The shadow sampler scores live accuracy on its exact slice.
        score = monitor.last_shadow_score
        print(f"\nshadow slice: {score.sampled_keys} keys tracked exactly, "
              f"precision {score.precision:.2f} "
              f"[{score.precision_low:.2f}, {score.precision_high:.2f}], "
              f"recall {score.recall:.2f} "
              f"[{score.recall_low:.2f}, {score.recall_high:.2f}]")

        # And /metrics carries the verdict for any Prometheus scraper.
        with urllib.request.urlopen(server.url + "/metrics") as resp:
            metrics = resp.read().decode()
        status_line = next(
            line for line in metrics.splitlines()
            if line.startswith("qf_health_status")
        )
        print(f"scraped: {status_line} (0 ok / 1 degraded / 2 critical)")


if __name__ == "__main__":
    main()
