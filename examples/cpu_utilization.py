#!/usr/bin/env python
"""System-performance monitoring with dynamic criteria (Secs. I & III-C).

The paper's second application: if a CPU sits at 99 % utilisation for
half the time during what should be a light-load period, that is a
0.5-quantile anomaly.  This example monitors a fleet of hosts and
**changes the criteria mid-stream** when the data centre enters its
light-load night window — the dynamic-modification mode Figs. 13-15
evaluate.

Run:  python examples/cpu_utilization.py
"""

import random

from repro import Criteria, QuantileFilter

# Daytime: flag hosts whose median utilisation exceeds 95 % (saturated).
DAY = Criteria(delta=0.5, threshold=95.0, epsilon=12.0)
# Night window: anything with a median above 60 % is suspicious.
NIGHT = Criteria(delta=0.5, threshold=60.0, epsilon=12.0)

HOSTS = 200
TICKS = 6_000
NIGHT_STARTS = 3_000


def utilisation(host: int, tick: int, rng: random.Random) -> float:
    """Hosts 0-2 are saturated all day; host 3 runs a rogue night job;
    the rest follow the day/night load pattern."""
    night = tick >= NIGHT_STARTS
    if host < 3:
        return min(100.0, rng.gauss(98.0, 1.5))
    if host == 3:
        return rng.gauss(80.0, 5.0) if night else rng.gauss(40.0, 10.0)
    base = 20.0 if night else 55.0
    return max(0.0, min(100.0, rng.gauss(base, 12.0)))


def main():
    rng = random.Random(99)
    qf = QuantileFilter(DAY, memory_bytes=32 * 1024, seed=5)

    alarms = []
    for tick in range(TICKS):
        if tick == NIGHT_STARTS:
            # Entering the light-load window: tighten every host's
            # criteria.  Per the paper, modification deletes the key's
            # accumulated Qweight so stale daytime data cannot trigger
            # night alarms.
            for host in range(HOSTS):
                qf.modify_criteria(host, NIGHT)
            print(f"tick {tick}: switched to night criteria "
                  f"(median > {NIGHT.threshold:.0f}%)")
        for host in range(HOSTS):
            report = qf.insert(host, utilisation(host, tick, rng))
            if report is not None:
                alarms.append((tick, host))

    day_alarms = sorted({host for tick, host in alarms if tick < NIGHT_STARTS})
    night_alarms = sorted({host for tick, host in alarms if tick >= NIGHT_STARTS})
    print(f"\nday alarms  (saturated hosts):  {day_alarms}")
    print(f"night alarms (incl. rogue job): {night_alarms}")

    print("\nexpected behaviour check:")
    print(f"  saturated hosts 0-2 caught during the day: "
          f"{set(day_alarms) >= {0, 1, 2}}")
    print(f"  rogue night job on host 3 caught at night: "
          f"{3 in night_alarms}")
    print(f"  host 3 NOT flagged during the day:         "
          f"{3 not in day_alarms}")


if __name__ == "__main__":
    main()
