#!/usr/bin/env python
"""Flight recording: a health flip dumps a bundle, replay proves it.

This is :mod:`examples.health_monitoring` with the black box attached.
A :class:`~repro.observability.FlightRecorder` rides the filter's
insert path at chunk granularity, retaining the last few raw chunks
plus a base snapshot so ``base + chunks == live filter`` at every
boundary.  A :class:`~repro.observability.HealthMonitor` watches the
same filter from the side; because the recorder is wired into it,
every health report feeds the recorder's trigger policy.

Phase 1 feeds a benign :mod:`repro.streams.drift` trace — the drift
detector locks its reference and the verdict is ``ok``.  Phase 2 feeds
the same workload with a large anomalous key set injected; the
``exceedance_drift`` signal flips the verdict to ``degraded``, and the
flip **auto-dumps an incident bundle** — the captured stream window,
forensic probes and expected outcomes, gzipped with a sidecar
manifest.  The example then closes the loop the way an engineer
triaging the incident would: it loads the bundle back, replays the
window chunk-for-chunk through the same engine entry points, and
checks the reports, final state fingerprint and structural health
verdict reproduce bit-identically.

Run:  python examples/recorded_monitoring.py [incident-dir]
"""

import sys
import tempfile

from repro import Criteria, QuantileFilter
from repro.core.inspect import structural_probe
from repro.observability import (
    FlightRecorder,
    HealthMonitor,
    list_incidents,
    replay_bundle,
)
from repro.observability.instrument import observe_filter
from repro.streams.drift import DriftConfig, generate_drift_trace

CRITERIA = Criteria(delta=0.9, threshold=300.0, epsilon=5.0)
GEOMETRY = dict(num_buckets=256, bucket_size=4, vague_width=1_024, seed=7)

#: Chunk stride for both the feed and the recorder ring — a realistic
#: pipeline chunk size, small enough that the ring rotates a few times.
STRIDE = 2_048

#: Phase 1 is stationary (no anomalous keys); phase 2 is the same
#: workload with a large anomalous set injected, so the value-vs-T
#: exceedance fraction visibly shifts.
BENIGN = DriftConfig(
    num_items=12_000, num_keys=400, num_phases=1,
    anomalous_per_phase=0, seed=3,
)
INJECTED = DriftConfig(
    num_items=12_000, num_keys=400, num_phases=1,
    anomalous_per_phase=120, anomaly_boost=25.0, seed=3,
)


def main(out_dir=None):
    if out_dir is None:
        out_dir = tempfile.mkdtemp(prefix="qf-incidents-")
    benign = generate_drift_trace(BENIGN)
    injected = generate_drift_trace(INJECTED)

    filt = QuantileFilter(CRITERIA, **GEOMETRY)
    registry = observe_filter(filt)
    recorder = FlightRecorder(
        filt, max_chunks=16, chunk_items=STRIDE, incident_dir=out_dir,
        config={"example": "recorded_monitoring", "stride": STRIDE},
        registry=registry,
    )
    monitor = HealthMonitor.for_filter(
        filt, drift_window_items=1_024, recorder=recorder
    )

    def feed_phase(trace):
        # The recorder IS the insert path while recording: each stride
        # is captured, then applied through the same insert_many an
        # unrecorded feeder would use.
        for begin in range(0, len(trace), STRIDE):
            keys = [int(k) for k in trace.keys[begin:begin + STRIDE]]
            values = [float(v) for v in trace.values[begin:begin + STRIDE]]
            recorder.feed(keys, values)
            monitor.observe_batch(keys, values)
        # One health report per phase; the monitor forwards it to the
        # recorder's trigger policy, which dumps on a verdict flip.
        return monitor.report(
            registry.snapshot(),
            probe=structural_probe(filt),
            reported_keys=set(filt.reported_keys),
        )

    baseline = feed_phase(benign)
    print(f"baseline verdict: {baseline.verdict}")
    print(f"baseline exceedance {monitor.drift.last_fraction:.1%} "
          f"(reference {monitor.drift.reference:.1%})")
    print(f"recorder window: {recorder.retained_chunks} chunks / "
          f"{recorder.retained_items} items "
          f"(~{recorder.retained_bytes / 1024:.0f} KiB)")

    drifted = feed_phase(injected)
    print(f"\ndrifted verdict: {drifted.verdict}")
    for reason in drifted.reasons:
        print(f"  reason: {reason}")

    incidents = list_incidents(out_dir)
    assert incidents, "the verdict flip should have dumped a bundle"
    newest = incidents[0]
    print(f"\nincident bundle: {newest['bundle']}")
    print(f"  trigger: {newest['reason']}")
    print(f"  window: {newest['window_chunks']} chunks / "
          f"{newest['window_items']} items "
          f"(stream position {newest['items_processed']})")
    print(f"  engine: {newest['engine']}, "
          f"git revision: {newest['git_revision']}")

    # Close the loop: rebuild the filter from the bundle's base
    # snapshot, re-feed the captured chunks, and verify everything —
    # reports, counters, state fingerprint, health verdict — matches.
    result = replay_bundle(newest["path"])
    print(f"\n{result.summary()}")
    print(f"replay matches capture bit-identically: {result.ok}")
    return result


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
