#!/usr/bin/env python
"""Network tail-latency monitoring (the paper's motivating application).

Scenario: a monitor watches per-flow latencies on a CAIDA-like backbone
trace and must immediately flag flows violating an SLA — "99 % latency
<= 200 ms" for ordinary flows, and a tighter "95 % <= 100 ms" for
latency-sensitive UDP flows (the paper's per-key-criteria mode,
Sec. III-C).

The example also contrasts QuantileFilter's online reports with the
offline-query SOTA path (SQUAD behind an insert+query adapter) on the
same stream, printing the accuracy and speed of both.

Run:  python examples/network_latency_monitoring.py
"""

import time

from repro import Criteria, QuantileFilter
from repro.baselines.squad import Squad
from repro.detection.adapters import QueryOnInsertAdapter
from repro.detection.ground_truth import GroundTruthDetector
from repro.metrics.accuracy import score_sets
from repro.streams.caida_like import CaidaLikeConfig, generate_caida_like_trace

TCP_SLA = Criteria(delta=0.99, threshold=200.0, epsilon=20.0)
UDP_SLA = Criteria(delta=0.95, threshold=100.0, epsilon=20.0)


def flow_is_udp(key: int) -> bool:
    """Pretend ~20 % of flows are latency-sensitive UDP (VoIP/video)."""
    return key % 5 == 0


def main():
    trace = generate_caida_like_trace(
        CaidaLikeConfig(num_items=150_000, num_keys=4_000, seed=11)
    )
    print(f"trace: {len(trace):,} packets, {trace.distinct_keys:,} flows, "
          f"{trace.anomaly_fraction(200.0):.1%} of packets over 200 ms")

    # --- QuantileFilter: online detection with per-key criteria -------
    qf = QuantileFilter(TCP_SLA, memory_bytes=128 * 1024, seed=1)
    oracle = GroundTruthDetector(TCP_SLA)

    start = time.perf_counter()
    for key, value in trace.items():
        criteria = UDP_SLA if flow_is_udp(key) else TCP_SLA
        qf.insert(key, value, criteria=criteria)
    qf_seconds = time.perf_counter() - start

    # Exact reference under the same per-key criteria.
    for key in set(trace.keys.tolist()):
        if flow_is_udp(key):
            oracle.set_key_criteria(key, UDP_SLA)
    for key, value in trace.items():
        oracle.process(key, value)

    score = score_sets(qf.reported_keys, oracle.reported_keys)
    print("\nQuantileFilter (online, per-key SLAs)")
    print(f"  memory: {qf.nbytes / 1024:.0f} KB, "
          f"throughput: {len(trace) / qf_seconds / 1e6:.2f} MOPS")
    print(f"  SLA violators found: {len(qf.reported_keys)} "
          f"(true: {len(oracle.reported_keys)})")
    print(f"  precision {score.precision:.3f}  recall {score.recall:.3f}  "
          f"F1 {score.f1:.3f}")

    # --- SOTA path: offline-query structure forced online -------------
    squad = QueryOnInsertAdapter(
        Squad(memory_bytes=128 * 1024, seed=1), TCP_SLA
    )
    start = time.perf_counter()
    for key, value in trace.items():
        squad.process(key, value)
    squad_seconds = time.perf_counter() - start
    squad_score = score_sets(squad.reported_keys, oracle.reported_keys)

    print("\nSQUAD + insert-then-query adapter (same memory, single SLA)")
    print(f"  throughput: {len(trace) / squad_seconds / 1e6:.2f} MOPS "
          f"({qf_seconds and squad_seconds / qf_seconds:.1f}x slower)")
    print(f"  precision {squad_score.precision:.3f}  "
          f"recall {squad_score.recall:.3f}  F1 {squad_score.f1:.3f}")


if __name__ == "__main__":
    main()
