#!/usr/bin/env python
"""Observed monitoring: a sharded run with full telemetry attached.

The other examples show *what* the filter detects; this one shows how
to watch it do so.  A :class:`~repro.parallel.pipeline.ParallelPipeline`
built with ``collect_stats=True`` gives every shard worker its own
:class:`~repro.observability.StatsRegistry` (pull-model metrics over
the filter's existing accounting attributes — the insert hot path is
untouched).  Mid-run, ``collect_stats_view()`` takes a consistent cut
across all workers; at the end the per-shard snapshots and their
aggregate ride home on the :class:`PipelineResult`, and the aggregate
renders straight into the Prometheus text exposition format.

The same snapshot is what ``repro stats`` prints, and every metric
shown here is documented in ``docs/observability.md``.

Run:  python examples/observed_monitoring.py
"""

from repro import Criteria, ParallelPipeline, render_prometheus
from repro.streams.caida_like import CaidaLikeConfig, generate_caida_like_trace

CRITERIA = Criteria(delta=0.9, threshold=150.0, epsilon=10.0)
NUM_SHARDS = 4
GEOMETRY = dict(num_buckets=2_048, vague_width=1_024, seed=17)


def main():
    trace = generate_caida_like_trace(
        CaidaLikeConfig(num_items=80_000, num_keys=2_000, seed=21)
    )
    half = len(trace) // 2

    pipeline = ParallelPipeline(CRITERIA, NUM_SHARDS, engine="batch",
                                chunk_items=8_192, collect_stats=True,
                                **GEOMETRY)
    with pipeline:
        # First half, then a live look at the running workers.
        pipeline.feed(trace.keys[:half], trace.values[:half])
        view = pipeline.collect_stats_view()
        print(f"mid-run: {view['qf_items_total']:.0f} items across "
              f"{view['pipeline_workers_alive']:.0f} live workers, "
              f"candidate hit rate {view['qf_candidate_hit_rate']:.3f}, "
              f"{view['pipeline_reported_keys']:.0f} keys reported so far")

        pipeline.feed(trace.keys[half:], trace.values[half:])
        result = pipeline.finish()

    # Per-shard registries vs their aggregate: counters sum exactly.
    per_shard_items = [s["qf_items_total"] for s in result.per_shard_stats]
    print(f"per-shard qf_items_total {per_shard_items} "
          f"-> aggregate {result.stats['qf_items_total']:.0f}")
    print(f"aggregate equals shard sum: "
          f"{result.stats['qf_items_total'] == sum(per_shard_items)}")
    print(f"items conserved end to end: "
          f"{result.stats['qf_items_total'] == float(len(trace))}")
    print(f"reported {len(result.reported_keys)} outstanding keys "
          f"({result.mops:.2f} MOPS)")

    print("\n--- Prometheus snapshot ---")
    print(render_prometheus(result.stats))


if __name__ == "__main__":
    main()
