#!/usr/bin/env python
"""Alerting end to end: drift trips a rule, the rule dumps a bundle.

This is :mod:`examples.recorded_monitoring` with the declarative alert
layer on top.  A :class:`~repro.observability.MetricStore` collects the
filter's registry snapshot plus the derived health samples once per
synthetic tick, and an :class:`~repro.observability.AlertEngine` runs
the shipped rule pack (:func:`~repro.observability.default_rules`)
plus one strict critical drift rule against the retained history.

Phase 1 feeds a benign :mod:`repro.streams.drift` trace — every rule
stays ``inactive``.  Phase 2 injects a large anomalous key set; the
exceedance drift z-score climbs, the strict rule's condition holds
through its ``for:`` window (the example advances a synthetic clock,
so no wall-clock waiting), and the rule walks
``inactive -> pending -> firing``.  Because the rule is ``critical``
and a :class:`~repro.observability.FlightRecorder` is attached, the
firing transition **auto-dumps an incident bundle** tagged
``alert:<rule>`` — the same forensic capsule a verdict flip produces,
now triggered by a declarative rule instead of a hard-coded policy.

Run:  python examples/alerted_monitoring.py [incident-dir]
"""

import sys
import tempfile

from repro import Criteria, QuantileFilter
from repro.core.inspect import structural_probe
from repro.observability import (
    AlertEngine,
    AlertRule,
    FlightRecorder,
    HealthMonitor,
    MetricStore,
    default_rules,
    list_incidents,
)
from repro.observability.instrument import observe_filter
from repro.streams.drift import DriftConfig, generate_drift_trace

CRITERIA = Criteria(delta=0.9, threshold=300.0, epsilon=5.0)
GEOMETRY = dict(num_buckets=256, bucket_size=4, vague_width=1_024, seed=7)

STRIDE = 2_048

#: Synthetic seconds per feed stride: `for:` durations elapse over the
#: run without the example sleeping.
TICK_SECONDS = 10.0

BENIGN = DriftConfig(
    num_items=12_000, num_keys=400, num_phases=1,
    anomalous_per_phase=0, seed=3,
)
INJECTED = DriftConfig(
    num_items=12_000, num_keys=400, num_phases=1,
    anomalous_per_phase=120, anomaly_boost=25.0, seed=3,
)

#: A stricter twin of the shipped report-rate-drift rule: critical (so
#: it dumps a bundle) and with a `for:` short enough that the injected
#: phase holds it to firing within this example's run.
STRICT_DRIFT = AlertRule(
    name="drift-critical",
    expr="max(qf_drift_z[60s]) >= 4",
    for_seconds=20.0,
    resolve=2.0,
    severity="critical",
    description="Strict drift rule for the example: fires (and dumps "
    "an incident bundle) once the z-score holds above 4 for 20s.",
)


def main(out_dir=None):
    if out_dir is None:
        out_dir = tempfile.mkdtemp(prefix="qf-alerts-")
    benign = generate_drift_trace(BENIGN)
    injected = generate_drift_trace(INJECTED)

    filt = QuantileFilter(CRITERIA, **GEOMETRY)
    registry = observe_filter(filt)
    recorder = FlightRecorder(
        filt, max_chunks=16, chunk_items=STRIDE, incident_dir=out_dir,
        config={"example": "alerted_monitoring", "stride": STRIDE},
        registry=registry,
    )
    monitor = HealthMonitor.for_filter(
        filt, drift_window_items=1_024, recorder=recorder
    )

    clock = [0.0]
    store = MetricStore(clock=lambda: clock[0])
    engine = AlertEngine(store, default_rules() + [STRICT_DRIFT])

    def tick():
        """One collect + evaluate step on the synthetic clock."""
        monitor.report(
            registry.snapshot(),
            probe=structural_probe(filt),
            reported_keys=set(filt.reported_keys),
        )
        snapshot = registry.snapshot()
        snapshot.update(monitor.health_samples())
        store.collect(snapshot, now=clock[0])
        transitions = engine.evaluate(now=clock[0])
        for transition in transitions:
            print(f"  t={clock[0]:>5g}s  {transition}")
        # Critical rules entering `firing` dump forensic bundles.
        recorder.observe_alerts(transitions)
        clock[0] += TICK_SECONDS
        return transitions

    def feed_phase(trace):
        for begin in range(0, len(trace), STRIDE):
            keys = [int(k) for k in trace.keys[begin:begin + STRIDE]]
            values = [float(v) for v in trace.values[begin:begin + STRIDE]]
            recorder.feed(keys, values)
            monitor.observe_batch(keys, values)
            tick()

    print(f"phase 1: benign ({len(benign)} items)")
    feed_phase(benign)
    firing = [name for name, state in engine.states().items()
              if state == "firing"]
    print(f"  firing after benign phase: {firing or 'none'}")

    print(f"\nphase 2: injected anomalies ({len(injected)} items)")
    feed_phase(injected)
    firing = engine.firing()
    print(f"  firing after injected phase: "
          f"{[rule.name for rule in firing] or 'none'}")
    assert any(rule.name == "drift-critical" for rule in firing), (
        "the strict drift rule should be firing after the injected phase"
    )

    report = engine.report()
    print(f"\nalert-layer verdict: {report.verdict}")
    for reason in report.reasons:
        print(f"  reason: {reason}")

    bundles = [m for m in list_incidents(out_dir)
               if str(m.get("reason", "")).startswith("alert:")]
    assert bundles, "the firing critical rule should have dumped a bundle"
    newest = bundles[0]
    print(f"\nincident bundle: {newest['bundle']}")
    print(f"  trigger: {newest['reason']}")
    print(f"  window: {newest['window_chunks']} chunks / "
          f"{newest['window_items']} items")
    print(f"\nstore accounting: {store.retained_points} points retained "
          f"across {len(store)} series "
          f"({store.points_ingested} ingested, "
          f"{store.points_evicted} evicted, ~{store.nbytes / 1024:.0f} KiB)")
    return engine


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
