#!/usr/bin/env python
"""Traced monitoring: spans, report provenance and latency histograms.

``observed_monitoring.py`` shows the always-on metrics tier; this
example turns on the debugging/audit tier.  A
:class:`~repro.parallel.pipeline.ParallelPipeline` built with
``collect_trace=True`` records every pipeline stage (feed, per-shard
batch insert, queue wait, merge, collect) as spans on one monotonic
timeline — master and worker processes included — and writes them as
Chrome trace-event JSON that https://ui.perfetto.dev renders as a
per-process flame chart.  ``collect_provenance=True`` (scalar engine)
attaches a :class:`~repro.observability.ReportProvenance` to every
report: where the key lived, how contended its bucket was, how fresh
the structure was.  Latency histograms (batch-insert time, report
queue delay) ride the ordinary stats snapshot and merge exactly across
shards.

The ``repro trace`` CLI subcommand packages this whole flow; the code
below is what it does, spelled out.

Run:  python examples/traced_monitoring.py
"""

import json

from repro import Criteria, ParallelPipeline
from repro.observability import (
    configure_json_logging,
    render_histogram_summaries,
)
from repro.streams.caida_like import CaidaLikeConfig, generate_caida_like_trace

CRITERIA = Criteria(delta=0.9, threshold=150.0, epsilon=10.0)
NUM_SHARDS = 2
TRACE_PATH = "traced_monitoring.trace.json"


def main():
    # Pipeline lifecycle logs as JSON lines on stderr (same shape as
    # the stats emitter, so one `jq` pipeline reads both).
    configure_json_logging()

    trace = generate_caida_like_trace(
        CaidaLikeConfig(num_items=40_000, num_keys=1_000, seed=21)
    )
    pipeline = ParallelPipeline(
        CRITERIA, NUM_SHARDS,
        engine="scalar",          # provenance needs Report objects
        memory_bytes=32 * 1024, chunk_items=4_096, seed=17,
        collect_trace=True, trace_sample_every=16,
        collect_provenance=True,
        collect_stats=True,
        collect_merged=True,      # forces a final pipeline_merge span
    )
    result = pipeline.run(trace.keys, trace.values)

    # --- spans ---------------------------------------------------------
    pipeline.tracer.write(TRACE_PATH, example="traced_monitoring")
    by_name = {}
    for event in result.trace_events:
        by_name.setdefault(event["name"], []).append(event)
    print(f"wrote {TRACE_PATH} ({len(result.trace_events)} events; "
          f"load it at https://ui.perfetto.dev):")
    for name in sorted(by_name):
        spans = [e for e in by_name[name] if e["ph"] == "X"]
        if spans:
            total_ms = sum(e["dur"] for e in spans) / 1e3
            print(f"  {name:<18} {len(spans):>3} spans, "
                  f"{total_ms:8.2f} ms total")
        else:
            print(f"  {name:<18} {len(by_name[name]):>3} instant events")

    # --- provenance ----------------------------------------------------
    records = result.report_records
    print(f"\n{len(records)} reports, every one with provenance:")
    for record in records[:3]:
        print(f"  {json.dumps(record)}")
    candidate = sum(
        1 for r in records if r["provenance"]["part"] == "candidate"
    )
    print(f"  ... {candidate} from the candidate part, "
          f"{len(records) - candidate} from the vague part")

    # --- latency histograms --------------------------------------------
    print("\nlatency histograms (merged across shards):")
    print(render_histogram_summaries(result.stats))


if __name__ == "__main__":
    main()
