#!/usr/bin/env python
"""Parameter tuning walkthrough (the Sec. V-D design space).

Sweeps QuantileFilter's three structural knobs on one trace and prints
accuracy/throughput tables, reproducing the reasoning behind the
paper's defaults (d = 3, b = 6, candidate:vague = 4:1):

* vague-part depth ``d`` — negligible accuracy effect, linear
  throughput cost (Figs. 9a/10a),
* bucket size ``b`` — negligible accuracy effect (Figs. 9b/10b),
* memory split — flat in the middle, degrading at the extremes
  (Fig. 11).

Run:  python examples/parameter_tuning.py
"""

from repro.experiments.config import build_trace, default_criteria_for
from repro.experiments.harness import (
    build_detector,
    format_rows,
    ground_truth_for,
    run_detection,
)

# Deliberately tight: at roomy budgets every setting scores F1 = 1.0 and
# the sweep is uninformative; ~1 KB sits mid-curve for this trace scale.
MEMORY = 1024
SCALE = 30_000


def sweep(trace, criteria, truth, parameter, values):
    rows = []
    for value in values:
        detector = build_detector(
            "quantilefilter", criteria, MEMORY, seed=1, **{parameter: value}
        )
        record = run_detection(detector, trace, truth)
        rows.append({
            parameter: round(value, 3) if isinstance(value, float) else value,
            "f1": round(record.score.f1, 4),
            "precision": round(record.score.precision, 4),
            "recall": round(record.score.recall, 4),
            "mops": round(record.mops, 3),
        })
    return rows


def main():
    trace = build_trace("internet", scale=SCALE, seed=0)
    criteria = default_criteria_for("internet")
    truth = ground_truth_for(trace, criteria)
    print(f"trace: {len(trace):,} items, {trace.distinct_keys:,} keys, "
          f"{len(truth)} true outstanding keys, budget {MEMORY // 1024} KB\n")

    print("-- vague-part depth d (paper default 3) --")
    print(format_rows(sweep(trace, criteria, truth, "depth",
                            [1, 2, 3, 5, 8, 12])))

    print("\n-- bucket size b (paper default 6) --")
    print(format_rows(sweep(trace, criteria, truth, "bucket_size",
                            [1, 2, 4, 6, 8, 12])))

    print("\n-- candidate fraction (paper default 0.8 = 4:1) --")
    print(format_rows(sweep(trace, criteria, truth, "candidate_fraction",
                            [1 / 17, 1 / 5, 1 / 2, 4 / 5, 16 / 17])))

    print("\nTakeaway: accuracy is flat across sane settings; pick d by "
          "throughput (small, odd) and avoid extreme memory splits — "
          "exactly the paper's d = 3, b = 6, 4:1 defaults.")


if __name__ == "__main__":
    main()
