#!/usr/bin/env python
"""Adaptive thresholds: a controller holds the report rate under drift.

The value threshold ``T`` is an operator constant everywhere else in
the package — pick it wrong (or let the stream drift away from it) and
the filter either floods or goes silent.  This demo closes that loop
with :class:`~repro.detection.ThresholdController`: two identical
filters consume the same concept-drift trace, one keeping its initial
``T`` and one retargeted live by a P²-backed controller tracking the
stream's ``q*``-quantile.

The readout is the *exceedance rate* ``P(v > T)`` per window — the
quantity quantile tracking controls (target ``1 − q*``).  Under drift
the fixed filter's rate runs away from the target while the controller
re-centres ``T`` every few thousand items and holds the rate inside
the band.  ``docs/adaptive-thresholds.md`` covers the tuning knobs
used below (deadband, dwell, warmup, horizon).

Run:  python examples/threshold_demo.py
"""

from repro import (
    BatchQuantileFilter,
    Criteria,
    ThresholdControlLoop,
    ThresholdController,
)
from repro.experiments.config import build_trace

TARGET_QUANTILE = 0.95  # hold P(v > T) at 5%
TARGET_RATE = 1.0 - TARGET_QUANTILE
SCALE = 60_000
CHUNK = 256  # control cadence: one controller decision per chunk
WINDOW = 2_048  # readout window for the exceedance rate
WARMUP_WINDOWS = 4  # skip the controller's cold-start windows

CRITERIA = Criteria(delta=0.95, threshold=300.0, epsilon=30.0)
GEOMETRY = dict(num_buckets=512, vague_width=1_024, seed=0)


def windowed_rates(chunk_stats):
    """Aggregate per-chunk (exceedances, items) into per-window rates."""
    rates, exceed, items = [], 0, 0
    for chunk_exceed, chunk_items in chunk_stats:
        exceed += chunk_exceed
        items += chunk_items
        if items >= WINDOW:
            rates.append(exceed / items)
            exceed = items = 0
    return rates


def main():
    trace = build_trace("drift", scale=SCALE, seed=3)

    fixed = BatchQuantileFilter(CRITERIA, **GEOMETRY)
    adaptive = BatchQuantileFilter(CRITERIA, **GEOMETRY)
    controller = ThresholdController(
        CRITERIA.threshold, TARGET_QUANTILE,
        backend="p2", deadband=0.05,
        min_dwell_items=512, warmup_items=384, horizon_items=1_024,
    )
    loop = ThresholdControlLoop(controller, adaptive)

    fixed_stats, adaptive_stats = [], []
    for at in range(0, len(trace), CHUNK):
        keys = trace.keys[at:at + CHUNK]
        values = trace.values[at:at + CHUNK]
        fixed.process(keys, values)
        adaptive.process(keys, values)
        # Score each chunk against the T in force while it was
        # processed, then let the controller observe it.
        fixed_stats.append(
            (int((values > CRITERIA.threshold).sum()), len(values)))
        adaptive_stats.append(
            (int((values > loop.threshold).sum()), len(values)))
        loop.observe_many(values)

    fixed_rates = windowed_rates(fixed_stats)[WARMUP_WINDOWS:]
    adaptive_rates = windowed_rates(adaptive_stats)[WARMUP_WINDOWS:]
    fixed_mean = sum(fixed_rates) / len(fixed_rates)
    adaptive_mean = sum(adaptive_rates) / len(adaptive_rates)

    print(f"target exceedance rate: {TARGET_RATE:.1%} "
          f"(q* = {TARGET_QUANTILE})")
    print(f"initial T: {CRITERIA.threshold:.0f}   final T: "
          f"{loop.threshold:.0f}   retargets: {loop.retargets}   "
          f"estimator restarts: {controller.restarts}")
    for seen, old, new in loop.trajectory[:3]:
        print(f"  after {seen:>6} observations: T {old:7.1f} -> {new:7.1f}")
    if loop.retargets > 3:
        print(f"  ... {loop.retargets - 3} more")

    print(f"\npost-warmup mean windowed rate, fixed T:    "
          f"{fixed_mean:.1%}")
    print(f"post-warmup mean windowed rate, controlled: "
          f"{adaptive_mean:.1%}")
    print(f"reports: fixed {fixed.report_count}, "
          f"controlled {adaptive.report_count}")

    controlled_ok = abs(adaptive_mean - TARGET_RATE) <= 0.25 * TARGET_RATE
    fixed_off = abs(fixed_mean - TARGET_RATE) > 0.50 * TARGET_RATE
    print(f"\ncontroller retargeted under drift:     "
          f"{loop.retargets > 0}")
    print(f"controlled rate within 25% of target:  {controlled_ok}")
    print(f"fixed-threshold rate off by over 50%:  {fixed_off}")


if __name__ == "__main__":
    main()
