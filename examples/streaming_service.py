#!/usr/bin/env python
"""A production-shaped monitor: sizing, windowing, alerts, checkpoints.

Puts the library's operational layer together the way a deployed latency
monitor would use it:

1. **Size** the structure from workload expectations
   (`repro.analysis.sizing.recommend`).
2. Run a **windowed** filter so stale data ages out
   (`WindowedQuantileFilter`, rotating panes).
3. Rate-limit operator pages with an **alert policy** and aggregate raw
   reports in a **report log**.
4. **Checkpoint** the (inner) filter so a restart does not forget
   accumulated Qweights — demonstrated with a plain QuantileFilter
   mid-stream save/restore.

Run:  python examples/streaming_service.py
"""

import random
import tempfile
from pathlib import Path

from repro import Criteria, QuantileFilter, load_filter, save_filter
from repro.analysis.sizing import recommend
from repro.core.windowed import WindowedQuantileFilter
from repro.detection.reports import AlertPolicy, ReportLog

CRITERIA = Criteria(delta=0.95, threshold=250.0, epsilon=15.0)
N_SERVICES = 1_000
SLOW_SERVICES = 12


def latency(service: int, rng: random.Random) -> float:
    if service < SLOW_SERVICES:
        return rng.gauss(400.0, 60.0)
    return rng.lognormvariate(3.5, 0.8)  # median ~33 ms, occasional spikes


def main():
    rng = random.Random(7)

    # 1. Size the structure from expectations.
    rec = recommend(
        expected_keys=N_SERVICES,
        expected_outstanding=SLOW_SERVICES,
        criteria=CRITERIA,
        expected_items_per_key=200.0,
    )
    print("sizing recommendation:")
    print(f"  candidate: {rec.num_buckets} buckets x {rec.bucket_size} "
          f"entries ({rec.candidate_bytes} B)")
    print(f"  vague:     {rec.depth} x {rec.vague_width} counters "
          f"({rec.vague_bytes} B)")
    print(f"  total:     {rec.total_bytes / 1024:.1f} KB "
          f"(vs {N_SERVICES * 16 / 1024:.0f} KB for exact tracking)")

    # 2 + 3. Windowed filter with alert hygiene.
    log = ReportLog()
    policy = AlertPolicy(cooldown_items=20_000)
    window = WindowedQuantileFilter(
        CRITERIA, rec.total_bytes * 2, window_items=60_000, mode="rotating",
        seed=1,
    )
    pages = []
    for tick in range(120_000):
        service = rng.randrange(N_SERVICES)
        report = window.insert(service, latency(service, rng))
        if report is not None:
            log.record(report)
            if policy.should_alert(report):
                pages.append(report)

    print(f"\nprocessed {window.items_processed:,} items, "
          f"{window.resets} window rotations")
    print(f"raw reports: {log.total_reports}, operator pages: {len(pages)} "
          f"({policy.alerts_suppressed} suppressed by cooldown)")
    print("noisiest services (reports, mean gap in items):")
    for summary in log.top(5):
        print(f"  service {summary.key:4d}: {summary.count:3d} reports, "
              f"gap ~{summary.mean_gap() or 0:.0f}")
    flagged = set(log.keys())
    print(f"all flagged services slow? "
          f"{all(s < SLOW_SERVICES for s in flagged)}  "
          f"(found {len(flagged)}/{SLOW_SERVICES})")

    # 4. Checkpoint / restore a filter mid-stream.
    qf = QuantileFilter(CRITERIA, memory_bytes=rec.total_bytes, seed=2)
    for _ in range(30_000):
        service = rng.randrange(N_SERVICES)
        qf.insert(service, latency(service, rng))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "monitor.npz"
        save_filter(qf, path)
        restored = load_filter(path)
        print(f"\ncheckpoint round-trip: {path.stat().st_size:,} B on disk, "
              f"{restored.items_processed:,} items of state, "
              f"reported keys preserved: "
              f"{restored.reported_keys == qf.reported_keys}")


if __name__ == "__main__":
    main()
