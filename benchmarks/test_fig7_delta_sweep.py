"""Fig. 7: accuracy of all algorithms across queried quantiles delta.

The paper finds changing delta does not erase QuantileFilter's lead;
larger delta (easier anomalies) narrows SketchPolymer's recall gap
without closing the overall gap.
"""

from benchmarks.conftest import persist
from repro.experiments.figures import fig7_delta_sweep


def test_fig7(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig7_delta_sweep,
        kwargs=dict(dataset="internet", scale=bench_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    print(persist(result))

    # At every delta, QF's F1 is at least the best baseline's.
    for delta in {r.extra["delta"] for r in result.records}:
        at_delta = [r for r in result.records if r.extra["delta"] == delta]
        qf_f1 = next(
            r.score.f1 for r in at_delta if r.algorithm == "quantilefilter"
        )
        best_other = max(
            (r.score.f1 for r in at_delta if r.algorithm != "quantilefilter"),
            default=0.0,
        )
        assert qf_f1 >= best_other - 0.05, f"delta={delta}"
