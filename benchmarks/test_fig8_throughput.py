"""Fig. 8: throughput (MOPS) of every algorithm vs memory.

The paper's Key Result 1: at >= 50 % F1, QuantileFilter processes items
10-100x faster than the insert-then-query SOTA path.  On this Python
substrate the absolute MOPS differ from the paper's C++ numbers, but
both sides run on the same substrate so the *ratio* is the reproducible
quantity (see DESIGN.md's substitution table).
"""

from benchmarks.conftest import persist
from repro.experiments.figures import fig8_throughput, speed_ratio_table


def test_fig8(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig8_throughput,
        kwargs=dict(dataset="internet", scale=bench_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    ratios = speed_ratio_table(result.records, min_f1=0.5)
    text = persist(result, {"key result 1: speed ratio at F1 >= 0.5": ratios})
    print(text)

    scalar_qf = [
        r for r in result.records
        if r.algorithm == "quantilefilter" and r.extra.get("engine") == "scalar"
    ]
    batch_qf = [
        r for r in result.records
        if r.algorithm == "quantilefilter" and r.extra.get("engine") == "batch"
    ]

    # Scalar QF beats every same-substrate baseline at every budget.
    for record in result.records:
        if record.algorithm == "quantilefilter":
            continue
        peer = next(
            r for r in scalar_qf if r.memory_bytes == record.memory_bytes
        )
        assert peer.mops > record.mops, (
            f"{record.algorithm} at {record.memory_bytes}"
        )

    # The numpy batch engine is faster still.
    assert min(r.mops for r in batch_qf) > max(r.mops for r in scalar_qf) * 1.5

    # Key result 1's direction: QF's advantage over the slowest accurate
    # baseline is large.
    speedups = [row["speedup"] for row in ratios if row["speedup"]]
    assert speedups and max(speedups) >= 2.0
