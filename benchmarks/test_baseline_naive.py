"""The Section II-D naive dual-Csketch, swept against QuantileFilter.

The paper motivates both techniques from the naive solution's two
defects — three sketch passes per item and an estimate-based reset that
compounds error.  This bench puts the strawman on the same
accuracy-vs-memory axis as the real thing, and compares throughput.
"""

from benchmarks.conftest import persist
from repro.experiments.config import (
    build_trace,
    default_criteria_for,
    memory_sweep_points,
)
from repro.experiments.harness import FigureResult, accuracy_sweep


def run_sweep(scale: int, seed: int = 0) -> FigureResult:
    trace = build_trace("internet", scale=scale, seed=seed)
    criteria = default_criteria_for("internet")
    records = accuracy_sweep(
        trace, criteria, ("quantilefilter", "naive"),
        memory_sweep_points(points=5),
        dataset="internet", seed=seed,
    )
    return FigureResult(
        figure="baseline-naive",
        description="QuantileFilter vs the Sec. II-D naive dual Csketch",
        records=records,
    )


def test_naive_study(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_sweep, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    print(persist(result))

    by_memory = {}
    for record in result.records:
        by_memory.setdefault(record.memory_bytes, {})[record.algorithm] = record

    for memory, pair in by_memory.items():
        qf, naive = pair["quantilefilter"], pair["naive"]
        # At every budget QF's accuracy is at least the strawman's ...
        assert qf.score.f1 >= naive.score.f1 - 0.02, memory
        # ... and its single fused pass beats the naive three passes.
        assert qf.mops > naive.mops * 0.8, memory

    # The starved budget shows the decisive gap.
    smallest = min(by_memory)
    gap = (by_memory[smallest]["quantilefilter"].score.f1
           - by_memory[smallest]["naive"].score.f1)
    assert gap >= 0.0
