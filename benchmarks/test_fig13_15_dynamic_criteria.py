"""Figs. 13-15: dynamic modification of epsilon / delta / T mid-stream.

Half the keys switch criteria 30 % of the way through the stream; the
figures compare modified-key and unmodified-key accuracy against the
unmodified baseline.  Paper findings checked: larger epsilon helps the
modified keys; unmodified keys are largely unaffected by epsilon
changes; modification costs some throughput.
"""

from benchmarks.conftest import persist
from repro.experiments.figures import (
    fig13_modify_epsilon,
    fig14_modify_delta,
    fig15_modify_threshold,
)


def _subset_f1(records, algorithm, subset, value=None):
    rows = [
        r for r in records
        if r.algorithm == algorithm and r.extra["subset"] == subset
        and (value is None or r.extra["value"] == value)
    ]
    return [r.score.f1 for r in rows]


def test_fig13_epsilon(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig13_modify_epsilon,
        kwargs=dict(scale=bench_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    print(persist(result))

    # Larger epsilon -> modified keys at least as accurate as with the
    # smallest epsilon (harder to flag -> fewer collision errors).
    values = sorted(
        v for v in {r.extra["value"] for r in result.records}
        if v != "unchanged"
    )
    small = _subset_f1(result.records, "qf-modified", "modified-half",
                       values[0])[0]
    large = _subset_f1(result.records, "qf-modified", "modified-half",
                       values[-1])[0]
    assert large >= small - 0.1

    # Unmodified keys barely move vs the baseline run.
    baseline = _subset_f1(result.records, "qf-baseline", "unmodified-half")[0]
    for value in values:
        modified_run = _subset_f1(
            result.records, "qf-modified", "unmodified-half", value
        )[0]
        assert abs(modified_run - baseline) < 0.3, value


def test_fig14_delta(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig14_modify_delta,
        kwargs=dict(scale=bench_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    print(persist(result))
    # Every configuration completes with sane scores.
    assert all(0.0 <= r.score.f1 <= 1.0 for r in result.records)
    subsets = {r.extra["subset"] for r in result.records}
    assert subsets == {"modified-half", "unmodified-half"}


def test_fig15_threshold(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig15_modify_threshold,
        kwargs=dict(scale=bench_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    print(persist(result))
    assert all(0.0 <= r.score.f1 <= 1.0 for r in result.records)
    # Smaller T -> more keys qualify among the modified half; larger T
    # -> fewer (the paper's Fig. 15 direction).  Check via the oracle's
    # truth sizes embedded in the confusion counts (tp + fn).
    def truth_size(value):
        record = next(
            r for r in result.records
            if r.algorithm == "qf-modified"
            and r.extra["subset"] == "modified-half"
            and r.extra["value"] == value
        )
        return record.score.true_positives + record.score.false_negatives

    values = sorted(
        v for v in {r.extra["value"] for r in result.records}
        if v != "unchanged"
    )
    assert truth_size(values[0]) >= truth_size(values[-1])
