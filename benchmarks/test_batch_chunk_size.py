"""Engineering study: batch-engine throughput vs chunk size.

The batch engine amortises hash vectorisation over each chunk; too
small and numpy call overhead dominates, too large and the precomputed
hash arrays stop fitting hot caches.  This bench locates the plateau
(results are identical at every chunk size — only speed changes, per
the equivalence property tests).
"""

import time

import numpy as np

from benchmarks.conftest import persist
from repro.core.vectorized import BatchQuantileFilter
from repro.experiments.config import build_trace, default_criteria_for
from repro.experiments.harness import FigureResult, RunRecord
from repro.metrics.accuracy import DetectionScore

CHUNKS = (256, 2_048, 16_384, 131_072)
MEMORY = 64 * 1024


def run_study(scale: int, seed: int = 0) -> FigureResult:
    trace = build_trace("internet", scale=scale, seed=seed)
    criteria = default_criteria_for("internet")
    records = []
    reference = None
    for chunk in CHUNKS:
        engine = BatchQuantileFilter(
            criteria, MEMORY, seed=seed, chunk_size=chunk
        )
        start = time.perf_counter()
        reported = engine.process(trace.keys, trace.values)
        seconds = time.perf_counter() - start
        if reference is None:
            reference = reported
        records.append(
            RunRecord(
                algorithm="qf-batch",
                dataset="internet",
                memory_bytes=MEMORY,
                actual_bytes=engine.nbytes,
                score=DetectionScore(len(reported & reference),
                                     len(reported - reference),
                                     len(reference - reported)),
                seconds=seconds,
                items=len(trace),
                extra={"chunk_size": chunk},
            )
        )
    return FigureResult(
        figure="batch-chunk-size",
        description=f"Batch engine throughput vs chunk size at {MEMORY} B",
        records=records,
    )


def test_chunk_size_study(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_study, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    print(persist(result))

    # Results identical at every chunk size (semantic invariance).
    for record in result.records:
        assert record.score.false_positives == 0
        assert record.score.false_negatives == 0

    # Throughputs stay within one small band (chunking is an
    # amortisation knob, not a cliff); single-run timing noise makes a
    # strict ordering assertion flaky, so only the band is pinned.
    by_chunk = {r.extra["chunk_size"]: r.mops for r in result.records}
    assert max(by_chunk.values()) < 10 * min(by_chunk.values())
