"""Extension experiment: concept drift and the value of windowing.

Sec. III-B's reset rationale ("outdated data should not be included")
gets a measured experiment: a workload whose anomalous key set fully
churns each phase, detected by (a) a plain QuantileFilter that never
resets and (b) a tumbling WindowedQuantileFilter whose window matches
the phase length.  Scored per phase: recall of that phase's truly
anomalous keys, and stale alarms — reports in a phase for keys only
anomalous in earlier phases.
"""

from typing import Dict, List, Set

from benchmarks.conftest import persist
from repro.core.windowed import WindowedQuantileFilter
from repro.experiments.config import default_criteria_for
from repro.experiments.harness import FigureResult, RunRecord
from repro.metrics.accuracy import score_sets
from repro.streams.drift import DriftConfig, generate_drift_trace

MEMORY = 16 * 1024


def _run(detector_insert, trace) -> List[Set[int]]:
    """Stream the trace; return the keys reported within each phase.

    Reports recur (the filter resets a key after reporting), so a key
    anomalous in several phases is correctly credited to each of them.
    """
    boundaries = trace.metadata["phase_boundaries"] + [len(trace)]
    per_phase: List[Set[int]] = [
        set() for _ in trace.metadata["phase_anomalous_keys"]
    ]
    phase = 0
    for index, (key, value) in enumerate(trace.items()):
        while phase + 1 < len(boundaries) - 1 and index >= boundaries[phase + 1]:
            phase += 1
        report = detector_insert(key, value)
        if report is not None:
            per_phase[phase].add(key)
    return per_phase


def run_study(scale: int, seed: int = 0) -> FigureResult:
    config = DriftConfig(
        num_items=scale, num_keys=max(200, scale // 40),
        num_phases=3, anomalous_per_phase=15, carry_over=0, seed=seed,
    )
    trace = generate_drift_trace(config)
    # Epsilon 10 (not the paper's 30) so an anomaly is detectable within
    # one phase at this scale (~30+ items per anomalous key per phase).
    criteria = default_criteria_for("internet", threshold=300.0, epsilon=10.0)
    truth_sets = [set(s) for s in trace.metadata["phase_anomalous_keys"]]
    phase_length = len(trace) // config.num_phases

    from repro.core.quantile_filter import QuantileFilter

    plain = QuantileFilter(criteria, memory_bytes=MEMORY, seed=seed)
    windowed = WindowedQuantileFilter(
        criteria, MEMORY, window_items=phase_length, mode="tumbling",
        seed=seed,
    )
    runs: Dict[str, List[Set[int]]] = {
        "qf-plain": _run(plain.insert, trace),
        "qf-windowed": _run(windowed.insert, trace),
    }

    records = []
    for name, per_phase in runs.items():
        cumulative_stale: Set[int] = set()
        for phase, reported in enumerate(per_phase):
            truth = truth_sets[phase]
            score = score_sets(reported & truth, truth)
            stale = {
                key for key in reported - truth
                if any(key in truth_sets[p] for p in range(phase))
            }
            cumulative_stale |= stale
            records.append(
                RunRecord(
                    algorithm=name,
                    dataset="drift",
                    memory_bytes=MEMORY,
                    actual_bytes=MEMORY,
                    score=score,
                    seconds=0.0,
                    items=phase_length,
                    extra={
                        "phase": phase,
                        "new_anomalies_caught": score.true_positives,
                        "stale_alarms": len(stale),
                    },
                )
            )
    return FigureResult(
        figure="extension-drift",
        description="Per-phase detection under concept drift "
        f"(3 phases, full churn, {MEMORY} B)",
        records=records,
    )


def test_drift_study(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_study, kwargs=dict(scale=max(bench_scale, 30_000)),
        rounds=1, iterations=1,
    )
    print(persist(result))

    def rows(name):
        return [r for r in result.records if r.algorithm == name]

    # Both detectors catch each phase's anomalies well.
    for name in ("qf-plain", "qf-windowed"):
        for record in rows(name):
            assert record.score.recall > 0.7, (name, record.extra["phase"])

    # The windowed filter produces no more stale alarms than the plain
    # one (clearing is what bounds them).
    plain_stale = sum(r.extra["stale_alarms"] for r in rows("qf-plain"))
    windowed_stale = sum(r.extra["stale_alarms"] for r in rows("qf-windowed"))
    assert windowed_stale <= plain_stale
