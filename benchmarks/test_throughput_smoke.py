"""Throughput smoke: the hot path must stay fast, run to run.

Measures items/s on the fig8 internet workload for the four engine
configurations this package ships —

* ``scalar``           — reference :class:`QuantileFilter` insert loop,
* ``batch_legacy``     — batch engine with the vectorised tier off
  (``vectorize=False``: the per-item chunk loop),
* ``batch``            — batch engine with the vectorised fast tier,
* ``pipeline_pickle`` / ``pipeline_shm`` — 4-shard process pipeline
  under both chunk transports,
* ``threads_2w`` / ``threads_4w`` — the thread-parallel shared-sketch
  engine at 2 and 4 updater threads, head-to-head against the process
  pipeline at the same worker counts (``pipeline_shm_2w`` /
  ``pipeline_shm``) on the same stream and per-structure byte budget —

and records them in ``BENCH_throughput.json`` at the repo root.

Gating: absolute items/s numbers track the host, so CI would flake on
them; the *ratios* (vectorised speedup over the per-item loop, shm
speedup over pickle) are what the optimizations own and are
machine-portable.  The test fails when a ratio regresses more than
``REGRESSION_PCT`` below the committed baseline
(``benchmarks/baselines/throughput_baseline.json``) or drops through
its hard floor.  Per-config minimum over interleaved rounds is the
noise-robust estimator, as in the observability bench.
"""

import gc
import json
import time
from pathlib import Path

from benchmarks.conftest import BENCH_SCALE
from repro.core.quantile_filter import QuantileFilter
from repro.core.vectorized import BatchQuantileFilter
from repro.experiments.config import PAPER, build_trace, default_criteria_for
from repro.parallel.pipeline import ParallelPipeline

ROUNDS = 3
REGRESSION_PCT = 15.0
#: Hard floors, below which the PR-4 optimizations are considered
#: broken regardless of what the committed baseline says.
MIN_BATCH_SPEEDUP = 1.7
MIN_SHM_SPEEDUP = 1.2
#: The threads engine's whole pitch is skipping the per-chunk
#: serialize/copy/deserialize transport tax, so at equal worker count
#: it must at least match the shm pipeline.
MIN_THREADS_SPEEDUP = 1.0
#: Per-filter / per-shard byte budget (a fig8 memory point).
MEMORY_BYTES = 1 << 18
NUM_SHARDS = 4
PIPELINE_CHUNK_ITEMS = 16_384

ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_throughput.json"
BASELINE_PATH = Path(__file__).parent / "baselines" / "throughput_baseline.json"


def _paper_dims():
    return dict(
        bucket_size=PAPER.bucket_size,
        depth=PAPER.depth,
        candidate_fraction=PAPER.candidate_fraction,
        fp_bits=PAPER.fp_bits,
        seed=0,
    )


def _time_once(run):
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        run()
        return time.perf_counter() - start
    finally:
        gc.enable()


def test_throughput_smoke():
    criteria = default_criteria_for("internet")
    scale = max(BENCH_SCALE, 100_000)
    trace = build_trace("internet", scale=scale, seed=0)
    pipeline_trace = build_trace("internet", scale=4 * scale, seed=0)
    dims = _paper_dims()

    def run_scalar():
        filt = QuantileFilter(
            criteria, MEMORY_BYTES, counter_kind="float", **dims
        )
        filt.insert_many(trace.keys, trace.values)
        return filt

    def run_batch(vectorize):
        filt = BatchQuantileFilter(
            criteria, MEMORY_BYTES, vectorize=vectorize, **dims
        )
        filt.process(trace.keys, trace.values)
        return filt

    # ParallelPipeline resolves the candidate/vague split through its
    # template filter, whose default candidate_fraction is the paper's.
    pipeline_dims = {
        k: v for k, v in dims.items() if k != "candidate_fraction"
    }

    def run_pipeline(transport, workers=NUM_SHARDS):
        pipe = ParallelPipeline(
            criteria, workers, engine="batch", transport=transport,
            memory_bytes=MEMORY_BYTES, chunk_items=PIPELINE_CHUNK_ITEMS,
            **pipeline_dims,
        )
        return pipe.run(pipeline_trace.keys, pipeline_trace.values)

    def run_threads(workers):
        # Same per-structure byte budget as one shm shard: the N
        # updater threads share a single set of planes.
        pipe = ParallelPipeline(
            criteria, workers, engine="threads",
            memory_bytes=MEMORY_BYTES, chunk_items=PIPELINE_CHUNK_ITEMS,
            **pipeline_dims,
        )
        return pipe.run(pipeline_trace.keys, pipeline_trace.values)

    single = {
        "scalar": lambda: run_scalar(),
        "batch_legacy": lambda: run_batch(False),
        "batch": lambda: run_batch(True),
    }
    best = {name: float("inf") for name in single}
    reports = {}
    for name, run in single.items():  # warm every code path once
        reports[name] = run()
    for _ in range(ROUNDS):
        for name, run in single.items():
            best[name] = min(best[name], _time_once(run))

    # The optimization must not move detection output.
    assert (
        reports["batch"].reported_keys
        == reports["batch_legacy"].reported_keys
    )
    assert (
        reports["batch"].reported_keys == reports["scalar"].reported_keys
    )

    pipeline_best = {}
    pipeline_reports = {}
    for transport in ("pickle", "shm"):
        seconds = float("inf")
        for _ in range(ROUNDS):
            result = run_pipeline(transport)
            seconds = min(seconds, result.seconds)
            pipeline_reports[transport] = result.reported_keys
        pipeline_best[transport] = seconds
    assert pipeline_reports["shm"] == pipeline_reports["pickle"]

    # Equal-core head-to-head: threads vs the shm pipeline at the same
    # worker count (pipeline_best["shm"] above IS the 4-worker run).
    headtohead_best = {}
    for name, run in (
        ("pipeline_shm_2w", lambda: run_pipeline("shm", workers=2)),
        ("threads_2w", lambda: run_threads(2)),
        ("threads_4w", lambda: run_threads(4)),
    ):
        seconds = float("inf")
        for _ in range(ROUNDS):
            seconds = min(seconds, run().seconds)
        headtohead_best[name] = seconds

    items_per_s = {
        "scalar": scale / best["scalar"],
        "batch_legacy": scale / best["batch_legacy"],
        "batch": scale / best["batch"],
        "pipeline_pickle": 4 * scale / pipeline_best["pickle"],
        "pipeline_shm": 4 * scale / pipeline_best["shm"],
        "pipeline_shm_2w": 4 * scale / headtohead_best["pipeline_shm_2w"],
        "threads_2w": 4 * scale / headtohead_best["threads_2w"],
        "threads_4w": 4 * scale / headtohead_best["threads_4w"],
    }
    ratios = {
        "batch_speedup_vs_legacy": (
            items_per_s["batch"] / items_per_s["batch_legacy"]
        ),
        "batch_speedup_vs_scalar": (
            items_per_s["batch"] / items_per_s["scalar"]
        ),
        "shm_speedup_vs_pickle": (
            items_per_s["pipeline_shm"] / items_per_s["pipeline_pickle"]
        ),
        "threads_speedup_vs_shm": (
            items_per_s["threads_4w"] / items_per_s["pipeline_shm"]
        ),
        "threads_speedup_vs_shm_2w": (
            items_per_s["threads_2w"] / items_per_s["pipeline_shm_2w"]
        ),
    }

    result = {
        "bench": "throughput-smoke",
        "workload": "fig8-internet",
        "items": scale,
        "pipeline_items": 4 * scale,
        "memory_bytes": MEMORY_BYTES,
        "num_shards": NUM_SHARDS,
        "rounds": ROUNDS,
        "items_per_s": {k: round(v, 1) for k, v in items_per_s.items()},
        "ratios": {k: round(v, 4) for k, v in ratios.items()},
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))

    assert ratios["batch_speedup_vs_legacy"] >= MIN_BATCH_SPEEDUP, (
        f"vectorised fast tier only {ratios['batch_speedup_vs_legacy']:.2f}x "
        f"over the per-item chunk loop (floor {MIN_BATCH_SPEEDUP}x)"
    )
    assert ratios["shm_speedup_vs_pickle"] >= MIN_SHM_SPEEDUP, (
        f"shm transport only {ratios['shm_speedup_vs_pickle']:.2f}x over "
        f"pickle (floor {MIN_SHM_SPEEDUP}x)"
    )
    assert ratios["threads_speedup_vs_shm"] >= MIN_THREADS_SPEEDUP, (
        f"threads engine only {ratios['threads_speedup_vs_shm']:.2f}x over "
        f"the shm pipeline at 4 workers (floor {MIN_THREADS_SPEEDUP}x): "
        "the zero-transport commit path is no longer paying for itself"
    )

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        for name, value in ratios.items():
            reference = baseline["ratios"][name]
            floor = reference * (1.0 - REGRESSION_PCT / 100.0)
            assert value >= floor, (
                f"{name} regressed: {value:.3f} vs committed baseline "
                f"{reference:.3f} (>{REGRESSION_PCT}% drop); if the "
                f"change is intentional, refresh {BASELINE_PATH}"
            )
