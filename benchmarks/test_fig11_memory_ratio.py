"""Fig. 11: accuracy vs the candidate:vague memory split.

The paper: mid-range splits are all fine; extreme allocations fluctuate.
It standardises on 4:1 (candidate 80 %).
"""

from benchmarks.conftest import persist
from repro.experiments.figures import fig11_memory_ratio


def test_fig11(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig11_memory_ratio,
        kwargs=dict(dataset="internet", scale=bench_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    print(persist(result))

    f1_by_fraction = {
        r.extra["candidate_fraction"]: r.score.f1 for r in result.records
    }
    fractions = sorted(f1_by_fraction)
    mid = [f for f in fractions if 0.15 <= f <= 0.9]

    # Mid-range splits are all close to the best observed.
    best = max(f1_by_fraction.values())
    for fraction in mid:
        assert f1_by_fraction[fraction] >= best - 0.25, fraction

    # The paper's default (0.8) is within a whisker of the best.
    default = min(fractions, key=lambda f: abs(f - 0.8))
    assert f1_by_fraction[default] >= best - 0.1
