"""Ablation: vague-part sketch type (Sec. III-D Choice 2 + future work).

The paper compares Count Sketch ("cs") against Count-Min ("cms") and
finds CS wins; it leaves "whether any other sketch fits the vague part
better" open.  This bench extends the comparison with Count-Mean-Min
("cmm") — CMS's layout with a collision-noise correction and a median
aggregate — across a memory ladder.
"""

from benchmarks.conftest import persist
from repro.experiments.config import build_trace, default_criteria_for
from repro.experiments.harness import (
    FigureResult,
    build_detector,
    ground_truth_for,
    run_detection,
)

BACKENDS = ("cs", "cms", "cmm")
MEMORY_POINTS = (512, 1_024, 2_048, 8_192)


def run_ablation(scale: int, seed: int = 0) -> FigureResult:
    trace = build_trace("internet", scale=scale, seed=seed)
    criteria = default_criteria_for("internet")
    truth = ground_truth_for(trace, criteria)
    records = []
    for backend in BACKENDS:
        for memory in MEMORY_POINTS:
            detector = build_detector(
                "quantilefilter", criteria, memory,
                seed=seed, vague_backend=backend,
            )
            record = run_detection(
                detector, trace, truth,
                dataset="internet", memory_bytes=memory,
                algorithm=f"qf+{backend}",
            )
            record.extra["backend"] = backend
            records.append(record)
    return FigureResult(
        figure="ablation-vague-backend",
        description="Vague-part sketch-type ablation (cs / cms / cmm)",
        records=records,
    )


def test_vague_backend_ablation(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_ablation, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    print(persist(result))

    def mean_f1(backend):
        rows = [r for r in result.records if r.extra["backend"] == backend]
        return sum(r.score.f1 for r in rows) / len(rows)

    # The paper's finding: CS at least matches CMS.
    assert mean_f1("cs") >= mean_f1("cms") - 0.02
    # The future-work candidate is at least competitive with CMS too.
    assert mean_f1("cmm") >= mean_f1("cms") - 0.05
    # Everything converges at the largest budget.
    largest = max(MEMORY_POINTS)
    for record in result.records:
        if record.memory_bytes == largest:
            assert record.score.f1 > 0.9, record.extra["backend"]
