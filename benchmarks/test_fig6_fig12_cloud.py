"""Cloud-dataset variants of Figs. 6 and 12.

The paper shows the threshold sweep (Fig. 6) and the variants
comparison (Fig. 12) on BOTH datasets; the primary benches run the
Internet variants, these run the Cloud ones (extreme key cardinality).
"""

import numpy as np

from benchmarks.conftest import persist
from repro.experiments.figures import fig6_threshold_sweep, fig12_variants


def test_fig6_cloud(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig6_threshold_sweep,
        kwargs=dict(dataset="cloud", scale=bench_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    result = type(result)(
        figure="fig6-cloud", description=result.description,
        records=result.records,
    )
    print(persist(result))

    largest = max(r.memory_bytes for r in result.records)
    f1s = [r.score.f1 for r in result.records if r.memory_bytes == largest]
    assert min(f1s) > 0.7
    assert np.std(f1s) < 0.2


def test_fig12_cloud(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig12_variants,
        kwargs=dict(dataset="cloud", scale=bench_scale, seed=0,
                    include_squad=False),
        rounds=1,
        iterations=1,
    )
    result = type(result)(
        figure="fig12-cloud", description=result.description,
        records=result.records,
    )
    print(persist(result))

    def mean_f1(backend):
        rows = [r for r in result.records if r.extra["backend"] == backend]
        return float(np.mean([r.score.f1 for r in rows]))

    assert mean_f1("cs") >= mean_f1("cms") - 0.02
