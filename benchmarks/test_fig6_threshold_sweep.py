"""Fig. 6: QuantileFilter accuracy across thresholds T.

The paper sweeps T over two orders of magnitude and finds accuracy
stable — the sign-hash cancellation means the abnormal-item proportion
barely moves the counter state.
"""

import numpy as np

from benchmarks.conftest import persist
from repro.experiments.figures import fig6_threshold_sweep


def test_fig6_internet(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig6_threshold_sweep,
        kwargs=dict(dataset="internet", scale=bench_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    print(persist(result))

    # Stability: at the largest memory setting, F1 stays high across the
    # whole threshold range.
    largest = max(r.memory_bytes for r in result.records)
    f1s = [r.score.f1 for r in result.records if r.memory_bytes == largest]
    assert min(f1s) > 0.8
    # And the spread across thresholds is modest.
    assert np.std(f1s) < 0.15
