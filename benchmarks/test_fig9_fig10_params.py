"""Figs. 9 & 10: accuracy and throughput vs array number d and block
length b.

The paper's finding: both parameters barely affect accuracy; d has a
visible throughput cost (one more row touched per vague access), which
motivates the d = 3, b = 6 defaults.
"""

import numpy as np

from benchmarks.conftest import persist
from repro.experiments.figures import fig9_fig10_parameter_sweeps


def test_fig9_fig10(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig9_fig10_parameter_sweeps,
        kwargs=dict(dataset="internet", scale=bench_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    print(persist(result))

    depth_rows = [r for r in result.records if r.extra["parameter"] == "depth"]
    block_rows = [
        r for r in result.records if r.extra["parameter"] == "block_length"
    ]

    # Fig. 9: accuracy varies little across either sweep.
    assert np.std([r.score.f1 for r in depth_rows]) < 0.15
    assert np.std([r.score.f1 for r in block_rows]) < 0.15

    # All settings remain usable.
    assert min(r.score.f1 for r in depth_rows + block_rows) > 0.5

    # Fig. 10(a): the largest depth is slower than the smallest (more
    # rows touched per vague-part access).
    by_depth = {r.extra["value"]: r.mops for r in depth_rows}
    assert by_depth[min(by_depth)] > by_depth[max(by_depth)] * 0.9
