"""Scaling study: items/sec vs shard count, in-process and processes.

Runs the ``parallel`` experiment driver at 1/2/4 shards on the batch
engine, both as in-process sharding (isolates the partition + chunking
overhead) and as the process-backed :class:`ParallelPipeline` (adds IPC
and real concurrency).  The table of MOPS/speedup/efficiency lands in
``benchmarks/results/parallel-scaling*.txt``.

The headline assertion — >1.5x speedup at 4 shards over 1 shard on the
process path — only holds where 4 workers can actually run at once, so
it is gated on the visible core count (``os.sched_getaffinity``).  On a
1-core container the bench still runs and records the table; it just
cannot demand a speedup physics forbids.
"""

import os

from benchmarks.conftest import persist
from repro.experiments.scaling import parallel_scaling_study

SHARD_COUNTS = (1, 2, 4)
MAX_SHARDS = SHARD_COUNTS[-1]


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_inprocess_shard_scaling(benchmark, bench_scale):
    result = benchmark.pedantic(
        parallel_scaling_study,
        kwargs=dict(scale=bench_scale, max_shards=MAX_SHARDS,
                    engine="batch", processes=False),
        rounds=1, iterations=1,
    )
    print(persist(result))

    by_shards = {r.extra["shards"]: r for r in result.records}
    assert sorted(by_shards) == list(SHARD_COUNTS)
    for record in result.records:
        assert record.extra["backend"] == "inprocess"
        assert record.items == bench_scale
        assert record.score.f1 > 0.0
    # In-process sharding is a partitioning overlay on one core: it
    # must not collapse throughput (the partition overhead is bounded).
    assert by_shards[MAX_SHARDS].mops > 0.2 * by_shards[1].mops


def test_process_pipeline_scaling(benchmark, bench_scale):
    result = benchmark.pedantic(
        parallel_scaling_study,
        kwargs=dict(scale=bench_scale, max_shards=MAX_SHARDS,
                    engine="batch", processes=True),
        rounds=1, iterations=1,
    )
    result = type(result)(
        figure=result.figure + "-processes",
        description=result.description,
        records=result.records,
    )
    print(persist(result))

    by_shards = {r.extra["shards"]: r for r in result.records}
    assert sorted(by_shards) == list(SHARD_COUNTS)
    for record in result.records:
        assert record.extra["backend"] == "processes"
        assert record.items == bench_scale

    cores = _available_cores()
    speedup = by_shards[MAX_SHARDS].extra["speedup"]
    print(f"cores={cores} speedup@{MAX_SHARDS}shards={speedup}")
    if cores >= MAX_SHARDS:
        # The acceptance bar: real parallelism must pay off.
        assert speedup > 1.5, (
            f"expected >1.5x at {MAX_SHARDS} shards on {cores} cores, "
            f"got {speedup}x"
        )
