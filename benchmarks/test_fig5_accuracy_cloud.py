"""Fig. 5: accuracy vs memory on the Cloud dataset (extreme key counts).

Same sweep as Fig. 4 on the high-cardinality workload that stresses
per-key structures; HistSketch's fixed-slot table and SQUAD's small
electorate suffer most here.
"""

from benchmarks.conftest import persist
from repro.experiments.figures import fig5_accuracy_cloud, space_saving_table


def test_fig5(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig5_accuracy_cloud,
        kwargs=dict(scale=bench_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    saving = space_saving_table(result.records)
    text = persist(result, {"key result 2: space saving at equal F1": saving})
    print(text)

    by_algorithm = {}
    for record in result.records:
        by_algorithm.setdefault(record.algorithm, []).append(record)

    qf = by_algorithm["quantilefilter"]
    # QF still reaches a high F1 despite the singleton flood.
    assert max(r.score.f1 for r in qf) > 0.8
    # And keeps precision high when starved.
    assert min(r.score.precision for r in qf) > 0.6

    # QF's best F1 at least matches every baseline's best.
    best_qf = max(r.score.f1 for r in qf)
    for algorithm, records in by_algorithm.items():
        assert best_qf >= max(r.score.f1 for r in records) - 0.02, algorithm
