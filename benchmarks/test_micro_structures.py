"""Micro-benchmarks of the individual structures (multi-round timing).

Unlike the figure benches (one full experiment per round), these use
pytest-benchmark's statistics over many rounds to characterise the hot
paths: sketch updates, the fused insert+estimate, QuantileFilter's
per-item cost, the batch engine, and the baselines' insert+query loops.
"""

import numpy as np
import pytest

from repro.baselines.histsketch import HistSketch
from repro.baselines.sketchpolymer import SketchPolymer
from repro.baselines.squad import Squad
from repro.common.hashing import canonical_key
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.core.vectorized import BatchQuantileFilter
from repro.detection.adapters import QueryOnInsertAdapter
from repro.sketches.count_sketch import CountSketch

CRITERIA = Criteria(delta=0.95, threshold=200.0, epsilon=30.0)
N = 5_000


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 500, size=N).astype(np.int64)
    values = np.where(keys < 20, 500.0, rng.uniform(0, 150, size=N))
    return keys, values, keys.tolist(), values.tolist()


def test_count_sketch_update(benchmark):
    sketch = CountSketch(depth=3, width=1024, seed=1)
    canon = [canonical_key(i) for i in range(100)]

    def run():
        for key in canon:
            sketch.update(key, 1.0)

    benchmark(run)


def test_count_sketch_fused_update_estimate(benchmark):
    sketch = CountSketch(depth=3, width=1024, seed=1)
    canon = [canonical_key(i) for i in range(100)]

    def run():
        for key in canon:
            sketch.update_and_estimate(key, 1.0)

    benchmark(run)


def test_quantilefilter_insert(benchmark, stream):
    _, _, key_list, value_list = stream
    qf = QuantileFilter(CRITERIA, memory_bytes=32 * 1024, seed=1)

    def run():
        insert = qf.insert
        for key, value in zip(key_list, value_list):
            insert(key, value)

    benchmark(run)


def test_batch_engine_process(benchmark, stream):
    keys, values, _, _ = stream

    def run():
        engine = BatchQuantileFilter(CRITERIA, 32 * 1024, seed=1)
        engine.process(keys, values)

    benchmark(run)


def test_squad_insert_query(benchmark, stream):
    _, _, key_list, value_list = stream
    adapter = QueryOnInsertAdapter(Squad(32 * 1024, seed=1), CRITERIA)

    def run():
        process = adapter.process
        for key, value in zip(key_list, value_list):
            process(key, value)

    benchmark(run)


def test_sketchpolymer_insert_query(benchmark, stream):
    _, _, key_list, value_list = stream
    adapter = QueryOnInsertAdapter(SketchPolymer(32 * 1024, seed=1), CRITERIA)

    def run():
        process = adapter.process
        for key, value in zip(key_list, value_list):
            process(key, value)

    benchmark(run)


def test_histsketch_insert_query(benchmark, stream):
    _, _, key_list, value_list = stream
    adapter = QueryOnInsertAdapter(HistSketch(32 * 1024, seed=1), CRITERIA)

    def run():
        process = adapter.process
        for key, value in zip(key_list, value_list):
            process(key, value)

    benchmark(run)
