"""Ablation: fingerprint width (Sec. III-D, Technique 1).

The paper stores 16-bit fingerprints instead of keys and argues the
collision probability (<0.01 %) contributes negligible error, while the
fingerprint-keyed vague hashing trick keeps accuracy "comparable to
hashing the original keys" as long as ``buckets x 2^fp_bits`` dwarfs the
counter count.  This bench sweeps fingerprint widths at a fixed byte
budget: very short fingerprints (more collisions, cheaper slots) vs the
paper's 16 bits vs wider ones.
"""

from benchmarks.conftest import persist
from repro.experiments.config import build_trace, default_criteria_for
from repro.experiments.harness import (
    FigureResult,
    build_detector,
    ground_truth_for,
    run_detection,
)

FP_BITS = (4, 8, 12, 16, 24, 32)
MEMORY = 4_096


def run_ablation(scale: int, seed: int = 0) -> FigureResult:
    trace = build_trace("internet", scale=scale, seed=seed)
    criteria = default_criteria_for("internet")
    truth = ground_truth_for(trace, criteria)
    records = []
    for bits in FP_BITS:
        detector = build_detector(
            "quantilefilter", criteria, MEMORY, seed=seed, fp_bits=bits
        )
        record = run_detection(
            detector, trace, truth,
            dataset="internet", memory_bytes=MEMORY, algorithm="quantilefilter",
        )
        record.extra["fp_bits"] = bits
        record.extra["buckets"] = detector.filter.candidate.num_buckets
        records.append(record)
    return FigureResult(
        figure="ablation-fingerprint",
        description=f"Fingerprint width ablation at {MEMORY} bytes",
        records=records,
    )


def test_fingerprint_width_ablation(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_ablation, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    print(persist(result))

    f1 = {r.extra["fp_bits"]: r.score.f1 for r in result.records}
    precision = {r.extra["fp_bits"]: r.score.precision for r in result.records}

    # 16-bit (the paper's choice) performs as well as wider fingerprints.
    assert f1[16] >= f1[32] - 0.05
    # Very short fingerprints hurt precision (colliding keys merge
    # Qweights) relative to the paper's width.
    assert precision[16] >= precision[4] - 0.02

    # Shorter fingerprints buy more buckets at fixed bytes.
    buckets = {r.extra["fp_bits"]: r.extra["buckets"] for r in result.records}
    assert buckets[4] >= buckets[32]
