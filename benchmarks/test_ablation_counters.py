"""Ablation: narrow integer counters + probabilistic rounding vs floats.

Sec. III-A's technical detail claims 16-bit (even 8-bit) saturating
integer counters with probabilistic rounding lose essentially no
accuracy versus exact float counters, thanks to sign-hash cancellation
keeping vague counters small.  This bench runs the same detection task
at a fixed byte budget across counter widths — narrower counters buy
MORE columns for the same bytes, so the comparison is bytes-fair.
"""

from benchmarks.conftest import persist
from repro.experiments.config import build_trace, default_criteria_for
from repro.experiments.harness import (
    FigureResult,
    build_detector,
    ground_truth_for,
    run_detection,
)

KINDS = ("int8", "int16", "int32", "float")
MEMORY = 2_048


def run_ablation(scale: int, seed: int = 0) -> FigureResult:
    trace = build_trace("internet", scale=scale, seed=seed)
    criteria = default_criteria_for("internet")
    truth = ground_truth_for(trace, criteria)
    records = []
    for kind in KINDS:
        detector = build_detector(
            "quantilefilter", criteria, MEMORY, seed=seed, counter_kind=kind
        )
        record = run_detection(
            detector, trace, truth,
            dataset="internet", memory_bytes=MEMORY, algorithm="quantilefilter",
        )
        record.extra["counter_kind"] = kind
        record.extra["vague_width"] = detector.filter.vague.width
        record.extra["saturation"] = round(
            detector.filter.vague.sketch.counters.saturation_fraction(), 6
        )
        records.append(record)
    return FigureResult(
        figure="ablation-counters",
        description=f"Counter width ablation at {MEMORY} bytes",
        records=records,
    )


def test_counter_width_ablation(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_ablation, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    print(persist(result))

    f1 = {r.extra["counter_kind"]: r.score.f1 for r in result.records}
    # The paper's claim: narrow integer counters hold accuracy.
    assert f1["int16"] >= f1["float"] - 0.1
    assert f1["int8"] >= f1["float"] - 0.2

    # Narrower counters really do buy more columns at fixed bytes.
    widths = {r.extra["counter_kind"]: r.extra["vague_width"]
              for r in result.records}
    assert widths["int8"] > widths["int32"] > widths["float"]

    # Saturation stays rare even at 8 bits (sign-hash cancellation).
    saturation = {r.extra["counter_kind"]: r.extra["saturation"]
                  for r in result.records}
    assert saturation["int8"] < 0.2
