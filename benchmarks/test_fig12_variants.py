"""Fig. 12: F1 of the six QuantileFilter variants + SQUAD reference.

Variants: {comparative, probabilistic, forceful} election x {Count
Sketch, Count-Min Sketch} vague backend.  Paper findings reproduced
here: CS variants are the most accurate and nearly election-agnostic;
CMS variants trail and degrade from comparative towards forceful.
"""

import numpy as np

from benchmarks.conftest import persist
from repro.experiments.figures import fig12_variants


def test_fig12(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig12_variants,
        kwargs=dict(dataset="internet", scale=bench_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    print(persist(result))

    def mean_f1(backend=None, strategy=None):
        rows = [
            r for r in result.records
            if r.extra.get("backend") == backend
            and (strategy is None or r.extra.get("strategy") == strategy)
        ]
        return float(np.mean([r.score.f1 for r in rows]))

    # CS variants at least match CMS variants on average.
    assert mean_f1("cs") >= mean_f1("cms") - 0.02

    # CS variants are insensitive to the election strategy.
    cs_by_strategy = [
        mean_f1("cs", s) for s in ("comparative", "probabilistic", "forceful")
    ]
    assert max(cs_by_strategy) - min(cs_by_strategy) < 0.15

    # Every variant stays usable (the choice "does not significantly
    # affect overall performance", Sec. III-D Choice 1).
    variant_rows = [r for r in result.records if "backend" in r.extra]
    assert min(r.score.f1 for r in variant_rows) > 0.3
