"""Extension experiment: reporting timeliness.

The paper's metrics deliberately exclude timeliness constraints
(Sec. V-B: "not yet including any constraints on reporting
timeliness"), yet its Introduction motivates online detection with
"potentially missing brief anomalies or delaying warnings".  This bench
closes that loop: per-key detection latency — items between a key first
truly qualifying (oracle) and the detector first reporting it — for
QuantileFilter and for the query-adapted baselines at several query
cadences.

Expected shape: QuantileFilter reports essentially on time (its error
mode under pressure is *early*, from collision-inflated Qweights);
baselines forced to sparse querying (the paper's "sample data less
frequently" scenario) pay latency roughly proportional to the cadence,
or miss brief anomalies outright.
"""

from benchmarks.conftest import persist
from repro.baselines.squad import Squad
from repro.detection.adapters import QueryOnInsertAdapter
from repro.experiments.config import build_trace, default_criteria_for
from repro.experiments.harness import FigureResult, RunRecord, build_detector
from repro.metrics.accuracy import score_sets
from repro.metrics.latency import measure_detection_latency

MEMORY = 32 * 1024
CADENCES = (1, 10, 100, 1_000)


def run_study(scale: int, seed: int = 0) -> FigureResult:
    trace = build_trace("internet", scale=scale, seed=seed)
    criteria = default_criteria_for("internet")
    records = []

    def record_for(name, detector, extra):
        result = measure_detection_latency(detector, trace, criteria)
        rec = RunRecord(
            algorithm=name,
            dataset="internet",
            memory_bytes=MEMORY,
            actual_bytes=detector.nbytes,
            score=score_sets(set(result.latencies), set(result.latencies)
                             | set(result.missed_keys)),
            seconds=0.0,
            items=len(trace),
            extra={**extra, **result.as_dict()},
        )
        records.append(rec)
        return result

    qf = build_detector("quantilefilter", criteria, MEMORY, seed=seed)
    record_for("quantilefilter", qf, {"query_every": 1})

    for cadence in CADENCES:
        adapter = QueryOnInsertAdapter(
            Squad(MEMORY, seed=seed), criteria, query_every=cadence
        )
        record_for("squad", adapter, {"query_every": cadence})
    return FigureResult(
        figure="extension-latency",
        description="Detection latency (items) vs query cadence "
        f"at {MEMORY} bytes",
        records=records,
    )


def test_latency_study(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_study, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    print(persist(result))

    qf = next(r for r in result.records if r.algorithm == "quantilefilter")
    squad_by_cadence = {
        r.extra["query_every"]: r
        for r in result.records if r.algorithm == "squad"
    }

    # QuantileFilter reports on time or early, never meaningfully late.
    assert qf.extra["median_latency"] <= 5

    # Sparse querying costs timeliness: latency grows (or detection
    # collapses into misses) as the cadence coarsens.
    tight = squad_by_cadence[1]
    coarse = squad_by_cadence[1_000]
    tight_cost = tight.extra["mean_latency"] + 1_000 * tight.extra["missed"]
    coarse_cost = (
        coarse.extra["mean_latency"] + 1_000 * coarse.extra["missed"]
    )
    assert coarse_cost >= tight_cost
