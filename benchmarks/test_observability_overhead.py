"""Tracing overhead: the disabled instrumentation must cost nothing.

PR 3 added event-hook call sites to the scalar filter's report path
(candidate election, replacement, emission) plus optional provenance
capture.  All of them hide behind one ``is not None`` / bool predicate
per site, so with tracing and provenance off the insert loop must run
at the untraced baseline's speed — this bench holds that to the ≤3%
budget from the issue and records the numbers in
``BENCH_observability.json`` at the repo root.

Methodology: the same stream is inserted under four configurations —

* ``baseline``   — filter built with the plain constructor (the
  untraced default: ``trace_hook=None``, no provenance);
* ``disabled``   — every observability kwarg passed explicitly off
  (identical code path; measures that the predicates stay in noise);
* ``traced``     — sampling tracer attached (``sample_every=64``) and
  provenance on, for the informational cost of full instrumentation;
* ``health``     — stats registry (``observe_filter``) plus a
  :class:`~repro.observability.health.HealthMonitor` in its disabled
  mode (shadow sampler off) attached, with one health report taken
  after the run.  Both are pull-model — they read filter state at
  snapshot time — so the insert loop must stay at baseline speed.

PR 8's flight recorder taps the insert path at **chunk** granularity,
so its budget is held against a chunk-fed control pair:

* ``chunked``    — the same stream fed through ``insert_many`` in
  4096-item strides (the recorder-free chunk path);
* ``recorded``   — the identical strides fed through
  :meth:`~repro.observability.recorder.FlightRecorder.feed`, which
  captures each chunk (ring of 8) and applies it via the same
  ``insert_many``.  ``recorded_overhead_pct`` (recorded vs chunked) is
  gated at the same ≤3% budget.

PR 10's time-series collector and alert engine also run at chunk
cadence (the serving loop's ``tick()``), so they gate against the same
control:

* ``alerted``    — the identical strides, each followed by one full
  alerting tick: registry snapshot → ``MetricStore.collect`` →
  ``AlertEngine.evaluate`` over the shipped default rule pack.
  ``alerts_overhead_pct`` (alerted vs chunked) is gated at the same
  ≤3% budget.

Rounds interleave configurations; the recorded ``*_mops`` figures use
the per-config *minimum* wall time (the standard "how fast can this
code path go" estimator), but every **gated** comparison is scored as
the *median of adjacent paired ratios* — each gated run timed right
next to its baseline run, with the pair order alternating — because on
a loaded single-core runner a ratio of independent minima flips on one
interrupted sample while paired medians cancel the drift.
"""

import gc
import json
import statistics
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import BENCH_SCALE
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.observability.tracing import Tracer, attach_filter_tracing

ROUNDS = 7
OVERHEAD_BUDGET_PCT = 3.0
#: Chunk stride for the recorder pair (a typical pipeline chunk size).
RECORD_STRIDE = 4_096
#: Retained chunks in the benchmarked recorder ring.
RECORD_MAX_CHUNKS = 8
#: Extra back-to-back rounds for the chunked/recorded pair: the true
#: recorder cost is well under 1%, so the gate needs tighter minima
#: than the shared rotation alone gives on a noisy runner.  Alternating
#: the pair order each round cancels slow machine drift.
PAIR_ROUNDS = 13
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_observability.json"

CRIT = Criteria(delta=0.9, threshold=100.0, epsilon=5.0)
GEOMETRY = dict(num_buckets=256, bucket_size=4, vague_width=512,
                counter_kind="float", seed=9)


def make_stream(n, seed=17):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 500, size=n).tolist()
    values = np.where(
        rng.random(n) < 0.1, 500.0, rng.uniform(0.0, 100.0, n)
    ).tolist()
    return keys, values


def _build(config):
    if config == "baseline":
        return QuantileFilter(CRIT, **GEOMETRY)
    if config == "disabled":
        return QuantileFilter(
            CRIT, collect_provenance=False, trace_hook=None, **GEOMETRY
        )
    if config == "health":
        from repro.observability.health import HealthMonitor
        from repro.observability.instrument import observe_filter

        filt = QuantileFilter(CRIT, **GEOMETRY)
        registry = observe_filter(filt)
        # Disabled mode: no shadow sampler, nothing fed per item; the
        # monitor and registry only pull state at report time.
        filt._bench_monitor = HealthMonitor.for_filter(
            filt, shadow_sample_rate=None
        )
        filt._bench_registry = registry
        return filt
    filt = QuantileFilter(CRIT, collect_provenance=True, **GEOMETRY)
    attach_filter_tracing(filt, Tracer(), sample_every=64)
    return filt


#: Timed repeats per sample (fresh filter each); the per-sample MIN
#: halves each sample's exposure to scheduler interrupts on 1-core
#: runners, where a single 0.2s window can eat several percent.
TIMING_REPEATS = 2


def _time_chunked_loop(config, keys, values):
    """Chunk-fed controls: ``chunked`` vs ``recorded`` / ``alerted``."""
    elapsed = float("inf")
    for _ in range(TIMING_REPEATS):
        filt = QuantileFilter(CRIT, **GEOMETRY)
        tick = None
        if config == "recorded":
            from repro.observability.recorder import FlightRecorder

            feed = FlightRecorder(
                filt, max_chunks=RECORD_MAX_CHUNKS,
                chunk_items=RECORD_STRIDE,
            ).feed
        elif config == "alerted":
            from repro.observability.alerts import (
                AlertEngine,
                default_rules,
            )
            from repro.observability.instrument import observe_filter
            from repro.observability.timeseries import MetricStore

            registry = observe_filter(filt)
            clock = {"t": 0.0}
            store = MetricStore(clock=lambda: clock["t"])
            engine = AlertEngine(store, default_rules())
            feed = filt.insert_many

            def tick():
                # One serving-loop alerting step per stride, on a
                # synthetic clock so windows span the run.
                clock["t"] += 1.0
                store.collect(registry.snapshot(), now=clock["t"])
                engine.evaluate(now=clock["t"])
        else:
            feed = filt.insert_many
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for begin in range(0, len(keys), RECORD_STRIDE):
                feed(
                    keys[begin:begin + RECORD_STRIDE],
                    values[begin:begin + RECORD_STRIDE],
                )
                if tick is not None:
                    tick()
            elapsed = min(elapsed, time.perf_counter() - start)
        finally:
            gc.enable()
        assert filt.items_processed == len(keys)
    return elapsed, filt


def _time_insert_loop(config, keys, values):
    elapsed = float("inf")
    for _ in range(TIMING_REPEATS):
        filt = _build(config)
        insert = filt.insert
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for key, value in zip(keys, values):
                insert(key, value)
            elapsed = min(elapsed, time.perf_counter() - start)
        finally:
            gc.enable()
        assert filt.items_processed == len(keys)
    return elapsed, filt


def test_disabled_tracing_overhead_within_budget(bench_scale):
    keys, values = make_stream(max(bench_scale, 50_000))
    timings = {"baseline": [], "disabled": [], "traced": [], "health": [],
               "chunked": [], "recorded": [], "alerted": []}
    reported = {}
    per_item = ("baseline", "disabled", "traced", "health")
    for config in timings:  # warm-up every code path once
        if config in per_item:
            _time_insert_loop(config, keys, values)
        else:
            _time_chunked_loop(config, keys, values)
    order = list(timings)
    for round_no in range(ROUNDS):
        # Rotate the order so no config systematically inherits a
        # warmer (or dirtier) process state from its predecessor.
        shift = round_no % len(order)
        for config in order[shift:] + order[:shift]:
            if config in per_item:
                elapsed, filt = _time_insert_loop(config, keys, values)
            else:
                elapsed, filt = _time_chunked_loop(config, keys, values)
            timings[config].append(elapsed)
            reported[config] = filt.report_count
            if config == "health":
                # The health evaluation itself runs off the timed path.
                report = filt._bench_monitor.report(
                    filt._bench_registry.snapshot()
                )
                assert report.verdict in ("ok", "degraded", "critical")

    # Every gate uses the MEDIAN of adjacent paired ratios rather than
    # a ratio of per-config minima: the true overheads are well under
    # 1%, so on a loaded 1-core runner a single lucky (or interrupted)
    # round for either side dominates a min-based ratio and flips the
    # verdict, while pairing each gated run against its baseline run
    # right next to it — alternating the order — cancels machine drift.
    def paired_overhead_pct(config, base, timer):
        ratios = []
        for round_no in range(PAIR_ROUNDS):
            pair = (base, config) if round_no % 2 == 0 else (config, base)
            times = {}
            for name in pair:
                elapsed, filt = timer(name, keys, values)
                timings[name].append(elapsed)
                reported[name] = filt.report_count
                times[name] = elapsed
            ratios.append(times[config] / times[base] - 1.0)
        return statistics.median(ratios) * 100.0

    gated = {
        "disabled": paired_overhead_pct(
            "disabled", "baseline", _time_insert_loop
        ),
        "health": paired_overhead_pct(
            "health", "baseline", _time_insert_loop
        ),
        "recorded": paired_overhead_pct(
            "recorded", "chunked", _time_chunked_loop
        ),
        "alerted": paired_overhead_pct(
            "alerted", "chunked", _time_chunked_loop
        ),
    }

    # Instrumentation must never change detection behaviour.
    assert reported["disabled"] == reported["baseline"]
    assert reported["traced"] == reported["baseline"]
    assert reported["health"] == reported["baseline"]
    # insert_many is semantically identical to the per-item loop, and
    # recording must not perturb it.
    assert reported["chunked"] == reported["baseline"]
    assert reported["recorded"] == reported["chunked"]
    assert reported["alerted"] == reported["chunked"]

    best = {config: min(times) for config, times in timings.items()}
    items = len(keys)
    mops = {config: items / seconds / 1e6 for config, seconds in best.items()}

    def overhead_pct(config, base="baseline"):
        return (best[config] / best[base] - 1.0) * 100.0

    result = {
        "bench": "observability-overhead",
        "items": items,
        "rounds": ROUNDS,
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "record_stride": RECORD_STRIDE,
        "record_max_chunks": RECORD_MAX_CHUNKS,
        "pair_rounds": ROUNDS + PAIR_ROUNDS,
        "baseline_mops": round(mops["baseline"], 4),
        "disabled_mops": round(mops["disabled"], 4),
        "traced_mops": round(mops["traced"], 4),
        "health_mops": round(mops["health"], 4),
        "chunked_mops": round(mops["chunked"], 4),
        "recorded_mops": round(mops["recorded"], 4),
        "alerted_mops": round(mops["alerted"], 4),
        "disabled_overhead_pct": round(gated["disabled"], 3),
        "traced_overhead_pct": round(overhead_pct("traced"), 3),
        "health_overhead_pct": round(gated["health"], 3),
        "recorded_overhead_pct": round(gated["recorded"], 3),
        "alerts_overhead_pct": round(gated["alerted"], 3),
        "best_seconds": {k: round(v, 6) for k, v in best.items()},
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))

    assert gated["disabled"] <= OVERHEAD_BUDGET_PCT, (
        f"tracing-disabled insert loop is {gated['disabled']:.2f}% "
        f"slower than the untraced baseline (paired-median over "
        f"{PAIR_ROUNDS} adjacent rounds; budget {OVERHEAD_BUDGET_PCT}%); "
        f"see {RESULT_PATH}"
    )
    assert gated["health"] <= OVERHEAD_BUDGET_PCT, (
        f"health-monitored (shadow off) insert loop is "
        f"{gated['health']:.2f}% slower than the untraced baseline "
        f"(paired-median over {PAIR_ROUNDS} adjacent rounds; budget "
        f"{OVERHEAD_BUDGET_PCT}%); see {RESULT_PATH}"
    )
    assert gated["recorded"] <= OVERHEAD_BUDGET_PCT, (
        f"flight-recorded chunk feed is {gated['recorded']:.2f}% "
        f"slower than the recorder-free chunk feed (paired-median over "
        f"{PAIR_ROUNDS} adjacent rounds; budget {OVERHEAD_BUDGET_PCT}%); "
        f"see {RESULT_PATH}"
    )
    assert gated["alerted"] <= OVERHEAD_BUDGET_PCT, (
        f"per-stride metric collection + default-rule evaluation is "
        f"{gated['alerted']:.2f}% slower than the alert-free chunk "
        f"feed (paired-median over {PAIR_ROUNDS} adjacent rounds; "
        f"budget {OVERHEAD_BUDGET_PCT}%); see {RESULT_PATH}"
    )
