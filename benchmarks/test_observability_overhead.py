"""Tracing overhead: the disabled instrumentation must cost nothing.

PR 3 added event-hook call sites to the scalar filter's report path
(candidate election, replacement, emission) plus optional provenance
capture.  All of them hide behind one ``is not None`` / bool predicate
per site, so with tracing and provenance off the insert loop must run
at the untraced baseline's speed — this bench holds that to the ≤3%
budget from the issue and records the numbers in
``BENCH_observability.json`` at the repo root.

Methodology: the same stream is inserted under four configurations —

* ``baseline``   — filter built with the plain constructor (the
  untraced default: ``trace_hook=None``, no provenance);
* ``disabled``   — every observability kwarg passed explicitly off
  (identical code path; measures that the predicates stay in noise);
* ``traced``     — sampling tracer attached (``sample_every=64``) and
  provenance on, for the informational cost of full instrumentation;
* ``health``     — stats registry (``observe_filter``) plus a
  :class:`~repro.observability.health.HealthMonitor` in its disabled
  mode (shadow sampler off) attached, with one health report taken
  after the run.  Both are pull-model — they read filter state at
  snapshot time — so the insert loop must stay at baseline speed.

Rounds interleave configurations and the per-config *minimum* wall
time is compared — the standard noise-robust estimator for "how fast
can this code path go".
"""

import gc
import json
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import BENCH_SCALE
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.observability.tracing import Tracer, attach_filter_tracing

ROUNDS = 7
OVERHEAD_BUDGET_PCT = 3.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_observability.json"

CRIT = Criteria(delta=0.9, threshold=100.0, epsilon=5.0)
GEOMETRY = dict(num_buckets=256, bucket_size=4, vague_width=512,
                counter_kind="float", seed=9)


def make_stream(n, seed=17):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 500, size=n).tolist()
    values = np.where(
        rng.random(n) < 0.1, 500.0, rng.uniform(0.0, 100.0, n)
    ).tolist()
    return keys, values


def _build(config):
    if config == "baseline":
        return QuantileFilter(CRIT, **GEOMETRY)
    if config == "disabled":
        return QuantileFilter(
            CRIT, collect_provenance=False, trace_hook=None, **GEOMETRY
        )
    if config == "health":
        from repro.observability.health import HealthMonitor
        from repro.observability.instrument import observe_filter

        filt = QuantileFilter(CRIT, **GEOMETRY)
        registry = observe_filter(filt)
        # Disabled mode: no shadow sampler, nothing fed per item; the
        # monitor and registry only pull state at report time.
        filt._bench_monitor = HealthMonitor.for_filter(
            filt, shadow_sample_rate=None
        )
        filt._bench_registry = registry
        return filt
    filt = QuantileFilter(CRIT, collect_provenance=True, **GEOMETRY)
    attach_filter_tracing(filt, Tracer(), sample_every=64)
    return filt


def _time_insert_loop(config, keys, values):
    filt = _build(config)
    insert = filt.insert
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for key, value in zip(keys, values):
            insert(key, value)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    assert filt.items_processed == len(keys)
    return elapsed, filt


def test_disabled_tracing_overhead_within_budget(bench_scale):
    keys, values = make_stream(max(bench_scale, 50_000))
    timings = {"baseline": [], "disabled": [], "traced": [], "health": []}
    reported = {}
    for config in timings:  # warm-up every code path once
        _time_insert_loop(config, keys, values)
    order = list(timings)
    for round_no in range(ROUNDS):
        # Rotate the order so no config systematically inherits a
        # warmer (or dirtier) process state from its predecessor.
        shift = round_no % len(order)
        for config in order[shift:] + order[:shift]:
            elapsed, filt = _time_insert_loop(config, keys, values)
            timings[config].append(elapsed)
            reported[config] = filt.report_count
            if config == "health":
                # The health evaluation itself runs off the timed path.
                report = filt._bench_monitor.report(
                    filt._bench_registry.snapshot()
                )
                assert report.verdict in ("ok", "degraded", "critical")

    # Instrumentation must never change detection behaviour.
    assert reported["disabled"] == reported["baseline"]
    assert reported["traced"] == reported["baseline"]
    assert reported["health"] == reported["baseline"]

    best = {config: min(times) for config, times in timings.items()}
    items = len(keys)
    mops = {config: items / seconds / 1e6 for config, seconds in best.items()}

    def overhead_pct(config):
        return (best[config] / best["baseline"] - 1.0) * 100.0

    result = {
        "bench": "observability-overhead",
        "items": items,
        "rounds": ROUNDS,
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "baseline_mops": round(mops["baseline"], 4),
        "disabled_mops": round(mops["disabled"], 4),
        "traced_mops": round(mops["traced"], 4),
        "health_mops": round(mops["health"], 4),
        "disabled_overhead_pct": round(overhead_pct("disabled"), 3),
        "traced_overhead_pct": round(overhead_pct("traced"), 3),
        "health_overhead_pct": round(overhead_pct("health"), 3),
        "best_seconds": {k: round(v, 6) for k, v in best.items()},
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))

    assert overhead_pct("disabled") <= OVERHEAD_BUDGET_PCT, (
        f"tracing-disabled insert loop is "
        f"{overhead_pct('disabled'):.2f}% slower than the untraced "
        f"baseline (budget {OVERHEAD_BUDGET_PCT}%); see {RESULT_PATH}"
    )
    assert overhead_pct("health") <= OVERHEAD_BUDGET_PCT, (
        f"health-monitored (shadow off) insert loop is "
        f"{overhead_pct('health'):.2f}% slower than the untraced "
        f"baseline (budget {OVERHEAD_BUDGET_PCT}%); see {RESULT_PATH}"
    )
