"""Adaptive-threshold controller overhead: ≤3% on the insert path.

The :class:`~repro.detection.threshold.ThresholdControlLoop` rides
beside a live filter and feeds a strided subsample of the value stream
to a quantile estimator.  The issue budget allows the whole control
loop — stride bookkeeping, estimator updates, guard evaluation — at
most 3% of the uncontrolled insert path at the documented production
strides (``sample_every=64`` scalar, ``256`` batch; the tuning guide in
``docs/adaptive-thresholds.md`` derives both).  This bench holds that
budget and records the numbers in ``BENCH_controller.json`` at the
repo root (the throughput gate artefact ``BENCH_throughput.json`` is
untouched).

Methodology — additive decomposition.  A controlled run is, by
construction, the baseline insert path plus one ``observe_many(chunk)``
call per chunk; the two share no state (the loop only touches the
filter on a retarget, and this stream never retargets — see below).
So instead of differencing two end-to-end wall times, the bench times
the two components separately and gates on their ratio:

* **baseline** — the bare insert path over the pre-chunked stream
  (scalar ``insert`` loop / ``BatchQuantileFilter.process``), minimum
  of ``ROUNDS`` runs;
* **observation** — ``observe_many`` alone over the same chunks at the
  production stride, minimum of ``ROUNDS`` passes;
* ``overhead = observation_min / baseline_min``.

Differencing end-to-end A/B wall times is the obvious alternative and
it does not survive a busy or single-core host: the signal is 1–2% of
a ~0.4 s run, well inside scheduler jitter, and both min-of-rounds and
median-of-paired-ratios estimators were observed reporting 5–11% for a
code path whose isolated cost measures 2%.  The additive estimator is
robust because the numerator pass lasts only milliseconds — short
enough to fit inside quiet scheduling windows, so its minimum
converges on the true cost — while noise on the baseline minimum can
only *inflate* the denominator and therefore understate nothing the
gate cares about: a quiet-window baseline minimum is exactly the
"how fast can the uncontrolled path go" yardstick the budget is
defined against.

The stream is stationary and the controller starts at the stream's
true target quantile, so the deadband holds ``T`` in place and a
controlled filter reports identically to the baseline — asserted by a
(untimed) end-to-end controlled run per engine, which also checks the
controller was live (observing and deciding) the whole time.  A
retarget itself is one ``Criteria`` replacement, amortised over
``min_dwell_items`` and exercised by the calibration suite, not here.
"""

import gc
import json
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import BENCH_SCALE
from repro.core.criteria import Criteria
from repro.core.quantile_filter import QuantileFilter
from repro.core.vectorized import BatchQuantileFilter
from repro.detection.threshold import ThresholdControlLoop, ThresholdController

ROUNDS = 9
OVERHEAD_BUDGET_PCT = 3.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_controller.json"

CHUNK = 8_192
TARGET_QUANTILE = 0.9
SCALAR_STRIDE = 64
BATCH_STRIDE = 256
BATCH_SCALE_FACTOR = 8

# Values are uniform on (0, 1000), so the true target quantile is 900;
# starting T there keeps the controller inside its deadband for the
# whole run (stationary stream => zero retargets by design).
CRIT = Criteria(delta=0.9, threshold=900.0, epsilon=5.0)
GEOMETRY = dict(num_buckets=256, vague_width=512, seed=9)


def make_chunks(n, seed=17, lists=False):
    """Pre-chunked stream as (key list, value list, key/value array) rows.

    List conversion (for the scalar insert loop) happens once, outside
    the timed region, so the baseline and the end-to-end controlled
    check run byte-identical feeding code and differ only by the
    ``observe_many`` call.
    """
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 500, size=n).astype(np.int64)
    values = rng.uniform(0.0, 1000.0, size=n)
    return [
        (
            keys[at:at + CHUNK].tolist() if lists else None,
            values[at:at + CHUNK].tolist() if lists else None,
            keys[at:at + CHUNK],
            values[at:at + CHUNK],
        )
        for at in range(0, n, CHUNK)
    ]


def _make_filter(engine):
    if engine == "scalar":
        return QuantileFilter(CRIT, counter_kind="float", **GEOMETRY)
    return BatchQuantileFilter(CRIT, **GEOMETRY)


def _make_loop(filt, engine):
    stride = SCALAR_STRIDE if engine == "scalar" else BATCH_STRIDE
    return ThresholdControlLoop(
        ThresholdController(
            CRIT.threshold, TARGET_QUANTILE,
            deadband=0.05, warmup_items=512, min_dwell_items=2_048,
        ),
        filt, sample_every=stride,
    )


def _time_baseline(engine, chunks):
    """One bare insert-path run; returns (elapsed, filter)."""
    filt = _make_filter(engine)
    gc.collect()
    gc.disable()
    try:
        if engine == "scalar":
            insert = filt.insert
            start = time.perf_counter()
            for key_list, value_list, _, _ in chunks:
                for key, value in zip(key_list, value_list):
                    insert(key, value)
            elapsed = time.perf_counter() - start
        else:
            process = filt.process
            start = time.perf_counter()
            for _, _, key_arr, value_arr in chunks:
                process(key_arr, value_arr)
            elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, filt


def _time_observe(loop, chunks):
    """One observation-only pass (the work a controlled run adds)."""
    observe = loop.observe_many
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for _, _, _, value_arr in chunks:
            observe(value_arr)
        return time.perf_counter() - start
    finally:
        gc.enable()


def _run_controlled(engine, chunks):
    """End-to-end controlled run (untimed gate-wise); returns (filt, loop)."""
    filt = _make_filter(engine)
    loop = _make_loop(filt, engine)
    observe = loop.observe_many
    start = time.perf_counter()
    if engine == "scalar":
        insert = filt.insert
        for key_list, value_list, _, value_arr in chunks:
            for key, value in zip(key_list, value_list):
                insert(key, value)
            observe(value_arr)
    else:
        process = filt.process
        for _, _, key_arr, value_arr in chunks:
            process(key_arr, value_arr)
            observe(value_arr)
    return time.perf_counter() - start, filt, loop


def test_controller_overhead_within_budget(bench_scale):
    scalar_items = max(bench_scale, 100_000)
    batch_items = max(BATCH_SCALE_FACTOR * scalar_items, 1_600_000)
    streams = {
        "scalar": make_chunks(scalar_items, lists=True),
        "batch": make_chunks(batch_items),
    }
    items = {engine: sum(len(row[3]) for row in rows)
             for engine, rows in streams.items()}

    baseline_best = {}
    observe_best = {}
    controlled_seconds = {}
    baseline_reports = {}
    for engine in ("scalar", "batch"):
        chunks = streams[engine]
        # Warm every code path once before timing anything.
        _time_baseline(engine, chunks)
        warm_loop = _make_loop(_make_filter(engine), engine)
        _time_observe(warm_loop, chunks)

        baseline_times = []
        observe_times = []
        # One persistent loop across observation passes: estimator state
        # is O(1) (P² markers), and reusing it keeps every pass on the
        # steady-state code path rather than re-entering warmup.
        observe_loop = _make_loop(_make_filter(engine), engine)
        for _ in range(ROUNDS):
            elapsed, filt = _time_baseline(engine, chunks)
            baseline_times.append(elapsed)
            baseline_reports[engine] = filt.report_count
            observe_times.append(_time_observe(observe_loop, chunks))
        baseline_best[engine] = min(baseline_times)
        observe_best[engine] = min(observe_times)

        # Behavioural equivalence: with T pinned by the deadband, the
        # controlled filter must report exactly what the baseline does,
        # and the controller must have been live the whole run.
        elapsed, filt, loop = _run_controlled(engine, chunks)
        controlled_seconds[engine] = elapsed
        assert loop.controller.items_seen > 0, engine
        assert loop.controller.last_decision is not None, engine
        assert loop.retargets == 0, engine
        assert filt.report_count == baseline_reports[engine], engine
    assert baseline_reports["scalar"] > 0

    def overhead_pct(engine):
        return observe_best[engine] / baseline_best[engine] * 100.0

    result = {
        "bench": "controller-overhead",
        "items": items,
        "rounds": ROUNDS,
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "target_quantile": TARGET_QUANTILE,
        "sample_every": {"scalar": SCALAR_STRIDE, "batch": BATCH_STRIDE},
        "scalar_baseline_mops": round(
            items["scalar"] / baseline_best["scalar"] / 1e6, 4),
        "batch_baseline_mops": round(
            items["batch"] / baseline_best["batch"] / 1e6, 4),
        "scalar_overhead_pct": round(overhead_pct("scalar"), 3),
        "batch_overhead_pct": round(overhead_pct("batch"), 3),
        "baseline_seconds": {k: round(v, 6) for k, v in
                             baseline_best.items()},
        "observe_seconds": {k: round(v, 6) for k, v in
                            observe_best.items()},
        # End-to-end controlled wall time, informational only: on a
        # loaded host it carries scheduler noise far larger than the
        # overhead signal, which is why the gate uses the additive
        # estimator above.
        "controlled_seconds": {k: round(v, 6) for k, v in
                               controlled_seconds.items()},
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))

    for engine in ("scalar", "batch"):
        assert overhead_pct(engine) <= OVERHEAD_BUDGET_PCT, (
            f"{engine} control loop adds {overhead_pct(engine):.2f}% to "
            f"its baseline insert path (budget {OVERHEAD_BUDGET_PCT}%); "
            f"see {RESULT_PATH}"
        )
