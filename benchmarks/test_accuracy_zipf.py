"""Accuracy sweep on the paper's synthetic Zipf datasets.

Sec. V-A builds two Zipf variants (many-key and few-key) by varying
alpha; the figures shown in the paper focus on Internet/Cloud, but the
Zipf datasets are part of its evaluation setup, so this bench runs the
Fig. 4-style sweep on both variants.  The skew knob is what changes:
the few-key variant concentrates traffic (candidate part carries it),
the many-key variant stresses the vague part.
"""

from benchmarks.conftest import persist
from repro.experiments.config import (
    build_trace,
    default_criteria_for,
    memory_sweep_points,
)
from repro.experiments.harness import FigureResult, accuracy_sweep

ALGORITHMS = ("quantilefilter", "squad", "sketchpolymer")


def run_sweep(scale: int, seed: int = 0) -> FigureResult:
    records = []
    for dataset in ("zipf-large", "zipf-small"):
        trace = build_trace(dataset, scale=scale, seed=seed)
        criteria = default_criteria_for(dataset)
        records.extend(
            accuracy_sweep(
                trace, criteria, ALGORITHMS,
                memory_sweep_points(points=4),
                dataset=dataset, seed=seed,
            )
        )
    return FigureResult(
        figure="accuracy-zipf",
        description="Accuracy vs memory on both synthetic Zipf variants",
        records=records,
    )


def test_zipf_accuracy(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_sweep, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    print(persist(result))

    for dataset in ("zipf-large", "zipf-small"):
        rows = [r for r in result.records if r.dataset == dataset]
        qf = [r for r in rows if r.algorithm == "quantilefilter"]
        best_qf = max(r.score.f1 for r in qf)
        # QF best-or-tied on both skews.
        for algorithm in ALGORITHMS:
            algo_best = max(
                r.score.f1 for r in rows if r.algorithm == algorithm
            )
            assert best_qf >= algo_best - 0.02, (dataset, algorithm)
        # And usable at the smallest budget.
        smallest = min(r.memory_bytes for r in qf)
        starved = next(r for r in qf if r.memory_bytes == smallest)
        assert starved.score.precision > 0.6, dataset
