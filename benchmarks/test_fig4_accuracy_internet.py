"""Fig. 4: accuracy vs memory on the Internet dataset, QF vs SOTA.

Regenerates the paper's precision/recall/F1 curves and prints the
Key-Result-2 space-saving table.  Expected shape: QuantileFilter's
precision ~1 everywhere with recall converging first; SQUAD second-best,
converging with memory; SketchPolymer low-precision/high-recall when
starved; HistSketch needing far more space.
"""

from benchmarks.conftest import persist
from repro.experiments.figures import fig4_accuracy_internet, space_saving_table


def test_fig4(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig4_accuracy_internet,
        kwargs=dict(scale=bench_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    saving = space_saving_table(result.records)
    text = persist(result, {"key result 2: space saving at equal F1": saving})
    print(text)

    by_algorithm = {}
    for record in result.records:
        by_algorithm.setdefault(record.algorithm, []).append(record)

    # Paper shape 1: QF precision stays high at every budget.
    qf = by_algorithm["quantilefilter"]
    assert min(r.score.precision for r in qf) > 0.7

    # Paper shape 2: QF's best F1 matches or beats every baseline's.
    best_qf = max(r.score.f1 for r in qf)
    for algorithm, records in by_algorithm.items():
        assert best_qf >= max(r.score.f1 for r in records) - 0.02, algorithm

    # Paper shape 3: at the smallest budget QF leads the field outright.
    smallest = min(r.memory_bytes for r in result.records)
    starved = {
        r.algorithm: r.score.f1
        for r in result.records
        if r.memory_bytes == smallest
    }
    assert starved["quantilefilter"] == max(starved.values())

    # Key result 2: a positive space-saving factor exists vs some baseline.
    factors = [
        row["space_saving_factor"]
        for row in saving
        if row["space_saving_factor"] is not None
    ]
    assert factors and max(factors) >= 4.0
