"""Extra baseline study: the holistic per-key approach vs QuantileFilter.

Sec. II-B dismisses one-summary-per-key for its storage demands; this
bench quantifies the dismissal on both workloads: the bytes the holistic
approach *actually* consumes to match QuantileFilter's accuracy, and
what a byte-capped holistic deployment loses in recall.
"""

from benchmarks.conftest import persist
from repro.baselines.perkey import PerKeyQuantileStore
from repro.detection.adapters import QueryOnInsertAdapter
from repro.experiments.config import build_trace, default_criteria_for
from repro.experiments.harness import (
    FigureResult,
    build_detector,
    ground_truth_for,
    run_detection,
)

QF_BYTES = 4_096


def run_study(scale: int, seed: int = 0) -> FigureResult:
    records = []
    for dataset in ("internet", "cloud"):
        trace = build_trace(dataset, scale=scale, seed=seed)
        criteria = default_criteria_for(dataset)
        truth = ground_truth_for(trace, criteria)

        qf = build_detector("quantilefilter", criteria, QF_BYTES, seed=seed)
        record = run_detection(qf, trace, truth, dataset=dataset,
                               memory_bytes=QF_BYTES,
                               algorithm="quantilefilter")
        record.extra["variant"] = "budgeted"
        records.append(record)

        # Unbounded holistic: great accuracy, runaway bytes.
        unbounded = QueryOnInsertAdapter(
            PerKeyQuantileStore(estimator="gk"), criteria
        )
        record = run_detection(unbounded, trace, truth, dataset=dataset,
                               memory_bytes=0, algorithm="perkey-gk")
        record.extra["variant"] = "unbounded"
        records.append(record)

        # Byte-capped holistic at QuantileFilter's budget.
        capped = build_detector("perkey-gk", criteria, QF_BYTES, seed=seed)
        record = run_detection(capped, trace, truth, dataset=dataset,
                               memory_bytes=QF_BYTES, algorithm="perkey-gk")
        record.extra["variant"] = "capped"
        records.append(record)
    return FigureResult(
        figure="baseline-holistic",
        description="Holistic per-key approach vs QuantileFilter "
        f"(QF budget {QF_BYTES} B)",
        records=records,
    )


def test_holistic_study(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_study, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    print(persist(result))

    def pick(dataset, algorithm, variant):
        return next(
            r for r in result.records
            if r.dataset == dataset and r.algorithm == algorithm
            and r.extra["variant"] == variant
        )

    for dataset in ("internet", "cloud"):
        qf = pick(dataset, "quantilefilter", "budgeted")
        unbounded = pick(dataset, "perkey-gk", "unbounded")
        capped = pick(dataset, "perkey-gk", "capped")

        # Unbounded holistic is accurate but balloons past QF's bytes —
        # dramatically so on the key-rich cloud workload.
        assert unbounded.score.recall > 0.9
        assert unbounded.actual_bytes > 10 * qf.actual_bytes
        # Byte-capped holistic collapses in recall relative to QF.
        assert capped.score.recall < qf.score.recall
        # QF wins the accuracy-per-byte comparison outright.
        assert qf.score.f1 >= capped.score.f1
