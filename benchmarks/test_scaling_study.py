"""Scaling study bench: the accuracy-memory transition vs stream size.

Validates the EXPERIMENTS.md scaling argument: the minimal budget for a
fixed F1 target grows with the workload (keys), while the *bytes per
distinct key* stay in a narrow band — i.e. the small-scale sweeps probe
the same transition the paper's 20M-item sweeps do.
"""

from benchmarks.conftest import persist
from repro.experiments.scaling import scaling_study


def test_scaling_study(benchmark):
    result = benchmark.pedantic(
        scaling_study,
        kwargs=dict(dataset="internet",
                    scales=(5_000, 20_000, 80_000)),
        rounds=1,
        iterations=1,
    )
    print(persist(result))

    assert len(result.records) == 3  # every scale reached the target
    by_scale = sorted(result.records, key=lambda r: r.extra["scale"])

    # The minimal budget is non-decreasing with scale.
    budgets = [r.memory_bytes for r in by_scale]
    assert budgets == sorted(budgets)

    # Bytes-per-key stays within one decade across a 16x scale range.
    per_key = [r.extra["bytes_per_key"] for r in by_scale]
    assert max(per_key) <= 10 * min(per_key)
