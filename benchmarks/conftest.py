"""Shared machinery for the figure benchmarks.

Each figure bench runs the corresponding driver once under
pytest-benchmark (timing the whole experiment) and persists the result
table to ``benchmarks/results/<figure>.txt`` so the regenerated series
survive the run.  ``REPRO_BENCH_SCALE`` scales every bench's stream
length (default 20 000 items — CI-friendly; raise it to approach
paper-scale sweeps).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.harness import FigureResult, format_rows

#: Stream length used by every figure bench.
BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "20000"))

RESULTS_DIR = Path(__file__).parent / "results"


def persist(result: FigureResult, extra_sections: dict = None) -> str:
    """Write a figure's table (plus named extra tables) to results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = str(result)
    for title, rows in (extra_sections or {}).items():
        text += f"\n\n-- {title} --\n{format_rows(rows)}"
    path = RESULTS_DIR / f"{result.figure.replace('+', '_')}.txt"
    path.write_text(text + "\n")
    return text


@pytest.fixture
def bench_scale() -> int:
    return BENCH_SCALE
