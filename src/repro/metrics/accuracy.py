"""Detection-accuracy metrics (paper Sec. V-B "Metrics").

The paper streams the whole dataset through each algorithm, deduplicates
its reported keys, and compares that set with the true outstanding-key
set: precision, recall and F1 over the set comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Set

from repro.detection.base import Detector


@dataclass(frozen=True)
class DetectionScore:
    """Precision / recall / F1 plus the raw confusion counts."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); defined as 1.0 when nothing was reported
        (no positive predictions means no wrong positive predictions)."""
        denominator = self.true_positives + self.false_positives
        if denominator == 0:
            return 1.0
        return self.true_positives / denominator

    @property
    def recall(self) -> float:
        """TP / (TP + FN); defined as 1.0 when nothing was outstanding."""
        denominator = self.true_positives + self.false_negatives
        if denominator == 0:
            return 1.0
        return self.true_positives / denominator

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2.0 * p * r / (p + r)

    def as_dict(self) -> dict:
        """Flat dict of all five numbers (for tables and JSON export)."""
        return {
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


def score_sets(reported: Set[Hashable], truth: Set[Hashable]) -> DetectionScore:
    """Score a deduplicated reported-key set against the true set."""
    true_positives = len(reported & truth)
    return DetectionScore(
        true_positives=true_positives,
        false_positives=len(reported) - true_positives,
        false_negatives=len(truth) - true_positives,
    )


def score_detection(detector: Detector, truth: Set[Hashable]) -> DetectionScore:
    """Score a finished detector run against the true set."""
    return score_sets(detector.reported_keys, truth)
