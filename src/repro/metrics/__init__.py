"""Evaluation metrics: detection accuracy and processing throughput."""

from repro.metrics.accuracy import DetectionScore, score_detection, score_sets
from repro.metrics.throughput import ThroughputResult, measure_throughput
from repro.metrics.latency import LatencyResult, measure_detection_latency

__all__ = [
    "DetectionScore",
    "score_detection",
    "score_sets",
    "ThroughputResult",
    "measure_throughput",
    "LatencyResult",
    "measure_detection_latency",
]
