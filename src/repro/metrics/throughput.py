"""Throughput measurement in MOPS (million operations per second).

The paper's speed metric counts *stream items processed per second*,
charging each algorithm whatever work its online-detection loop needs
(for QuantileFilter that is one fused insert; for the SOTA adapters,
insert + query).  Absolute numbers on a Python substrate are far below
the paper's C++ figures; the experiments therefore report the *ratios*
between algorithms, which is what the paper's 10-100x claim is about
(see DESIGN.md's substitution table).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.common.errors import ParameterError


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one timed run."""

    items: int
    seconds: float

    @property
    def mops(self) -> float:
        """Million items per second."""
        if self.seconds <= 0:
            return float("inf")
        return self.items / self.seconds / 1e6

    @property
    def ns_per_item(self) -> float:
        """Nanoseconds of wall time per item."""
        if self.items == 0:
            return 0.0
        return self.seconds / self.items * 1e9


def measure_throughput(run: Callable[[], None], items: int) -> ThroughputResult:
    """Time one call of ``run`` that processes ``items`` stream items.

    ``run`` should already hold its data (no generation inside the timed
    region); ``perf_counter`` gives monotonic wall time.
    """
    if items < 1:
        raise ParameterError(f"items must be >= 1, got {items}")
    start = time.perf_counter()
    run()
    elapsed = time.perf_counter() - start
    return ThroughputResult(items=items, seconds=elapsed)


def speedup(ours: ThroughputResult, baseline: ThroughputResult) -> float:
    """How many times faster ``ours`` is than ``baseline``."""
    if baseline.mops == 0:
        return float("inf")
    return ours.mops / baseline.mops


@dataclass(frozen=True)
class ShardScalingPoint:
    """Throughput of one shard-count configuration in a scaling sweep."""

    shards: int
    throughput: ThroughputResult


def scaling_table(points: Sequence[ShardScalingPoint]) -> List[Dict[str, float]]:
    """Speedup and parallel efficiency of a shard-count sweep.

    The baseline is the sweep's smallest shard count (normally 1).
    Efficiency is ``speedup / shards`` — 1.0 is perfect linear scaling;
    the parallel benchmarks record it so scaling regressions show up as
    a number, not a vibe.
    """
    if not points:
        raise ParameterError("scaling_table needs at least one point")
    ordered = sorted(points, key=lambda p: p.shards)
    base = ordered[0].throughput
    rows = []
    for point in ordered:
        gain = speedup(point.throughput, base)
        rows.append(
            {
                "shards": point.shards,
                "mops": point.throughput.mops,
                "speedup": gain,
                "efficiency": gain / point.shards,
            }
        )
    return rows
