"""Throughput measurement in MOPS (million operations per second).

The paper's speed metric counts *stream items processed per second*,
charging each algorithm whatever work its online-detection loop needs
(for QuantileFilter that is one fused insert; for the SOTA adapters,
insert + query).  Absolute numbers on a Python substrate are far below
the paper's C++ figures; the experiments therefore report the *ratios*
between algorithms, which is what the paper's 10-100x claim is about
(see DESIGN.md's substitution table).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ParameterError


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one timed run."""

    items: int
    seconds: float

    @property
    def mops(self) -> float:
        """Million items per second."""
        if self.seconds <= 0:
            return float("inf")
        return self.items / self.seconds / 1e6

    @property
    def ns_per_item(self) -> float:
        """Nanoseconds of wall time per item."""
        if self.items == 0:
            return 0.0
        return self.seconds / self.items * 1e9


def measure_throughput(run: Callable[[], None], items: int) -> ThroughputResult:
    """Time one call of ``run`` that processes ``items`` stream items.

    ``run`` should already hold its data (no generation inside the timed
    region); ``perf_counter`` gives monotonic wall time.
    """
    if items < 1:
        raise ParameterError(f"items must be >= 1, got {items}")
    start = time.perf_counter()
    run()
    elapsed = time.perf_counter() - start
    return ThroughputResult(items=items, seconds=elapsed)


def speedup(ours: ThroughputResult, baseline: ThroughputResult) -> float:
    """How many times faster ``ours`` is than ``baseline``."""
    if baseline.mops == 0:
        return float("inf")
    return ours.mops / baseline.mops
