"""Detection latency: how long after a key truly qualifies is it reported?

The paper's accuracy metrics deliberately exclude timeliness
("not yet including any constraints on reporting timeliness",
Sec. V-B) even though timeliness is the whole point of online detection
— so this module measures it as an extension experiment.

For each key, the *oracle first-report index* is when the exact
Definition 4 process first fires; the *detector first-report index* is
when the algorithm under test first reports the key.  Detection latency
is their difference in stream items (0 = reported on the exact item the
key qualified).  Keys the detector reports early (possible under sketch
noise) get negative latency; keys it never reports are misses and are
tracked separately rather than averaged in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List

import numpy as np

from repro.common.percentile import percentile as shared_percentile
from repro.core.criteria import Criteria
from repro.detection.base import Detector
from repro.detection.ground_truth import GroundTruthDetector
from repro.streams.model import Trace


@dataclass
class LatencyResult:
    """Latency distribution of one detector run against the oracle."""

    latencies: Dict[Hashable, int] = field(default_factory=dict)
    missed_keys: List[Hashable] = field(default_factory=list)
    early_keys: List[Hashable] = field(default_factory=list)
    items: int = 0

    @property
    def detected(self) -> int:
        """Truly-outstanding keys the detector reported (late or not)."""
        return len(self.latencies)

    @property
    def missed(self) -> int:
        """Truly-outstanding keys the detector never reported."""
        return len(self.missed_keys)

    def _values(self) -> np.ndarray:
        return np.asarray(list(self.latencies.values()), dtype=np.float64)

    @property
    def mean_latency(self) -> float:
        """Mean items between qualification and report (detected keys)."""
        values = self._values()
        return float(values.mean()) if values.size else 0.0

    @property
    def median_latency(self) -> float:
        return self.percentile(50)

    def percentile(self, q: float) -> float:
        """Latency percentile over detected keys (q in [0, 100]).

        Shares its interpolation rule with the observability
        histograms via :mod:`repro.common.percentile`.
        """
        return shared_percentile(self._values(), q)

    def as_dict(self) -> dict:
        """Flat summary row for experiment tables."""
        return {
            "detected": self.detected,
            "missed": self.missed,
            "early": len(self.early_keys),
            "mean_latency": round(self.mean_latency, 2),
            "median_latency": round(self.median_latency, 2),
            "p95_latency": round(self.percentile(95), 2),
        }


def measure_detection_latency(
    detector: Detector, trace: Trace, criteria: Criteria
) -> LatencyResult:
    """Run detector and oracle in lockstep; collect per-key latencies.

    Latency is measured from each key's FIRST oracle report to its
    first detector report.  Keys the detector flags before the oracle
    (sketch-noise early reports on truly-outstanding keys) count as
    latency <= 0 and are listed in ``early_keys``; detector reports on
    keys the oracle never flags are false positives and belong to the
    accuracy metric, not here.
    """
    oracle = GroundTruthDetector(criteria)
    oracle_first: Dict[Hashable, int] = {}
    detector_first: Dict[Hashable, int] = {}
    for index, (key, value) in enumerate(trace.items()):
        if oracle.process(key, value) is not None:
            oracle_first.setdefault(key, index)
        if detector.process(key, value) is not None:
            detector_first.setdefault(key, index)

    result = LatencyResult(items=len(trace))
    for key, qualified_at in oracle_first.items():
        reported_at = detector_first.get(key)
        if reported_at is None:
            result.missed_keys.append(key)
            continue
        latency = reported_at - qualified_at
        result.latencies[key] = latency
        if latency < 0:
            result.early_keys.append(key)
    return result
