"""Runtime observability: registries, instrumentation and exporters.

The subsystem has three layers, all zero-dependency:

* :mod:`~repro.observability.registry` — cheap monotonic
  :class:`Counter` / :class:`Gauge` metrics collected in a
  :class:`StatsRegistry`, with pull-model (callback) variants so
  instrumentation can read existing state at snapshot time instead of
  touching the insert hot path.
* :mod:`~repro.observability.instrument` — :func:`observe_filter`
  attaches a registry to a ``QuantileFilter`` /
  ``BatchQuantileFilter`` / ``WindowedQuantileFilter``;
  ``ParallelPipeline(collect_stats=True)`` does the same per worker and
  aggregates shard registries master-side.
* :mod:`~repro.observability.exporters` — ``snapshot()`` dicts,
  :class:`JsonLinesEmitter`, and Prometheus text rendering
  (:func:`render_prometheus`), plus the ``repro stats`` / ``repro
  watch`` CLI (:mod:`~repro.observability.cli`).

>>> from repro.observability import StatsRegistry, render_prometheus
>>> reg = StatsRegistry()
>>> reg.counter("obs_demo_total", help="demo events").inc(2)
>>> print(render_prometheus(reg.snapshot(), specs=reg.specs()))
# HELP obs_demo_total demo events
# TYPE obs_demo_total counter
obs_demo_total 2

See ``docs/observability.md`` for the full metric reference and the
operational healthy/degraded reading of each signal.
"""

from repro.observability.registry import (
    Counter,
    Gauge,
    MetricSpec,
    StatsRegistry,
    aggregate_snapshots,
)
from repro.observability.exporters import (
    JsonLinesEmitter,
    registry_to_prometheus,
    render_prometheus,
    render_snapshot_text,
)
from repro.observability.instrument import FILTER_METRIC_HELP, observe_filter

__all__ = [
    "Counter",
    "Gauge",
    "MetricSpec",
    "StatsRegistry",
    "aggregate_snapshots",
    "JsonLinesEmitter",
    "registry_to_prometheus",
    "render_prometheus",
    "render_snapshot_text",
    "FILTER_METRIC_HELP",
    "observe_filter",
]
