"""Runtime observability: registries, tracing, provenance, exporters.

The subsystem has two tiers, all zero-dependency:

**Metrics** (always-on, pull-model, snapshot-friendly):

* :mod:`~repro.observability.registry` — cheap monotonic
  :class:`Counter` / :class:`Gauge` metrics collected in a
  :class:`StatsRegistry`, with pull-model (callback) variants so
  instrumentation can read existing state at snapshot time instead of
  touching the insert hot path.
* :mod:`~repro.observability.histogram` — fixed log-bucket mergeable
  latency histograms (:class:`LogHistogram` / registry
  :meth:`~repro.observability.registry.StatsRegistry.histogram`).
  Snapshots explode into Prometheus-convention cumulative
  ``_bucket``/``_count``/``_sum`` counters, so cross-shard aggregation
  is an exact histogram merge under the existing sum rule.
* :mod:`~repro.observability.instrument` — :func:`observe_filter`
  attaches a registry to a ``QuantileFilter`` /
  ``BatchQuantileFilter`` / ``WindowedQuantileFilter``;
  ``ParallelPipeline(collect_stats=True)`` does the same per worker and
  aggregates shard registries master-side.
* :mod:`~repro.observability.exporters` — ``snapshot()`` dicts,
  :class:`JsonLinesEmitter`, Prometheus text rendering
  (:func:`render_prometheus`) and histogram percentile summaries
  (:func:`render_histogram_summaries`).

**Tracing & provenance** (opt-in, for debugging and audit):

* :mod:`~repro.observability.tracing` — ring-buffer-bounded
  :class:`Tracer` emitting Chrome trace-event JSON (load at
  https://ui.perfetto.dev); ``ParallelPipeline(collect_trace=True)``
  records the :data:`PIPELINE_SPANS` stages plus sampled per-item
  filter events (:func:`attach_filter_tracing`).
* :mod:`~repro.observability.provenance` — :class:`ReportProvenance`
  captures filter state at report emission
  (``collect_provenance=True``); :func:`provenance_record` renders
  JSON-ready audit records.
* :mod:`~repro.observability.logs` — :func:`configure_json_logging` /
  :class:`JsonLogFormatter` for structured pipeline lifecycle logs.

**Health & serving** (derived verdicts, HTTP endpoint):

* :mod:`~repro.observability.health` — :class:`HealthModel` maps
  snapshots + structural probes to ok/degraded/critical
  :class:`HealthSignal` verdicts with reasons;
  :class:`ExceedanceDriftDetector` watches the value-vs-T exceedance
  fraction; :class:`HealthMonitor` bundles both with the shadow
  accuracy estimator (:mod:`repro.detection.shadow`).
* :mod:`~repro.observability.server` — stdlib threaded
  :class:`HealthServer` exposing ``/metrics``, ``/healthz``,
  ``/health/shards`` and ``/incidents`` for a filter
  (:func:`serve_filter`) or pipeline (:func:`serve_pipeline`).
* :mod:`~repro.observability.recorder` — :class:`FlightRecorder`
  flight recorder retaining the recent stream window plus forensic
  snapshots in bounded memory, dumping versioned incident bundles on
  critical verdicts / verdict flips / worker crashes / firing critical
  alerts (:class:`TriggerPolicy`), with :func:`replay_bundle`
  deterministic bit-identical replay.

**Time series & alerting** (history, rules, operator dashboard):

* :mod:`~repro.observability.timeseries` — :class:`MetricStore`
  collects any snapshot source into bounded per-series ring buffers
  (fine ring + downsampled coarse tier + eviction accounting) and
  derives ``rate()`` / ``delta()`` / ``mean()`` / ``max()`` /
  percentiles over the retained window.
* :mod:`~repro.observability.alerts` — declarative
  :class:`AlertRule` grammar (``fn(metric[window]) > T`` with ``for:``
  durations and resolve hysteresis) evaluated by an
  :class:`AlertEngine` state machine
  (inactive→pending→firing→resolved); :func:`default_rules` is the
  shipped pack, :func:`load_rules` reads TOML/JSON packs.
* :mod:`~repro.observability.term` / :mod:`~repro.observability.
  dashboard` — flicker-free ANSI :class:`LiveScreen`, sparklines, and
  the ``repro top`` frame renderer (degrades to plain text off-TTY).

The ``repro`` CLI (:mod:`~repro.observability.cli`) exposes all of it:
``repro stats`` / ``repro watch`` for metrics, ``repro trace`` for a
fully instrumented run, ``repro serve`` / ``repro health`` for the
health layer, ``repro top`` for the live dashboard and ``repro alerts
check|list`` for one-shot rule evaluation.

>>> from repro.observability import StatsRegistry, render_prometheus
>>> reg = StatsRegistry()
>>> reg.counter("obs_demo_total", help="demo events").inc(2)
>>> print(render_prometheus(reg.snapshot(), specs=reg.specs()))
# HELP obs_demo_total demo events
# TYPE obs_demo_total counter
obs_demo_total 2

See ``docs/observability.md`` for the full metric reference, the
operational healthy/degraded reading of each signal, and the tracing &
provenance guide.
"""

from repro.observability.alerts import (
    ALERT_METRIC_HELP,
    AlertEngine,
    AlertRule,
    AlertTransition,
    default_rules,
    load_rules,
    parse_condition,
    parse_rules,
)
from repro.observability.dashboard import Dashboard
from repro.observability.term import LiveScreen, ansi_capable, sparkline
from repro.observability.timeseries import (
    STORE_METRIC_HELP,
    MetricStore,
    Series,
)
from repro.observability.registry import (
    Counter,
    Gauge,
    MetricSpec,
    StatsRegistry,
    aggregate_snapshots,
    escape_label_value,
)
from repro.observability.exporters import (
    JsonLinesEmitter,
    escape_help,
    registry_to_prometheus,
    render_histogram_summaries,
    render_prometheus,
    render_snapshot_text,
)
from repro.observability.histogram import (
    Histogram,
    LogHistogram,
    buckets_from_snapshot,
    histogram_families,
    log_bounds,
    percentiles_from_snapshot,
)
from repro.observability.instrument import (
    FILTER_METRIC_HELP,
    HISTOGRAM_METRIC_HELP,
    PROCESS_METRIC_HELP,
    observe_filter,
    observe_process,
)
from repro.observability.health import (
    HEALTH_METRIC_HELP,
    ExceedanceDriftDetector,
    HealthModel,
    HealthMonitor,
    HealthReport,
    HealthSignal,
    HealthThresholds,
    aggregate_reports,
    worst_verdict,
)
from repro.observability.logs import JsonLogFormatter, configure_json_logging
from repro.observability.provenance import ReportProvenance, provenance_record
from repro.observability.recorder import (
    RECORDER_METRIC_HELP,
    FlightRecorder,
    ReplayResult,
    TriggerPolicy,
    list_incidents,
    load_bundle,
    observe_recorder,
    replay_bundle,
)
from repro.observability.server import (
    FilterServeSource,
    HealthServer,
    PipelineServeSource,
    serve_filter,
    serve_pipeline,
)
from repro.observability.tracing import (
    FILTER_EVENTS,
    PIPELINE_SPANS,
    FilterTraceHook,
    Tracer,
    attach_filter_tracing,
)

__all__ = [
    "ALERT_METRIC_HELP",
    "AlertEngine",
    "AlertRule",
    "AlertTransition",
    "default_rules",
    "load_rules",
    "parse_condition",
    "parse_rules",
    "Dashboard",
    "LiveScreen",
    "ansi_capable",
    "sparkline",
    "STORE_METRIC_HELP",
    "MetricStore",
    "Series",
    "PROCESS_METRIC_HELP",
    "observe_process",
    "Counter",
    "Gauge",
    "MetricSpec",
    "StatsRegistry",
    "aggregate_snapshots",
    "escape_label_value",
    "JsonLinesEmitter",
    "escape_help",
    "registry_to_prometheus",
    "render_histogram_summaries",
    "render_prometheus",
    "render_snapshot_text",
    "Histogram",
    "LogHistogram",
    "buckets_from_snapshot",
    "histogram_families",
    "log_bounds",
    "percentiles_from_snapshot",
    "FILTER_METRIC_HELP",
    "HISTOGRAM_METRIC_HELP",
    "observe_filter",
    "HEALTH_METRIC_HELP",
    "ExceedanceDriftDetector",
    "HealthModel",
    "HealthMonitor",
    "HealthReport",
    "HealthSignal",
    "HealthThresholds",
    "aggregate_reports",
    "worst_verdict",
    "FilterServeSource",
    "HealthServer",
    "PipelineServeSource",
    "serve_filter",
    "serve_pipeline",
    "JsonLogFormatter",
    "configure_json_logging",
    "ReportProvenance",
    "provenance_record",
    "RECORDER_METRIC_HELP",
    "FlightRecorder",
    "ReplayResult",
    "TriggerPolicy",
    "list_incidents",
    "load_bundle",
    "observe_recorder",
    "replay_bundle",
    "FILTER_EVENTS",
    "PIPELINE_SPANS",
    "FilterTraceHook",
    "Tracer",
    "attach_filter_tracing",
]
