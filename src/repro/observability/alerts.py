"""Declarative alert rules over :class:`~repro.observability.timeseries.MetricStore` derivations.

A rule is one condition — a derivation over one metric compared against
a threshold — plus the operational policy around it: how long the
condition must hold before the alert fires (``for``), where it must
fall back to before the alert resolves (``resolve`` hysteresis), its
severity, and free-form labels.  Rules load from TOML (Python >= 3.11)
or JSON files, or from the built-in :func:`default_rules` pack.

Condition grammar (one derivation, one comparison)::

    <fn>(<metric>[<window>]) <op> <number>     # windowed derivation
    value(<metric>) <op> <number>              # latest sample
    age(<metric>) <op> <number>                # seconds since last sample
    <metric> <op> <number>                     # shorthand for value()

``fn`` is any :data:`~repro.observability.timeseries.DERIVATIONS`
member; ``metric`` is a sample name, optionally labelled the Prometheus
way; ``window`` is a duration like ``90s`` / ``5m``; ``op`` is one of
``> >= < <= == !=``.

>>> cond = parse_condition('max(qf_drift_z[120s]) >= 4')
>>> cond.fn, cond.metric, cond.window, cond.op, cond.threshold
('max', 'qf_drift_z', 120.0, '>=', 4.0)

The per-rule state machine is **inactive → pending → firing →
resolved → inactive**, advanced on every evaluation tick:

* inactive → pending when the condition first holds (straight to
  firing when ``for`` is zero);
* pending → firing once the condition has held for ``for`` seconds —
  a tick where it fails (or the metric is missing) drops back to
  inactive, so a flapping signal never fires;
* firing → resolved only once the value recovers past the ``resolve``
  threshold (hysteresis — values between ``resolve`` and the trigger
  threshold keep the alert firing);
* resolved → inactive on the next tick (or straight back to
  pending/firing if the condition returns).

Pending can never skip to resolved, and firing never drops straight to
inactive — ``tests/properties/test_alert_state.py`` pins both under
irregular scrape intervals.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - version-dependent
    tomllib = None

from repro.common.errors import ParameterError
from repro.observability.health import HealthReport, HealthSignal, worst_verdict
from repro.observability.registry import SPEC_INDEX, MetricSpec, sample_name
from repro.observability.timeseries import (
    DERIVATIONS,
    POINT_DERIVATIONS,
    MetricStore,
)

#: Alert lifecycle states, in escalation order.
STATES = ("inactive", "pending", "firing", "resolved")

#: Numeric encoding used by the ``qf_alert_state`` gauge.
STATE_VALUES = {"inactive": 0.0, "pending": 1.0, "firing": 2.0,
                "resolved": 3.0}

#: Recognised severities and the health verdict a firing rule maps to.
SEVERITIES = ("warning", "critical")
_SEVERITY_VERDICT = {"warning": "degraded", "critical": "critical"}

ALERT_METRIC_HELP = {
    "qf_alert_state":
        "Alert lifecycle state per rule "
        "(0 inactive, 1 pending, 2 firing, 3 resolved).",
    "qf_alerts_fired_total": "Times each rule entered the firing state.",
    "qf_alerts_firing": "Rules currently firing.",
}

for _name, _help in ALERT_METRIC_HELP.items():
    _kind = "counter" if _name.endswith("_total") else "gauge"
    SPEC_INDEX.setdefault(
        _name,
        MetricSpec(name=_name, kind=_kind, help=_help,
                   agg="sum" if _kind == "counter" else "max"),
    )
del _name, _help, _kind

_DURATION_UNITS = {"ms": 1e-3, "s": 1.0, "m": 60.0, "h": 3600.0}

_DURATION_RE = re.compile(r"^\s*([\d.]+)\s*(ms|s|m|h)?\s*$")

_CONDITION_RE = re.compile(
    r"""^\s*
    (?:(?P<fn>[a-z][a-z0-9]*)\s*\(\s*)?                 # optional fn(
    (?P<metric>[A-Za-z_:][A-Za-z0-9_:]*(?:\{[^}]*\})?)  # metric{labels}
    (?:\[\s*(?P<window>[^\]]+?)\s*\])?                  # [window]
    (?P<close>\s*\))?                                   # closing paren
    \s*(?P<op>>=|<=|==|!=|>|<)\s*
    (?P<threshold>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)
    \s*$""",
    re.VERBOSE,
)

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
    "==": lambda v, t: v == t,
    "!=": lambda v, t: v != t,
}


def parse_duration(text) -> float:
    """Seconds from ``"45s"`` / ``"2m"`` / ``"500ms"`` / a bare number."""
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        value = float(text)
        if value < 0:
            raise ParameterError(f"duration must be >= 0, got {value}")
        return value
    match = _DURATION_RE.match(str(text))
    if match is None:
        raise ParameterError(
            f"cannot parse duration {text!r} (expected e.g. '45s', '2m')"
        )
    return float(match.group(1)) * _DURATION_UNITS[match.group(2) or "s"]


@dataclass(frozen=True)
class Condition:
    """One parsed rule condition: ``fn(metric[window]) op threshold``."""

    fn: str
    metric: str
    window: Optional[float]
    op: str
    threshold: float

    def holds(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)


def parse_condition(expr: str) -> Condition:
    """Parse the rule grammar; raises ``ParameterError`` on bad input."""
    match = _CONDITION_RE.match(expr)
    if match is None:
        raise ParameterError(
            f"cannot parse alert expression {expr!r}; expected "
            "'fn(metric[window]) op number' or 'metric op number'"
        )
    fn = match.group("fn")
    if (fn is None) != (match.group("close") is None):
        raise ParameterError(
            f"unbalanced parentheses in alert expression {expr!r}"
        )
    if fn is None:
        fn = "value"
    if fn not in DERIVATIONS:
        raise ParameterError(
            f"unknown derivation {fn!r} in {expr!r}; "
            f"choose from {DERIVATIONS}"
        )
    window_text = match.group("window")
    window = None if window_text is None else parse_duration(window_text)
    if fn in POINT_DERIVATIONS:
        if window is not None:
            raise ParameterError(
                f"derivation {fn!r} takes no window (in {expr!r})"
            )
    elif window is None or window <= 0:
        raise ParameterError(
            f"derivation {fn!r} needs a [window] > 0 (in {expr!r})"
        )
    return Condition(
        fn=fn,
        metric=match.group("metric"),
        window=window,
        op=match.group("op"),
        threshold=float(match.group("threshold")),
    )


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule: a condition plus its alerting policy."""

    name: str
    expr: str
    for_seconds: float = 0.0
    resolve: Optional[float] = None
    severity: str = "warning"
    labels: Mapping[str, str] = field(default_factory=dict)
    description: str = ""
    response: str = ""
    condition: Condition = None  # type: ignore[assignment]

    def __post_init__(self):
        if not re.match(r"^[A-Za-z][A-Za-z0-9_.-]*$", self.name or ""):
            raise ParameterError(
                f"invalid rule name {self.name!r}; use letters, digits, "
                "'_', '-' and '.'"
            )
        if self.severity not in SEVERITIES:
            raise ParameterError(
                f"rule {self.name!r}: severity must be one of "
                f"{SEVERITIES}, got {self.severity!r}"
            )
        if self.for_seconds < 0:
            raise ParameterError(
                f"rule {self.name!r}: for_seconds must be >= 0"
            )
        if self.condition is None:
            object.__setattr__(self, "condition", parse_condition(self.expr))
        cond = self.condition
        if self.resolve is not None:
            if cond.op in (">", ">=") and self.resolve > cond.threshold:
                raise ParameterError(
                    f"rule {self.name!r}: resolve ({self.resolve}) must "
                    f"not exceed the trigger threshold ({cond.threshold}) "
                    f"for op {cond.op!r}"
                )
            if cond.op in ("<", "<=") and self.resolve < cond.threshold:
                raise ParameterError(
                    f"rule {self.name!r}: resolve ({self.resolve}) must "
                    f"not undercut the trigger threshold "
                    f"({cond.threshold}) for op {cond.op!r}"
                )
            if cond.op in ("==", "!="):
                raise ParameterError(
                    f"rule {self.name!r}: resolve hysteresis is not "
                    f"meaningful for op {cond.op!r}"
                )
        object.__setattr__(self, "labels", dict(self.labels))

    # -- condition helpers --------------------------------------------
    def holds(self, value: float) -> bool:
        """Does ``value`` satisfy the trigger condition?"""
        return self.condition.holds(value)

    def recovers(self, value: float) -> bool:
        """Has ``value`` crossed back past the resolve threshold?"""
        cond = self.condition
        resolve = self.resolve if self.resolve is not None else cond.threshold
        if cond.op in (">", ">="):
            return value <= resolve
        if cond.op in ("<", "<="):
            return value >= resolve
        return not cond.holds(value)

    @classmethod
    def from_mapping(cls, mapping: Mapping) -> "AlertRule":
        """Build a rule from one TOML/JSON table."""
        known = {"name", "expr", "for", "resolve", "severity", "labels",
                 "description", "response"}
        unknown = set(mapping) - known
        if unknown:
            raise ParameterError(
                f"rule {mapping.get('name', '?')!r}: unknown keys "
                f"{sorted(unknown)}; expected {sorted(known)}"
            )
        for key in ("name", "expr"):
            if key not in mapping:
                raise ParameterError(
                    f"rule table missing required key {key!r}: {mapping!r}"
                )
        labels = mapping.get("labels", {})
        if not isinstance(labels, Mapping):
            raise ParameterError(
                f"rule {mapping['name']!r}: labels must be a table"
            )
        resolve = mapping.get("resolve")
        return cls(
            name=str(mapping["name"]),
            expr=str(mapping["expr"]),
            for_seconds=parse_duration(mapping.get("for", 0.0)),
            resolve=None if resolve is None else float(resolve),
            severity=str(mapping.get("severity", "warning")),
            labels={str(k): str(v) for k, v in labels.items()},
            description=str(mapping.get("description", "")),
            response=str(mapping.get("response", "")),
        )

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "expr": self.expr,
            "for": self.for_seconds,
            "resolve": self.resolve,
            "severity": self.severity,
            "labels": dict(self.labels),
            "description": self.description,
            "response": self.response,
        }


@dataclass(frozen=True)
class AlertTransition:
    """One state-machine edge taken during an evaluation tick."""

    rule: AlertRule
    old_state: str
    new_state: str
    at: float
    value: Optional[float]

    def __str__(self) -> str:
        value = "n/a" if self.value is None else f"{self.value:.6g}"
        return (
            f"[{self.rule.severity}] {self.rule.name}: "
            f"{self.old_state} -> {self.new_state} (value {value})"
        )


class RuleStatus:
    """Mutable per-rule evaluation state (owned by the engine)."""

    __slots__ = ("state", "since", "pending_since", "firing_since",
                 "last_value", "last_evaluated", "fired_count")

    def __init__(self):
        self.state = "inactive"
        self.since: Optional[float] = None
        self.pending_since: Optional[float] = None
        self.firing_since: Optional[float] = None
        self.last_value: Optional[float] = None
        self.last_evaluated: Optional[float] = None
        self.fired_count = 0

    def as_dict(self, rule: AlertRule, now: Optional[float] = None) -> dict:
        out = {
            "rule": rule.as_dict(),
            "state": self.state,
            "since": self.since,
            "pending_since": self.pending_since,
            "firing_since": self.firing_since,
            "last_value": self.last_value,
            "last_evaluated": self.last_evaluated,
            "fired_count": self.fired_count,
        }
        if now is not None and self.since is not None:
            out["state_age_seconds"] = max(0.0, float(now) - self.since)
        return out


class AlertEngine:
    """Evaluate a rule set against a store on every collection tick.

    Thread-safe: evaluation and every read (states, samples, report)
    share one lock, so a ``/metrics`` scrape racing an evaluation never
    observes a half-advanced state machine.
    """

    def __init__(
        self,
        store: MetricStore,
        rules: Sequence[AlertRule],
        clock: Optional[Callable[[], float]] = None,
    ):
        names = [rule.name for rule in rules]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ParameterError(
                f"duplicate rule names: {sorted(dupes)}"
            )
        self.store = store
        self.rules: Tuple[AlertRule, ...] = tuple(rules)
        self.clock = clock if clock is not None else store.clock
        self._status: Dict[str, RuleStatus] = {
            rule.name: RuleStatus() for rule in self.rules
        }
        self._lock = threading.Lock()
        self.evaluations = 0

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, now: Optional[float] = None) -> List[AlertTransition]:
        """Advance every rule one tick; returns the edges taken."""
        if now is None:
            now = self.clock()
        now = float(now)
        transitions: List[AlertTransition] = []
        with self._lock:
            self.evaluations += 1
            for rule in self.rules:
                status = self._status[rule.name]
                cond = rule.condition
                value = self.store.derive(
                    cond.fn, cond.metric, window=cond.window, now=now
                )
                new_state = self._advance(rule, status, value, now)
                status.last_value = value
                status.last_evaluated = now
                if new_state is not None and new_state != status.state:
                    transitions.append(AlertTransition(
                        rule=rule,
                        old_state=status.state,
                        new_state=new_state,
                        at=now,
                        value=value,
                    ))
                    if new_state == "firing":
                        status.fired_count += 1
                        status.firing_since = now
                    status.state = new_state
                    status.since = now
        return transitions

    @staticmethod
    def _advance(
        rule: AlertRule,
        status: RuleStatus,
        value: Optional[float],
        now: float,
    ) -> Optional[str]:
        """The state machine documented in the module docstring."""
        holds = value is not None and rule.holds(value)
        state = status.state
        if state in ("inactive", "resolved"):
            if holds:
                status.pending_since = now
                if rule.for_seconds <= 0:
                    return "firing"
                return "pending"
            if state == "resolved":
                return "inactive"
            return None
        if state == "pending":
            if not holds:
                # A failed (or missing) tick restarts the clock: `for`
                # means *continuously* true across evaluations.
                return "inactive"
            if now - status.pending_since >= rule.for_seconds:
                return "firing"
            return None
        # firing: only a recovery past the resolve threshold ends it —
        # missing data or values inside the hysteresis band hold it.
        if value is not None and rule.recovers(value):
            return "resolved"
        return None

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def states(self) -> Dict[str, str]:
        """``{rule name: state}`` for every rule."""
        with self._lock:
            return {
                name: status.state for name, status in self._status.items()
            }

    def firing(self) -> List[AlertRule]:
        """Rules currently firing, in declaration order."""
        with self._lock:
            return [
                rule for rule in self.rules
                if self._status[rule.name].state == "firing"
            ]

    def firing_critical(self) -> List[AlertRule]:
        """Firing rules with critical severity."""
        return [r for r in self.firing() if r.severity == "critical"]

    def samples(self) -> Dict[str, float]:
        """Registry-snapshot-shaped alert telemetry for ``/metrics``."""
        out: Dict[str, float] = {}
        firing = 0
        with self._lock:
            for rule in self.rules:
                status = self._status[rule.name]
                labels = {"rule": rule.name, "severity": rule.severity}
                out[sample_name("qf_alert_state", labels)] = (
                    STATE_VALUES[status.state]
                )
                out[sample_name("qf_alerts_fired_total",
                                {"rule": rule.name})] = (
                    float(status.fired_count)
                )
                if status.state == "firing":
                    firing += 1
        out["qf_alerts_firing"] = float(firing)
        return out

    def report(self, now: Optional[float] = None) -> HealthReport:
        """The rule set as a health report (for /healthz folding).

        Firing rules become non-ok signals named ``alert:<rule>`` —
        ``critical`` severity maps to a critical verdict, ``warning``
        to degraded — so the aggregate /healthz verdict and its
        ``reasons`` list name the firing rule directly.
        """
        if now is None:
            now = self.clock()
        signals: List[HealthSignal] = []
        with self._lock:
            for rule in self.rules:
                status = self._status[rule.name]
                if status.state == "firing":
                    verdict = _SEVERITY_VERDICT[rule.severity]
                    held = (
                        0.0 if status.firing_since is None
                        else max(0.0, float(now) - status.firing_since)
                    )
                    value = "n/a" if status.last_value is None else (
                        f"{status.last_value:.6g}"
                    )
                    reason = (
                        f"rule {rule.name} firing for {held:.0f}s: "
                        f"{rule.expr} (value {value})"
                    )
                else:
                    verdict = "ok"
                    reason = f"state {status.state}"
                signals.append(HealthSignal(
                    name=f"alert:{rule.name}",
                    verdict=verdict,
                    value=STATE_VALUES[status.state],
                    reason=reason,
                ))
        verdict = worst_verdict([s.verdict for s in signals] or ["ok"])
        return HealthReport(
            verdict=verdict, signals=tuple(signals), source="alerts"
        )

    def as_dict(self, now: Optional[float] = None) -> dict:
        """The ``/alerts`` JSON payload."""
        if now is None:
            now = self.clock()
        with self._lock:
            alerts = [
                self._status[rule.name].as_dict(rule, now=now)
                for rule in self.rules
            ]
        firing = [a["rule"]["name"] for a in alerts if a["state"] == "firing"]
        return {
            "evaluated_at": float(now),
            "rules": len(alerts),
            "firing": firing,
            "alerts": alerts,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        states = self.states()
        firing = sum(1 for s in states.values() if s == "firing")
        return f"AlertEngine({len(self.rules)} rules, {firing} firing)"


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def parse_rules(tables: Sequence[Mapping]) -> List[AlertRule]:
    """Build rules from a sequence of rule tables."""
    rules = [AlertRule.from_mapping(t) for t in tables]
    names = [r.name for r in rules]
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise ParameterError(f"duplicate rule names: {sorted(dupes)}")
    return rules


def load_rules(path) -> List[AlertRule]:
    """Load a rule pack from a ``.toml`` or ``.json`` file.

    Both formats share one shape: a top-level ``rule`` array of tables
    (``[[rule]]`` in TOML, ``{"rule": [...]}`` in JSON).  TOML needs
    Python >= 3.11 (stdlib ``tomllib``); on older interpreters ship the
    JSON twin instead.
    """
    path = Path(path)
    if path.suffix == ".toml":
        if tomllib is None:
            raise ParameterError(
                "TOML rule packs need Python >= 3.11 (stdlib tomllib); "
                f"convert {path.name} to JSON for older interpreters"
            )
        with open(path, "rb") as fh:
            payload = tomllib.load(fh)
    elif path.suffix == ".json":
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    else:
        raise ParameterError(
            f"unsupported rule pack format {path.suffix!r} "
            "(expected .toml or .json)"
        )
    tables = payload.get("rule")
    if not isinstance(tables, list) or not tables:
        raise ParameterError(
            f"rule pack {path} has no [[rule]] tables"
        )
    return parse_rules(tables)


def default_rules() -> List[AlertRule]:
    """The shipped default pack (source of truth for
    ``benchmarks/alerts/default.toml`` — the TOML/JSON twins are
    parity-checked against this list in the tests).

    The pack watches the operational failure modes the health model
    and pipeline already instrument: report-rate drift around the
    threshold T, worker death, vague-sketch saturation, recorder/tracer
    ring drops, and scrape staleness.
    """
    return parse_rules(DEFAULT_RULE_TABLES)


#: The default pack as plain tables (shared with the shipped files).
DEFAULT_RULE_TABLES: Tuple[Mapping, ...] = (
    {
        "name": "report-rate-drift",
        "expr": "max(qf_drift_z[120s]) >= 4",
        "for": "45s",
        "resolve": 2.0,
        "severity": "warning",
        "labels": {"subsystem": "detection"},
        "description":
            "Exceedance drift z-score exceeds the health model's "
            "degraded threshold: the share of items above T moved.",
        "response":
            "Inspect /healthz drift signals; if the workload shifted "
            "for good, retarget T (repro.controller or retarget()).",
    },
    {
        "name": "report-storm",
        "expr": 'mean(qf_health_signal{signal="report_rate"}[60s]) >= 1',
        "for": "30s",
        "resolve": 0.5,
        "severity": "warning",
        "labels": {"subsystem": "detection"},
        "description":
            "The report_rate health signal has been non-ok for a "
            "sustained period: reports are flooding downstream.",
        "response":
            "Raise T or tighten epsilon; check for a hot-key burst in "
            "the trace before changing criteria.",
    },
    {
        "name": "worker-death",
        "expr": "delta(pipeline_workers_alive[60s]) < 0",
        "for": 0,
        "resolve": 0.0,
        "severity": "critical",
        "labels": {"subsystem": "pipeline"},
        "description": "A shard worker process died.",
        "response":
            "Check the incident bundle (worker_crash dump) and worker "
            "stderr; restart the pipeline — shard state is lost.",
    },
    {
        "name": "vague-saturation",
        "expr": "max(qf_vague_saturation[120s]) >= 0.25",
        "for": 0,
        "resolve": 0.05,
        "severity": "critical",
        "labels": {"subsystem": "sketch"},
        "description":
            "Vague counters pinned at their clamp value: accuracy near "
            "T is no longer trustworthy.",
        "response":
            "Grow memory_bytes (wider vague sketch) or reset the "
            "filter; confirm via qf_vague_saturation after restart.",
    },
    {
        "name": "ring-buffer-drops",
        "expr": "delta(tracer_dropped_events_total[300s]) > 0",
        "for": 0,
        "resolve": 0.0,
        "severity": "warning",
        "labels": {"subsystem": "observability"},
        "description":
            "The tracer ring dropped events: traces now undercount.",
        "response":
            "Raise the tracer ring capacity or lower the sampling "
            "rate; drops mean flamegraphs lie about the hot path.",
    },
    {
        "name": "scrape-staleness",
        "expr": "age(qf_items_total) > 30",
        "for": 0,
        "resolve": 10.0,
        "severity": "warning",
        "labels": {"subsystem": "observability"},
        "description":
            "No fresh qf_items_total sample in over 30s: the collector "
            "stopped scraping or the feed stalled.",
        "response":
            "Check the serve loop / collector thread is alive; a "
            "stalled feed also freezes every other alert's input.",
    },
)
