"""The ``repro`` operations CLI: ``stats``, ``watch``, ``trace``,
``serve``, ``health``, ``top``, ``alerts``, ``record`` and ``matrix``.

``repro matrix run|report|gate`` (the config-driven experiment matrix
with persisted runs, trend reports and regression gates) is documented
in :mod:`repro.experiments.cli`; this module forwards it there.

All subcommands drive a live :class:`~repro.parallel.pipeline.
ParallelPipeline` (workers, bounded queues, per-worker registries) over
a registered dataset and export its telemetry:

* ``repro stats`` — run the stream to completion and print one final
  aggregated snapshot (Prometheus text by default).
* ``repro watch`` — print a periodic snapshot every ``--every`` chunks
  while the stream is flowing (JSON lines by default, one object per
  tick — the format to pipe into a file and tail).
* ``repro trace`` — run a fully instrumented pipeline (tracing +
  report provenance + stats) and write ``<out>.trace.json`` (Chrome
  trace-event JSON, load it at https://ui.perfetto.dev) plus
  ``<out>.provenance.json`` (one record per report, with the filter
  state captured at emission).  Lifecycle logs go to stderr as JSON
  lines; latency-histogram summaries print at the end.
* ``repro serve`` — run the pipeline while a threaded HTTP server
  exposes ``/metrics``, ``/healthz`` and ``/health/shards`` live (see
  :mod:`repro.observability.server`); ``--linger`` keeps serving the
  final snapshot after the stream ends.
* ``repro health`` — run the stream and print the final
  :class:`~repro.observability.health.HealthReport`; the exit code is
  2 on a critical verdict, so scripts can gate on it.  With
  ``--trace`` the pipeline also runs the tracer, and the text verdict
  includes the per-role ring-buffer drop counters.
* ``repro top`` — live operator dashboard: throughput/report-rate
  sparklines, the threshold T, the health verdict and active alert
  states, redrawn in place on an ANSI terminal (see
  :mod:`repro.observability.term`) and degraded to plain appended
  frames when stdout is not a TTY or ``TERM=dumb``; ``--once`` prints
  a single final frame.
* ``repro alerts check|list`` — one-shot alert evaluation over a
  dataset run (``check`` exits 2 when any critical rule is firing at
  the end, 1 for warnings) and a rule-pack linter/printer (``list``).
  Rules default to the shipped pack
  (:func:`repro.observability.alerts.default_rules`); ``--rules``
  loads a TOML/JSON pack.
* ``repro record dump|replay|list`` — flight-recorder forensics (see
  :mod:`repro.observability.recorder`): ``dump`` runs a recorded
  stream and writes an incident bundle, ``replay`` re-runs a bundle
  and exits 1 unless it reproduces bit-identically, ``list`` prints
  the bundle manifests under an incident directory.

Examples::

    repro stats --dataset cloud --shards 4
    repro watch --every 8 --format json > stats.jsonl
    repro trace --scale 20000 --out /tmp/run1
    repro serve --port 9133 --linger 60
    repro health --dataset cloud --format json
    repro top --dataset drift --throttle 0.2
    repro alerts check --dataset drift --format json
    repro record dump --dataset drift --dir /tmp/incidents
    repro record replay /tmp/incidents/incident-1700000000000.json.gz
    python -m repro stats          # equivalent entry point

The parser is plain argparse:

>>> build_parser().parse_args(["stats", "--shards", "3"]).shards
3
>>> build_parser().parse_args(["watch"]).format
'json'
>>> build_parser().parse_args(["trace", "--out", "/tmp/t"]).out
'/tmp/t'
>>> build_parser().parse_args(["serve", "--port", "9133"]).port
9133
>>> build_parser().parse_args(["health"]).trace
False
>>> build_parser().parse_args(["top", "--once"]).once
True
>>> build_alerts_parser().parse_args(["check", "--tick", "10"]).tick
10.0
>>> build_alerts_parser().parse_args(["list"]).format
'text'
>>> build_record_parser().parse_args(["dump", "--engine", "batch"]).engine
'batch'
>>> build_record_parser().parse_args(["replay", "/tmp/b.json.gz"]).bundle
'/tmp/b.json.gz'
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import Dict, Optional

from repro.observability.exporters import (
    JsonLinesEmitter,
    render_histogram_summaries,
    render_prometheus,
    render_snapshot_text,
)

#: Default byte budget per shard for the CLI's demonstration runs.
DEFAULT_MEMORY_BYTES = 64 * 1024


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Operate and observe a running QuantileFilter pipeline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    stats = sub.add_parser(
        "stats",
        help="run a pipeline over a dataset and print one final "
        "telemetry snapshot",
    )
    watch = sub.add_parser(
        "watch",
        help="run a pipeline and print periodic telemetry snapshots "
        "while the stream flows",
    )
    trace = sub.add_parser(
        "trace",
        help="run a fully instrumented pipeline and write a Chrome "
        "trace (Perfetto-loadable) plus a report-provenance dump",
    )
    serve = sub.add_parser(
        "serve",
        help="run a pipeline while serving /metrics, /healthz and "
        "/health/shards over HTTP",
    )
    health = sub.add_parser(
        "health",
        help="run a pipeline and print the final health report "
        "(exit code 2 on a critical verdict)",
    )
    top = sub.add_parser(
        "top",
        help="run a pipeline under a live operator dashboard "
        "(in-place ANSI refresh on a TTY, plain frames otherwise)",
    )
    for sub_parser, default_format in (
        (stats, "prom"), (watch, "json"), (trace, "text"),
        (serve, "prom"), (health, "text"), (top, "text"),
    ):
        sub_parser.add_argument(
            "--dataset", default="internet",
            help="registered dataset name (internet/cloud/zipf-*)",
        )
        sub_parser.add_argument(
            "--scale", type=int, default=50_000, help="stream length",
        )
        sub_parser.add_argument(
            "--shards", type=int, default=2, help="worker process count",
        )
        sub_parser.add_argument(
            "--memory-bytes", type=int, default=DEFAULT_MEMORY_BYTES,
            help="per-shard byte budget",
        )
        sub_parser.add_argument(
            "--chunk-items", type=int, default=8_192,
            help="items per pipeline chunk",
        )
        sub_parser.add_argument("--seed", type=int, default=0)
        sub_parser.add_argument(
            "--format", choices=("prom", "json", "text"),
            default=default_format,
            help=f"snapshot output format (default {default_format})",
        )
    watch.add_argument(
        "--every", type=int, default=4,
        help="chunks between telemetry snapshots (default 4)",
    )
    trace.add_argument(
        "--out", default="repro_trace",
        help="output path prefix; writes <out>.trace.json and "
        "<out>.provenance.json (default repro_trace)",
    )
    trace.add_argument(
        "--sample-every", type=int, default=64,
        help="record every Nth per-item filter event as a trace "
        "instant (default 64; 1 = record all)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0 = ephemeral; the chosen port is "
        "printed on stderr)",
    )
    serve.add_argument(
        "--every", type=int, default=4,
        help="chunks between stats/health refreshes (default 4)",
    )
    serve.add_argument(
        "--throttle", type=float, default=0.0,
        help="seconds to sleep between feed strides (slows the demo "
        "stream down so there is time to scrape it)",
    )
    serve.add_argument(
        "--linger", type=float, default=0.0,
        help="seconds to keep serving the final snapshot after the "
        "stream ends (default 0)",
    )
    health.add_argument(
        "--trace", action="store_true",
        help="also run the tracer so the verdict summary includes "
        "per-role ring-buffer drop counters",
    )
    top.add_argument(
        "--every", type=int, default=4,
        help="chunks between dashboard frames (default 4)",
    )
    top.add_argument(
        "--throttle", type=float, default=0.0,
        help="seconds to sleep between feed strides (slows the demo "
        "stream down to a watchable pace)",
    )
    top.add_argument(
        "--rules", default=None,
        help="alert rule pack (.toml/.json); default: the shipped pack",
    )
    top.add_argument(
        "--no-alerts", action="store_true",
        help="run the dashboard without the alert engine",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single final frame (no live refresh) and exit",
    )
    top.add_argument(
        "--window", type=float, default=120.0,
        help="trailing seconds the sparklines summarise (default 120)",
    )
    return parser


def build_alerts_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro alerts`` rule-evaluation family."""
    parser = argparse.ArgumentParser(
        prog="repro alerts",
        description="Evaluate declarative alert rules against a "
        "dataset run, or lint/print a rule pack.",
    )
    sub = parser.add_subparsers(dest="alerts_command", required=True)
    check = sub.add_parser(
        "check",
        help="run a pipeline, evaluate the rules each stride, and exit "
        "2 if any critical rule is firing at the end (1 for warnings)",
    )
    check.add_argument(
        "--dataset", default="internet",
        help="registered dataset name (internet/cloud/drift/zipf-*)",
    )
    check.add_argument("--scale", type=int, default=50_000,
                       help="stream length")
    check.add_argument("--shards", type=int, default=2,
                       help="worker process count")
    check.add_argument(
        "--memory-bytes", type=int, default=DEFAULT_MEMORY_BYTES,
        help="per-shard byte budget",
    )
    check.add_argument(
        "--chunk-items", type=int, default=8_192,
        help="items per pipeline chunk",
    )
    check.add_argument("--seed", type=int, default=0)
    check.add_argument(
        "--every", type=int, default=4,
        help="chunks between alert evaluations (default 4)",
    )
    check.add_argument(
        "--rules", default=None,
        help="alert rule pack (.toml/.json); default: the shipped pack",
    )
    check.add_argument(
        "--tick", type=float, default=5.0,
        help="synthetic seconds each evaluation advances the alert "
        "clock by, so for:/window durations elapse during a fast "
        "offline run (default 5)",
    )
    check.add_argument(
        "--format", choices=("text", "json"), default="text",
    )
    listing = sub.add_parser(
        "list", help="parse a rule pack and print every rule",
    )
    listing.add_argument(
        "--rules", default=None,
        help="alert rule pack (.toml/.json); default: the shipped pack",
    )
    listing.add_argument(
        "--format", choices=("text", "json"), default="text",
    )
    return parser


def build_record_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro record`` flight-recorder family."""
    parser = argparse.ArgumentParser(
        prog="repro record",
        description="Capture, list and deterministically replay "
        "flight-recorder incident bundles.",
    )
    sub = parser.add_subparsers(dest="record_command", required=True)
    dump = sub.add_parser(
        "dump",
        help="run a recorded stream on a standalone filter and write "
        "an incident bundle (plus any the trigger policy fires)",
    )
    dump.add_argument(
        "--dataset", default="internet",
        help="registered dataset name (internet/cloud/drift/zipf-*)",
    )
    dump.add_argument("--scale", type=int, default=50_000,
                      help="stream length")
    dump.add_argument("--seed", type=int, default=0)
    dump.add_argument(
        "--engine", choices=("scalar", "batch"), default="batch",
        help="filter engine to record (default batch)",
    )
    dump.add_argument(
        "--memory-bytes", type=int, default=DEFAULT_MEMORY_BYTES,
        help="filter byte budget",
    )
    dump.add_argument(
        "--dir", default="incidents",
        help="incident directory for the bundles (default ./incidents)",
    )
    dump.add_argument(
        "--max-chunks", type=int, default=32,
        help="raw chunks retained in the recorder ring (default 32)",
    )
    dump.add_argument(
        "--chunk-items", type=int, default=4_096,
        help="items per recorded chunk (default 4096)",
    )
    replay = sub.add_parser(
        "replay",
        help="re-run a bundle and verify it reproduces bit-identically "
        "(exit 1 on any divergence)",
    )
    replay.add_argument("bundle", help="path to an incident-*.json.gz")
    replay.add_argument(
        "--format", choices=("text", "json"), default="text",
    )
    listing = sub.add_parser(
        "list", help="print the bundle manifests under a directory",
    )
    listing.add_argument(
        "--dir", default="incidents",
        help="incident directory to scan (default ./incidents)",
    )
    listing.add_argument(
        "--format", choices=("text", "json"), default="text",
    )
    return parser


def _render(snapshot: Dict[str, float], fmt: str, **context) -> str:
    if fmt == "json":
        return JsonLinesEmitter(stream=_NullStream()).emit(snapshot, **context)
    if fmt == "text":
        return render_snapshot_text(snapshot)
    return render_prometheus(snapshot)


class _NullStream:
    """Sink for JsonLinesEmitter when the caller prints the line itself."""

    def write(self, _text: str) -> None:
        pass


def _build_pipeline(args: argparse.Namespace, **overrides):
    # Imported lazily so `repro stats --help` stays instant.
    from repro.experiments.config import build_trace, default_criteria_for
    from repro.parallel.pipeline import ParallelPipeline

    trace = build_trace(args.dataset, scale=args.scale, seed=args.seed)
    criteria = default_criteria_for(args.dataset)
    pipeline = ParallelPipeline(
        criteria,
        args.shards,
        memory_bytes=args.memory_bytes,
        chunk_items=args.chunk_items,
        seed=args.seed,
        collect_stats=True,
        **overrides,
    )
    return pipeline, trace


def _cmd_stats(args: argparse.Namespace) -> int:
    pipeline, trace = _build_pipeline(args)
    result = pipeline.run(trace.keys, trace.values)
    print(_render(result.stats, args.format, items=result.items))
    print(
        f"# run: {result.items} items, {result.num_shards} shards, "
        f"{result.seconds:.2f}s ({result.mops:.2f} MOPS), "
        f"{len(result.reported_keys)} reported keys",
        file=sys.stderr,
    )
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    if args.every < 1:
        print(f"--every must be >= 1, got {args.every}", file=sys.stderr)
        return 2
    from repro.observability.term import LiveScreen, ansi_capable

    pipeline, trace = _build_pipeline(args)
    stride = args.chunk_items * args.every
    # On an ANSI-capable TTY the prom/text formats redraw one snapshot
    # in place (cursor-home + erase-to-right per line — no full-screen
    # clear, so no flicker).  JSON always appends one object per tick:
    # it is the format to pipe into a file, and a live repaint would
    # corrupt the stream.  Non-TTY / TERM=dumb degrade the same way.
    live = args.format != "json" and ansi_capable(sys.stdout)
    screen = LiveScreen(sys.stdout) if live else None
    try:
        with pipeline:
            for start in range(0, trace.keys.shape[0], stride):
                pipeline.feed(
                    trace.keys[start:start + stride],
                    trace.values[start:start + stride],
                )
                view = pipeline.collect_stats_view()
                text = _render(view, args.format, items=pipeline.items_fed)
                header = f"# --- after {pipeline.items_fed} items ---"
                if screen is not None:
                    screen.render(f"{header}\n{text}")
                else:
                    if args.format == "prom":
                        print(header)
                    print(text)
            result = pipeline.finish()
        final = _render(
            result.stats, args.format, items=result.items, final=True
        )
        if screen is not None:
            screen.render(f"# --- final ---\n{final}")
        else:
            if args.format == "prom":
                print("# --- final ---")
            print(final)
    finally:
        if screen is not None:
            screen.close()
            print()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.sample_every < 1:
        print(
            f"--sample-every must be >= 1, got {args.sample_every}",
            file=sys.stderr,
        )
        return 2
    from repro.observability.logs import configure_json_logging

    configure_json_logging(stream=sys.stderr, level=logging.INFO)
    # The scalar engine carries Report objects (and thus provenance)
    # end to end; collect_merged forces a final pipeline_merge span so
    # the trace shows every documented stage.
    pipeline, trace = _build_pipeline(
        args,
        engine="scalar",
        collect_trace=True,
        collect_provenance=True,
        collect_merged=True,
        trace_sample_every=args.sample_every,
    )
    result = pipeline.run(trace.keys, trace.values)

    trace_path = f"{args.out}.trace.json"
    pipeline.tracer.write(
        trace_path,
        dataset=args.dataset, items=result.items, shards=result.num_shards,
    )
    prov_path = f"{args.out}.provenance.json"
    records = result.report_records or []
    with open(prov_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "dataset": args.dataset,
                "items": result.items,
                "shards": result.num_shards,
                "reports": records,
            },
            handle, indent=2,
        )

    summaries = render_histogram_summaries(result.stats or {})
    if summaries:
        print(summaries)
    print(
        f"# run: {result.items} items, {result.num_shards} shards, "
        f"{result.seconds:.2f}s ({result.mops:.2f} MOPS), "
        f"{len(result.reported_keys)} reported keys",
        file=sys.stderr,
    )
    from repro.observability.registry import base_name

    worker_dropped = sum(
        value
        for sample, value in (result.stats or {}).items()
        if base_name(sample) == "tracer_dropped_events_total"
        and 'role="master"' not in sample
    )
    print(
        f"# wrote {trace_path} ({len(result.trace_events or [])} events, "
        f"{pipeline.tracer.dropped} master-dropped, "
        f"{int(worker_dropped)} worker-dropped) and {prov_path} "
        f"({len(records)} report records)",
        file=sys.stderr,
    )
    return 0


def _serving_loop(args: argparse.Namespace, pipeline, trace, monitor, source):
    """Feed the stream while refreshing the cached stats/health views."""
    import time

    stride = args.chunk_items * args.every
    for start in range(0, trace.keys.shape[0], stride):
        keys = trace.keys[start:start + stride]
        values = trace.values[start:start + stride]
        # The monitor watches the raw stream (drift + shadow) off the
        # insert path; the workers never see it.
        monitor.observe_batch(keys, values)
        pipeline.feed(keys, values)
        pipeline.collect_stats_view()
        source.refresh()
        throttle = getattr(args, "throttle", 0.0)
        if throttle:
            time.sleep(throttle)
    result = pipeline.finish()
    return result, source.refresh()


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.every < 1:
        print(f"--every must be >= 1, got {args.every}", file=sys.stderr)
        return 2
    import time

    from repro.observability.health import HealthMonitor
    from repro.observability.server import HealthServer, PipelineServeSource

    pipeline, trace = _build_pipeline(args)
    monitor = HealthMonitor.for_criteria(pipeline.criteria)
    source = PipelineServeSource(pipeline, monitor=monitor)
    server = HealthServer(source, host=args.host, port=args.port)
    with pipeline:
        pipeline.start()
        server.start()
        print(f"serving on {server.url}", file=sys.stderr)
        try:
            result, report = _serving_loop(
                args, pipeline, trace, monitor, source
            )
            print(
                f"# run: {result.items} items, {result.num_shards} shards, "
                f"verdict {report.verdict}",
                file=sys.stderr,
            )
            if args.linger:
                print(
                    f"# lingering {args.linger:g}s with the final snapshot",
                    file=sys.stderr,
                )
                time.sleep(args.linger)
        finally:
            server.stop()
    return 0


def _render_health_text(report, stats: Optional[Dict[str, float]] = None) -> str:
    lines = [f"verdict: {report.verdict} (source {report.source})"]
    for signal in report.signals:
        lines.append(
            f"  [{signal.verdict:>8}] {signal.name} = {signal.value:.4g} — "
            f"{signal.reason}"
        )
    # Tracer ring-buffer drops are exported on /metrics; the one-shot
    # verdict summary must show them too — silent drops would make a
    # quiet trace look healthy.
    if stats is not None:
        lines.append(_render_tracer_drops(stats))
    return "\n".join(lines)


def _render_tracer_drops(stats: Dict[str, float]) -> str:
    import re

    from repro.observability.registry import base_name

    drops: Dict[str, int] = {}
    for sample, value in stats.items():
        if base_name(sample) != "tracer_dropped_events_total":
            continue
        match = re.search(r'role="([^"]+)"', sample)
        role = match.group(1) if match else "unlabelled"
        drops[role] = drops.get(role, 0) + int(value)
    if not drops:
        return "tracer drops: none recorded (tracing off)"
    total = sum(drops.values())
    per_role = ", ".join(
        f"{role}={count}" for role, count in sorted(drops.items())
    )
    return f"tracer drops: {total} total ({per_role})"


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.observability.health import HealthMonitor
    from repro.observability.server import PipelineServeSource

    pipeline, trace = _build_pipeline(
        args, collect_trace=getattr(args, "trace", False)
    )
    monitor = HealthMonitor.for_criteria(pipeline.criteria)
    source = PipelineServeSource(pipeline, monitor=monitor)
    args.every = getattr(args, "every", 4)
    with pipeline:
        pipeline.start()
        result, report = _serving_loop(args, pipeline, trace, monitor, source)
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    elif args.format == "prom":
        print(render_prometheus(monitor.health_samples()))
    else:
        print(_render_health_text(report, stats=result.stats or {}))
    print(
        f"# run: {result.items} items, {result.num_shards} shards, "
        f"{len(result.reported_keys)} reported keys",
        file=sys.stderr,
    )
    return 2 if report.verdict == "critical" else 0


def _load_rules_arg(path: Optional[str]):
    """The shipped pack, or the pack at ``path`` (.toml/.json)."""
    from repro.observability.alerts import default_rules, load_rules

    if path is None:
        return default_rules()
    return load_rules(path)


def _cmd_top(args: argparse.Namespace) -> int:
    if args.every < 1:
        print(f"--every must be >= 1, got {args.every}", file=sys.stderr)
        return 2
    import time

    from repro.common.errors import ParameterError
    from repro.observability.dashboard import Dashboard
    from repro.observability.health import HealthMonitor
    from repro.observability.server import PipelineServeSource
    from repro.observability.term import LiveScreen, ansi_capable
    from repro.observability.timeseries import MetricStore

    try:
        rules = [] if args.no_alerts else _load_rules_arg(args.rules)
    except (ParameterError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    pipeline, trace = _build_pipeline(args)
    monitor = HealthMonitor.for_criteria(pipeline.criteria)
    # An explicit store so the dashboard has history even with alerts
    # off; step 0 collects on every tick the loop drives.
    store = MetricStore(step_seconds=0.0)
    source = PipelineServeSource(
        pipeline, monitor=monitor, rules=rules or None, store=store
    )
    live = ansi_capable(sys.stdout) and not args.once
    dash = Dashboard(
        store,
        engine=source.alerts,
        title=f"repro top · {args.dataset}",
        window_seconds=args.window,
        ascii_only=not live,
    )
    screen = LiveScreen(sys.stdout) if live else None
    stride = args.chunk_items * args.every
    try:
        with pipeline:
            pipeline.start()
            for start in range(0, trace.keys.shape[0], stride):
                keys = trace.keys[start:start + stride]
                values = trace.values[start:start + stride]
                monitor.observe_batch(keys, values)
                pipeline.feed(keys, values)
                pipeline.collect_stats_view()
                source.tick()
                if screen is not None or not args.once:
                    frame = dash.render(
                        report=monitor.last_report,
                        status=f"{pipeline.items_fed} items fed",
                    )
                    if screen is not None:
                        screen.render(frame)
                    else:
                        print(frame)
                        print()
                if args.throttle:
                    time.sleep(args.throttle)
            pipeline.collect_stats_view()
            source.tick()
            result = pipeline.finish()
        final = dash.render(
            report=monitor.last_report,
            status=f"done · {result.items} items · {result.mops:.2f} MOPS",
        )
        if screen is not None:
            screen.render(final)
        else:
            print(final)
    finally:
        if screen is not None:
            screen.close()
            print()
    return 0


def _cmd_alerts_check(args: argparse.Namespace) -> int:
    if args.every < 1:
        print(f"--every must be >= 1, got {args.every}", file=sys.stderr)
        return 3
    from repro.common.errors import ParameterError
    from repro.observability.health import HealthMonitor
    from repro.observability.server import PipelineServeSource
    from repro.observability.timeseries import MetricStore

    try:
        rules = _load_rules_arg(args.rules)
    except (ParameterError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    pipeline, trace = _build_pipeline(args)
    monitor = HealthMonitor.for_criteria(pipeline.criteria)
    # A synthetic clock (--tick seconds per evaluation) so for:/window
    # durations elapse over an offline run that finishes in wall-clock
    # milliseconds per stride.
    now = 0.0
    store = MetricStore(step_seconds=0.0, clock=lambda: now)
    source = PipelineServeSource(
        pipeline, monitor=monitor, rules=rules, store=store
    )
    transitions = []
    stride = args.chunk_items * args.every
    with pipeline:
        pipeline.start()
        for start in range(0, trace.keys.shape[0], stride):
            keys = trace.keys[start:start + stride]
            values = trace.values[start:start + stride]
            monitor.observe_batch(keys, values)
            pipeline.feed(keys, values)
            pipeline.collect_stats_view()
            transitions.extend(source.tick(now=now))
            now += args.tick
        pipeline.collect_stats_view()
        transitions.extend(source.tick(now=now))
        pipeline.finish()
    payload = source.alerts_payload()
    firing = [
        status for status in payload["alerts"]
        if status["state"] == "firing"
    ]
    firing_critical = [
        status for status in firing
        if status["rule"]["severity"] == "critical"
    ]
    if args.format == "json":
        payload["transitions"] = [str(t) for t in transitions]
        print(json.dumps(payload, indent=2))
    else:
        for transition in transitions:
            print(transition)
        if not firing:
            print(f"ok: no firing alerts ({payload['rules']} rules "
                  f"evaluated over {now:g} synthetic seconds)")
        for status in firing:
            rule = status["rule"]
            print(
                f"FIRING [{rule['severity']}] {rule['name']}: "
                f"{rule['expr']} (value {status['last_value']})"
            )
    if firing_critical:
        return 2
    return 1 if firing else 0


def _cmd_alerts_list(args: argparse.Namespace) -> int:
    from repro.common.errors import ParameterError

    try:
        rules = _load_rules_arg(args.rules)
    except (ParameterError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    if args.format == "json":
        print(json.dumps([rule.as_dict() for rule in rules], indent=2))
        return 0
    for rule in rules:
        for_text = (
            f" for {rule.for_seconds:g}s" if rule.for_seconds else ""
        )
        resolve_text = (
            f" resolve {rule.resolve:g}" if rule.resolve is not None else ""
        )
        print(f"[{rule.severity:>8}] {rule.name}: {rule.expr}"
              f"{for_text}{resolve_text}")
        if rule.description:
            print(f"           {rule.description}")
    return 0


def alerts_main(argv: Optional[list] = None) -> int:
    """Entry point for the ``repro alerts`` family."""
    args = build_alerts_parser().parse_args(argv)
    if args.alerts_command == "check":
        return _cmd_alerts_check(args)
    return _cmd_alerts_list(args)


def _cmd_record_dump(args: argparse.Namespace) -> int:
    from repro.core.inspect import structural_probe
    from repro.experiments.config import build_trace, default_criteria_for
    from repro.observability.health import HealthMonitor
    from repro.observability.instrument import observe_filter
    from repro.observability.recorder import FlightRecorder

    trace = build_trace(args.dataset, scale=args.scale, seed=args.seed)
    criteria = default_criteria_for(args.dataset)
    if args.engine == "batch":
        from repro.core.vectorized import BatchQuantileFilter

        filt = BatchQuantileFilter(
            criteria, args.memory_bytes, seed=args.seed,
            chunk_size=args.chunk_items,
        )
    else:
        from repro.core.quantile_filter import QuantileFilter

        filt = QuantileFilter(
            criteria, args.memory_bytes, counter_kind="float",
            seed=args.seed,
        )
    registry = observe_filter(filt)
    recorder = FlightRecorder(
        filt,
        max_chunks=args.max_chunks,
        chunk_items=args.chunk_items,
        incident_dir=args.dir,
        registry=registry,
        config={
            "dataset": args.dataset, "scale": args.scale,
            "seed": args.seed, "engine": args.engine,
            "memory_bytes": args.memory_bytes,
        },
    )
    monitor = HealthMonitor.for_criteria(criteria, recorder=recorder)
    for start in range(0, trace.keys.shape[0], args.chunk_items):
        keys = trace.keys[start:start + args.chunk_items]
        values = trace.values[start:start + args.chunk_items]
        monitor.observe_batch(keys, values)
        recorder.feed(keys, values)
        monitor.report(
            registry.snapshot(),
            probe=structural_probe(filt),
            reported_keys=set(filt.reported_keys),
        )
    path = recorder.dump("explicit")
    print(path)
    print(
        f"# recorded {filt.items_processed} items "
        f"({recorder.retained_items} retained), "
        f"{recorder.dumps_total} bundle(s) written to {args.dir}",
        file=sys.stderr,
    )
    return 0


def _cmd_record_replay(args: argparse.Namespace) -> int:
    from repro.common.errors import TraceFormatError
    from repro.observability.recorder import replay_bundle

    try:
        result = replay_bundle(args.bundle)
    except TraceFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(result.summary())
    return 0 if result.ok else 1


def _cmd_record_list(args: argparse.Namespace) -> int:
    from repro.observability.recorder import list_incidents

    manifests = list_incidents(args.dir)
    if args.format == "json":
        print(json.dumps(manifests, indent=2))
        return 0
    if not manifests:
        print(f"(no incident bundles under {args.dir})")
        return 0
    for manifest in manifests:
        print(
            f"{manifest.get('bundle')}  reason={manifest.get('reason')}  "
            f"engine={manifest.get('engine')}  "
            f"items={manifest.get('items_processed')}  "
            f"window={manifest.get('window_items')}  "
            f"verdict={manifest.get('verdict')}"
        )
    return 0


def record_main(argv: Optional[list] = None) -> int:
    """Entry point for the ``repro record`` family."""
    args = build_record_parser().parse_args(argv)
    if args.record_command == "dump":
        return _cmd_record_dump(args)
    if args.record_command == "replay":
        return _cmd_record_replay(args)
    return _cmd_record_list(args)


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "matrix":
        # The experiment-matrix family (run|report|gate) lives with the
        # experiment harness; ``repro matrix`` is its operations-CLI door.
        from repro.experiments.cli import matrix_main

        return matrix_main(argv[1:])
    if argv and argv[0] == "record":
        return record_main(argv[1:])
    if argv and argv[0] == "alerts":
        return alerts_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "health":
        return _cmd_health(args)
    if args.command == "top":
        return _cmd_top(args)
    return _cmd_watch(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
