"""Attach a :class:`~repro.observability.registry.StatsRegistry` to a filter.

:func:`observe_filter` exposes a filter's built-in instrumentation
attributes (``items_processed``, ``candidate_hits``, ``swaps``, ...) as
pull-model counters and gauges.  Nothing about the insert hot path
changes: the scalar :class:`~repro.core.quantile_filter.QuantileFilter`
already maintains those attributes unconditionally, and the numpy
:class:`~repro.core.vectorized.BatchQuantileFilter` flips its
``stats_tallies`` switch on so its hot loop starts tallying (one
local-bool branch per item when the switch is off).

>>> from repro import Criteria, QuantileFilter
>>> qf = QuantileFilter(Criteria(delta=0.5, threshold=10.0, epsilon=2.0),
...                     num_buckets=8, vague_width=16)
>>> stats = observe_filter(qf)
>>> for _ in range(100):
...     _ = qf.insert("key-a", 50.0)
>>> snap = stats.snapshot()
>>> snap["qf_items_total"]
100.0
>>> snap['qf_reports_total{source="candidate"}'] >= 1.0
True
>>> snap["qf_candidate_entries"]
1.0

The same function observes a
:class:`~repro.core.windowed.WindowedQuantileFilter` (window resets and
fill level instead of the per-part event split):

>>> from repro import WindowedQuantileFilter
>>> wf = WindowedQuantileFilter(Criteria(delta=0.5, threshold=10.0,
...                                      epsilon=2.0),
...                             memory_bytes=4096, window_items=50)
>>> wstats = observe_filter(wf)
>>> for _ in range(120):
...     _ = wf.insert("key-a", 50.0)
>>> wsnap = wstats.snapshot()
>>> wsnap["qf_items_total"], wsnap["qf_window_resets_total"] >= 2.0
(120.0, True)
"""

from __future__ import annotations

import sys
import time
from typing import Mapping, Optional

from repro.common.errors import ParameterError
from repro.observability.registry import (
    SPEC_INDEX,
    MetricSpec,
    StatsRegistry,
    sample_name,
)

try:  # Unix only; Windows has no resource module.
    import resource as _resource
except ImportError:  # pragma: no cover - platform-dependent
    _resource = None

#: Help text for every filter-level metric family (also the canonical
#: list documented in ``docs/observability.md``).
FILTER_METRIC_HELP = {
    "qf_items_total": "Stream items processed by the filter.",
    "qf_reports_total": "Outstanding-key reports emitted, by detecting part.",
    "qf_reported_keys": "Distinct keys reported so far.",
    "qf_candidate_hits_total":
        "Inserts resolved exactly in the candidate part.",
    "qf_vague_inserts_total":
        "Vague-overflow events: inserts that found their bucket full "
        "and spilled into the vague sketch.",
    "qf_candidate_swaps_total":
        "Replacement elections won (candidate evictions).",
    "qf_resets_total": "Full structure resets (reset()).",
    "qf_merges_total": "merge() operations folded into this filter.",
    "qf_candidate_entries": "Occupied candidate slots.",
    "qf_candidate_occupancy": "Fraction of candidate slots occupied.",
    "qf_candidate_hit_rate":
        "Fraction of inserts resolved in the candidate part.",
    "qf_vague_saturation":
        "Fraction of vague counters pinned at their clamp value "
        "(always 0 for the batch engine's float counters).",
    "qf_estimated_bytes": "Modelled memory footprint in bytes.",
    "qf_window_resets_total": "Window clears (tumbling resets / rotations).",
    "qf_window_fill": "Progress through the current clearing period.",
    "qf_threshold": "Value threshold T currently in force.",
    "qf_retargets_total":
        "Threshold retargets applied (retarget() calls, state preserved).",
    "qf_thread_flushes_total":
        "Striped sub-chunk commits completed by updater threads "
        "(thread-parallel engine).",
}

#: Latency-histogram families registered by the pipeline and its
#: workers.  Their exploded ``_bucket``/``_count``/``_sum`` samples are
#: plain summing counters, so cross-shard aggregation needs no new
#: rules — but exporters need the family kind to render ``# TYPE ...
#: histogram``, and snapshots cross process boundaries as bare dicts,
#: so the specs are registered at import time like the filter metrics.
HISTOGRAM_METRIC_HELP = {
    "worker_insert_seconds":
        "Per-chunk shard insert latency (batch insert time).",
    "pipeline_report_queue_delay_seconds":
        "Delay between a worker posting a report batch and the master "
        "draining it.",
    "qf_lock_wait_seconds":
        "Stripe-lock acquisition wait per flush sub-chunk "
        "(thread-parallel engine).",
}

#: Process-level families exported by :func:`observe_process` —
#: stdlib-only (``resource`` + ``gc``), documented in the metric
#: catalogue alongside the filter families.
PROCESS_METRIC_HELP = {
    "qf_process_rss_bytes":
        "Peak resident set size of this process (ru_maxrss, normalised "
        "to bytes; 0 where the resource module is unavailable).",
    "qf_uptime_seconds":
        "Seconds since this process registered its observability "
        "(monotonic clock).",
    "qf_gc_collections_total":
        "Cyclic garbage collections completed, summed across all "
        "generations.",
}

#: Gauge families that average (rather than sum) across shards.
_MEAN_GAUGES = {
    "qf_candidate_occupancy",
    "qf_candidate_hit_rate",
    "qf_vague_saturation",
    "qf_window_fill",
    # All shards retarget together, so averaging (not summing) their
    # identical thresholds reproduces the live T in aggregate views.
    "qf_threshold",
}


def _agg_for(name: str) -> str:
    return "mean" if name in _MEAN_GAUGES else "sum"


# Register every filter metric family's spec at import time.  Snapshots
# cross process boundaries as bare dicts (the pipeline workers ship
# theirs over a queue), so the aggregating side needs the kind/agg rules
# even though it never observed a filter itself.
for _name, _help in FILTER_METRIC_HELP.items():
    _kind = "counter" if _name.endswith("_total") else "gauge"
    SPEC_INDEX.setdefault(
        _name,
        MetricSpec(name=_name, kind=_kind, help=_help, agg=_agg_for(_name)),
    )
for _name, _help in HISTOGRAM_METRIC_HELP.items():
    SPEC_INDEX.setdefault(
        _name,
        MetricSpec(name=_name, kind="histogram", help=_help, agg="sum"),
    )
for _name, _help in PROCESS_METRIC_HELP.items():
    # RSS sums across processes (total footprint); uptime takes the
    # max (the oldest process); the gc counter sums like any counter.
    _kind = "counter" if _name.endswith("_total") else "gauge"
    SPEC_INDEX.setdefault(
        _name,
        MetricSpec(
            name=_name, kind=_kind, help=_help,
            agg="max" if _name == "qf_uptime_seconds" else "sum",
        ),
    )
del _name, _help, _kind


def _rss_bytes() -> float:
    """Peak RSS in bytes (0.0 when the resource module is missing).

    ``ru_maxrss`` is kibibytes on Linux but bytes on macOS — the one
    platform quirk this helper normalises.
    """
    if _resource is None:  # pragma: no cover - platform-dependent
        return 0.0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    scale = 1 if sys.platform == "darwin" else 1024
    return float(peak) * scale


def observe_process(
    registry: Optional[StatsRegistry] = None,
    labels: Optional[Mapping[str, str]] = None,
) -> StatsRegistry:
    """Register process-level gauges (RSS, uptime, GC) on a registry.

    Stdlib only: peak RSS via ``resource.getrusage``, uptime from a
    monotonic anchor taken at registration, and cumulative cyclic-GC
    collections from ``gc.get_stats()``.  Idempotent per registry —
    calling again with the same labels returns it unchanged, so serve
    sources and ``observe_filter(process=True)`` can share one.
    """
    import gc

    if registry is None:
        registry = StatsRegistry()
    if sample_name("qf_process_rss_bytes", labels) in registry:
        return registry
    started = time.monotonic()
    registry.gauge_fn(
        "qf_process_rss_bytes", _rss_bytes,
        help=PROCESS_METRIC_HELP["qf_process_rss_bytes"],
        labels=labels, agg="sum",
    )
    registry.gauge_fn(
        "qf_uptime_seconds", lambda: time.monotonic() - started,
        help=PROCESS_METRIC_HELP["qf_uptime_seconds"],
        labels=labels, agg="max",
    )
    registry.counter_fn(
        "qf_gc_collections_total",
        lambda: float(sum(s["collections"] for s in gc.get_stats())),
        help=PROCESS_METRIC_HELP["qf_gc_collections_total"],
        labels=labels,
    )
    return registry


def observe_filter(
    filt,
    registry: Optional[StatsRegistry] = None,
    labels: Optional[Mapping[str, str]] = None,
    process: bool = False,
) -> StatsRegistry:
    """Register pull-model telemetry for ``filt``; returns the registry.

    Works on :class:`~repro.core.quantile_filter.QuantileFilter`,
    :class:`~repro.core.vectorized.BatchQuantileFilter` and
    :class:`~repro.core.windowed.WindowedQuantileFilter` — the metric
    set adapts to what the object actually tracks.  Every metric is
    registered eagerly (initial value 0), so a snapshot taken before
    any traffic still carries the full schema.

    Parameters
    ----------
    filt:
        The filter to observe.  Observing the same filter again returns
        its existing registry.
    registry:
        Attach to an existing registry instead of creating a fresh one.
        When several filters share one registry, give each a distinct
        ``labels`` set or the sample names collide.
    labels:
        Extra labels (e.g. ``{"shard": "3"}``) applied to every sample.
    process:
        Also register the process-level gauges
        (:func:`observe_process`) on the same registry, unlabelled —
        they describe the process, not this filter.
    """
    existing = getattr(filt, "_stats_registry", None)
    if existing is not None:
        if process:
            observe_process(existing)
        return existing
    if registry is None:
        registry = StatsRegistry()
    if sample_name("qf_items_total", labels) in registry:
        raise ParameterError(
            "this registry already observes a filter with these labels; "
            "pass a distinct labels= set per filter"
        )

    def counter(name, fn, extra_labels=None):
        merged = dict(labels or {})
        merged.update(extra_labels or {})
        registry.counter_fn(
            name, fn, help=FILTER_METRIC_HELP[name], labels=merged or None
        )

    def gauge(name, fn):
        registry.gauge_fn(
            name,
            fn,
            help=FILTER_METRIC_HELP[name],
            labels=labels,
            agg=_agg_for(name),
        )

    counter("qf_items_total", lambda: filt.items_processed)
    gauge("qf_reported_keys", lambda: len(filt.reported_keys))
    gauge("qf_estimated_bytes", lambda: filt.nbytes)
    gauge("qf_threshold", lambda: filt.criteria.threshold)
    counter("qf_retargets_total", lambda: getattr(filt, "retargets", 0))

    if hasattr(filt, "candidate_reports"):
        # Scalar QuantileFilter or BatchQuantileFilter.
        counter("qf_reports_total", lambda: filt.candidate_reports,
                {"source": "candidate"})
        counter("qf_reports_total", lambda: filt.vague_reports,
                {"source": "vague"})
        counter("qf_candidate_hits_total", lambda: filt.candidate_hits)
        counter("qf_vague_inserts_total", lambda: filt.vague_inserts)
        counter("qf_candidate_swaps_total", lambda: filt.swaps)
        counter("qf_resets_total", lambda: getattr(filt, "resets", 0))
        counter("qf_merges_total", lambda: getattr(filt, "merges", 0))
        gauge("qf_candidate_hit_rate", filt.candidate_hit_rate)
        if hasattr(filt, "candidate"):
            # Scalar filter: parts are real objects.
            gauge("qf_candidate_entries", filt.candidate.entry_count)
            gauge("qf_candidate_occupancy", filt.candidate.occupancy)
            gauge(
                "qf_vague_saturation",
                filt.vague.sketch.counters.saturation_fraction,
            )
        else:
            # Batch engine: list-backed parts, float vague counters
            # (which cannot saturate), and opt-in hot-loop tallies.
            gauge("qf_candidate_entries", filt.entry_count)
            gauge("qf_candidate_occupancy", filt.occupancy)
            gauge("qf_vague_saturation", lambda: 0.0)
            filt.stats_tallies = True
            if hasattr(filt, "thread_flushes"):
                # Thread-parallel shared-sketch engine: commit volume
                # plus the lock-wait distribution its flush path
                # records (adopted live via hist=, not copied).
                counter("qf_thread_flushes_total",
                        lambda: filt.thread_flushes)
                registry.histogram(
                    "qf_lock_wait_seconds",
                    help=HISTOGRAM_METRIC_HELP["qf_lock_wait_seconds"],
                    labels=labels,
                    hist=filt.lock_wait,
                )
    else:
        # WindowedQuantileFilter: reports are not split by part, and the
        # interesting extra signals are the clearing-policy ones.
        counter("qf_reports_total", lambda: filt.report_count)
        counter("qf_window_resets_total", lambda: filt.resets)
        gauge("qf_window_fill", lambda: filt.window_fill)

    if process:
        observe_process(registry)
    filt._stats_registry = registry
    return registry
