"""Fixed-memory time-series retention for registry snapshots.

Every exporter in this package serves *point-in-time* snapshots; this
module adds the missing time axis under a strict memory contract.  A
:class:`MetricStore` scrapes any snapshot-shaped source (a
:class:`~repro.observability.registry.StatsRegistry`, the health
model's ``health_samples()``, the recorder gauges — anything producing
``{sample_name: float}``) into one :class:`Series` per sample.

Retention follows the same compaction discipline as the quantile
sketches themselves: a **fine ring** keeps the newest ``capacity``
points exactly; points rotating out are folded ``downsample``-at-a-time
into a **coarse ring** of (timestamp, mean, max, count) summaries; and
when the coarse ring overflows, the oldest summaries are dropped and
tallied in an eviction counter.  Total memory is therefore bounded per
series and — via ``max_series`` stalest-series eviction — per store,
with the counters accounting exactly for every point ever ingested:

``ingested == fine + pending + coarse_weight + evicted``

Derivations (``rate``/``delta``/``mean``/``max``/``min``) are computed
from the raw fine-ring points, so they are exact over the retained
window; percentiles go through a
:class:`~repro.observability.histogram.LogHistogram` fitted to the
window's value range.

>>> store = MetricStore(capacity=4, downsample=2, clock=lambda: 0.0)
>>> for tick in range(8):
...     _ = store.collect({"demo_total": float(tick * 10)}, now=float(tick))
>>> store.derive("rate", "demo_total", window=3.0, now=7.0)
10.0
>>> store.derive("delta", "demo_total", window=3.0, now=7.0)
30.0
>>> series = store.series_for("demo_total")[0]
>>> series.fine_count, series.ingested
(4, 8)
>>> (series.fine_count + series.pending_count + series.coarse_weight
...     + series.evicted) == series.ingested
True
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ParameterError
from repro.observability.histogram import LogHistogram
from repro.observability.registry import (
    SPEC_INDEX,
    MetricSpec,
    base_name,
)

#: Help text for the store's own telemetry (documented in
#: ``docs/observability.md`` like every other family).
STORE_METRIC_HELP = {
    "qf_store_series": "Series currently retained by the metric store.",
    "qf_store_points_retained":
        "Stored points across all series (fine + pending + coarse).",
    "qf_store_points_ingested_total":
        "Samples ever ingested by the metric store.",
    "qf_store_points_evicted_total":
        "Samples dropped from retention (coarse-ring overflow plus "
        "whole-series eviction), weighted by original sample count.",
    "qf_store_series_evicted_total":
        "Whole series evicted to honour max_series.",
    "qf_store_collections_total": "Snapshot collections accepted.",
    "qf_store_collections_skipped_total":
        "Collections skipped by the step_seconds throttle.",
    "qf_store_bytes": "Approximate retained-point memory in bytes.",
}

_STORE_GAUGES = {"qf_store_series", "qf_store_points_retained",
                 "qf_store_bytes"}

for _name, _help in STORE_METRIC_HELP.items():
    _kind = "counter" if _name.endswith("_total") else "gauge"
    SPEC_INDEX.setdefault(
        _name,
        MetricSpec(name=_name, kind=_kind, help=_help,
                   agg="max" if _name in _STORE_GAUGES else "sum"),
    )
del _name, _help, _kind

#: Bytes per retained point (timestamp + value as float64) — the basis
#: of the ``qf_store_bytes`` estimate.  Coarse points carry four floats.
_POINT_BYTES = 16
_COARSE_POINT_BYTES = 32

#: Derivation functions understood by :meth:`MetricStore.derive` (and
#: therefore by the alert-rule grammar).  ``value`` and ``age`` read the
#: latest sample and take no window; the rest require one.
WINDOW_DERIVATIONS = ("rate", "delta", "mean", "max", "min",
                      "p50", "p90", "p99", "p999")
POINT_DERIVATIONS = ("value", "age")
DERIVATIONS = POINT_DERIVATIONS + WINDOW_DERIVATIONS

_PERCENTILE_Q = {"p50": 50.0, "p90": 90.0, "p99": 99.0, "p999": 99.9}


class Series:
    """One metric sample's history under a fixed memory budget.

    The newest ``capacity`` points live in the fine ring as parallel
    numpy arrays.  Rotated-out points wait in a small pending buffer
    until ``downsample`` of them can be folded into one coarse
    ``(t, mean, max, count)`` summary; at most ``coarse_capacity``
    summaries are kept, older ones are dropped and their weight added
    to :attr:`evicted`.  With ``downsample=0`` the coarse tier is
    disabled and rotated-out points are evicted directly.
    """

    __slots__ = ("name", "capacity", "downsample", "coarse_capacity",
                 "_t", "_v", "_start", "_size",
                 "_pending_t", "_pending_v", "_coarse",
                 "ingested", "evicted")

    def __init__(
        self,
        name: str,
        capacity: int = 240,
        downsample: int = 8,
        coarse_capacity: Optional[int] = None,
    ):
        if capacity < 2:
            raise ParameterError(f"capacity must be >= 2, got {capacity}")
        if downsample < 0:
            raise ParameterError(
                f"downsample must be >= 0, got {downsample}"
            )
        self.name = name
        self.capacity = int(capacity)
        self.downsample = int(downsample)
        if coarse_capacity is None:
            coarse_capacity = self.capacity if downsample else 0
        if coarse_capacity < 0:
            raise ParameterError(
                f"coarse_capacity must be >= 0, got {coarse_capacity}"
            )
        self.coarse_capacity = int(coarse_capacity)
        self._t = np.zeros(self.capacity, dtype=np.float64)
        self._v = np.zeros(self.capacity, dtype=np.float64)
        self._start = 0
        self._size = 0
        self._pending_t: List[float] = []
        self._pending_v: List[float] = []
        # Coarse summaries, oldest first: (t_end, mean, max, count).
        self._coarse: List[Tuple[float, float, float, int]] = []
        self.ingested = 0
        self.evicted = 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, t: float, v: float) -> None:
        """Record one point, rotating the oldest out when full."""
        if self._size < self.capacity:
            idx = (self._start + self._size) % self.capacity
            self._t[idx] = t
            self._v[idx] = v
            self._size += 1
        else:
            self._spill(
                self._t[self._start:self._start + 1],
                self._v[self._start:self._start + 1],
            )
            self._t[self._start] = t
            self._v[self._start] = v
            self._start = (self._start + 1) % self.capacity
        self.ingested += 1

    def append_many(self, ts: Sequence[float], vs: Sequence[float]) -> None:
        """Vectorised bulk append (the 10M-tick soak path).

        Equivalent to calling :meth:`append` per point but rebuilds the
        ring with numpy concatenation, so a large batch costs O(batch)
        instead of O(batch * python-overhead).
        """
        ts = np.asarray(ts, dtype=np.float64)
        vs = np.asarray(vs, dtype=np.float64)
        if ts.shape != vs.shape or ts.ndim != 1:
            raise ParameterError(
                "append_many needs two equal-length 1-d arrays, got "
                f"shapes {ts.shape} and {vs.shape}"
            )
        if ts.size == 0:
            return
        old_t, old_v = self.points()
        all_t = np.concatenate([old_t, ts])
        all_v = np.concatenate([old_v, vs])
        overflow = all_t.size - self.capacity
        if overflow > 0:
            self._spill(all_t[:overflow], all_v[:overflow])
            all_t = all_t[overflow:]
            all_v = all_v[overflow:]
        self._t[:all_t.size] = all_t
        self._v[:all_v.size] = all_v
        self._start = 0
        self._size = int(all_t.size)
        self.ingested += int(ts.size)

    def _spill(self, ts: np.ndarray, vs: np.ndarray) -> None:
        """Route points rotating out of the fine ring."""
        if self.downsample == 0:
            self.evicted += int(ts.size)
            return
        self._pending_t.extend(ts.tolist())
        self._pending_v.extend(vs.tolist())
        groups = len(self._pending_t) // self.downsample
        if groups:
            width = self.downsample
            used = groups * width
            gt = np.asarray(self._pending_t[:used]).reshape(groups, width)
            gv = np.asarray(self._pending_v[:used]).reshape(groups, width)
            self._coarse.extend(
                zip(
                    gt[:, -1].tolist(),
                    gv.mean(axis=1).tolist(),
                    gv.max(axis=1).tolist(),
                    [width] * groups,
                )
            )
            del self._pending_t[:used]
            del self._pending_v[:used]
        excess = len(self._coarse) - self.coarse_capacity
        if excess > 0:
            self.evicted += sum(c for _, _, _, c in self._coarse[:excess])
            del self._coarse[:excess]

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def points(self) -> Tuple[np.ndarray, np.ndarray]:
        """The fine ring's ``(timestamps, values)``, oldest first."""
        if self._size == 0:
            return (np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=np.float64))
        idx = (self._start + np.arange(self._size)) % self.capacity
        return self._t[idx], self._v[idx]

    def window(self, t0: float) -> Tuple[np.ndarray, np.ndarray]:
        """Fine points with timestamp >= ``t0``, oldest first."""
        ts, vs = self.points()
        keep = ts >= t0
        return ts[keep], vs[keep]

    def coarse(self) -> List[Tuple[float, float, float, int]]:
        """The coarse summaries ``(t_end, mean, max, count)``, oldest
        first."""
        return list(self._coarse)

    @property
    def last(self) -> Optional[Tuple[float, float]]:
        """The most recent ``(timestamp, value)``, or ``None``."""
        if self._size == 0:
            return None
        idx = (self._start + self._size - 1) % self.capacity
        return float(self._t[idx]), float(self._v[idx])

    @property
    def fine_count(self) -> int:
        return self._size

    @property
    def pending_count(self) -> int:
        return len(self._pending_t)

    @property
    def coarse_count(self) -> int:
        return len(self._coarse)

    @property
    def coarse_weight(self) -> int:
        """Original samples summarised by the coarse ring."""
        return sum(c for _, _, _, c in self._coarse)

    @property
    def retained_points(self) -> int:
        """Stored points (the memory bound): fine + pending + coarse."""
        return self.fine_count + self.pending_count + self.coarse_count

    @property
    def retained_weight(self) -> int:
        """Original samples still represented in retention."""
        return self.fine_count + self.pending_count + self.coarse_weight

    @property
    def nbytes(self) -> int:
        return (
            (self.fine_count + self.pending_count) * _POINT_BYTES
            + self.coarse_count * _COARSE_POINT_BYTES
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Series({self.name!r}, fine={self.fine_count}, "
            f"coarse={self.coarse_count}, evicted={self.evicted})"
        )


class MetricStore:
    """Scrape snapshot dicts into bounded per-series ring buffers.

    Parameters
    ----------
    step_seconds:
        Minimum spacing between accepted collections; calls arriving
        sooner are counted as skipped and ignored, so callers can
        invoke :meth:`collect` on every loop iteration and let the
        store self-throttle.  ``0`` accepts everything.
    capacity / downsample / coarse_capacity:
        Per-series retention geometry (see :class:`Series`).
    max_series:
        Hard cap on concurrently retained series; collecting a new
        sample name beyond it evicts the stalest series (oldest last
        update) and tallies its weight as evicted.
    clock:
        Time source used when ``now`` is not passed explicitly —
        injectable so tests and one-shot CLI evaluation can run on a
        synthetic clock.

    All public methods are safe to call from multiple threads; one lock
    guards both collection and window queries, so scrapes never observe
    a half-written ring.
    """

    def __init__(
        self,
        step_seconds: float = 0.0,
        capacity: int = 240,
        downsample: int = 8,
        coarse_capacity: Optional[int] = None,
        max_series: int = 1024,
        clock: Callable[[], float] = time.time,
    ):
        if step_seconds < 0:
            raise ParameterError(
                f"step_seconds must be >= 0, got {step_seconds}"
            )
        if max_series < 1:
            raise ParameterError(
                f"max_series must be >= 1, got {max_series}"
            )
        # Validate geometry eagerly by building a probe series.
        Series("probe", capacity, downsample, coarse_capacity)
        self.step_seconds = float(step_seconds)
        self.capacity = int(capacity)
        self.downsample = int(downsample)
        self.coarse_capacity = coarse_capacity
        self.max_series = int(max_series)
        self.clock = clock
        self._series: Dict[str, Series] = {}
        self._lock = threading.RLock()
        self._last_collect: Optional[float] = None
        self.collections = 0
        self.collections_skipped = 0
        self.series_evicted = 0
        #: Ingested/evicted weight carried over from evicted series.
        self._ingested_carry = 0
        self._evicted_carry = 0

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def collect(
        self,
        snapshot: Mapping[str, float],
        now: Optional[float] = None,
    ) -> bool:
        """Record one point per snapshot sample; ``False`` if throttled."""
        if now is None:
            now = self.clock()
        now = float(now)
        with self._lock:
            if (
                self._last_collect is not None
                and now - self._last_collect < self.step_seconds
            ):
                self.collections_skipped += 1
                return False
            for sample, value in snapshot.items():
                try:
                    v = float(value)
                except (TypeError, ValueError):
                    continue
                self._series_locked(sample).append(now, v)
            self._last_collect = now
            self.collections += 1
            return True

    def ingest_many(
        self,
        metric: str,
        ts: Sequence[float],
        vs: Sequence[float],
    ) -> None:
        """Bulk-load one series (bypasses the step throttle)."""
        with self._lock:
            self._series_locked(metric).append_many(ts, vs)

    def _series_locked(self, sample: str) -> Series:
        series = self._series.get(sample)
        if series is None:
            if len(self._series) >= self.max_series:
                self._evict_stalest_locked()
            series = Series(
                sample, self.capacity, self.downsample, self.coarse_capacity
            )
            self._series[sample] = series
        return series

    def _evict_stalest_locked(self) -> None:
        stalest = min(
            self._series.values(),
            key=lambda s: s.last[0] if s.last else float("-inf"),
        )
        self._ingested_carry += stalest.ingested
        self._evicted_carry += stalest.ingested
        self.series_evicted += 1
        del self._series[stalest.name]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def series_for(self, metric: str) -> List[Series]:
        """Series matching ``metric``.

        An exact sample name (labels included) matches one series; a
        bare family name pools every labelled series of that family.
        """
        with self._lock:
            exact = self._series.get(metric)
            if exact is not None:
                return [exact]
            return [
                s for name, s in self._series.items()
                if base_name(name) == metric
            ]

    def names(self) -> List[str]:
        """All retained sample names, sorted."""
        with self._lock:
            return sorted(self._series)

    def window(
        self,
        metric: str,
        window_seconds: float,
        now: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pooled ``(timestamps, values)`` over the trailing window."""
        if now is None:
            now = self.clock()
        t0 = float(now) - float(window_seconds)
        with self._lock:
            parts = [s.window(t0) for s in self.series_for(metric)]
        if not parts:
            return (np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=np.float64))
        ts = np.concatenate([p[0] for p in parts])
        vs = np.concatenate([p[1] for p in parts])
        order = np.argsort(ts, kind="stable")
        return ts[order], vs[order]

    # ------------------------------------------------------------------
    # derivations
    # ------------------------------------------------------------------
    def derive(
        self,
        fn: str,
        metric: str,
        window: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Evaluate one derivation; ``None`` when data is insufficient.

        ``fn`` is one of :data:`DERIVATIONS`.  Window derivations pool
        every series matching ``metric`` (counters sum their per-series
        rates/deltas; distributional functions pool raw points).
        """
        if fn not in DERIVATIONS:
            raise ParameterError(
                f"unknown derivation {fn!r}; choose from {DERIVATIONS}"
            )
        if fn in POINT_DERIVATIONS:
            if window is not None:
                raise ParameterError(
                    f"derivation {fn!r} takes no window"
                )
        elif window is None or window <= 0:
            raise ParameterError(
                f"derivation {fn!r} needs a window > 0, got {window!r}"
            )
        if now is None:
            now = self.clock()
        now = float(now)

        if fn == "value":
            with self._lock:
                lasts = [s.last for s in self.series_for(metric)]
            lasts = [p for p in lasts if p is not None]
            if not lasts:
                return None
            return float(sum(v for _, v in lasts))
        if fn == "age":
            with self._lock:
                lasts = [s.last for s in self.series_for(metric)]
            lasts = [p for p in lasts if p is not None]
            if not lasts:
                return None
            return now - max(t for t, _ in lasts)

        if fn in ("rate", "delta"):
            t0 = now - float(window)
            total = 0.0
            seen = False
            with self._lock:
                windows = [s.window(t0) for s in self.series_for(metric)]
            for ts, vs in windows:
                if ts.size < 2:
                    continue
                seen = True
                if fn == "delta":
                    total += float(vs[-1] - vs[0])
                else:
                    increases = np.diff(vs)
                    # Counter resets drop the running value; only the
                    # positive increments count toward the rate.
                    grown = float(increases[increases > 0].sum())
                    elapsed = float(ts[-1] - ts[0])
                    if elapsed <= 0:
                        continue
                    total += grown / elapsed
            return total if seen else None

        ts, vs = self.window(metric, float(window), now=now)
        if vs.size == 0:
            return None
        if fn == "mean":
            return float(vs.mean())
        if fn == "max":
            return float(vs.max())
        if fn == "min":
            return float(vs.min())
        return _log_histogram_percentile(vs, _PERCENTILE_Q[fn])

    # ------------------------------------------------------------------
    # accounting / telemetry
    # ------------------------------------------------------------------
    @property
    def points_ingested(self) -> int:
        with self._lock:
            return self._ingested_carry + sum(
                s.ingested for s in self._series.values()
            )

    @property
    def points_evicted(self) -> int:
        with self._lock:
            return self._evicted_carry + sum(
                s.evicted for s in self._series.values()
            )

    @property
    def retained_points(self) -> int:
        with self._lock:
            return sum(s.retained_points for s in self._series.values())

    @property
    def retained_weight(self) -> int:
        with self._lock:
            return sum(s.retained_weight for s in self._series.values())

    @property
    def nbytes(self) -> int:
        with self._lock:
            return sum(s.nbytes for s in self._series.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def samples(self) -> Dict[str, float]:
        """The store's own telemetry, snapshot-shaped."""
        with self._lock:
            return {
                "qf_store_series": float(len(self._series)),
                "qf_store_points_retained": float(sum(
                    s.retained_points for s in self._series.values()
                )),
                "qf_store_points_ingested_total": float(
                    self._ingested_carry + sum(
                        s.ingested for s in self._series.values()
                    )
                ),
                "qf_store_points_evicted_total": float(
                    self._evicted_carry + sum(
                        s.evicted for s in self._series.values()
                    )
                ),
                "qf_store_series_evicted_total": float(self.series_evicted),
                "qf_store_collections_total": float(self.collections),
                "qf_store_collections_skipped_total": float(
                    self.collections_skipped
                ),
                "qf_store_bytes": float(sum(
                    s.nbytes for s in self._series.values()
                )),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricStore({len(self._series)} series, "
            f"capacity={self.capacity})"
        )


def _log_histogram_percentile(vs: np.ndarray, q: float) -> float:
    """Percentile of ``vs`` through a LogHistogram fitted to its range.

    The ladder spans the window's positive value range with 20 buckets
    per decade, so the answer carries log-bucket resolution (~12% per
    bucket before interpolation).  Degenerate windows — all values
    non-positive or a single distinct value — short-circuit exactly.
    """
    vmax = float(vs.max())
    if vmax <= 0:
        # The log ladder needs positive mass; the best order statistics
        # available degenerate to the extremes.
        return vmax if q >= 50.0 else float(vs.min())
    positive = vs[vs > 0]
    vmin = float(positive.min())
    if vmin == vmax:
        hist_min = vmax / 2.0
    else:
        hist_min = vmin
    hist = LogHistogram(
        min_value=hist_min,
        max_value=vmax * 1.0000001,
        buckets_per_decade=20,
    )
    hist.record_many(vs.tolist())
    return hist.percentile(q)
