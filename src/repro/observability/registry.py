"""Counters, gauges and the :class:`StatsRegistry` they live in.

The registry is deliberately tiny and zero-dependency: a metric is a
name (plus optional Prometheus-style labels), a kind (``counter`` or
``gauge``), and a way to read its current value.  Two read models are
supported:

* **push** — code calls :meth:`Counter.inc` / :meth:`Gauge.set` as
  events happen (the pipeline master counts chunks this way);
* **pull** — a gauge wraps a zero-argument callable evaluated at
  snapshot time (:meth:`StatsRegistry.gauge_fn`), which is how filter
  instrumentation stays off the insert hot path entirely: the filter
  keeps its cheap integer attributes and the registry reads them only
  when someone asks.

Snapshots are plain ``{sample_name: float}`` dicts, safe to ship across
process boundaries (the pipeline workers do exactly that) and to feed to
the exporters in :mod:`repro.observability.exporters`.

>>> reg = StatsRegistry()
>>> inserts = reg.counter("demo_inserts_total", help="items seen")
>>> inserts.inc()
>>> inserts.inc(4)
>>> reg.gauge("demo_queue_depth", help="queued chunks").set(7)
>>> _ = reg.gauge_fn("demo_occupancy", lambda: 0.25, agg="mean")
>>> sorted(reg.snapshot().items())
[('demo_inserts_total', 5.0), ('demo_occupancy', 0.25), ('demo_queue_depth', 7.0)]

Labelled samples render the Prometheus way — the label set is part of
the sample name:

>>> hits = reg.counter("demo_reports_total", labels={"source": "vague"})
>>> hits.inc()
>>> reg.snapshot()['demo_reports_total{source="vague"}']
1.0

Per-shard snapshots aggregate with :func:`aggregate_snapshots`:
counters and summable gauges add up, ``agg="mean"`` gauges average,
``agg="max"`` gauges take the maximum:

>>> aggregate_snapshots([{"demo_inserts_total": 3.0, "demo_occupancy": 0.5},
...                      {"demo_inserts_total": 4.0, "demo_occupancy": 0.3}],
...                     specs=reg.specs())["demo_inserts_total"]
7.0
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional

from repro.common.errors import ParameterError

#: Recognised metric kinds.
KINDS = ("counter", "gauge", "histogram")

#: Recognised cross-registry aggregation rules.
AGGREGATIONS = ("sum", "mean", "max")

#: Global name -> spec index, so exporters can render HELP/TYPE text for
#: snapshots that travelled as bare dicts (e.g. from worker processes).
#: First registration wins; registries share it deliberately.
SPEC_INDEX: Dict[str, "MetricSpec"] = {}


@dataclass(frozen=True)
class MetricSpec:
    """Static description of one metric family.

    Attributes
    ----------
    name:
        Base metric name, without labels.
    kind:
        ``"counter"`` (monotonic) or ``"gauge"`` (free-moving).
    help:
        One-line human description (Prometheus ``# HELP`` text).
    agg:
        How per-shard samples combine into one aggregate sample:
        ``"sum"`` (default; all counters), ``"mean"`` (ratios such as
        occupancy) or ``"max"``.
    """

    name: str
    kind: str
    help: str = ""
    agg: str = "sum"


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format.

    Backslash, double-quote and line-feed are the three characters the
    spec requires escaping inside a quoted label value
    (``tests/observability/test_exporters.py`` pins the behaviour).
    """
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _render_labels(labels: Optional[Mapping[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{escape_label_value(labels[k])}"' for k in sorted(labels)
    )
    return "{" + inner + "}"


def sample_name(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """Full sample name: base name plus rendered label set.

    >>> sample_name("qf_reports_total", {"source": "candidate"})
    'qf_reports_total{source="candidate"}'
    """
    return name + _render_labels(labels)


def base_name(sample: str) -> str:
    """Strip a sample name back to its metric family name.

    >>> base_name('qf_reports_total{source="candidate"}')
    'qf_reports_total'
    """
    brace = sample.find("{")
    return sample if brace < 0 else sample[:brace]


class Counter:
    """A monotonically increasing count of events.

    Push model by default; pass ``fn`` to pull the count from existing
    state at snapshot time instead (how filter attributes are exposed
    without touching the insert path).

    >>> c = Counter("events_total")
    >>> c.inc(); c.inc(2)
    >>> c.value
    3.0
    """

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._value = 0.0
        self._fn = fn

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if self._fn is not None:
            raise ParameterError(
                f"counter {self.name!r} is callback-backed; it cannot be inc'd"
            )
        if amount < 0:
            raise ParameterError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self._value += amount

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """An instantaneous value: set directly or pulled from a callable.

    >>> g = Gauge("depth")
    >>> g.set(3)
    >>> g.value
    3.0
    >>> Gauge("pulled", fn=lambda: 41 + 1).value
    42.0
    """

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        """Overwrite the gauge (push model only)."""
        if self._fn is not None:
            raise ParameterError(
                f"gauge {self.name!r} is callback-backed; it cannot be set"
            )
        self._value = float(value)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value})"


class StatsRegistry:
    """A named collection of counters and gauges with one snapshot view.

    Metric accessors are get-or-create: asking twice for the same
    ``(name, labels)`` returns the same object, so instrumentation
    sites can look metrics up cheaply instead of holding references.
    Asking for an existing name with a different kind raises
    :class:`~repro.common.errors.ParameterError`.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._specs: Dict[str, MetricSpec] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        """Get or create the counter ``name`` (with optional labels)."""
        return self._get_or_create(
            name, labels, kind="counter", help=help, agg="sum", fn=None
        )

    def counter_fn(
        self,
        name: str,
        fn: Callable[[], float],
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        """Register a pull-model counter evaluated at snapshot time.

        The callable must be monotonic (e.g. a filter's
        ``items_processed`` attribute) — the registry trusts it.
        """
        return self._get_or_create(
            name, labels, kind="counter", help=help, agg="sum", fn=fn
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        agg: str = "sum",
    ) -> Gauge:
        """Get or create the push-model gauge ``name``."""
        return self._get_or_create(
            name, labels, kind="gauge", help=help, agg=agg, fn=None
        )

    def gauge_fn(
        self,
        name: str,
        fn: Callable[[], float],
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        agg: str = "sum",
    ) -> Gauge:
        """Register a pull-model gauge evaluated at snapshot time."""
        return self._get_or_create(
            name, labels, kind="gauge", help=help, agg=agg, fn=fn
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        hist=None,
        **geometry,
    ):
        """Get or create a mergeable log-bucket histogram.

        Returns a :class:`~repro.observability.histogram.Histogram`;
        ``geometry`` kwargs (``min_value`` / ``max_value`` /
        ``buckets_per_decade``) configure its bucket ladder.  In
        snapshots the histogram explodes into cumulative
        ``<name>_bucket{le=...}`` samples plus ``<name>_count`` /
        ``<name>_sum``, all of which aggregate across shards by
        summing.

        ``hist`` wraps an existing
        :class:`~repro.observability.histogram.LogHistogram` instead of
        creating a fresh one — the pull-model analogue of
        :meth:`counter_fn`: the owner keeps recording into its own
        histogram (e.g. a concurrent filter's lock-wait distribution)
        and snapshots read it live.
        """
        from repro.observability.histogram import Histogram, LogHistogram

        if hist is not None and geometry:
            raise ParameterError(
                "pass either hist= (adopt an existing LogHistogram) or "
                "geometry kwargs (build a fresh one), not both"
            )

        full = sample_name(name, labels)
        existing = self._metrics.get(full)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ParameterError(
                    f"metric {full!r} already registered as a "
                    f"{type(existing).__name__.lower()}, not a histogram"
                )
            return existing
        spec = self._specs.get(name)
        if spec is not None and spec.kind != "histogram":
            raise ParameterError(
                f"metric family {name!r} is a {spec.kind}; cannot add a "
                f"histogram sample to it"
            )
        if spec is None:
            spec = MetricSpec(name=name, kind="histogram", help=help, agg="sum")
            self._specs[name] = spec
            SPEC_INDEX.setdefault(name, spec)
        metric = Histogram(
            name,
            hist if hist is not None else LogHistogram(**geometry),
            labels=labels,
        )
        self._metrics[full] = metric
        return metric

    def _get_or_create(self, name, labels, *, kind, help, agg, fn):
        if kind not in KINDS:
            raise ParameterError(f"unknown metric kind {kind!r}; choose from {KINDS}")
        if agg not in AGGREGATIONS:
            raise ParameterError(
                f"unknown aggregation {agg!r}; choose from {AGGREGATIONS}"
            )
        full = sample_name(name, labels)
        existing = self._metrics.get(full)
        if existing is not None:
            expected = Counter if kind == "counter" else Gauge
            if not isinstance(existing, expected):
                raise ParameterError(
                    f"metric {full!r} already registered as a "
                    f"{type(existing).__name__.lower()}, not a {kind}"
                )
            return existing
        spec = self._specs.get(name)
        if spec is not None and spec.kind != kind:
            raise ParameterError(
                f"metric family {name!r} is a {spec.kind}; cannot add a "
                f"{kind} sample to it"
            )
        if spec is None:
            spec = MetricSpec(name=name, kind=kind, help=help, agg=agg)
            self._specs[name] = spec
            SPEC_INDEX.setdefault(name, spec)
        metric = (
            Counter(full, fn=fn) if kind == "counter" else Gauge(full, fn=fn)
        )
        self._metrics[full] = metric
        return metric

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Every sample's current value, as one plain dict.

        Histograms contribute their full Prometheus-style sample
        family (``_bucket``/``_count``/``_sum``) so the snapshot stays
        a flat, process-boundary-safe ``{name: float}`` dict.
        """
        out: Dict[str, float] = {}
        for full, metric in self._metrics.items():
            samples = getattr(metric, "samples", None)
            if samples is not None:
                out.update(samples())
            else:
                out[full] = metric.value
        return out

    def specs(self) -> Dict[str, MetricSpec]:
        """Base-name -> :class:`MetricSpec` for everything registered."""
        return dict(self._specs)

    def names(self) -> List[str]:
        """All sample names, sorted."""
        return sorted(self._metrics)

    def __contains__(self, sample: str) -> bool:
        return sample in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsRegistry({len(self._metrics)} samples)"


def aggregate_snapshots(
    snapshots: Iterable[Mapping[str, float]],
    specs: Optional[Mapping[str, MetricSpec]] = None,
) -> Dict[str, float]:
    """Fold per-shard snapshot dicts into one aggregate snapshot.

    Counters (and ``agg="sum"`` gauges) add; ``agg="mean"`` gauges
    average over the snapshots that carry the sample; ``agg="max"``
    gauges take the maximum.  Unknown samples default to summing, the
    right behaviour for every monotonic count.  ``specs`` defaults to
    the process-wide :data:`SPEC_INDEX`.
    """
    snapshots = list(snapshots)
    if specs is None:
        specs = SPEC_INDEX
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    maxima: Dict[str, float] = {}
    for snap in snapshots:
        for sample, value in snap.items():
            sums[sample] = sums.get(sample, 0.0) + float(value)
            counts[sample] = counts.get(sample, 0) + 1
            if sample not in maxima or value > maxima[sample]:
                maxima[sample] = float(value)
    out: Dict[str, float] = {}
    for sample, total in sums.items():
        spec = specs.get(base_name(sample)) or SPEC_INDEX.get(base_name(sample))
        agg = spec.agg if spec is not None else "sum"
        if agg == "mean":
            out[sample] = total / counts[sample]
        elif agg == "max":
            out[sample] = maxima[sample]
        else:
            out[sample] = total
    return out
