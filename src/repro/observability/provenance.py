"""Report provenance: *why* was this key reported, auditable after the fact.

A bare :class:`~repro.core.quantile_filter.Report` says a key crossed
its threshold; operators auditing an alert also want to know where the
key lived (exact candidate counter or noisy vague estimate), how
contended its bucket was, and how fresh the structure's state was.
:class:`ReportProvenance` captures that at emission time — the filter
fills it inside ``_emit`` behind a single ``collect_provenance``
predicate, so the insert hot path is untouched and even the report path
only pays when auditing is on.

>>> from repro import Criteria, QuantileFilter
>>> qf = QuantileFilter(Criteria(delta=0.5, threshold=10.0, epsilon=2.0),
...                     num_buckets=8, vague_width=16,
...                     collect_provenance=True)
>>> report = None
>>> for _ in range(50):
...     report = qf.insert("key-a", 50.0) or report
>>> report.provenance.part
'candidate'
>>> report.provenance.items_since_reset <= 50
True
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Hashable, Optional


@dataclass(frozen=True)
class ReportProvenance:
    """Filter-state context captured when a report was emitted.

    Attributes
    ----------
    part:
        ``"candidate"`` or ``"vague"`` — where the key's Qweight lived
        when it crossed the threshold (same as ``Report.source``,
        duplicated so a dumped provenance record stands alone).
    bucket:
        The candidate bucket the key hashes to.
    fingerprint:
        The key's fingerprint in that bucket (correlates reports with
        :meth:`~repro.core.quantile_filter.QuantileFilter.top_candidates`).
    qweight:
        The Qweight estimate at threshold crossing.
    threshold:
        The report threshold (``epsilon / (1 - delta)``) in force for
        this key at emission (per-key criteria make this vary between
        reports).
    value_threshold:
        The value threshold ``T`` in force at emission.  Under the
        adaptive-threshold controller
        (:mod:`repro.detection.threshold`) this is the audit trail of
        *which* ``T`` a report was judged against; ``None`` on records
        predating the field (``None`` rather than NaN keeps dumped
        records JSON round-trippable).
    bucket_occupancy:
        Occupied slots in the key's bucket at emission — a full bucket
        means the vague part (and its collision noise) was in play.
    replacements:
        Filter-wide vague→candidate replacement count at emission
        (``swaps``); a fast-rising value flags eviction churn around
        the report.
    items_since_reset:
        Items processed since the last structure ``reset()`` — young
        structures report on less evidence.
    resets:
        How many resets the filter had performed at emission.
    """

    part: str
    bucket: int
    fingerprint: int
    qweight: float
    threshold: float
    bucket_occupancy: int
    replacements: int
    items_since_reset: int
    resets: int
    value_threshold: Optional[float] = None

    def as_dict(self) -> dict:
        """Plain-dict form (JSON-ready) for provenance dumps."""
        return asdict(self)


def provenance_record(report) -> dict:
    """One JSON-ready dict for a report and its provenance.

    Reports without provenance (filter built with
    ``collect_provenance=False``) get ``"provenance": None`` rather
    than raising, so mixed logs stay dumpable.
    """
    record = {
        "key": _json_key(report.key),
        "qweight": report.qweight,
        "source": report.source,
        "item_index": report.item_index,
        "provenance": (
            report.provenance.as_dict()
            if report.provenance is not None
            else None
        ),
    }
    return record


def _json_key(key: Hashable):
    if isinstance(key, (str, int, float, bool)) or key is None:
        return key
    return repr(key)
