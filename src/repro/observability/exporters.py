"""Snapshot exporters: Prometheus text format and JSON lines.

A snapshot is the plain ``{sample_name: float}`` dict produced by
:meth:`~repro.observability.registry.StatsRegistry.snapshot` (or by
aggregating several of them).  Exporters are pure functions over that
dict plus the metric specs, so they work equally on a live registry and
on a snapshot that crossed a process boundary.

>>> from repro.observability.registry import StatsRegistry
>>> reg = StatsRegistry()
>>> reg.counter("exp_items_total", help="items processed").inc(3)
>>> reg.counter("exp_reports_total", labels={"source": "vague"}).inc()
>>> print(render_prometheus(reg.snapshot(), specs=reg.specs()))
# HELP exp_items_total items processed
# TYPE exp_items_total counter
exp_items_total 3
# HELP exp_reports_total
# TYPE exp_reports_total counter
exp_reports_total{source="vague"} 1

JSON lines append one self-contained object per emit — the format to
tail from a long-running monitor:

>>> import io
>>> out = io.StringIO()
>>> emitter = JsonLinesEmitter(out)
>>> _ = emitter.emit({"exp_items_total": 3.0}, run="doctest")
>>> out.getvalue()
'{"run": "doctest", "exp_items_total": 3.0}\\n'
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Mapping, Optional, TextIO

from repro.observability.registry import (
    SPEC_INDEX,
    MetricSpec,
    StatsRegistry,
    base_name,
)

#: Sample-name suffixes a histogram family explodes into.
_HISTOGRAM_SUFFIXES = ("_bucket", "_count", "_sum")


def _format_value(value: float) -> str:
    """Render ints without a trailing ``.0`` (Prometheus accepts both).

    Non-finite values use the exposition-format spellings ``NaN``,
    ``+Inf``, ``-Inf`` — Python's ``repr`` forms (``nan``/``inf``) are
    rejected by Prometheus parsers.
    """
    as_float = float(value)
    if math.isnan(as_float):
        return "NaN"
    if math.isinf(as_float):
        return "+Inf" if as_float > 0 else "-Inf"
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def escape_help(text: str) -> str:
    """Escape ``# HELP`` text per the exposition format (``\\`` and LF)."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def _histogram_owner(
    family: str, specs: Mapping[str, MetricSpec]
) -> Optional[str]:
    """The histogram family ``family`` belongs to, if any.

    ``worker_insert_seconds_bucket`` -> ``worker_insert_seconds`` when
    that name is registered as a histogram; None otherwise.
    """
    for suffix in _HISTOGRAM_SUFFIXES:
        if family.endswith(suffix):
            owner = family[: -len(suffix)]
            spec = specs.get(owner) or SPEC_INDEX.get(owner)
            if spec is not None and spec.kind == "histogram":
                return owner
    return None


def _le_value(sample: str) -> float:
    """Numeric ``le`` bound of a ``_bucket`` sample (inf when absent)."""
    at = sample.find('le="')
    if at < 0:
        return math.inf
    end = sample.find('"', at + 4)
    text = sample[at + 4:end]
    return math.inf if text == "+Inf" else float(text)


def _bucket_sort_key(sample: str):
    # Buckets ascend by le; _count then _sum follow (suffix ordering
    # within one histogram family).
    family = base_name(sample)
    if family.endswith("_bucket"):
        return (0, _le_value(sample), sample)
    return (1 if family.endswith("_count") else 2, 0.0, sample)


def render_prometheus(
    snapshot: Mapping[str, float],
    specs: Optional[Mapping[str, MetricSpec]] = None,
) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Samples are grouped by metric family (sorted by name) with one
    ``# HELP`` / ``# TYPE`` header per family.  Histogram sub-samples
    (``_bucket``/``_count``/``_sum``) regroup under their histogram's
    family with buckets in ascending ``le`` order.  ``specs`` defaults
    to the process-wide :data:`~repro.observability.registry.
    SPEC_INDEX`; families absent from both are rendered as untyped
    gauges.
    """
    if specs is None:
        specs = SPEC_INDEX
    families: Dict[str, List[str]] = {}
    histograms: set = set()
    for sample in snapshot:
        family = base_name(sample)
        owner = _histogram_owner(family, specs)
        if owner is not None:
            family = owner
            histograms.add(owner)
        families.setdefault(family, []).append(sample)
    lines: List[str] = []
    for family in sorted(families):
        spec = specs.get(family) or SPEC_INDEX.get(family)
        help_text = escape_help(spec.help) if spec is not None else ""
        kind = spec.kind if spec is not None else "gauge"
        lines.append(f"# HELP {family} {help_text}".rstrip())
        lines.append(f"# TYPE {family} {kind}")
        sort_key = _bucket_sort_key if family in histograms else None
        for sample in sorted(families[family], key=sort_key):
            lines.append(f"{sample} {_format_value(snapshot[sample])}")
    return "\n".join(lines)


def render_histogram_summaries(snapshot: Mapping[str, float]) -> str:
    """One ``family count=… p50=… p99=… p999=…`` line per histogram.

    Percentiles are reconstructed from the snapshot's cumulative
    ``_bucket`` samples, so this works on aggregated (cross-shard)
    snapshots too.  Returns ``""`` when the snapshot carries no
    histogram samples.
    """
    from repro.observability.histogram import (
        histogram_families,
        percentiles_from_snapshot,
    )

    lines = []
    for family in histogram_families(snapshot):
        count = snapshot.get(f"{family}_count", 0.0)
        percentiles = percentiles_from_snapshot(snapshot, family)
        rendered = " ".join(
            f"{key}={percentiles[key]:.6g}" for key in sorted(percentiles)
        )
        lines.append(f"{family} count={_format_value(count)} {rendered}")
    return "\n".join(lines)


def render_snapshot_text(snapshot: Mapping[str, float]) -> str:
    """Plain aligned ``name value`` lines (the CLI's human format)."""
    if not snapshot:
        return "(no samples)"
    width = max(len(sample) for sample in snapshot)
    return "\n".join(
        f"{sample:<{width}}  {_format_value(snapshot[sample])}"
        for sample in sorted(snapshot)
    )


class JsonLinesEmitter:
    """Append snapshots to a stream as one JSON object per line.

    Parameters
    ----------
    stream:
        Any ``.write()``-able text stream (defaults to ``sys.stdout``
        at emit time, so an emitter built at import time still honours
        later stdout redirection).
    """

    def __init__(self, stream: Optional[TextIO] = None):
        self._stream = stream

    def emit(self, snapshot: Mapping[str, float], **extra) -> str:
        """Write one line for ``snapshot``; returns the line (no newline).

        ``extra`` key-values (run ids, timestamps, phase tags) are
        placed before the samples in the emitted object.
        """
        record = dict(extra)
        record.update(snapshot)
        line = json.dumps(record)
        stream = self._stream
        if stream is None:  # pragma: no cover - convenience default
            import sys

            stream = sys.stdout
        stream.write(line + "\n")
        return line


def registry_to_prometheus(registry: StatsRegistry) -> str:
    """Convenience: snapshot a live registry and render it.

    >>> reg = StatsRegistry()
    >>> reg.gauge("exp_depth", help="queue depth").set(2)
    >>> print(registry_to_prometheus(reg))
    # HELP exp_depth queue depth
    # TYPE exp_depth gauge
    exp_depth 2
    """
    return render_prometheus(registry.snapshot(), specs=registry.specs())
