"""Snapshot exporters: Prometheus text format and JSON lines.

A snapshot is the plain ``{sample_name: float}`` dict produced by
:meth:`~repro.observability.registry.StatsRegistry.snapshot` (or by
aggregating several of them).  Exporters are pure functions over that
dict plus the metric specs, so they work equally on a live registry and
on a snapshot that crossed a process boundary.

>>> from repro.observability.registry import StatsRegistry
>>> reg = StatsRegistry()
>>> reg.counter("exp_items_total", help="items processed").inc(3)
>>> reg.counter("exp_reports_total", labels={"source": "vague"}).inc()
>>> print(render_prometheus(reg.snapshot(), specs=reg.specs()))
# HELP exp_items_total items processed
# TYPE exp_items_total counter
exp_items_total 3
# HELP exp_reports_total
# TYPE exp_reports_total counter
exp_reports_total{source="vague"} 1

JSON lines append one self-contained object per emit — the format to
tail from a long-running monitor:

>>> import io
>>> out = io.StringIO()
>>> emitter = JsonLinesEmitter(out)
>>> _ = emitter.emit({"exp_items_total": 3.0}, run="doctest")
>>> out.getvalue()
'{"run": "doctest", "exp_items_total": 3.0}\\n'
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, TextIO

from repro.observability.registry import (
    SPEC_INDEX,
    MetricSpec,
    StatsRegistry,
    base_name,
)


def _format_value(value: float) -> str:
    """Render ints without a trailing ``.0`` (Prometheus accepts both)."""
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(
    snapshot: Mapping[str, float],
    specs: Optional[Mapping[str, MetricSpec]] = None,
) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Samples are grouped by metric family (sorted by name) with one
    ``# HELP`` / ``# TYPE`` header per family.  ``specs`` defaults to
    the process-wide :data:`~repro.observability.registry.SPEC_INDEX`;
    families absent from both are rendered as untyped gauges.
    """
    if specs is None:
        specs = SPEC_INDEX
    families: Dict[str, List[str]] = {}
    for sample in snapshot:
        families.setdefault(base_name(sample), []).append(sample)
    lines: List[str] = []
    for family in sorted(families):
        spec = specs.get(family) or SPEC_INDEX.get(family)
        help_text = spec.help if spec is not None else ""
        kind = spec.kind if spec is not None else "gauge"
        lines.append(f"# HELP {family} {help_text}".rstrip())
        lines.append(f"# TYPE {family} {kind}")
        for sample in sorted(families[family]):
            lines.append(f"{sample} {_format_value(snapshot[sample])}")
    return "\n".join(lines)


def render_snapshot_text(snapshot: Mapping[str, float]) -> str:
    """Plain aligned ``name value`` lines (the CLI's human format)."""
    if not snapshot:
        return "(no samples)"
    width = max(len(sample) for sample in snapshot)
    return "\n".join(
        f"{sample:<{width}}  {_format_value(snapshot[sample])}"
        for sample in sorted(snapshot)
    )


class JsonLinesEmitter:
    """Append snapshots to a stream as one JSON object per line.

    Parameters
    ----------
    stream:
        Any ``.write()``-able text stream (defaults to ``sys.stdout``
        at emit time, so an emitter built at import time still honours
        later stdout redirection).
    """

    def __init__(self, stream: Optional[TextIO] = None):
        self._stream = stream

    def emit(self, snapshot: Mapping[str, float], **extra) -> str:
        """Write one line for ``snapshot``; returns the line (no newline).

        ``extra`` key-values (run ids, timestamps, phase tags) are
        placed before the samples in the emitted object.
        """
        record = dict(extra)
        record.update(snapshot)
        line = json.dumps(record)
        stream = self._stream
        if stream is None:  # pragma: no cover - convenience default
            import sys

            stream = sys.stdout
        stream.write(line + "\n")
        return line


def registry_to_prometheus(registry: StatsRegistry) -> str:
    """Convenience: snapshot a live registry and render it.

    >>> reg = StatsRegistry()
    >>> reg.gauge("exp_depth", help="queue depth").set(2)
    >>> print(registry_to_prometheus(reg))
    # HELP exp_depth queue depth
    # TYPE exp_depth gauge
    exp_depth 2
    """
    return render_prometheus(registry.snapshot(), specs=registry.specs())
