"""Terminal rendering helpers shared by ``repro watch`` and ``repro top``.

Two concerns live here so both commands behave identically:

* **capability detection** — :func:`ansi_capable` decides whether a
  stream can take in-place ANSI redraws (a real TTY with a non-dumb
  ``TERM``); everything else gets plain line output.
* **flicker-free redraw** — :class:`LiveScreen` repaints a frame by
  homing the cursor and erasing *per line* (``ESC[K``) plus erasing
  below the frame (``ESC[J``).  The naive full-screen clear
  (``ESC[2J``) blanks the terminal before the new frame arrives, which
  is exactly the flicker this replaces; it is only ever issued once,
  on the first frame.

>>> sparkline([0, 1, 2, 3], width=4)
'▁▃▆█'
>>> sparkline([5, 5, 5], width=3)
'▁▁▁'
>>> sparkline([0, 1, 2, 3], width=4, ascii_only=True)
'_-+#'
>>> format_quantity(1_234_567)
'1.23M'
>>> format_duration(3725)
'1h2m'
"""

from __future__ import annotations

import os
import sys
from typing import Iterable, List, Optional, Sequence

#: Eight-level block characters for sparklines, lowest first.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: ASCII fallback ladder for dumb terminals / non-UTF-8 sinks.
ASCII_SPARK_CHARS = "_.-:=+*#"

#: ANSI control fragments (named so call sites read as intent).
HIDE_CURSOR = "\x1b[?25l"
SHOW_CURSOR = "\x1b[?25h"
CURSOR_HOME = "\x1b[H"
CLEAR_SCREEN = "\x1b[2J"
ERASE_LINE_RIGHT = "\x1b[K"
ERASE_BELOW = "\x1b[J"


def ansi_capable(stream=None) -> bool:
    """Can ``stream`` take in-place ANSI redraws?

    True only for a real TTY whose ``TERM`` is set and not ``dumb`` —
    the combination CI pins (``TERM=dumb``) to force the plain-text
    degradation path.
    """
    if stream is None:
        stream = sys.stdout
    term = os.environ.get("TERM", "")
    if not term or term == "dumb":
        return False
    isatty = getattr(stream, "isatty", None)
    try:
        return bool(isatty and isatty())
    except (ValueError, OSError):  # closed or detached stream
        return False


def sparkline(
    values: Iterable[float],
    width: int = 32,
    ascii_only: bool = False,
) -> str:
    """Render the last ``width`` values as a one-line bar chart.

    Bars are normalised to the rendered window's min/max; a flat
    window renders as the lowest bar so "no movement" and "no data"
    stay distinguishable (no data renders empty).
    """
    chars = ASCII_SPARK_CHARS if ascii_only else SPARK_CHARS
    vals = [float(v) for v in values][-max(1, int(width)):]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return chars[0] * len(vals)
    span = hi - lo
    top = len(chars) - 1
    return "".join(
        chars[int(round((v - lo) / span * top))] for v in vals
    )


def format_quantity(value: float) -> str:
    """Humanise a count: ``1234`` -> ``'1.23k'``, ``2e6`` -> ``'2M'``."""
    value = float(value)
    for bound, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= bound:
            return f"{value / bound:.3g}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.3g}"


def format_duration(seconds: float) -> str:
    """Humanise a duration: ``90`` -> ``'1m30s'``, ``3725`` -> ``'1h2m'``."""
    seconds = max(0.0, float(seconds))
    if seconds < 1:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs}s" if secs else f"{minutes}m"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes}m" if minutes else f"{hours}h"


class LiveScreen:
    """Repaint multi-line frames in place without full-screen clears.

    The first frame clears once and hides the cursor; every later
    frame homes the cursor and rewrites each line with a trailing
    erase-to-end-of-line, then erases anything left below — so a frame
    that shrinks leaves no stale tail, and nothing ever flashes blank.
    :meth:`close` restores the cursor and moves past the frame.
    """

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stdout
        self.frames = 0
        self._closed = False

    def render(self, frame: str) -> None:
        """Paint ``frame`` (a newline-joined block of text)."""
        lines = frame.split("\n")
        parts: List[str] = []
        if self.frames == 0:
            parts.append(HIDE_CURSOR)
            parts.append(CLEAR_SCREEN)
        parts.append(CURSOR_HOME)
        for line in lines:
            parts.append(line)
            parts.append(ERASE_LINE_RIGHT)
            parts.append("\n")
        parts.append(ERASE_BELOW)
        self.stream.write("".join(parts))
        self.stream.flush()
        self.frames += 1

    def close(self) -> None:
        """Restore the cursor; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        try:
            self.stream.write(SHOW_CURSOR)
            self.stream.flush()
        except (ValueError, OSError):  # pragma: no cover - closed sink
            pass

    def __enter__(self) -> "LiveScreen":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def render_frames(
    frames: Sequence[str],
    stream=None,
    live: Optional[bool] = None,
) -> None:
    """Print frames: live in-place when capable, plain lines otherwise.

    Convenience for one-shot callers; interactive loops hold a
    :class:`LiveScreen` themselves.
    """
    if stream is None:
        stream = sys.stdout
    if live is None:
        live = ansi_capable(stream)
    if not live:
        for frame in frames:
            stream.write(frame + "\n")
        stream.flush()
        return
    with LiveScreen(stream) as screen:
        for frame in frames:
            screen.render(frame)
