"""Stdlib HTTP endpoint serving live metrics and health verdicts.

Five routes, one tiny threaded server:

* ``GET /metrics`` — the current snapshot in the Prometheus text
  exposition format (telemetry families plus the derived ``qf_health_*``
  samples, process gauges, metric-store accounting and ``qf_alert_*``
  states), ready for a scraper.
* ``GET /healthz`` — the aggregated :class:`~repro.observability.health.
  HealthReport` as JSON; status 200 for ok/degraded, 503 for critical,
  so a load balancer can act on the status code alone.  Firing alert
  rules fold in as ``alert:<rule>`` signals, so the verdict's
  ``reasons`` name the rule.
* ``GET /health/shards`` — the per-shard report breakdown (pipelines;
  a standalone filter serves a single-entry list).
* ``GET /incidents`` — manifests of the flight recorder's recent
  incident bundles, newest first (empty list when no recorder or
  incident directory is attached; see
  :mod:`repro.observability.recorder`).
* ``GET /alerts`` — the alert engine's full rule/state payload as
  JSON (a stub with zero rules when the source has no alert engine).

The server never touches the monitored structure's hot path: a
*serve source* adapts each deployment shape to the routes.
:class:`FilterServeSource` snapshots the filter's registry (pull-model
reads of plain attributes) and probes its structure;
:class:`PipelineServeSource` only reads the pipeline's **cached**
``last_stats`` / ``last_per_shard_stats`` — worker stats syncs ride the
input queues and must stay on the feeding thread, so the feeder calls
``pipeline.collect_stats_view()`` at its own cadence and the HTTP
threads serve whatever view is current.

The same split governs alerting: the feeder drives :meth:`tick` —
collect into the :class:`~repro.observability.timeseries.MetricStore`,
evaluate the :class:`~repro.observability.alerts.AlertEngine`, and run
any alert-triggered incident dumps (which, for pipelines, ride the
worker queues and therefore must never run on an HTTP thread) — while
the HTTP threads only *read* the engine's cached state.

>>> from repro.core.criteria import Criteria
>>> from repro.core.quantile_filter import QuantileFilter
>>> filt = QuantileFilter(Criteria(delta=0.9, threshold=50.0,
...                                epsilon=5.0), num_buckets=8,
...                       vague_width=64)
>>> source = FilterServeSource(filt)
>>> for i in range(100):
...     _ = filt.insert(i % 7, 10.0)
>>> print(source.metrics_text().splitlines()[0])
# HELP qf_candidate_entries Occupied candidate slots.
>>> source.refresh().verdict
'ok'
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional
from urllib.parse import urlsplit

from repro.observability.exporters import render_prometheus
from repro.observability.health import (
    HealthMonitor,
    HealthReport,
    aggregate_reports,
    verdict_rank,
)
from repro.observability.instrument import observe_filter, observe_process
from repro.observability.registry import StatsRegistry

#: The /alerts payload served when a source carries no alert engine.
_NO_ALERTS = {"evaluated_at": None, "rules": 0, "firing": [], "alerts": []}


class _AlertingSource:
    """Shared store/alert-engine plumbing for both serve sources.

    Subclasses call :meth:`_init_alerting` at the end of construction
    and implement ``_tick_snapshot()`` (what to collect) and
    ``_dump_on_alerts(transitions)`` (how a critical firing rule turns
    into incident bundles).  The thread contract mirrors the stats one:
    :meth:`tick` belongs to the feeding thread; every other method is
    safe from HTTP threads because it only reads cached/locked state.
    """

    def _init_alerting(self, rules, store, step_seconds: float) -> None:
        from repro.observability.timeseries import MetricStore

        # Process gauges live on their own registry so they never skew
        # per-shard aggregation invariants on the filter registries.
        self.process_registry = observe_process()
        if store is None and rules is None:
            self.store = None
            self.alerts = None
            return
        self.store = store if store is not None else MetricStore(
            step_seconds=step_seconds
        )
        if rules:
            from repro.observability.alerts import AlertEngine

            self.alerts = AlertEngine(self.store, list(rules))
        else:
            self.alerts = None

    # -- feeder-thread side -------------------------------------------
    def tick(self, now: Optional[float] = None) -> list:
        """Collect + evaluate one alerting tick (feeding thread only).

        Refreshes the health report, collects the full metrics
        snapshot into the store (subject to its ``step_seconds``
        throttle), evaluates every rule, and routes critical firing
        transitions to the deployment's incident-dump mechanism.
        Returns the state transitions taken (empty without an engine).
        """
        self.refresh()
        if self.store is None:
            return []
        if now is None:
            now = self.store.clock()
        collected = self.store.collect(self._tick_snapshot(), now=now)
        if self.alerts is None:
            return []
        if not collected:
            # Throttled: the engine would re-evaluate unchanged data.
            return []
        transitions = self.alerts.evaluate(now=now)
        firing_critical = [
            t for t in transitions
            if t.new_state == "firing" and t.rule.severity == "critical"
        ]
        if firing_critical:
            self._dump_on_alerts(firing_critical)
        return transitions

    def _tick_snapshot(self) -> Dict[str, float]:
        raise NotImplementedError

    def _dump_on_alerts(self, transitions: list) -> None:
        raise NotImplementedError

    # -- HTTP-thread side ---------------------------------------------
    def alerts_payload(self) -> dict:
        """The ``/alerts`` JSON body (stub when no engine)."""
        if self.alerts is None:
            return dict(_NO_ALERTS)
        return self.alerts.as_dict()

    def _fold_alerts(self, report: HealthReport) -> HealthReport:
        """Aggregate firing-rule signals into the health report."""
        if self.alerts is None:
            return report
        folded = aggregate_reports(
            [report, self.alerts.report()], source=report.source
        )
        self.monitor.last_report = folded
        return folded

    def _observability_samples(self) -> Dict[str, float]:
        """Process gauges + store accounting + alert states."""
        samples = self.process_registry.snapshot()
        if self.store is not None:
            samples.update(self.store.samples())
        if self.alerts is not None:
            samples.update(self.alerts.samples())
        return samples


class FilterServeSource(_AlertingSource):
    """Serve source for a standalone filter (any engine).

    Instruments the filter on construction when it is not already
    observed; the monitor defaults to the standard
    :meth:`~repro.observability.health.HealthMonitor.for_filter` build.
    Feed the monitor (``source.monitor.observe_batch(keys, values)``)
    alongside the filter's inserts to enable the drift and shadow
    signals — without it the structural and telemetry signals still
    work.

    Pass ``rules`` (a list of
    :class:`~repro.observability.alerts.AlertRule`) to attach an alert
    engine; drive :meth:`tick` from the feeding loop.  A critical rule
    entering the firing state dumps an incident bundle through the
    attached recorder (when there is one), subject to its
    ``TriggerPolicy.on_alert``.
    """

    def __init__(
        self,
        filt,
        monitor: Optional[HealthMonitor] = None,
        registry: Optional[StatsRegistry] = None,
        recorder=None,
        rules=None,
        store=None,
        step_seconds: float = 0.0,
    ):
        self.filt = filt
        self.registry = (
            registry
            if registry is not None
            else observe_filter(filt)
        )
        self.monitor = (
            monitor
            if monitor is not None
            else HealthMonitor.for_filter(filt, recorder=recorder)
        )
        self.recorder = (
            recorder if recorder is not None else self.monitor.recorder
        )
        if self.recorder is not None:
            from repro.observability.recorder import observe_recorder

            observe_recorder(self.recorder, self.registry)
        self._lock = threading.Lock()
        self._init_alerting(rules, store, step_seconds)

    def refresh(self) -> HealthReport:
        """Recompute the health report from a fresh snapshot."""
        # Deferred: core.quantile_filter imports the observability
        # package for provenance, so inspect cannot load at import time.
        from repro.core.inspect import structural_probe

        with self._lock:
            report = self.monitor.report(
                self.registry.snapshot(),
                probe=structural_probe(self.filt),
                reported_keys=set(self.filt.reported_keys),
            )
            return self._fold_alerts(report)

    def metrics_snapshot(self) -> Dict[str, float]:
        """Registry snapshot overlaid with the derived health samples."""
        self.refresh()
        snapshot = self.registry.snapshot()
        snapshot.update(self.monitor.health_samples())
        snapshot.update(self._observability_samples())
        return snapshot

    def metrics_text(self) -> str:
        return render_prometheus(self.metrics_snapshot())

    def shard_reports(self) -> List[HealthReport]:
        return [self.refresh()]

    def incidents(self) -> List[dict]:
        """Recent incident-bundle manifests (no recorder → empty)."""
        if self.recorder is None:
            return []
        return self.recorder.list_incidents()

    # -- alerting hooks ------------------------------------------------
    def _tick_snapshot(self) -> Dict[str, float]:
        snapshot = self.registry.snapshot()
        snapshot.update(self.monitor.health_samples())
        snapshot.update(self.process_registry.snapshot())
        return snapshot

    def _dump_on_alerts(self, transitions: list) -> None:
        if self.recorder is not None:
            self.recorder.observe_alerts(transitions)


class PipelineServeSource(_AlertingSource):
    """Serve source for a running :class:`~repro.parallel.pipeline.
    ParallelPipeline`.

    Reads only the pipeline's cached cross-shard views — the feeding
    thread refreshes them with ``pipeline.collect_stats_view()``; HTTP
    threads must never ride the worker queues themselves.  Per-shard
    verdicts come from evaluating each cached worker view separately;
    the aggregate is worst-wins across the global report and every
    shard report.

    With ``rules`` attached, drive :meth:`tick` from the feeding loop
    (never an HTTP thread: a critical rule firing broadcasts
    ``pipeline.request_incident_dump``, which rides the worker queues).
    """

    def __init__(
        self,
        pipeline,
        monitor: Optional[HealthMonitor] = None,
        rules=None,
        store=None,
        step_seconds: float = 0.0,
    ):
        self.pipeline = pipeline
        self.monitor = (
            monitor
            if monitor is not None
            else HealthMonitor.for_criteria(pipeline.criteria)
        )
        self._lock = threading.Lock()
        self._shard_reports: List[HealthReport] = []
        # Workers dump into per-shard subdirectories of this root when
        # the pipeline was built with record=True.
        self.incident_dir = getattr(pipeline, "incident_dir", None)
        self._init_alerting(rules, store, step_seconds)

    def _global_snapshot(self) -> Dict[str, float]:
        if self.pipeline.last_stats is not None:
            return dict(self.pipeline.last_stats)
        # No worker view collected yet: the master-side registry alone
        # (pull gauges over plain attributes — safe from any thread).
        return self.pipeline.stats.snapshot()

    def refresh(self) -> HealthReport:
        with self._lock:
            expected = (
                self.pipeline.num_shards if self.pipeline.running else None
            )
            report = self.monitor.report(
                self._global_snapshot(),
                reported_keys=self.pipeline.reported_keys,
                expected_workers=expected,
                source="aggregate",
            )
            per_shard = self.pipeline.last_per_shard_stats or []
            shard_reports = [
                self.monitor.model.evaluate(view, source=f"shard-{shard}")
                for shard, view in enumerate(per_shard)
            ]
            self._shard_reports = shard_reports
            if shard_reports:
                report = aggregate_reports(
                    [report] + shard_reports, source="aggregate"
                )
                self.monitor.last_report = report
            return self._fold_alerts(report)

    def metrics_snapshot(self) -> Dict[str, float]:
        self.refresh()
        snapshot = self._global_snapshot()
        snapshot.update(self.monitor.health_samples())
        snapshot.update(self._observability_samples())
        return snapshot

    def metrics_text(self) -> str:
        return render_prometheus(self.metrics_snapshot())

    def shard_reports(self) -> List[HealthReport]:
        self.refresh()
        return list(self._shard_reports)

    def incidents(self) -> List[dict]:
        """Manifests across every worker's incident subdirectory."""
        if self.incident_dir is None:
            return []
        from repro.observability.recorder import list_incidents

        return list_incidents(self.incident_dir)

    # -- alerting hooks ------------------------------------------------
    def _tick_snapshot(self) -> Dict[str, float]:
        snapshot = self._global_snapshot()
        snapshot.update(self.monitor.health_samples())
        snapshot.update(self.process_registry.snapshot())
        return snapshot

    def _dump_on_alerts(self, transitions: list) -> None:
        if not self.pipeline.running:
            return
        for transition in transitions:
            self.pipeline.request_incident_dump(
                f"alert:{transition.rule.name}"
            )


class _HealthRequestHandler(BaseHTTPRequestHandler):
    """Routes /metrics, /healthz, /health/shards, /incidents."""

    server_version = "QuantileFilterHealth/1.0"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        try:
            if path == "/metrics":
                body = self.server.source.metrics_text() + "\n"
                self._respond(
                    200, body, "text/plain; version=0.0.4; charset=utf-8"
                )
            elif path == "/healthz":
                report = self.server.source.refresh()
                status = 503 if report.verdict == "critical" else 200
                self._respond_json(status, report.as_dict())
            elif path == "/alerts":
                payload = getattr(
                    self.server.source, "alerts_payload", None
                )
                self._respond_json(
                    200,
                    payload() if payload is not None else dict(_NO_ALERTS),
                )
            elif path == "/incidents":
                incidents = getattr(self.server.source, "incidents", None)
                manifests = incidents() if incidents is not None else []
                self._respond_json(
                    200,
                    {"count": len(manifests), "incidents": manifests},
                )
            elif path == "/health/shards":
                reports = self.server.source.shard_reports()
                verdict = "ok"
                for report in reports:
                    if verdict_rank(report.verdict) > verdict_rank(verdict):
                        verdict = report.verdict
                self._respond_json(
                    200,
                    {
                        "verdict": verdict,
                        "shards": [r.as_dict() for r in reports],
                    },
                )
            else:
                self._respond_json(
                    404,
                    {
                        "error": f"unknown path {path!r}",
                        "routes": [
                            "/metrics", "/healthz", "/health/shards",
                            "/incidents", "/alerts",
                        ],
                    },
                )
        except Exception as exc:  # pragma: no cover - defensive
            self._respond_json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )

    def _respond(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _respond_json(self, status: int, obj: dict) -> None:
        self._respond(
            status, json.dumps(obj, indent=2) + "\n", "application/json"
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr logging (scrapes are frequent)."""


class HealthServer:
    """Threaded HTTP server bound to a serve source.

    ``port=0`` (the default) binds an ephemeral port; read
    :attr:`port` / :attr:`url` after :meth:`start`.  The accept loop
    and every request run on daemon threads, and :meth:`stop` joins the
    accept thread after ``shutdown()`` — no threads outlive it.
    Usable as a context manager.
    """

    def __init__(self, source, host: str = "127.0.0.1", port: int = 0):
        self.source = source
        self.host = host
        self.port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "HealthServer":
        if self._server is not None:
            return self
        server = ThreadingHTTPServer(
            (self.host, self.port), _HealthRequestHandler
        )
        server.daemon_threads = True
        server.source = self.source
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="quantilefilter-health-server",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        """Base URL (valid after :meth:`start`)."""
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._server is not None

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "HealthServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_filter(
    filt, host: str = "127.0.0.1", port: int = 0, rules=None
) -> HealthServer:
    """Start a health server for a standalone filter; returns it running."""
    return HealthServer(
        FilterServeSource(filt, rules=rules), host=host, port=port
    ).start()


def serve_pipeline(
    pipeline, host: str = "127.0.0.1", port: int = 0, rules=None
) -> HealthServer:
    """Start a health server for a pipeline; returns it running."""
    return HealthServer(
        PipelineServeSource(pipeline, rules=rules), host=host, port=port
    ).start()
