"""Flight recorder: capture the stream window around an incident, replay it.

The health layer (:mod:`repro.observability.health`) can say *that* a
filter went degraded or critical; this module preserves *why*.  A
:class:`FlightRecorder` rides a filter's insert path at **chunk
granularity** — the unit the batch engine, the pipeline workers and the
serve loop already feed in — and retains, in bounded memory:

* a **base snapshot** of the full filter state
  (:func:`repro.core.persistence.engine_state`), refreshed whenever the
  chunk ring rotates, so ``base + retained chunks == live filter`` holds
  at every chunk boundary;
* the last ``max_chunks`` **raw chunks** (keys, values, and the reports
  each one emitted);
* periodic **forensic probes** (:func:`repro.core.inspect.
  structural_probe` plus a registry snapshot), recent
  :class:`~repro.detection.threshold.ThresholdDecision` records and
  :class:`~repro.observability.provenance.ReportProvenance` entries.

When a :class:`TriggerPolicy` fires — critical verdict, verdict flip,
explicit ``repro record dump``, or a pipeline worker crash — the
recorder writes a self-contained, versioned **incident bundle**
(``incident-<ts>.json.gz`` plus a small sidecar manifest) atomically,
runstore-style.  :func:`replay_bundle` closes the loop: it rebuilds the
filter from the base snapshot, re-feeds every captured chunk through the
same engine entry point (``insert_many`` / ``process``) and asserts the
captured reports, final counters, state fingerprint and structural
health verdict reproduce **bit-identically** — every production
incident becomes a runnable regression test.

Determinism contract: chunks are replayed through one engine call each,
exactly as they were captured.  The batch engine's geometric cold-start
ramp is local to each ``process()`` call, so matching the call
boundaries matches the arithmetic; the scalar filter's ``insert_many``
is item-order identical to per-item ``insert``.  The default
``comparative`` strategy uses no RNG on the insert path, so replays are
exact (probabilistic strategies would diverge at random tie-breaks and
are not recorded).

>>> from repro import Criteria, QuantileFilter
>>> filt = QuantileFilter(Criteria(delta=0.5, threshold=10.0,
...                                epsilon=2.0),
...                       num_buckets=8, vague_width=16)
>>> rec = FlightRecorder(filt, max_chunks=4, chunk_items=32)
>>> for i in range(100):
...     _ = rec.insert(i % 5, 30.0)
>>> result = replay_bundle(rec.bundle("doctest"))
>>> result.ok, result.items_replayed
(True, 100)
"""

from __future__ import annotations

import gzip
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Union

import numpy as np

from repro.common.errors import ParameterError, TraceFormatError
from repro.observability.registry import (
    SPEC_INDEX,
    MetricSpec,
    StatsRegistry,
)

PathLike = Union[str, Path]

#: Incident-bundle schema version (bump on incompatible layout changes).
BUNDLE_SCHEMA_VERSION = 1

#: Help text for the recorder's ``/metrics`` gauges, mirrored into
#: ``SPEC_INDEX`` at import time like the health and filter families.
RECORDER_METRIC_HELP = {
    "qf_recorder_retained_chunks":
        "Raw chunks currently retained in the flight-recorder ring.",
    "qf_recorder_retained_items":
        "Stream items covered by the retained chunk window.",
    "qf_recorder_retained_bytes":
        "Approximate bytes held by the retained raw chunks.",
    "qf_recorder_snapshots_total":
        "Base-state snapshots taken (ring rotations plus the initial one).",
    "qf_recorder_dumps_total":
        "Incident bundles written by this recorder.",
    "qf_recorder_last_dump_unix":
        "Unix time of the most recent incident dump (0 = never).",
}

_RECORDER_GAUGE_AGG = {
    "qf_recorder_retained_chunks": "sum",
    "qf_recorder_retained_items": "sum",
    "qf_recorder_retained_bytes": "sum",
    "qf_recorder_snapshots_total": "sum",
    "qf_recorder_dumps_total": "sum",
    "qf_recorder_last_dump_unix": "max",
}

for _name, _help in RECORDER_METRIC_HELP.items():
    SPEC_INDEX.setdefault(
        _name,
        MetricSpec(
            name=_name,
            kind="counter" if _name.endswith("_total") else "gauge",
            help=_help,
            agg=_RECORDER_GAUGE_AGG[_name],
        ),
    )
del _name, _help


@dataclass(frozen=True)
class TriggerPolicy:
    """When :meth:`FlightRecorder.observe_health` dumps a bundle.

    ``on_critical`` fires on any transition *into* the critical verdict;
    ``on_flip`` fires on every verdict change (including critical
    transitions, which then carry the flip reason).  Both are deduped:
    a verdict that merely *stays* critical never re-dumps.

    ``on_alert`` extends the same contract to the declarative alert
    engine (:meth:`FlightRecorder.observe_alerts`): a critical rule
    *entering* the firing state dumps one bundle; a rule that stays
    firing never re-dumps because the engine only reports transitions.
    """

    on_critical: bool = True
    on_flip: bool = True
    on_alert: bool = True


def _persistence():
    """Deferred import: :mod:`repro.core` imports this package for
    provenance, so the snapshot layer cannot load at import time."""
    from repro.core import persistence

    return persistence


def _tolist(values) -> list:
    if hasattr(values, "tolist"):
        return values.tolist()
    return list(values)


def _json_key(key):
    if isinstance(key, bool) or not isinstance(key, (int, str)):
        raise TraceFormatError(
            f"flight recording needs int or str keys, got {type(key).__name__}"
        )
    return key


def _report_entry(report) -> dict:
    """The comparable core of a Report (provenance intentionally
    excluded: replayed filters are rebuilt without audit hooks)."""
    return {
        "key": _json_key(report.key),
        "qweight": report.qweight,
        "source": report.source,
        "item_index": report.item_index,
    }


def _probe_health(filt) -> dict:
    """Structural health evaluation — a pure function of filter state.

    Runs a fresh :class:`~repro.observability.health.HealthModel` over a
    minimal snapshot (items + reports, both filter-carried) and the live
    structural probe, so capture time and replay time evaluate the exact
    same inputs and must agree signal-for-signal.
    """
    # Deferred: core.quantile_filter imports this package for
    # provenance, so inspect cannot load at observability import time.
    from repro.core.inspect import structural_probe
    from repro.observability.health import HealthModel

    snapshot = {
        "qf_items_total": float(filt.items_processed),
        "qf_reports_total": float(filt.report_count),
    }
    report = HealthModel().evaluate(
        snapshot, probe=structural_probe(filt), source="recorder"
    )
    return report.as_dict()


class FlightRecorder:
    """Bounded-memory checkpoint-plus-log ring over one filter.

    Parameters
    ----------
    filt:
        A scalar :class:`~repro.core.quantile_filter.QuantileFilter` or
        a :class:`~repro.core.vectorized.BatchQuantileFilter`.  The
        recorder snapshots it at construction, so attach the recorder
        before (or at) the stream position replays should start from.
    max_chunks:
        Retained raw chunks; when exceeded the ring rotates — a fresh
        base snapshot is taken and older chunks are dropped.
    chunk_items:
        Items per sealed chunk for the per-item :meth:`insert` tap
        (chunk-fed callers control their own chunk size via
        :meth:`feed`).
    forensic_every:
        Take a structural probe (plus a registry snapshot when one is
        attached) every N recorded chunks; 0 disables periodic probes.
    policy:
        The :class:`TriggerPolicy` for :meth:`observe_health`.
    incident_dir:
        Where :meth:`dump` writes bundles; ``None`` keeps the recorder
        memory-only (``observe_health`` then never dumps).
    config:
        Free-form JSON-able deployment context copied into every
        bundle manifest (shard id, dataset name, CLI arguments, ...).
    registry:
        Optional :class:`~repro.observability.registry.StatsRegistry`
        whose snapshots ride the periodic forensic probes.
    max_incidents:
        Bundles kept on disk per incident directory; older ones are
        pruned after each dump.
    """

    def __init__(
        self,
        filt,
        *,
        max_chunks: int = 32,
        chunk_items: int = 4_096,
        forensic_every: int = 8,
        policy: TriggerPolicy = TriggerPolicy(),
        incident_dir: Optional[PathLike] = None,
        config: Optional[dict] = None,
        registry: Optional[StatsRegistry] = None,
        max_decisions: int = 512,
        max_provenance: int = 512,
        max_probes: int = 32,
        max_incidents: int = 32,
    ):
        if max_chunks < 1:
            raise ParameterError(f"max_chunks must be >= 1, got {max_chunks}")
        if chunk_items < 1:
            raise ParameterError(
                f"chunk_items must be >= 1, got {chunk_items}"
            )
        if max_incidents < 1:
            raise ParameterError(
                f"max_incidents must be >= 1, got {max_incidents}"
            )
        from repro.core.quantile_filter import QuantileFilter

        self.filt = filt
        self.engine = "scalar" if isinstance(filt, QuantileFilter) else "batch"
        self.max_chunks = max_chunks
        self.chunk_items = chunk_items
        self.forensic_every = forensic_every
        self.policy = policy
        self.incident_dir = Path(incident_dir) if incident_dir else None
        self.config = dict(config or {})
        self.registry = registry
        self.max_incidents = max_incidents
        self._lock = threading.RLock()
        self._chunks: Deque[dict] = deque()
        self._pending_keys: list = []
        self._pending_values: list = []
        self._pending_reports: List[dict] = []
        self._probes: Deque[dict] = deque(maxlen=max_probes)
        self._decisions: Deque[dict] = deque(maxlen=max_decisions)
        self._provenance: Deque[dict] = deque(maxlen=max_provenance)
        self._known = set(filt.reported_keys) if self.engine == "batch" else None
        self._chunks_since_probe = 0
        self._last_verdict: Optional[str] = None
        self._last_health: Optional[dict] = None
        self.snapshots_total = 0
        self.dumps_total = 0
        self.last_dump_unix = 0.0
        self._base_state = self._snapshot_state()

    # -- state bookkeeping ---------------------------------------------
    def _snapshot_state(self) -> dict:
        self.snapshots_total += 1
        return _persistence().engine_state(self.filt)

    def _rotate(self) -> None:
        """Re-base: the live filter state becomes the new replay origin."""
        self._base_state = self._snapshot_state()
        self._chunks.clear()

    def _maybe_rotate(self) -> None:
        if len(self._chunks) >= self.max_chunks:
            self._rotate()

    def note_discontinuity(self, reason: str) -> None:
        """Re-base after an un-replayable in-place mutation of the
        filter (e.g. a ``retarget``): seals any pending items, then
        snapshots the mutated state as the new replay origin so no
        retained chunk straddles the discontinuity."""
        with self._lock:
            self._seal_pending()
            self._rotate()
            self._probes.append({
                "item": self.filt.items_processed,
                "discontinuity": reason,
            })

    def _forensic_tick(self) -> None:
        if self.forensic_every <= 0:
            return
        self._chunks_since_probe += 1
        if self._chunks_since_probe >= self.forensic_every:
            self._chunks_since_probe = 0
            self.record_probe()

    # -- recording taps -------------------------------------------------
    def feed(self, keys, values):
        """Record one chunk and apply it to the filter.

        This *is* the insert path when recording is on: the chunk is
        applied through the same engine entry point an unrecorded
        feeder would use (``insert_many`` for scalar, ``process`` for
        batch), so detection behaviour is bit-identical either way.
        Returns the scalar engine's new :class:`Report` objects, or the
        batch engine's sorted newly-reported keys.
        """
        with self._lock:
            self._seal_pending()
            self._maybe_rotate()
            start_item = self.filt.items_processed
            if self.engine == "batch":
                keys_arr = np.asarray(keys, dtype=np.int64)
                values_arr = np.asarray(values, dtype=np.float64)
                self.filt.process(keys_arr, values_arr)
                fresh = sorted(
                    int(key) for key in self.filt.reported_keys - self._known
                )
                self._known.update(fresh)
                self._chunks.append({
                    "start_item": start_item,
                    "keys": keys_arr.tolist(),
                    "values": values_arr.tolist(),
                    "new_keys": fresh,
                    "report_count": self.filt.report_count,
                })
                out = fresh
            else:
                reports = self.filt.insert_many(keys, values)
                self._chunks.append({
                    "start_item": start_item,
                    "keys": _tolist(keys),
                    "values": _tolist(values),
                    "reports": [_report_entry(r) for r in reports],
                })
                self._tap_provenance(reports)
                out = reports
            self._forensic_tick()
            return out

    def insert(self, key, value):
        """Per-item tap (scalar engine): record and insert one item.

        Items buffer into a pending chunk sealed every ``chunk_items``;
        :meth:`dump` seals any partial chunk first, so nothing recorded
        is ever lost.
        """
        if self.engine != "scalar":
            raise ParameterError(
                "per-item insert() needs the scalar engine; feed the "
                "batch engine whole chunks via feed()"
            )
        with self._lock:
            if not self._pending_keys:
                self._maybe_rotate()
            report = self.filt.insert(key, value)
            self._pending_keys.append(key)
            self._pending_values.append(value)
            if report is not None:
                self._pending_reports.append(_report_entry(report))
                self._tap_provenance([report])
            if len(self._pending_keys) >= self.chunk_items:
                self._seal_pending()
            return report

    def _seal_pending(self) -> None:
        if not self._pending_keys:
            return
        self._chunks.append({
            "start_item": self.filt.items_processed - len(self._pending_keys),
            "keys": list(self._pending_keys),
            "values": list(self._pending_values),
            "reports": list(self._pending_reports),
        })
        self._pending_keys.clear()
        self._pending_values.clear()
        self._pending_reports.clear()
        self._forensic_tick()

    def _tap_provenance(self, reports) -> None:
        from repro.observability.provenance import provenance_record

        for report in reports:
            if getattr(report, "provenance", None) is not None:
                self._provenance.append(provenance_record(report))

    # -- forensics ------------------------------------------------------
    def record_probe(self) -> None:
        """Capture a structural probe (+ stats snapshot) right now."""
        from repro.core.inspect import structural_probe

        with self._lock:
            entry = {
                "item": self.filt.items_processed,
                "probe": structural_probe(self.filt),
            }
            if self.registry is not None:
                entry["stats"] = self.registry.snapshot()
            self._probes.append(entry)

    def record_decision(self, decision) -> None:
        """Retain a :class:`~repro.detection.threshold.ThresholdDecision`.

        Wire via ``ThresholdControlLoop(..., on_decision=
        recorder.record_decision)`` — the bundle then shows exactly
        which controller evaluations preceded the incident.
        """
        if decision is None:
            return
        from dataclasses import asdict

        with self._lock:
            self._decisions.append(asdict(decision))

    # -- trigger policy -------------------------------------------------
    def observe_health(self, report) -> Optional[Path]:
        """Feed a :class:`HealthReport`; dump when the policy fires.

        Returns the bundle path when one was written, else ``None``.
        """
        with self._lock:
            prev = self._last_verdict
            self._last_verdict = report.verdict
            self._last_health = report.as_dict()
            if self.incident_dir is None:
                return None
            reason = None
            if prev is not None and report.verdict != prev and self.policy.on_flip:
                reason = f"verdict_flip:{prev}->{report.verdict}"
            elif (
                report.verdict == "critical"
                and prev != "critical"
                and self.policy.on_critical
            ):
                reason = "critical"
            if reason is None:
                return None
            return self.dump(reason, health=report.as_dict())

    def observe_alerts(self, transitions) -> List[Path]:
        """Feed alert-engine transitions; dump per critical rule firing.

        Takes the list returned by
        :meth:`~repro.observability.alerts.AlertEngine.evaluate` and
        writes one bundle (reason ``alert:<rule>``) for every
        *critical* rule that entered the firing state this tick.
        Deduplication is structural: the engine reports each edge once,
        so a rule that stays firing cannot re-trigger until it has
        resolved and fired again.  Returns the bundle paths written.
        """
        paths: List[Path] = []
        if self.incident_dir is None or not self.policy.on_alert:
            return paths
        for transition in transitions:
            rule = transition.rule
            if transition.new_state != "firing" or rule.severity != "critical":
                continue
            paths.append(self.dump(
                f"alert:{rule.name}",
                extra={
                    "alert": {
                        "rule": rule.as_dict(),
                        "old_state": transition.old_state,
                        "value": transition.value,
                        "at": transition.at,
                    }
                },
            ))
        return paths

    # -- bundles --------------------------------------------------------
    @property
    def retained_chunks(self) -> int:
        return len(self._chunks) + (1 if self._pending_keys else 0)

    @property
    def retained_items(self) -> int:
        pending = len(self._pending_keys)
        return sum(len(c["keys"]) for c in self._chunks) + pending

    @property
    def retained_bytes(self) -> int:
        """Approximate raw-chunk footprint (16 B per key/value pair)."""
        return self.retained_items * 16

    def bundle(self, reason: str, *, health: Optional[dict] = None,
               extra: Optional[dict] = None) -> dict:
        """Build (in memory) the incident bundle for the current window."""
        with self._lock:
            self._seal_pending()
            meta = self._base_state["meta"]
            window_items = sum(len(c["keys"]) for c in self._chunks)
            health = health if health is not None else self._last_health
            manifest = {
                "schema_version": BUNDLE_SCHEMA_VERSION,
                "created_unix": time.time(),
                "reason": reason,
                "git_revision": self._git_revision(),
                "engine": self.engine,
                "seed": meta["seed"],
                "criteria": meta["criteria"],
                "config": self.config,
                "items_processed": self.filt.items_processed,
                "window_items": window_items,
                "window_chunks": len(self._chunks),
                "verdict": (health or {}).get("verdict"),
            }
            persistence = _persistence()
            return {
                "schema_version": BUNDLE_SCHEMA_VERSION,
                "manifest": manifest,
                "base_state": persistence.state_to_jsonable(self._base_state),
                "chunks": [dict(chunk) for chunk in self._chunks],
                "forensics": {
                    "probes": list(self._probes),
                    "decisions": list(self._decisions),
                    "provenance": list(self._provenance),
                    "health": health,
                    "extra": extra,
                },
                "expected": {
                    "items_processed": self.filt.items_processed,
                    "report_count": self.filt.report_count,
                    "state_fingerprint":
                        persistence.state_fingerprint(self.filt),
                    "health": _probe_health(self.filt),
                },
            }

    @staticmethod
    def _git_revision() -> str:
        from repro.experiments.runstore import git_revision

        return git_revision(Path(__file__).parent)

    def dump(self, reason: str, *, health: Optional[dict] = None,
             extra: Optional[dict] = None) -> Path:
        """Write an incident bundle atomically; returns its path."""
        if self.incident_dir is None:
            raise ParameterError(
                "this recorder has no incident_dir; construct it with one "
                "to enable dumps"
            )
        with self._lock:
            bundle = self.bundle(reason, health=health, extra=extra)
            self.incident_dir.mkdir(parents=True, exist_ok=True)
            stamp = int(bundle["manifest"]["created_unix"] * 1000)
            path = self.incident_dir / f"incident-{stamp}.json.gz"
            suffix = 0
            while path.exists():
                suffix += 1
                path = self.incident_dir / f"incident-{stamp}-{suffix}.json.gz"
            bundle["manifest"]["bundle"] = path.name
            payload = gzip.compress(
                json.dumps(bundle).encode("utf-8"), mtime=0
            )
            _atomic_write_bytes(path, payload)
            sidecar = path.with_name(path.name[:-len(".json.gz")]
                                     + ".manifest.json")
            _atomic_write_bytes(
                sidecar,
                (json.dumps(bundle["manifest"], indent=2) + "\n").encode(
                    "utf-8"
                ),
            )
            self._prune_incidents()
            self.dumps_total += 1
            self.last_dump_unix = time.time()
            return path

    def _prune_incidents(self) -> None:
        bundles = sorted(self.incident_dir.glob("incident-*.json.gz"))
        for stale in bundles[:-self.max_incidents]:
            sidecar = stale.with_name(
                stale.name[:-len(".json.gz")] + ".manifest.json"
            )
            for victim in (stale, sidecar):
                try:
                    victim.unlink()
                except OSError:  # pragma: no cover - races are benign
                    pass

    def list_incidents(self) -> List[dict]:
        """Manifests of this recorder's on-disk bundles, newest first."""
        if self.incident_dir is None:
            return []
        return list_incidents(self.incident_dir)


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


def list_incidents(incident_dir: PathLike) -> List[dict]:
    """Read every sidecar manifest under ``incident_dir``, newest first.

    Bundles written by pipeline workers live in per-shard
    subdirectories, so the scan is recursive.  Unreadable manifests are
    skipped (a dump may be mid-replace).
    """
    root = Path(incident_dir)
    if not root.is_dir():
        return []
    manifests = []
    for path in sorted(root.rglob("incident-*.manifest.json")):
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        manifest["path"] = str(
            path.with_name(path.name[:-len(".manifest.json")] + ".json.gz")
        )
        manifests.append(manifest)
    manifests.sort(key=lambda m: m.get("created_unix", 0.0), reverse=True)
    return manifests


def observe_recorder(
    recorder: FlightRecorder,
    registry: Optional[StatsRegistry] = None,
    labels: Optional[Dict[str, str]] = None,
) -> StatsRegistry:
    """Export ``qf_recorder_*`` gauges for a recorder (pull-model)."""
    registry = registry if registry is not None else StatsRegistry()
    gauges: List[tuple] = [
        ("qf_recorder_retained_chunks", lambda: recorder.retained_chunks),
        ("qf_recorder_retained_items", lambda: recorder.retained_items),
        ("qf_recorder_retained_bytes", lambda: recorder.retained_bytes),
        ("qf_recorder_last_dump_unix", lambda: recorder.last_dump_unix),
    ]
    for name, fn in gauges:
        registry.gauge_fn(
            name, fn, help=RECORDER_METRIC_HELP[name], labels=labels,
            agg=_RECORDER_GAUGE_AGG[name],
        )
    for name, fn in (
        ("qf_recorder_snapshots_total", lambda: recorder.snapshots_total),
        ("qf_recorder_dumps_total", lambda: recorder.dumps_total),
    ):
        registry.counter_fn(
            name, fn, help=RECORDER_METRIC_HELP[name], labels=labels,
        )
    return registry


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
@dataclass
class ReplayResult:
    """Outcome of one deterministic replay.

    ``ok`` requires every per-chunk report stream, the final counters,
    the state fingerprint and the structural health verdict to match
    the capture exactly; ``mismatches`` names each deviation.
    """

    ok: bool
    engine: str
    chunks_replayed: int
    items_replayed: int
    reports_expected: int
    reports_replayed: int
    fingerprint_ok: bool
    verdict: Optional[str]
    expected_verdict: Optional[str]
    verdict_ok: bool
    mismatches: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "engine": self.engine,
            "chunks_replayed": self.chunks_replayed,
            "items_replayed": self.items_replayed,
            "reports_expected": self.reports_expected,
            "reports_replayed": self.reports_replayed,
            "fingerprint_ok": self.fingerprint_ok,
            "verdict": self.verdict,
            "expected_verdict": self.expected_verdict,
            "verdict_ok": self.verdict_ok,
            "mismatches": list(self.mismatches),
        }

    def summary(self) -> str:
        state = "MATCH" if self.ok else "MISMATCH"
        lines = [
            f"replay {state}: engine={self.engine} "
            f"chunks={self.chunks_replayed} items={self.items_replayed} "
            f"reports={self.reports_replayed}/{self.reports_expected}",
            f"  state fingerprint: "
            f"{'identical' if self.fingerprint_ok else 'DIVERGED'}",
            f"  health verdict: {self.verdict} "
            f"(captured {self.expected_verdict}) — "
            f"{'identical' if self.verdict_ok else 'DIVERGED'}",
        ]
        for mismatch in self.mismatches[:20]:
            lines.append(f"  mismatch: {mismatch}")
        if len(self.mismatches) > 20:
            lines.append(
                f"  ... {len(self.mismatches) - 20} further mismatch(es)"
            )
        return "\n".join(lines)


def load_bundle(path: PathLike) -> dict:
    """Read an incident bundle (gzip or plain JSON)."""
    path = Path(path)
    try:
        raw = path.read_bytes()
        if raw[:2] == b"\x1f\x8b":
            raw = gzip.decompress(raw)
        bundle = json.loads(raw.decode("utf-8"))
    except (OSError, ValueError) as exc:
        raise TraceFormatError(f"cannot read bundle {path}: {exc}") from exc
    version = bundle.get("schema_version")
    if version != BUNDLE_SCHEMA_VERSION:
        raise TraceFormatError(
            f"unsupported bundle schema {version!r} in {path} "
            f"(this code reads {BUNDLE_SCHEMA_VERSION})"
        )
    return bundle


def replay_bundle(bundle: Union[dict, PathLike]) -> ReplayResult:
    """Reconstruct the filter and re-run the captured window.

    Accepts a bundle dict (from :meth:`FlightRecorder.bundle` or
    :func:`load_bundle`) or a bundle path.
    """
    if not isinstance(bundle, dict):
        bundle = load_bundle(bundle)
    persistence = _persistence()
    engine = bundle["manifest"]["engine"]
    filt = persistence.restore_engine(
        persistence.state_from_jsonable(bundle["base_state"])
    )
    mismatches: List[str] = []
    reports_expected = 0
    reports_replayed = 0
    items = 0
    for index, chunk in enumerate(bundle["chunks"]):
        items += len(chunk["keys"])
        if engine == "batch":
            keys = np.asarray(chunk["keys"], dtype=np.int64)
            values = np.asarray(chunk["values"], dtype=np.float64)
            before = set(filt.reported_keys)
            filt.process(keys, values)
            fresh = sorted(int(k) for k in filt.reported_keys - before)
            reports_expected += len(chunk["new_keys"])
            reports_replayed += len(fresh)
            if fresh != chunk["new_keys"]:
                mismatches.append(
                    f"chunk {index}: new keys {fresh} != captured "
                    f"{chunk['new_keys']}"
                )
            if filt.report_count != chunk["report_count"]:
                mismatches.append(
                    f"chunk {index}: report_count {filt.report_count} != "
                    f"captured {chunk['report_count']}"
                )
        else:
            got = [
                _report_entry(report)
                for report in filt.insert_many(chunk["keys"], chunk["values"])
            ]
            want = chunk["reports"]
            reports_expected += len(want)
            reports_replayed += len(got)
            if got != want:
                mismatches.append(
                    f"chunk {index}: {len(got)} report(s) != captured "
                    f"{len(want)} or their fields diverged"
                )
    expected = bundle["expected"]
    if filt.items_processed != expected["items_processed"]:
        mismatches.append(
            f"items_processed {filt.items_processed} != captured "
            f"{expected['items_processed']}"
        )
    if filt.report_count != expected["report_count"]:
        mismatches.append(
            f"report_count {filt.report_count} != captured "
            f"{expected['report_count']}"
        )
    fingerprint_ok = (
        persistence.state_fingerprint(filt) == expected["state_fingerprint"]
    )
    if not fingerprint_ok:
        mismatches.append("final state fingerprint diverged from capture")
    replay_health = _probe_health(filt)
    expected_health = expected.get("health") or {}
    verdict = replay_health.get("verdict")
    expected_verdict = expected_health.get("verdict")
    verdict_ok = replay_health == expected_health
    if not verdict_ok:
        mismatches.append(
            f"structural health report diverged (verdict {verdict} vs "
            f"captured {expected_verdict})"
        )
    return ReplayResult(
        ok=not mismatches,
        engine=engine,
        chunks_replayed=len(bundle["chunks"]),
        items_replayed=items,
        reports_expected=reports_expected,
        reports_replayed=reports_replayed,
        fingerprint_ok=fingerprint_ok,
        verdict=verdict,
        expected_verdict=expected_verdict,
        verdict_ok=verdict_ok,
        mismatches=mismatches,
    )
