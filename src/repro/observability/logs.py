"""Structured (JSON lines) logging on top of stdlib ``logging``.

The pipeline master logs lifecycle events — start, merge views, worker
failures, finish — through an ordinary ``logging.Logger``
(``"repro.pipeline"``), so they obey whatever handler configuration the
host application already has.  :class:`JsonLogFormatter` renders each
record as one self-contained JSON object per line (the same shape as
:class:`~repro.observability.exporters.JsonLinesEmitter` output, so one
``jq`` pipeline reads both), and :func:`configure_json_logging` is the
one-liner that installs it.

>>> import io, logging
>>> stream = io.StringIO()
>>> logger = configure_json_logging(stream=stream, name="repro.doctest")
>>> logger.info("pipeline started", extra={"event": "start", "shards": 4})
>>> record = json.loads(stream.getvalue())
>>> record["event"], record["shards"], record["message"]
('start', 4, 'pipeline started')
"""

from __future__ import annotations

import json
import logging
from typing import Optional, TextIO

#: logging.LogRecord attributes that are plumbing, not payload.
_STANDARD_ATTRS = frozenset(
    vars(
        logging.LogRecord("x", logging.INFO, "x", 0, "", (), None)
    )
) | {"message", "asctime", "taskName"}


class JsonLogFormatter(logging.Formatter):
    """Format each log record as one JSON object per line.

    The object carries ``level``, ``logger``, ``message`` and
    ``created`` (epoch seconds), plus every ``extra=`` field the call
    site attached — the structured payload.  Exceptions render into an
    ``exc_info`` string field.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
            "created": record.created,
        }
        for key, value in vars(record).items():
            if key in _STANDARD_ATTRS or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload)


def configure_json_logging(
    stream: Optional[TextIO] = None,
    name: str = "repro",
    level: int = logging.INFO,
) -> logging.Logger:
    """Attach a JSON-lines handler to ``name``'s logger and return it.

    Idempotent per (logger, stream-class): an existing handler with a
    :class:`JsonLogFormatter` on the same stream is reused rather than
    duplicated, so calling this from a CLI entry point twice does not
    double every line.
    """
    logger = logging.getLogger(name)
    logger.setLevel(level)
    for handler in logger.handlers:
        if isinstance(handler.formatter, JsonLogFormatter) and (
            getattr(handler, "stream", None) is stream or stream is None
        ):
            return logger
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLogFormatter())
    logger.addHandler(handler)
    return logger
