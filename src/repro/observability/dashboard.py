"""Frame rendering for ``repro top`` (and anything else that wants it).

A :class:`Dashboard` turns the live observability state — a
:class:`~repro.observability.timeseries.MetricStore` for history, an
optional :class:`~repro.observability.alerts.AlertEngine` for rule
states, and the latest health report — into a plain multi-line string.
It owns **no** I/O and **no** ANSI: the CLI pairs it with
:class:`~repro.observability.term.LiveScreen` on a capable terminal
and plain ``print`` everywhere else, so one renderer serves both the
live view and ``repro top --once`` under ``TERM=dumb``.

>>> from repro.observability.timeseries import MetricStore
>>> store = MetricStore(clock=lambda: 9.0)
>>> for tick in range(10):
...     _ = store.collect({"qf_items_total": tick * 1000.0,
...                        "qf_threshold": 300.0}, now=float(tick))
>>> dash = Dashboard(store, title="demo", ascii_only=True)
>>> frame = dash.render(now=9.0)
>>> "demo" in frame and "T=300" in frame
True
>>> "items" in frame
True
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.observability.term import (
    format_duration,
    format_quantity,
    sparkline,
)
from repro.observability.timeseries import MetricStore

#: Trailing window the sparklines and rate figures summarise.
DEFAULT_WINDOW_SECONDS = 120.0

#: Signal gauges surfaced on the one-line signal strip, in order.
_SIGNAL_STRIP = (
    ("qf_drift_z", "drift z"),
    ("qf_vague_saturation", "vague sat"),
    ("qf_candidate_occupancy", "occupancy"),
    ("qf_shadow_precision", "shadow prec"),
)


def rate_series(
    store: MetricStore,
    metric: str,
    window: float,
    now: Optional[float] = None,
) -> List[float]:
    """Per-interval rates of a counter over the trailing window.

    One value per adjacent sample pair (``Δvalue/Δt``); negative
    increments (counter resets) clamp to zero, zero-width intervals
    are dropped.
    """
    ts, vs = store.window(metric, window, now=now)
    if ts.size < 2:
        return []
    dt = np.diff(ts)
    dv = np.clip(np.diff(vs), 0.0, None)
    keep = dt > 0
    return (dv[keep] / dt[keep]).tolist()


class Dashboard:
    """Render the operator view as one newline-joined frame."""

    def __init__(
        self,
        store: MetricStore,
        engine=None,
        title: str = "repro top",
        width: int = 78,
        spark_width: int = 32,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        ascii_only: bool = False,
    ):
        self.store = store
        self.engine = engine
        self.title = title
        self.width = int(width)
        self.spark_width = int(spark_width)
        self.window_seconds = float(window_seconds)
        self.ascii_only = bool(ascii_only)
        self.ticks = 0

    # ------------------------------------------------------------------
    def render(self, report=None, now: Optional[float] = None,
               status: str = "") -> str:
        """One frame from the current store/engine/report state."""
        if now is None:
            now = self.store.clock()
        now = float(now)
        self.ticks += 1
        value = self.store.derive
        lines: List[str] = []

        clock_text = _clock_text(now)
        header = f"{self.title} · tick {self.ticks} · {clock_text}"
        if status:
            header += f" · {status}"
        lines.append(header[: self.width])
        lines.append("-" * min(self.width, len(header)))

        verdict = report.verdict if report is not None else "unknown"
        threshold = value("value", "qf_threshold")
        t_text = "n/a" if threshold is None else f"{threshold:g}"
        items = value("value", "qf_items_total") or 0.0
        reports = value("value", "qf_reports_total") or 0.0
        lines.append(
            f"verdict: {verdict:<9} T={t_text:<10} "
            f"items {format_quantity(items):<8} "
            f"reports {format_quantity(reports)}"
        )

        for metric, label, unit in (
            ("qf_items_total", "throughput", "items/s"),
            ("qf_reports_total", "reports", "reports/s"),
        ):
            rates = rate_series(
                self.store, metric, self.window_seconds, now=now
            )
            spark = sparkline(
                rates, width=self.spark_width, ascii_only=self.ascii_only
            )
            current = rates[-1] if rates else 0.0
            lines.append(
                f"{label:<11} {spark:<{self.spark_width}} "
                f"{format_quantity(current)} {unit}"
            )

        strip = []
        for metric, label in _SIGNAL_STRIP:
            v = value("value", metric)
            if v is not None:
                strip.append(f"{label} {v:.3g}")
        if strip:
            lines.append("signals: " + " · ".join(strip))

        lines.extend(self._alert_lines(now))
        lines.extend(_reason_lines(report))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _alert_lines(self, now: float) -> List[str]:
        if self.engine is None:
            return []
        payload = self.engine.as_dict(now=now)
        states = [a["state"] for a in payload["alerts"]]
        firing = states.count("firing")
        pending = states.count("pending")
        lines = [
            f"alerts ({payload['rules']} rules): "
            f"{firing} firing · {pending} pending"
        ]
        for alert in payload["alerts"]:
            if alert["state"] == "inactive":
                continue
            rule = alert["rule"]
            age = alert.get("state_age_seconds", 0.0)
            last = alert["last_value"]
            value_text = "n/a" if last is None else f"{last:.4g}"
            lines.append(
                f"  [{rule['severity']:>8}] {rule['name']:<22} "
                f"{alert['state']:<8} {format_duration(age):<6} "
                f"value={value_text}"
            )
        return lines


def _clock_text(now: float) -> str:
    """Wall-clock text, or raw seconds for synthetic clocks."""
    if now >= 1e8:  # a real epoch timestamp (post-1973)
        return time.strftime("%H:%M:%S", time.localtime(now))
    return f"t={now:g}s"


def _reason_lines(report) -> List[str]:
    if report is None:
        return []
    reasons = report.reasons
    if not reasons:
        return []
    lines = ["reasons:"]
    lines.extend(f"  - {reason}" for reason in reasons[:6])
    if len(reasons) > 6:
        lines.append(f"  ... and {len(reasons) - 6} more")
    return lines
