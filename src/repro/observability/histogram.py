"""Fixed log-bucket mergeable latency histograms.

Means hide tail behaviour; streaming viability is decided by update-time
*distributions* (Ivkin et al., arXiv:1907.00236).  :class:`LogHistogram`
keeps a fixed geometric ladder of bucket upper bounds, so two histograms
built with the same geometry merge by adding bucket counts — exactly the
property that lets per-shard latency histograms aggregate master-side
like the existing counters do:

>>> a, b = LogHistogram(), LogHistogram()
>>> for v in (0.001, 0.002, 0.04):
...     a.record(v)
>>> b.record(0.002)
>>> merged = a.merged(b)
>>> merged.count
4

Percentiles come from the shared implementation in
:mod:`repro.common.percentile` (linear interpolation within the bucket
holding the target rank):

>>> h = LogHistogram()
>>> for _ in range(100):
...     h.record(0.001)
>>> 0.0005 < h.percentile(99) <= 0.002
True

Registry integration follows the Prometheus histogram convention: one
:class:`Histogram` metric explodes into ``<name>_bucket{le="..."}``
cumulative counters plus ``<name>_count`` and ``<name>_sum`` samples,
all of which aggregate across shards by summing — no new aggregation
rules needed.  :func:`percentiles_from_snapshot` reconstructs
p50/p99/p999 from any such snapshot, including one summed across
shards.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ParameterError
from repro.common.percentile import percentile_from_buckets

#: Default geometry: 1 microsecond to ~100 seconds in 5 buckets per
#: decade (growth ~1.58x), 41 buckets — fits latencies from a single
#: batch insert to a stalled queue wait.
DEFAULT_MIN = 1e-6
DEFAULT_MAX = 100.0
DEFAULT_BUCKETS_PER_DECADE = 5

#: The percentiles the exporters and CLI summarise by default.
SUMMARY_PERCENTILES = (50.0, 99.0, 99.9)


def log_bounds(
    min_value: float = DEFAULT_MIN,
    max_value: float = DEFAULT_MAX,
    buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
) -> Tuple[float, ...]:
    """The geometric ladder of bucket upper bounds, ending in ``inf``.

    Bounds are derived from the three parameters deterministically, so
    histograms configured alike — even in different processes — share
    bucket edges and therefore merge exactly.
    """
    if min_value <= 0:
        raise ParameterError(f"min_value must be > 0, got {min_value}")
    if max_value <= min_value:
        raise ParameterError(
            f"max_value must exceed min_value, got {max_value} <= {min_value}"
        )
    if buckets_per_decade < 1:
        raise ParameterError(
            f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
        )
    decades = math.log10(max_value / min_value)
    steps = max(1, math.ceil(decades * buckets_per_decade - 1e-9))
    ratio = 10.0 ** (1.0 / buckets_per_decade)
    bounds = [min_value * ratio ** i for i in range(steps + 1)]
    bounds.append(math.inf)
    return tuple(bounds)


class LogHistogram:
    """A mergeable histogram over fixed log-spaced buckets.

    Values at or below ``min_value`` land in the first bucket; values
    above ``max_value`` land in the unbounded overflow bucket.  Only
    ``record`` is hot-path adjacent (one ``log``, one index); everything
    else is snapshot-time.
    """

    __slots__ = ("min_value", "max_value", "buckets_per_decade",
                 "bounds", "counts", "total", "_log_min", "_log_ratio")

    def __init__(
        self,
        min_value: float = DEFAULT_MIN,
        max_value: float = DEFAULT_MAX,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ):
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.buckets_per_decade = int(buckets_per_decade)
        self.bounds = log_bounds(min_value, max_value, buckets_per_decade)
        self.counts = [0] * len(self.bounds)
        self.total = 0.0
        self._log_min = math.log10(self.min_value)
        self._log_ratio = 1.0 / self.buckets_per_decade

    # ------------------------------------------------------------------
    # recording and merging
    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Add one observation (negative values clamp to bucket 0)."""
        if value > self.min_value:
            index = int(
                math.ceil(
                    (math.log10(value) - self._log_min) / self._log_ratio
                    - 1e-9
                )
            )
            if index >= len(self.bounds):
                index = len(self.bounds) - 1
        else:
            index = 0
        self.counts[index] += 1
        self.total += value

    def record_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations."""
        for value in values:
            self.record(value)

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` into this histogram (same geometry required)."""
        if self.bounds != other.bounds:
            raise ParameterError(
                "cannot merge histograms with different bucket geometry: "
                f"{len(self.bounds)} bounds starting {self.bounds[0]!r} vs "
                f"{len(other.bounds)} starting {other.bounds[0]!r}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total

    def merged(self, other: "LogHistogram") -> "LogHistogram":
        """A new histogram equal to ``self`` merged with ``other``."""
        out = LogHistogram(
            self.min_value, self.max_value, self.buckets_per_decade
        )
        out.merge(self)
        out.merge(other)
        return out

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of recorded observations."""
        return sum(self.counts)

    @property
    def mean(self) -> float:
        n = self.count
        return self.total / n if n else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (q in [0, 100]), interpolated."""
        return percentile_from_buckets(self.bounds, self.counts, q)

    def summary(self) -> Dict[str, float]:
        """``{"count", "mean", "p50", "p99", "p999"}`` in one dict."""
        out = {"count": float(self.count), "mean": self.mean}
        for q in SUMMARY_PERCENTILES:
            out[_percentile_key(q)] = self.percentile(q)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogHistogram(count={self.count}, p50={self.percentile(50):.3g}, "
            f"p99={self.percentile(99):.3g})"
        )


def _percentile_key(q: float) -> str:
    text = f"{q:g}".replace(".", "")
    return f"p{text}"


def _le_text(bound: float) -> str:
    """Prometheus ``le`` label text for a bucket upper bound."""
    return "+Inf" if bound == math.inf else repr(float(bound))


class Histogram:
    """Registry-facing wrapper: one histogram, many snapshot samples.

    Produced by :meth:`repro.observability.registry.StatsRegistry.
    histogram`.  ``samples()`` renders the Prometheus histogram
    convention — cumulative ``_bucket{le=...}`` counters plus
    ``_count`` / ``_sum`` — so a snapshot dict carries the whole
    distribution and per-shard snapshots aggregate by plain summing.
    """

    __slots__ = ("name", "data", "_labels")

    def __init__(
        self,
        name: str,
        data: Optional[LogHistogram] = None,
        labels: Optional[Mapping[str, str]] = None,
    ):
        self.name = name
        self.data = data if data is not None else LogHistogram()
        self._labels = dict(labels or {})

    def record(self, value: float) -> None:
        """Add one observation to the underlying histogram."""
        self.data.record(value)

    def samples(self) -> Dict[str, float]:
        """This histogram's contribution to a registry snapshot."""
        from repro.observability.registry import sample_name

        out: Dict[str, float] = {}
        cumulative = 0
        for bound, count in zip(self.data.bounds, self.data.counts):
            cumulative += count
            labels = dict(self._labels)
            labels["le"] = _le_text(bound)
            out[sample_name(f"{self.name}_bucket", labels)] = float(cumulative)
        base_labels = self._labels or None
        out[sample_name(f"{self.name}_count", base_labels)] = float(
            self.data.count
        )
        out[sample_name(f"{self.name}_sum", base_labels)] = self.data.total
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, {self.data!r})"


def histogram_families(snapshot: Mapping[str, float]) -> List[str]:
    """Histogram family names reconstructable from a snapshot dict."""
    families = set()
    for sample in snapshot:
        from repro.observability.registry import base_name

        base = base_name(sample)
        if base.endswith("_bucket") and 'le="' in sample:
            families.add(base[: -len("_bucket")])
    return sorted(families)


def buckets_from_snapshot(
    snapshot: Mapping[str, float], name: str
) -> Tuple[List[float], List[int]]:
    """Recover ``(upper_bounds, per-bucket counts)`` for one family.

    Works on any snapshot carrying ``<name>_bucket{le="..."}`` samples —
    a live registry's, or one summed across shards (cumulative counters
    stay cumulative under addition).
    """
    prefix = f"{name}_bucket{{"
    edges: List[Tuple[float, float]] = []
    for sample, value in snapshot.items():
        if not sample.startswith(prefix):
            continue
        le_at = sample.find('le="')
        if le_at < 0:
            continue
        le_end = sample.find('"', le_at + 4)
        le_text = sample[le_at + 4:le_end]
        bound = math.inf if le_text == "+Inf" else float(le_text)
        edges.append((bound, float(value)))
    if not edges:
        raise ParameterError(
            f"snapshot has no histogram samples for family {name!r}"
        )
    edges.sort()
    bounds = [bound for bound, _ in edges]
    cumulative = [count for _, count in edges]
    counts = [
        int(round(c - (cumulative[i - 1] if i else 0.0)))
        for i, c in enumerate(cumulative)
    ]
    return bounds, counts


def percentiles_from_snapshot(
    snapshot: Mapping[str, float],
    name: str,
    qs: Sequence[float] = SUMMARY_PERCENTILES,
) -> Dict[str, float]:
    """p50/p99/... recovered from a (possibly aggregated) snapshot.

    >>> from repro.observability.registry import StatsRegistry
    >>> reg = StatsRegistry()
    >>> h = reg.histogram("demo_latency_seconds", help="demo")
    >>> for _ in range(10):
    ...     h.record(0.001)
    >>> sorted(percentiles_from_snapshot(reg.snapshot(),
    ...                                  "demo_latency_seconds"))
    ['p50', 'p99', 'p999']
    """
    bounds, counts = buckets_from_snapshot(snapshot, name)
    return {
        _percentile_key(q): percentile_from_buckets(bounds, counts, q)
        for q in qs
    }
